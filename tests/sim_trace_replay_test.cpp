// Trace-driven replay: determinism, paired policy comparisons, and
// equivalence sanity against the generative proxy sim.
#include <gtest/gtest.h>

#include "policy/policies.hpp"
#include "sim/trace_replay.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"
#include "workload/session_graph.hpp"

namespace specpf {
namespace {

Trace make_session_trace(std::size_t sessions, std::uint64_t seed) {
  SessionGraphConfig gcfg;
  gcfg.num_pages = 80;
  gcfg.out_degree = 3;
  gcfg.exit_probability = 0.2;
  gcfg.link_skew = 1.5;
  SessionGraph graph(gcfg, seed);
  Rng rng(seed ^ 0xABCD);
  Trace trace;
  double t = 0.0;
  for (std::size_t s = 0; s < sessions; ++s) {
    t += 0.8;
    for (std::uint64_t page : graph.sample_session(rng)) {
      trace.append({t, static_cast<std::uint32_t>(s % 5), page});
      t += 0.3;
    }
  }
  return trace;
}

TEST(TraceReplay, SmokeAndConservation) {
  const Trace trace = make_session_trace(400, 11);
  TraceReplayConfig cfg;
  cfg.bandwidth = 30.0;
  cfg.cache_capacity = 32;
  NoPrefetchPolicy none;
  const auto r = run_trace_replay(trace, cfg, none);
  // Every post-warmup request is recorded exactly once.
  const auto warmup = static_cast<std::uint64_t>(0.1 * trace.size());
  EXPECT_EQ(r.requests, trace.size() - warmup);
  EXPECT_EQ(r.prefetch_jobs, 0u);
  EXPECT_GT(r.hit_ratio, 0.0);
  EXPECT_LT(r.hit_ratio, 1.0);
}

TEST(TraceReplay, DeterministicAcrossRuns) {
  const Trace trace = make_session_trace(200, 13);
  TraceReplayConfig cfg;
  ThresholdPolicy p1(core::InteractionModel::kModelA);
  ThresholdPolicy p2(core::InteractionModel::kModelA);
  const auto a = run_trace_replay(trace, cfg, p1);
  const auto b = run_trace_replay(trace, cfg, p2);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_access_time, b.mean_access_time);
  EXPECT_EQ(a.prefetch_jobs, b.prefetch_jobs);
}

TEST(TraceReplay, PairedPoliciesSeeIdenticalRequests) {
  const Trace trace = make_session_trace(300, 17);
  TraceReplayConfig cfg;
  NoPrefetchPolicy none;
  FixedThresholdPolicy spray(0.05);
  const auto a = run_trace_replay(trace, cfg, none);
  const auto b = run_trace_replay(trace, cfg, spray);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_GT(b.prefetch_jobs, 0u);
  EXPECT_GT(b.hit_ratio, a.hit_ratio);  // prefetching converts misses
}

TEST(TraceReplay, PrefetchingImprovesAccessTimeOnPredictableTrace) {
  const Trace trace = make_session_trace(600, 19);
  TraceReplayConfig cfg;
  cfg.bandwidth = 40.0;
  cfg.cache_capacity = 24;
  NoPrefetchPolicy none;
  ThresholdPolicy threshold(core::InteractionModel::kModelA);
  const auto base = run_trace_replay(trace, cfg, none);
  const auto pref = run_trace_replay(trace, cfg, threshold);
  EXPECT_LT(pref.mean_access_time, base.mean_access_time);
}

TEST(TraceReplay, AllPredictorsRun) {
  const Trace trace = make_session_trace(150, 23);
  for (auto kind : {TraceReplayConfig::PredictorKind::kMarkov,
                    TraceReplayConfig::PredictorKind::kPpm,
                    TraceReplayConfig::PredictorKind::kDependencyGraph,
                    TraceReplayConfig::PredictorKind::kFrequency}) {
    TraceReplayConfig cfg;
    cfg.predictor_kind = kind;
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto r = run_trace_replay(trace, cfg, policy);
    EXPECT_GT(r.requests, 0u);
  }
}

TEST(TraceReplay, RejectsEmptyAndUnsortedTraces) {
  TraceReplayConfig cfg;
  NoPrefetchPolicy none;
  EXPECT_THROW(run_trace_replay(Trace{}, cfg, none), ContractViolation);
  Trace unsorted;
  unsorted.append({5.0, 0, 1});
  unsorted.append({1.0, 0, 2});
  EXPECT_THROW(run_trace_replay(unsorted, cfg, none), ContractViolation);
}

TEST(TraceReplay, SparseUserIdsAreDensified) {
  Trace trace;
  for (int i = 0; i < 50; ++i) {
    trace.append({static_cast<double>(i), 1000000u + (i % 3) * 7919u,
                  static_cast<std::uint64_t>(i % 10)});
  }
  TraceReplayConfig cfg;
  cfg.warmup_fraction = 0.0;
  NoPrefetchPolicy none;
  const auto r = run_trace_replay(trace, cfg, none);
  EXPECT_EQ(r.requests, 50u);
}

}  // namespace
}  // namespace specpf
