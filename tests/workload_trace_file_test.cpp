// Binary .spt trace format tests: round-trip exactness on the microsecond
// grid, quantization bounds off it, cursor/chunk edge cases, shard-filtered
// cursors against partition_by_user, and loud rejection of truncated or
// bit-flipped files. The replay differential tests lean on the canonical-
// decode property proven here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace.hpp"
#include "workload/trace_file.hpp"
#include "workload/trace_stream.hpp"

namespace specpf {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

/// Writes an in-RAM trace through the streaming writer.
std::string write_tmp(const char* name, const Trace& trace,
                      std::size_t chunk_records = kTraceDefaultChunkRecords) {
  const std::string path = tmp_path(name);
  TraceVectorSource source(trace);
  TraceWriteOptions options;
  options.chunk_records = chunk_records;
  write_trace_file(path, source, options);
  return path;
}

/// Random trace on the µs grid (so encode/decode is exact), with duplicate
/// timestamps mixed in.
Trace make_grid_trace(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  std::uint64_t t_us = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // ~1 in 4 records shares its predecessor's timestamp.
    if (rng.next_u64() % 4 != 0) t_us += rng.next_u64() % 2000000;
    trace.append({trace_micros_to_seconds(t_us),
                  static_cast<std::uint32_t>(rng.next_u64() % 97),
                  rng.next_u64() % 1013});
  }
  return trace;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].time, b.records()[i].time) << "record " << i;
    EXPECT_EQ(a.records()[i].user, b.records()[i].user) << "record " << i;
    EXPECT_EQ(a.records()[i].item, b.records()[i].item) << "record " << i;
  }
}

TEST(TraceTime, MicrosecondGridRoundTrip) {
  EXPECT_EQ(trace_time_to_micros(0.0), 0u);
  EXPECT_EQ(trace_time_to_micros(1.5), 1500000u);
  EXPECT_DOUBLE_EQ(trace_micros_to_seconds(1500000), 1.5);
  // Grid values survive a full double→µs→double→µs cycle.
  for (std::uint64_t us : {std::uint64_t{0}, std::uint64_t{1},
                           std::uint64_t{999999}, std::uint64_t{123456789012}}) {
    EXPECT_EQ(trace_time_to_micros(trace_micros_to_seconds(us)), us);
  }
  EXPECT_THROW(trace_time_to_micros(-1.0), std::runtime_error);
  EXPECT_THROW(trace_time_to_micros(std::nan("")), std::runtime_error);
}

TEST(TraceFileFormat, GridTraceRoundTripsExactlyAcrossChunkSizes) {
  const Trace trace = make_grid_trace(5000, 7);
  for (std::size_t chunk_records : {std::size_t{1}, std::size_t{3},
                                    std::size_t{1000}, std::size_t{5000},
                                    std::size_t{100000}}) {
    const std::string path =
        write_tmp("roundtrip.spt", trace, chunk_records);
    const TraceFile file(path);
    EXPECT_EQ(file.record_count(), trace.size());
    EXPECT_EQ(file.header().unique_users, trace.unique_users());
    EXPECT_EQ(file.header().unique_items, trace.unique_items());
    EXPECT_DOUBLE_EQ(file.duration(), trace.duration());
    const std::size_t expected_chunks =
        (trace.size() + chunk_records - 1) / chunk_records;
    EXPECT_EQ(file.num_chunks(), expected_chunks)
        << "chunk_records=" << chunk_records;
    SCOPED_TRACE("chunk_records=" + std::to_string(chunk_records));
    expect_traces_equal(file.read_all(), trace);
    std::remove(path.c_str());
  }
}

TEST(TraceFileFormat, OffGridTimesQuantizeWithinHalfMicrosecond) {
  Trace trace;
  Rng rng(11);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.next_double() * 0.01;  // arbitrary doubles, not on the grid
    trace.append({t, static_cast<std::uint32_t>(i % 10), 5});
  }
  const std::string path = write_tmp("quantize.spt", trace);
  const TraceFile file(path);
  const Trace decoded = file.read_all();
  ASSERT_EQ(decoded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(decoded.records()[i].time, trace.records()[i].time, 0.51e-6);
  }
  // Decode is canonical: re-encoding the decoded trace reproduces it
  // bit-for-bit (the property replay bit-identity rests on).
  const std::string path2 = write_tmp("quantize2.spt", decoded);
  const TraceFile file2(path2);
  expect_traces_equal(file2.read_all(), decoded);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(TraceFileFormat, CursorMatchesReadAllAndCountsDecodes) {
  const Trace trace = make_grid_trace(3000, 13);
  const std::string path = write_tmp("cursor.spt", trace, 256);
  const TraceFile file(path);
  TraceCursor cursor(file);
  TraceRecord r;
  std::size_t i = 0;
  while (cursor.next(&r)) {
    ASSERT_LT(i, trace.size());
    EXPECT_DOUBLE_EQ(r.time, trace.records()[i].time);
    EXPECT_EQ(r.user, trace.records()[i].user);
    EXPECT_EQ(r.item, trace.records()[i].item);
    ++i;
  }
  EXPECT_EQ(i, trace.size());
  EXPECT_EQ(cursor.records_decoded(), trace.size());
  // reset() rewinds to the first record.
  cursor.reset();
  ASSERT_TRUE(cursor.next(&r));
  EXPECT_DOUBLE_EQ(r.time, trace.records()[0].time);
  std::remove(path.c_str());
}

TEST(TraceFileFormat, ShardFilteredCursorMatchesPartitionByUser) {
  const Trace trace = make_grid_trace(4000, 17);
  const std::string path = write_tmp("shards.spt", trace, 512);
  const TraceFile file(path);
  constexpr std::uint32_t kShards = 5;
  const auto parts = trace.partition_by_user(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    TraceCursor cursor(file, s, kShards);
    TraceRecord r;
    std::size_t i = 0;
    while (cursor.next(&r)) {
      ASSERT_LT(i, parts[s].size()) << "shard " << s;
      EXPECT_DOUBLE_EQ(r.time, parts[s].records()[i].time);
      EXPECT_EQ(r.user, parts[s].records()[i].user);
      EXPECT_EQ(r.item, parts[s].records()[i].item);
      ++i;
    }
    EXPECT_EQ(i, parts[s].size()) << "shard " << s;
  }
  std::remove(path.c_str());
}

TEST(TraceFileFormat, EmptyAndSingleRecordFiles) {
  const Trace empty;
  const std::string empty_path = write_tmp("empty.spt", empty);
  const TraceFile empty_file(empty_path);
  EXPECT_EQ(empty_file.record_count(), 0u);
  EXPECT_EQ(empty_file.num_chunks(), 0u);
  EXPECT_DOUBLE_EQ(empty_file.duration(), 0.0);
  TraceCursor empty_cursor(empty_file);
  TraceRecord r;
  EXPECT_FALSE(empty_cursor.next(&r));

  Trace one;
  one.append({2.5, 7, 42});
  const std::string one_path = write_tmp("one.spt", one);
  const TraceFile one_file(one_path);
  EXPECT_EQ(one_file.record_count(), 1u);
  EXPECT_EQ(one_file.num_chunks(), 1u);
  EXPECT_DOUBLE_EQ(one_file.duration(), 0.0);
  expect_traces_equal(one_file.read_all(), one);
  std::remove(empty_path.c_str());
  std::remove(one_path.c_str());
}

TEST(TraceFileWriterTest, RejectsTimeRegressionAndNegativeTime) {
  const std::string path = tmp_path("regress.spt");
  {
    TraceFileWriter writer(path);
    writer.append({1.0, 0, 0});
    EXPECT_THROW(writer.append({0.5, 0, 0}), std::runtime_error);
  }
  {
    TraceFileWriter writer(path);
    EXPECT_THROW(writer.append({-0.5, 0, 0}), std::runtime_error);
  }
  std::remove(path.c_str());
}

TEST(TraceFileFormat, RejectsCorruptFiles) {
  const Trace trace = make_grid_trace(500, 19);
  const std::string path = write_tmp("corrupt.spt", trace, 128);
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const auto rewrite = [&](const std::vector<char>& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  };

  // Truncated mid-payload: the chunk index is no longer where the header
  // says, so open fails.
  std::vector<char> truncated(bytes.begin(),
                              bytes.begin() + static_cast<long>(bytes.size() / 2));
  rewrite(truncated);
  EXPECT_THROW(TraceFile{path}, std::runtime_error);

  // Bad magic.
  std::vector<char> bad_magic = bytes;
  bad_magic[0] = 'X';
  rewrite(bad_magic);
  EXPECT_THROW(TraceFile{path}, std::runtime_error);

  // Bit-flipped chunk index (record count of chunk 0): totals no longer
  // reconcile with the header.
  std::vector<char> bad_index = bytes;
  const std::size_t index_offset = bytes.size() - 4 * sizeof(TraceChunkInfo);
  bad_index[index_offset + offsetof(TraceChunkInfo, records)] ^= 0x01;
  rewrite(bad_index);
  EXPECT_THROW(TraceFile{path}, std::runtime_error);

  // Bit-flipped payload: the header/index still validate, but the cursor's
  // chunk-boundary cross-check (payload length + end time vs the index)
  // fails during the scan. Byte 0 of the payload is the first record's
  // time delta; 0xFF turns it into a multi-byte varint and shifts the rest
  // of the stream.
  std::vector<char> bad_payload = bytes;
  bad_payload[sizeof(TraceFileHeader)] = static_cast<char>(0xFF);
  rewrite(bad_payload);
  const TraceFile file(path);
  TraceCursor cursor(file);
  TraceRecord r;
  EXPECT_THROW(
      while (cursor.next(&r)) {
      },
      std::runtime_error);

  // Not a trace file at all.
  rewrite(std::vector<char>{'h', 'i'});
  EXPECT_THROW(TraceFile{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFileFormat, StreamedGeneratorWritesSameFileAsMaterializedTrace) {
  SyntheticTraceConfig cfg;
  cfg.num_users = 200;
  cfg.num_requests = 3000;
  cfg.request_rate = 50.0;
  cfg.graph.num_pages = 80;
  cfg.seed = 23;

  const std::string stream_path = tmp_path("gen_stream.spt");
  SyntheticTraceStream stream(cfg);
  const std::uint64_t streamed = write_trace_file(stream_path, stream);

  const Trace trace = generate_synthetic_trace(cfg);
  const std::string ram_path = write_tmp("gen_ram.spt", trace);

  EXPECT_EQ(streamed, trace.size());
  std::ifstream a(stream_path, std::ios::binary);
  std::ifstream b(ram_path, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);  // byte-identical files
  std::remove(stream_path.c_str());
  std::remove(ram_path.c_str());
}

}  // namespace
}  // namespace specpf
