// Nonstationary arrival modulation in the synthetic trace generator:
// closed-form rate factors, thinning correctness (request density follows
// the modulation), hotspot user skew, determinism, and the byte-identity
// of the stationary path with the pre-modulation generator's RNG draws.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "shard/sharded_sim.hpp"
#include "util/contract.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/synthetic_trace.hpp"

namespace specpf {
namespace {

SyntheticTraceConfig base_config() {
  SyntheticTraceConfig cfg;
  cfg.num_users = 2000;
  cfg.num_requests = 60000;
  cfg.request_rate = 1000.0;
  cfg.graph.num_pages = 100;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.25;
  cfg.seed = 42;
  return cfg;
}

/// Requests per second inside [t0, t1).
double density(const Trace& trace, double t0, double t1) {
  std::size_t n = 0;
  for (const auto& r : trace.records()) {
    if (r.time >= t0 && r.time < t1) ++n;
  }
  return static_cast<double>(n) / (t1 - t0);
}

TEST(ArrivalModulation, RateFactorClosedForms) {
  ArrivalModulation mod;
  EXPECT_EQ(mod.rate_factor(123.0), 1.0);
  EXPECT_EQ(mod.max_rate_factor(), 1.0);

  mod.kind = ArrivalModulation::Kind::kDiurnal;
  mod.amplitude = 0.5;
  mod.period = 4.0;
  EXPECT_NEAR(mod.rate_factor(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mod.rate_factor(1.0), 1.5, 1e-12);  // sin peak at period/4
  EXPECT_NEAR(mod.rate_factor(3.0), 0.5, 1e-12);  // trough
  EXPECT_NEAR(mod.max_rate_factor(), 1.5, 1e-12);

  mod.kind = ArrivalModulation::Kind::kFlashCrowd;
  mod.start = 10.0;
  mod.rise = 2.0;
  mod.hold = 4.0;
  mod.fall = 2.0;
  mod.peak_factor = 5.0;
  EXPECT_EQ(mod.rate_factor(9.9), 1.0);
  EXPECT_NEAR(mod.rate_factor(11.0), 3.0, 1e-12);   // mid-ramp
  EXPECT_NEAR(mod.rate_factor(13.0), 5.0, 1e-12);   // plateau
  EXPECT_NEAR(mod.rate_factor(17.0), 3.0, 1e-12);   // mid-fall
  EXPECT_EQ(mod.rate_factor(18.1), 1.0);
  EXPECT_EQ(mod.max_rate_factor(), 5.0);
  EXPECT_TRUE(mod.window_active(12.0));
  EXPECT_FALSE(mod.window_active(19.0));
}

TEST(SyntheticTrace, StationaryPathIsByteIdenticalToLegacyGenerator) {
  // The stationary generator must draw the exact RNG sequence the
  // pre-modulation implementation drew. This literal reimplementation of
  // the legacy loop pins it.
  SyntheticTraceConfig cfg = base_config();
  cfg.num_requests = 5000;
  const Trace trace = generate_synthetic_trace(cfg);

  SessionGraph graph(cfg.graph, Rng(cfg.seed).substream(1).next_u64());
  Rng rng(cfg.seed);
  ExponentialDist gap(1.0 / cfg.request_rate);
  constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  std::vector<std::uint64_t> page(cfg.num_users, kIdle);
  double t = 0.0;
  ASSERT_EQ(trace.size(), cfg.num_requests);
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    t += gap.sample(rng);
    const auto user =
        static_cast<std::uint32_t>(rng.next_u64() % cfg.num_users);
    std::uint64_t item;
    if (page[user] == kIdle || !graph.sample_next(page[user], rng, &item)) {
      item = graph.sample_entry(rng);
    }
    page[user] = item;
    const TraceRecord& r = trace.records()[i];
    ASSERT_EQ(r.time, t);
    ASSERT_EQ(r.user, user);
    ASSERT_EQ(r.item, item);
  }
}

TEST(SyntheticTrace, FlashCrowdConcentratesRequestsInWindow) {
  SyntheticTraceConfig cfg = base_config();
  cfg.modulation.kind = ArrivalModulation::Kind::kFlashCrowd;
  cfg.modulation.start = 20.0;
  cfg.modulation.rise = 2.0;
  cfg.modulation.hold = 10.0;
  cfg.modulation.fall = 2.0;
  cfg.modulation.peak_factor = 4.0;
  const Trace trace = generate_synthetic_trace(cfg);

  ASSERT_EQ(trace.size(), cfg.num_requests);
  EXPECT_TRUE(trace.is_time_ordered());
  const double before = density(trace, 5.0, 18.0);
  const double during = density(trace, 23.0, 31.0);
  // Thinning should realise ~4x the base density on the plateau.
  EXPECT_GT(during, 3.2 * before);
  EXPECT_LT(during, 4.8 * before);
  EXPECT_NEAR(before, cfg.request_rate, 0.15 * cfg.request_rate);
}

TEST(SyntheticTrace, DiurnalPeakAndTroughFollowTheSine) {
  SyntheticTraceConfig cfg = base_config();
  cfg.modulation.kind = ArrivalModulation::Kind::kDiurnal;
  cfg.modulation.amplitude = 0.8;
  cfg.modulation.period = 40.0;
  const Trace trace = generate_synthetic_trace(cfg);

  EXPECT_TRUE(trace.is_time_ordered());
  // Peak near t = 10 (sin = 1), trough near t = 30 (sin = -1).
  const double peak = density(trace, 8.0, 12.0);
  const double trough = density(trace, 28.0, 32.0);
  EXPECT_GT(peak, 4.0 * trough);  // 1.8 / 0.2 = 9x in expectation
}

TEST(SyntheticTrace, HotspotSkewsUsersOntoOneShard) {
  SyntheticTraceConfig cfg = base_config();
  cfg.modulation.kind = ArrivalModulation::Kind::kHotspot;
  cfg.modulation.start = 15.0;
  cfg.modulation.rise = 1.0;
  cfg.modulation.hold = 10.0;
  cfg.modulation.fall = 1.0;
  cfg.modulation.peak_factor = 2.0;
  cfg.modulation.hot_modulus = 8;
  cfg.modulation.hot_residue = 3;
  cfg.modulation.hot_weight = 0.8;
  const Trace trace = generate_synthetic_trace(cfg);

  std::size_t hot_in = 0, total_in = 0, hot_out = 0, total_out = 0;
  for (const auto& r : trace.records()) {
    const bool hot = r.user % 8 == 3;
    if (cfg.modulation.window_active(r.time)) {
      ++total_in;
      if (hot) ++hot_in;
    } else {
      ++total_out;
      if (hot) ++hot_out;
    }
  }
  ASSERT_GT(total_in, 1000u);
  ASSERT_GT(total_out, 1000u);
  const double in_frac =
      static_cast<double>(hot_in) / static_cast<double>(total_in);
  const double out_frac =
      static_cast<double>(hot_out) / static_cast<double>(total_out);
  // In-window: 0.8 + 0.2/8 = 0.825 expected; outside: 1/8.
  EXPECT_NEAR(in_frac, 0.825, 0.03);
  EXPECT_NEAR(out_frac, 0.125, 0.03);
  // Hot users are exactly shard 3's population at 8 shards.
  EXPECT_EQ(ShardedSim::shard_of_user(3 + 8 * 17, 8), 3u);
}

TEST(SyntheticTrace, ModulatedGenerationIsDeterministic) {
  SyntheticTraceConfig cfg = base_config();
  cfg.num_requests = 20000;
  cfg.modulation.kind = ArrivalModulation::Kind::kFlashCrowd;
  cfg.modulation.start = 10.0;
  cfg.modulation.peak_factor = 3.0;
  const Trace a = generate_synthetic_trace(cfg);
  const Trace b = generate_synthetic_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].time, b.records()[i].time);
    EXPECT_EQ(a.records()[i].user, b.records()[i].user);
    EXPECT_EQ(a.records()[i].item, b.records()[i].item);
  }
}

TEST(SyntheticTrace, ScenarioPresetsResolveByName) {
  ArrivalModulation mod;
  EXPECT_TRUE(make_scenario_modulation("stationary", 100.0, 4, &mod));
  EXPECT_EQ(mod.kind, ArrivalModulation::Kind::kStationary);
  EXPECT_TRUE(make_scenario_modulation("diurnal", 100.0, 4, &mod));
  EXPECT_EQ(mod.kind, ArrivalModulation::Kind::kDiurnal);
  EXPECT_NEAR(mod.period, 50.0, 1e-12);
  EXPECT_TRUE(make_scenario_modulation("flash", 100.0, 4, &mod));
  EXPECT_EQ(mod.kind, ArrivalModulation::Kind::kFlashCrowd);
  EXPECT_NEAR(mod.start, 40.0, 1e-12);
  EXPECT_TRUE(make_scenario_modulation("hotspot", 100.0, 4, &mod));
  EXPECT_EQ(mod.kind, ArrivalModulation::Kind::kHotspot);
  EXPECT_EQ(mod.hot_modulus, 4u);
  EXPECT_FALSE(make_scenario_modulation("nope", 100.0, 4, &mod));
}

TEST(ArrivalModulation, ValidationRejectsBadShapes) {
  SyntheticTraceConfig cfg = base_config();
  cfg.modulation.kind = ArrivalModulation::Kind::kDiurnal;
  cfg.modulation.amplitude = 1.5;
  EXPECT_THROW(generate_synthetic_trace(cfg), ContractViolation);
  cfg.modulation.amplitude = 0.5;
  cfg.modulation.period = 0.0;
  EXPECT_THROW(generate_synthetic_trace(cfg), ContractViolation);

  cfg = base_config();
  cfg.modulation.kind = ArrivalModulation::Kind::kHotspot;
  cfg.modulation.hot_residue = 9;
  cfg.modulation.hot_modulus = 8;
  EXPECT_THROW(generate_synthetic_trace(cfg), ContractViolation);
}

}  // namespace
}  // namespace specpf
