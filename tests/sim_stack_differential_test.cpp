// Differential tests: the flat-hash data plane must reproduce bit-identical
// ProxySimResults against the legacy std::map in-flight backend, the
// slab-backed arena cache plane against the legacy per-user TaggedCache
// fleet, and the SoA predictor plane against the legacy virtual Predictor
// tables — across every predictor and cache kind, for the generative proxy
// sim, trace replay, and a sharded replay. The backends differ only in
// container layout; any divergence means behaviour changed, not just speed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/divergence.hpp"
#include "obs/telemetry.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/proxy_sim.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace_file.hpp"

namespace specpf {
namespace {

void expect_identical(const ProxySimResult& flat, const ProxySimResult& tree) {
  EXPECT_EQ(flat.requests, tree.requests);
  EXPECT_EQ(flat.demand_jobs, tree.demand_jobs);
  EXPECT_EQ(flat.prefetch_jobs, tree.prefetch_jobs);
  EXPECT_EQ(flat.wasted_prefetch_evictions, tree.wasted_prefetch_evictions);
  EXPECT_EQ(flat.inflight_hits, tree.inflight_hits);
  EXPECT_DOUBLE_EQ(flat.mean_access_time, tree.mean_access_time);
  EXPECT_DOUBLE_EQ(flat.access_time_std_error, tree.access_time_std_error);
  EXPECT_DOUBLE_EQ(flat.hit_ratio, tree.hit_ratio);
  EXPECT_DOUBLE_EQ(flat.server_utilization, tree.server_utilization);
  EXPECT_DOUBLE_EQ(flat.retrieval_time_per_request,
                   tree.retrieval_time_per_request);
  EXPECT_DOUBLE_EQ(flat.retrievals_per_request, tree.retrievals_per_request);
  EXPECT_DOUBLE_EQ(flat.hprime_estimate, tree.hprime_estimate);
  EXPECT_DOUBLE_EQ(flat.prefetch_useful_fraction,
                   tree.prefetch_useful_fraction);
  EXPECT_DOUBLE_EQ(flat.mean_inflight_wait, tree.mean_inflight_wait);
  EXPECT_DOUBLE_EQ(flat.mean_demand_sojourn, tree.mean_demand_sojourn);
  EXPECT_DOUBLE_EQ(flat.access_time_p50, tree.access_time_p50);
  EXPECT_DOUBLE_EQ(flat.access_time_p95, tree.access_time_p95);
  EXPECT_DOUBLE_EQ(flat.access_time_p99, tree.access_time_p99);
}

TEST(StackDifferential, FlatMatchesTreeAcrossPredictorsAndCacheKinds) {
  const ProxySimConfig::PredictorKind predictors[] = {
      ProxySimConfig::PredictorKind::kMarkov,
      ProxySimConfig::PredictorKind::kPpm,
      ProxySimConfig::PredictorKind::kDependencyGraph,
      ProxySimConfig::PredictorKind::kFrequency,
      ProxySimConfig::PredictorKind::kOracle,
  };
  const ProxySimConfig::CacheKind caches[] = {
      ProxySimConfig::CacheKind::kLru, ProxySimConfig::CacheKind::kLfu,
      ProxySimConfig::CacheKind::kFifo, ProxySimConfig::CacheKind::kClock,
      ProxySimConfig::CacheKind::kRandom,
  };
  for (auto predictor : predictors) {
    for (auto cache : caches) {
      ProxySimConfig cfg;
      cfg.num_users = 4;
      cfg.bandwidth = 30.0;
      cfg.graph.num_pages = 60;
      cfg.graph.out_degree = 3;
      cfg.graph.exit_probability = 0.2;
      cfg.cache_capacity = 12;  // tight: keeps evictions + inflight churn hot
      cfg.duration = 120.0;
      cfg.warmup = 20.0;
      cfg.seed = 9;
      cfg.predictor_kind = predictor;
      cfg.cache_kind = cache;

      cfg.use_tree_inflight = false;
      ThresholdPolicy flat_policy(core::InteractionModel::kModelA);
      const ProxySimResult flat = run_proxy_sim(cfg, flat_policy);

      cfg.use_tree_inflight = true;
      ThresholdPolicy tree_policy(core::InteractionModel::kModelA);
      const ProxySimResult tree = run_proxy_sim(cfg, tree_policy);

      SCOPED_TRACE("predictor=" + std::to_string(static_cast<int>(predictor)) +
                   " cache=" + std::to_string(static_cast<int>(cache)));
      expect_identical(flat, tree);
      EXPECT_GT(flat.requests, 0u);
    }
  }
}

// --- arena cache plane vs legacy TaggedCache fleet ---

TEST(StackDifferential, ArenaCachesMatchLegacyAcrossPredictorsAndCacheKinds) {
  const ProxySimConfig::PredictorKind predictors[] = {
      ProxySimConfig::PredictorKind::kMarkov,
      ProxySimConfig::PredictorKind::kOracle,
  };
  const ProxySimConfig::CacheKind caches[] = {
      ProxySimConfig::CacheKind::kLru, ProxySimConfig::CacheKind::kLfu,
      ProxySimConfig::CacheKind::kFifo, ProxySimConfig::CacheKind::kClock,
      ProxySimConfig::CacheKind::kRandom,
  };
  for (auto predictor : predictors) {
    for (auto cache : caches) {
      ProxySimConfig cfg;
      cfg.num_users = 4;
      cfg.bandwidth = 30.0;
      cfg.graph.num_pages = 60;
      cfg.graph.out_degree = 3;
      cfg.graph.exit_probability = 0.2;
      cfg.cache_capacity = 12;
      cfg.duration = 120.0;
      cfg.warmup = 20.0;
      cfg.seed = 9;
      cfg.predictor_kind = predictor;
      cfg.cache_kind = cache;

      cfg.use_legacy_caches = false;
      ThresholdPolicy arena_policy(core::InteractionModel::kModelA);
      const ProxySimResult arena = run_proxy_sim(cfg, arena_policy);

      cfg.use_legacy_caches = true;
      ThresholdPolicy legacy_policy(core::InteractionModel::kModelA);
      const ProxySimResult legacy = run_proxy_sim(cfg, legacy_policy);

      SCOPED_TRACE("predictor=" + std::to_string(static_cast<int>(predictor)) +
                   " cache=" + std::to_string(static_cast<int>(cache)));
      expect_identical(arena, legacy);
      EXPECT_GT(arena.requests, 0u);
    }
  }
}

TEST(StackDifferential, TraceReplayArenaCachesMatchLegacyAcrossCacheKinds) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  for (auto cache :
       {ProxySimConfig::CacheKind::kLru, ProxySimConfig::CacheKind::kLfu,
        ProxySimConfig::CacheKind::kFifo, ProxySimConfig::CacheKind::kClock,
        ProxySimConfig::CacheKind::kRandom}) {
    // Capacity 8 exercises the per-user-block arenas, 24 the shared-slab +
    // flat-index arenas (the small/mapped residency dispatch boundary is
    // arena::kInlineResidencyCapacity = 16).
    for (std::size_t capacity : {std::size_t{8}, std::size_t{24}}) {
      TraceReplayConfig cfg;
      cfg.bandwidth = 60.0;
      cfg.cache_capacity = capacity;
      cfg.cache_kind = cache;

      cfg.use_legacy_caches = false;
      ThresholdPolicy arena_policy(core::InteractionModel::kModelA);
      const ProxySimResult arena = run_trace_replay(trace, cfg, arena_policy);

      cfg.use_legacy_caches = true;
      ThresholdPolicy legacy_policy(core::InteractionModel::kModelA);
      const ProxySimResult legacy = run_trace_replay(trace, cfg, legacy_policy);

      SCOPED_TRACE("cache=" + std::to_string(static_cast<int>(cache)) +
                   " capacity=" + std::to_string(capacity));
      expect_identical(arena, legacy);
      EXPECT_GT(arena.requests, 0u);
    }
  }
}

TEST(StackDifferential, ShardedReplayArenaCachesMatchLegacyAcrossCacheKinds) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  for (auto cache :
       {ProxySimConfig::CacheKind::kLru, ProxySimConfig::CacheKind::kLfu,
        ProxySimConfig::CacheKind::kFifo, ProxySimConfig::CacheKind::kClock,
        ProxySimConfig::CacheKind::kRandom}) {
    ShardedReplayConfig cfg;
    cfg.stack.bandwidth = 60.0;
    cfg.stack.cache_capacity = 8;
    cfg.stack.cache_kind = cache;
    cfg.num_shards = 3;
    cfg.num_threads = 1;
    const PolicyFactory factory = [] {
      return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
    };

    cfg.stack.use_legacy_caches = false;
    const ShardedReplayResult arena = run_sharded_replay(trace, cfg, factory);

    cfg.stack.use_legacy_caches = true;
    const ShardedReplayResult legacy = run_sharded_replay(trace, cfg, factory);

    SCOPED_TRACE("cache=" + std::to_string(static_cast<int>(cache)));
    expect_identical(arena.merged, legacy.merged);
    EXPECT_EQ(arena.cross_shard_events, legacy.cross_shard_events);
    EXPECT_EQ(arena.backbone.jobs(), legacy.backbone.jobs());
    EXPECT_GT(arena.merged.requests, 0u);
  }
}

// --- SoA predictor plane vs legacy virtual Predictor tables ---

TEST(StackDifferential, PredictorPlaneMatchesLegacyAcrossKinds) {
  const ProxySimConfig::PredictorKind predictors[] = {
      ProxySimConfig::PredictorKind::kMarkov,
      ProxySimConfig::PredictorKind::kPpm,
      ProxySimConfig::PredictorKind::kDependencyGraph,
      ProxySimConfig::PredictorKind::kFrequency,
      ProxySimConfig::PredictorKind::kOracle,
  };
  for (auto predictor : predictors) {
    ProxySimConfig cfg;
    cfg.num_users = 4;
    cfg.bandwidth = 30.0;
    cfg.graph.num_pages = 60;
    cfg.graph.out_degree = 3;
    cfg.graph.exit_probability = 0.2;
    cfg.cache_capacity = 12;
    cfg.duration = 120.0;
    cfg.warmup = 20.0;
    cfg.seed = 9;
    cfg.predictor_kind = predictor;

    cfg.use_legacy_predictors = false;
    ThresholdPolicy plane_policy(core::InteractionModel::kModelA);
    const ProxySimResult plane = run_proxy_sim(cfg, plane_policy);

    cfg.use_legacy_predictors = true;
    ThresholdPolicy legacy_policy(core::InteractionModel::kModelA);
    const ProxySimResult legacy = run_proxy_sim(cfg, legacy_policy);

    SCOPED_TRACE("predictor=" + std::to_string(static_cast<int>(predictor)));
    expect_identical(plane, legacy);
    EXPECT_GT(plane.requests, 0u);
  }
}

TEST(StackDifferential, TraceReplayPredictorPlaneMatchesLegacy) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  // Every replayable kind (the oracle needs the generating graph).
  const TraceReplayConfig::PredictorKind predictors[] = {
      PredictorKind::kMarkov,
      PredictorKind::kPpm,
      PredictorKind::kDependencyGraph,
      PredictorKind::kFrequency,
  };
  for (auto predictor : predictors) {
    TraceReplayConfig cfg;
    cfg.bandwidth = 60.0;
    cfg.cache_capacity = 8;
    cfg.predictor_kind = predictor;

    cfg.use_legacy_predictors = false;
    ThresholdPolicy plane_policy(core::InteractionModel::kModelA);
    const ProxySimResult plane = run_trace_replay(trace, cfg, plane_policy);

    cfg.use_legacy_predictors = true;
    ThresholdPolicy legacy_policy(core::InteractionModel::kModelA);
    const ProxySimResult legacy = run_trace_replay(trace, cfg, legacy_policy);

    SCOPED_TRACE("predictor=" + std::to_string(static_cast<int>(predictor)));
    expect_identical(plane, legacy);
    EXPECT_GT(plane.requests, 0u);
  }
}

TEST(StackDifferential, ShardedReplayPredictorPlaneMatchesLegacy) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  for (auto predictor : {PredictorKind::kMarkov, PredictorKind::kPpm}) {
    ShardedReplayConfig cfg;
    cfg.stack.bandwidth = 60.0;
    cfg.stack.cache_capacity = 8;
    cfg.stack.predictor_kind = predictor;
    cfg.num_shards = 3;
    cfg.num_threads = 1;
    const PolicyFactory factory = [] {
      return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
    };

    cfg.stack.use_legacy_predictors = false;
    const ShardedReplayResult plane = run_sharded_replay(trace, cfg, factory);

    cfg.stack.use_legacy_predictors = true;
    const ShardedReplayResult legacy = run_sharded_replay(trace, cfg, factory);

    SCOPED_TRACE("predictor=" + std::to_string(static_cast<int>(predictor)));
    expect_identical(plane.merged, legacy.merged);
    EXPECT_EQ(plane.cross_shard_events, legacy.cross_shard_events);
    EXPECT_EQ(plane.backbone.jobs(), legacy.backbone.jobs());
    EXPECT_GT(plane.merged.requests, 0u);
  }
}

// --- telemetry on vs off: observation must be bit-identical -----------------

TEST(StackDifferential, ProxySimTelemetryOnMatchesOff) {
  ProxySimConfig cfg;
  cfg.num_users = 4;
  cfg.bandwidth = 30.0;
  cfg.graph.num_pages = 60;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.2;
  cfg.cache_capacity = 12;
  cfg.duration = 120.0;
  cfg.warmup = 20.0;
  cfg.seed = 9;

  ThresholdPolicy off_policy(core::InteractionModel::kModelA);
  const ProxySimResult off = run_proxy_sim(cfg, off_policy);

  TelemetryPlane plane;
  cfg.telemetry = &plane;
  ThresholdPolicy on_policy(core::InteractionModel::kModelA);
  const ProxySimResult on = run_proxy_sim(cfg, on_policy);

  expect_identical(on, off);
  EXPECT_GT(on.requests, 0u);
  // Telemetry actually recorded: rows sampled, spans opened and closed.
  EXPECT_GT(plane.series().size(), 0u);
  EXPECT_GT(plane.spans().opens(), 0u);
  EXPECT_GT(plane.spans().closes(), 0u);
  EXPECT_GT(plane.registry().counter(0), 0u);  // "req.count"
}

TEST(StackDifferential, TraceReplayTelemetryOnMatchesOff) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TraceReplayConfig cfg;
  cfg.bandwidth = 60.0;
  cfg.cache_capacity = 8;
  cfg.governor = "token-50";  // governed leg: gauges cover the governor too

  ThresholdPolicy off_policy(core::InteractionModel::kModelA);
  const ProxySimResult off = run_trace_replay(trace, cfg, off_policy);

  TelemetryPlane plane;
  cfg.telemetry = &plane;
  ThresholdPolicy on_policy(core::InteractionModel::kModelA);
  const ProxySimResult on = run_trace_replay(trace, cfg, on_policy);

  expect_identical(on, off);
  EXPECT_GT(on.requests, 0u);
  EXPECT_GT(plane.series().size(), 0u);
  EXPECT_GT(plane.spans().opens(), 0u);

  AuditReport report;
  plane.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(StackDifferential, ShardedReplayTelemetryOnMatchesOff) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  ShardedReplayConfig cfg;
  cfg.stack.bandwidth = 60.0;
  cfg.stack.cache_capacity = 8;
  cfg.num_shards = 3;
  cfg.num_threads = 1;
  const PolicyFactory factory = [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };

  const ShardedReplayResult off = run_sharded_replay(trace, cfg, factory);

  TelemetryFleet fleet(TelemetryConfig{}, 3);
  cfg.telemetry = &fleet;
  const ShardedReplayResult on = run_sharded_replay(trace, cfg, factory);

  expect_identical(on.merged, off.merged);
  EXPECT_EQ(on.cross_shard_events, off.cross_shard_events);
  EXPECT_EQ(on.backbone.jobs(), off.backbone.jobs());
  EXPECT_GT(on.merged.requests, 0u);
  // Every shard sampled at the epoch barriers; the merged registry carries
  // both the runtime's and the driver's origin-uplink instruments.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(fleet.shard(s).series().size(), 0u) << "shard " << s;
  }
  AuditReport report;
  fleet.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Per-shard load stats reconcile with the fleet totals.
  ASSERT_EQ(on.shard_load.size(), 3u);
  std::uint64_t sent = 0, received = 0;
  for (const auto& load : on.shard_load) {
    EXPECT_GT(load.events_executed, 0u);
    sent += load.mailbox_sent;
    received += load.mailbox_received;
  }
  EXPECT_EQ(sent, on.cross_shard_events);
  EXPECT_EQ(received, on.cross_shard_events);
}

// --- divergence detector on vs off: pure observation, bit-identical ---------

TEST(StackDifferential, TraceReplayDetectorOnMatchesOff) {
  // The detector's purity contract (obs/divergence.hpp): with the abort
  // hook disarmed, a replay with a detector attached is bit-identical to
  // one without — it only reads sealed recorder rows at stream-window
  // boundaries. An overloaded leg (low bandwidth) keeps the trend tests
  // exercised, not just evaluated on quiet gauges.
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  // theta 0.6 keeps the link comfortable; theta 0.02 prefetches nearly
  // everything and swamps it, so the stressed leg drives the trend tests
  // over genuinely elevated gauges.
  for (double theta : {0.6, 0.02}) {
    TraceReplayConfig cfg;
    cfg.bandwidth = 60.0;
    cfg.cache_capacity = 8;
    // Smaller than the trace so several window-boundary evaluations run,
    // not just the final post-drain pass.
    cfg.stream_window = 1024;

    TelemetryPlane off_plane;
    cfg.telemetry = &off_plane;
    FixedThresholdPolicy off_policy(theta);
    const ProxySimResult off = run_trace_replay(trace, cfg, off_policy);

    TelemetryPlane on_plane;
    DivergenceDetector detector;
    cfg.telemetry = &on_plane;
    cfg.divergence = &detector;  // abort_on_divergence stays false
    FixedThresholdPolicy on_policy(theta);
    const ProxySimResult on = run_trace_replay(trace, cfg, on_policy);

    SCOPED_TRACE("theta=" + std::to_string(theta));
    expect_identical(on, off);
    EXPECT_GT(on.requests, 0u);
    // The replay auto-configured and auto-attached the detector, and it
    // actually ran: evaluations at every stream-window boundary plus the
    // final post-drain pass.
    EXPECT_TRUE(detector.configured());
    EXPECT_GT(detector.num_signals(), 0u);
    EXPECT_GT(detector.evaluations(), 1u);
    // Telemetry rows are identical too (same cadence, same gauges).
    ASSERT_EQ(on_plane.series().size(), off_plane.series().size());
    AuditReport report;
    detector.audit(report);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(StackDifferential, ShardedReplayDetectorOnMatchesOff) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  ShardedReplayConfig cfg;
  cfg.stack.bandwidth = 60.0;
  cfg.stack.cache_capacity = 8;
  cfg.num_shards = 2;
  cfg.num_threads = 2;
  const PolicyFactory factory = [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };

  TelemetryFleet off_fleet(TelemetryConfig{}, 2);
  cfg.telemetry = &off_fleet;
  const ShardedReplayResult off = run_sharded_replay(trace, cfg, factory);

  TelemetryFleet on_fleet(TelemetryConfig{}, 2);
  DivergenceDetector detector;
  cfg.telemetry = &on_fleet;
  cfg.divergence = &detector;  // abort_on_divergence stays false
  const ShardedReplayResult on = run_sharded_replay(trace, cfg, factory);

  expect_identical(on.merged, off.merged);
  EXPECT_EQ(on.cross_shard_events, off.cross_shard_events);
  EXPECT_EQ(on.backbone.jobs(), off.backbone.jobs());
  EXPECT_GT(on.merged.requests, 0u);
  // One signal set per shard (fleet verdict = worst shard), evaluated on
  // the driver thread at every epoch barrier.
  EXPECT_TRUE(detector.configured());
  EXPECT_GT(detector.num_signals(), 0u);
  EXPECT_GT(detector.evaluations(), 1u);
  for (std::size_t i = 0; i < detector.num_signals(); ++i) {
    EXPECT_EQ(detector.signal_name(i).rfind("shard", 0), 0u) << i;
  }
  AuditReport report;
  detector.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// --- streamed sources vs in-RAM traces: the out-of-core pipeline ------------

TEST(StackDifferential, TraceReplayStreamedGeneratorMatchesInRam) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TraceReplayConfig cfg;
  cfg.bandwidth = 60.0;
  cfg.cache_capacity = 8;

  ThresholdPolicy ram_policy(core::InteractionModel::kModelA);
  const ProxySimResult ram = run_trace_replay(trace, cfg, ram_policy);

  // Tiny stream window forces many mid-pass run_until() calls — the
  // incremental scheduling must not perturb event order.
  for (std::size_t window : {std::size_t{65536}, std::size_t{7}}) {
    cfg.stream_window = window;
    SyntheticTraceStream stream(trace_cfg);
    ThresholdPolicy stream_policy(core::InteractionModel::kModelA);
    const ProxySimResult streamed = run_trace_replay(stream, cfg, stream_policy);
    SCOPED_TRACE("stream_window=" + std::to_string(window));
    expect_identical(streamed, ram);
    EXPECT_GT(streamed.requests, 0u);
  }
}

TEST(StackDifferential, TraceReplayFileCursorMatchesDecodedInRam) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const std::string path =
      std::string(::testing::TempDir()) + "differential_replay.spt";
  {
    SyntheticTraceStream stream(trace_cfg);
    TraceWriteOptions options;
    options.chunk_records = 512;  // several chunk crossings mid-replay
    write_trace_file(path, stream, options);
  }
  const TraceFile file(path);
  const Trace decoded = file.read_all();

  TraceReplayConfig cfg;
  cfg.bandwidth = 60.0;
  cfg.cache_capacity = 8;

  ThresholdPolicy ram_policy(core::InteractionModel::kModelA);
  const ProxySimResult ram = run_trace_replay(decoded, cfg, ram_policy);

  TraceCursor cursor(file);
  TelemetryPlane plane;  // telemetry on: observation must stay pure here too
  cfg.telemetry = &plane;
  ThresholdPolicy cursor_policy(core::InteractionModel::kModelA);
  const ProxySimResult streamed = run_trace_replay(cursor, cfg, cursor_policy);

  expect_identical(streamed, ram);
  EXPECT_GT(streamed.requests, 0u);
  EXPECT_GT(plane.series().size(), 0u);
  std::remove(path.c_str());
}

TEST(StackDifferential, ShardedReplayStreamedGeneratorMatchesInRam) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  ShardedReplayConfig cfg;
  cfg.stack.bandwidth = 60.0;
  cfg.stack.cache_capacity = 8;
  cfg.num_shards = 3;
  cfg.num_threads = 1;
  const PolicyFactory factory = [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };

  const ShardedReplayResult ram = run_sharded_replay(trace, cfg, factory);

  TelemetryFleet fleet(TelemetryConfig{}, 3);
  cfg.telemetry = &fleet;
  SyntheticTraceStream stream(trace_cfg);
  const ShardedReplayResult streamed = run_sharded_replay(stream, cfg, factory);

  expect_identical(streamed.merged, ram.merged);
  EXPECT_EQ(streamed.cross_shard_events, ram.cross_shard_events);
  EXPECT_EQ(streamed.backbone.jobs(), ram.backbone.jobs());
  ASSERT_EQ(streamed.per_shard.size(), ram.per_shard.size());
  for (std::size_t s = 0; s < ram.per_shard.size(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(streamed.per_shard[s], ram.per_shard[s]);
  }
  EXPECT_GT(streamed.merged.requests, 0u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(fleet.shard(s).series().size(), 0u) << "shard " << s;
  }
}

TEST(StackDifferential, ShardedReplayFileCursorMatchesDecodedInRam) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const std::string path =
      std::string(::testing::TempDir()) + "differential_sharded.spt";
  {
    SyntheticTraceStream stream(trace_cfg);
    TraceWriteOptions options;
    options.chunk_records = 512;
    write_trace_file(path, stream, options);
  }
  const TraceFile file(path);
  const Trace decoded = file.read_all();

  ShardedReplayConfig cfg;
  cfg.stack.bandwidth = 60.0;
  cfg.stack.cache_capacity = 8;
  cfg.num_shards = 3;
  cfg.num_threads = 1;
  const PolicyFactory factory = [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };

  const ShardedReplayResult ram = run_sharded_replay(decoded, cfg, factory);

  TraceCursor cursor(file);
  const ShardedReplayResult streamed = run_sharded_replay(cursor, cfg, factory);

  expect_identical(streamed.merged, ram.merged);
  EXPECT_EQ(streamed.cross_shard_events, ram.cross_shard_events);
  EXPECT_EQ(streamed.backbone.jobs(), ram.backbone.jobs());
  EXPECT_GT(streamed.merged.requests, 0u);
  std::remove(path.c_str());
}

TEST(StackDifferential, TraceReplayFlatMatchesTree) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 500;
  trace_cfg.num_requests = 5000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 21;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TraceReplayConfig cfg;
  cfg.bandwidth = 60.0;
  cfg.cache_capacity = 8;

  cfg.use_tree_inflight = false;
  ThresholdPolicy flat_policy(core::InteractionModel::kModelA);
  const ProxySimResult flat = run_trace_replay(trace, cfg, flat_policy);

  cfg.use_tree_inflight = true;
  ThresholdPolicy tree_policy(core::InteractionModel::kModelA);
  const ProxySimResult tree = run_trace_replay(trace, cfg, tree_policy);

  expect_identical(flat, tree);
  EXPECT_GT(flat.requests, 0u);
}

}  // namespace
}  // namespace specpf
