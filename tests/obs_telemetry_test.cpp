// Telemetry-plane unit tests: registry registration/merge semantics, the
// recorder's ring wraparound + keep-every-2nd downsampling, span tracer
// open/close pairing (including stale closes and ring overwrites), plane
// seal/sampling mechanics, and structural well-formedness of the Chrome
// trace-event JSON and time-series CSV exports.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"

namespace specpf {
namespace {

// --- registry ---------------------------------------------------------------

TEST(TelemetryRegistry, RegisterAddAndRead) {
  TelemetryRegistry reg;
  const auto c0 = reg.register_counter("req.count");
  const auto c1 = reg.register_counter("req.hit");
  const auto g0 = reg.register_gauge("link.queue_depth");
  EXPECT_EQ(reg.counter_count(), 2u);
  EXPECT_EQ(reg.gauge_count(), 1u);

  reg.add(c0);
  reg.add(c0, 41);
  reg.add(c1);
  reg.set_gauge(g0, 3.5);
  EXPECT_EQ(reg.counter(c0), 42u);
  EXPECT_EQ(reg.counter(c1), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge(g0), 3.5);
  EXPECT_EQ(reg.counter_name(c0), "req.count");
  EXPECT_EQ(reg.gauge_name(g0), "link.queue_depth");
}

TEST(TelemetryRegistry, MergeSumsCountersByNameAndMaxesGauges) {
  // Shard 0: the full instrument set. Shard 1: a userless shard carrying
  // only origin gauges plus one counter shard 0 also has — the exact shape
  // the sharded driver produces.
  TelemetryRegistry a;
  const auto a_req = a.register_counter("req.count");
  const auto a_q = a.register_gauge("link.queue_depth");
  a.add(a_req, 10);
  a.set_gauge(a_q, 2.0);

  TelemetryRegistry b;
  const auto b_oq = b.register_gauge("origin.queue_depth");
  const auto b_req = b.register_counter("req.count");
  b.add(b_req, 5);
  b.set_gauge(b_oq, 7.0);

  TelemetryRegistry merged;
  merged.merge(a);
  merged.merge(b);
  // Canonical order: shard 0's names first, then shard 1's unseen names.
  EXPECT_EQ(merged.counter_count(), 1u);
  EXPECT_EQ(merged.counter_name(0), "req.count");
  EXPECT_EQ(merged.counter(0), 15u);
  ASSERT_EQ(merged.gauge_count(), 2u);
  EXPECT_EQ(merged.gauge_name(0), "link.queue_depth");
  EXPECT_EQ(merged.gauge_name(1), "origin.queue_depth");
  EXPECT_DOUBLE_EQ(merged.gauge(0), 2.0);
  EXPECT_DOUBLE_EQ(merged.gauge(1), 7.0);

  // Merging in the opposite order flips the union order — which is why the
  // fleet always merges in shard order.
  TelemetryRegistry reversed;
  reversed.merge(b);
  reversed.merge(a);
  EXPECT_EQ(reversed.gauge_name(0), "origin.queue_depth");
  EXPECT_EQ(reversed.counter(0), 15u);
}

// --- recorder ---------------------------------------------------------------

TEST(TimeSeriesRecorder, RecordsUntilCapacityThenDownsamples) {
  TimeSeriesRecorder rec;
  rec.configure(/*num_gauges=*/1, /*capacity=*/8, /*interval=*/1.0);
  std::vector<double> row(1);
  for (int i = 0; i < 8; ++i) {
    row[0] = static_cast<double>(i);
    rec.record(static_cast<double>(i), row);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.downsamples(), 0u);
  EXPECT_DOUBLE_EQ(rec.interval(), 1.0);

  // The 9th row forces a keep-every-2nd pass: rows {0,2,4,6} survive, the
  // new row lands after them, and the cadence doubles.
  row[0] = 8.0;
  rec.record(8.0, row);
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.downsamples(), 1u);
  EXPECT_DOUBLE_EQ(rec.interval(), 2.0);
  const double expect_times[] = {0.0, 2.0, 4.0, 6.0, 8.0};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(rec.time(i), expect_times[i]) << "row " << i;
    EXPECT_DOUBLE_EQ(rec.value(i, 0), expect_times[i]) << "row " << i;
  }
  EXPECT_EQ(rec.recorded(), 9u);

  // A long run keeps folding: the row count never exceeds capacity and the
  // timestamps stay monotone through every wraparound.
  for (int i = 9; i < 1000; ++i) {
    row[0] = static_cast<double>(i);
    rec.record(static_cast<double>(i), row);
  }
  EXPECT_LE(rec.size(), 8u);
  EXPECT_GT(rec.downsamples(), 1u);
  for (std::size_t i = 1; i < rec.size(); ++i) {
    EXPECT_LT(rec.time(i - 1), rec.time(i));
  }
  AuditReport report;
  rec.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// --- span tracer ------------------------------------------------------------

TEST(SpanTracer, OpenClosePairingAndKindMetadata) {
  SpanTracer spans;
  spans.configure(16);
  ASSERT_TRUE(spans.enabled());

  const auto ref = spans.open(SpanTracer::SpanKind::kDemandFetch, 1.0, 7, 42);
  ASSERT_TRUE(ref.valid());
  EXPECT_EQ(spans.opens(), 1u);
  EXPECT_EQ(spans.closes(), 0u);
  spans.close(ref, 2.5);
  EXPECT_EQ(spans.closes(), 1u);

  spans.complete(SpanTracer::SpanKind::kInflightWait, 3.0, 3.25, 8, 43);
  EXPECT_EQ(spans.opens(), 2u);
  EXPECT_EQ(spans.closes(), 2u);

  int seen = 0;
  spans.for_each_closed([&](const SpanTracer::SpanRecord& rec) {
    ++seen;
    EXPECT_GE(rec.t_end, rec.t_start);
  });
  EXPECT_EQ(seen, 2);

  EXPECT_STREQ(SpanTracer::kind_name(SpanTracer::SpanKind::kPrefetchFetch),
               "prefetch_fetch");
  EXPECT_EQ(SpanTracer::kind_track(SpanTracer::SpanKind::kPrefetchFetch), 1u);
  EXPECT_EQ(SpanTracer::kind_track(SpanTracer::SpanKind::kDemandWait), 2u);
}

TEST(SpanTracer, StaleCloseAfterRingWraparoundIsCountedNoOp) {
  SpanTracer spans;
  spans.configure(4);
  const auto early = spans.open(SpanTracer::SpanKind::kDemandFetch, 0.0, 1, 1);
  // Wrap the ring: the early span's slot is recycled while still open, so
  // it is counted overwritten and its ref goes stale.
  for (int i = 0; i < 4; ++i) {
    spans.complete(SpanTracer::SpanKind::kPrefetchFetch, 1.0 + i, 1.5 + i, 2,
                   10 + i);
  }
  EXPECT_EQ(spans.overwritten(), 1u);

  spans.close(early, 9.0);  // must not scribble over the newer span
  EXPECT_EQ(spans.stale_closes(), 1u);
  spans.for_each_closed([&](const SpanTracer::SpanRecord& rec) {
    EXPECT_EQ(static_cast<SpanTracer::SpanKind>(rec.kind),
              SpanTracer::SpanKind::kPrefetchFetch);
  });
  AuditReport report;
  spans.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SpanTracer, ZeroCapacityDisablesTracing) {
  SpanTracer spans;
  spans.configure(0);
  EXPECT_FALSE(spans.enabled());
  const auto ref = spans.open(SpanTracer::SpanKind::kDemandFetch, 0.0, 1, 1);
  EXPECT_FALSE(ref.valid());
  spans.close(ref, 1.0);
  EXPECT_EQ(spans.opens(), 0u);
  EXPECT_EQ(spans.stale_closes(), 0u);
}

// --- plane ------------------------------------------------------------------

TEST(TelemetryPlane, SealThenSampleOnCadence) {
  TelemetryConfig cfg;
  cfg.sample_interval = 1.0;
  TelemetryPlane plane(cfg);
  const auto g = plane.registry().register_gauge("g");
  int refreshes = 0;
  plane.set_gauge_source([&refreshes, g](TelemetryRegistry& reg) {
    ++refreshes;
    reg.set_gauge(g, static_cast<double>(refreshes));
  });
  plane.seal();
  ASSERT_TRUE(plane.sealed());

  plane.maybe_sample(0.0);  // due immediately (next_sample_ starts at 0)
  EXPECT_EQ(plane.series().size(), 1u);
  plane.maybe_sample(0.5);  // not due
  EXPECT_EQ(plane.series().size(), 1u);
  plane.maybe_sample(1.0);  // due
  plane.sample_now(1.25);   // forced (epoch barrier)
  EXPECT_EQ(plane.series().size(), 3u);
  EXPECT_EQ(refreshes, 3);
  EXPECT_DOUBLE_EQ(plane.series().value(2, g), 3.0);

  AuditReport report;
  plane.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// --- export -----------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal JSON well-formedness scan: brackets/braces balance outside
/// strings and no dangling comma precedes a closer. Not a full parser, but
/// it catches every comma/nesting bug an emitter can make.
void expect_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  char last_significant = '\0';
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        last_significant = '"';
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      EXPECT_NE(last_significant, ',') << "dangling comma before closer";
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced closer";
    }
    if (!std::isspace(static_cast<unsigned char>(c))) last_significant = c;
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced brackets";
}

/// A small governed replay recording into `plane` — the export fixture.
void run_replay_with_telemetry(TelemetryPlane& plane) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 200;
  trace_cfg.num_requests = 2000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 60;
  trace_cfg.seed = 17;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TraceReplayConfig cfg;
  cfg.bandwidth = 60.0;
  cfg.cache_capacity = 8;
  cfg.governor = "token-50";
  cfg.telemetry = &plane;
  ThresholdPolicy policy(core::InteractionModel::kModelA);
  const ProxySimResult result = run_trace_replay(trace, cfg, policy);
  EXPECT_GT(result.requests, 0u);
}

TEST(TraceExport, ChromeTraceIsStructurallyWellFormed) {
  TelemetryPlane plane;
  run_replay_with_telemetry(plane);
  ASSERT_GT(plane.series().size(), 0u);
  ASSERT_GT(plane.spans().closes(), 0u);

  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(write_chrome_trace(path, plane));
  const std::string text = slurp(path);
  std::remove(path.c_str());

  ASSERT_FALSE(text.empty());
  expect_balanced_json(text);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  // All three event classes present: metadata, complete spans, counters.
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  // Track naming and instruments exported by name.
  EXPECT_NE(text.find("\"link\""), std::string::npos);
  EXPECT_NE(text.find("\"waits\""), std::string::npos);
  EXPECT_NE(text.find("link.queue_depth"), std::string::npos);
}

TEST(TraceExport, TimeseriesCsvHasHeaderAndRows) {
  TelemetryPlane plane;
  run_replay_with_telemetry(plane);

  const std::string path = "obs_test_series.csv";
  ASSERT_TRUE(write_timeseries_csv(path, plane));
  const std::string text = slurp(path);
  std::remove(path.c_str());

  std::stringstream lines(text);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("shard,time,", 0), 0u) << header;
  EXPECT_NE(header.find("link.queue_depth"), std::string::npos);
  // Units metadata row directly under the header, one cell per column.
  std::string units;
  ASSERT_TRUE(std::getline(lines, units));
  EXPECT_EQ(units.rfind("#units,s,", 0), 0u) << units;
  EXPECT_EQ(std::count(units.begin(), units.end(), ','),
            std::count(header.begin(), header.end(), ','));
  std::size_t rows = 0;
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, plane.series().size());
}

TEST(TraceExport, FleetExportCoversEveryShard) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 300;
  trace_cfg.num_requests = 3000;
  trace_cfg.request_rate = 50.0;
  trace_cfg.graph.num_pages = 80;
  trace_cfg.seed = 33;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TelemetryFleet fleet(TelemetryConfig{}, 3);
  ShardedReplayConfig cfg;
  cfg.stack.bandwidth = 60.0;
  cfg.stack.cache_capacity = 8;
  cfg.num_shards = 3;
  cfg.num_threads = 1;
  cfg.telemetry = &fleet;
  const PolicyFactory factory = [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };
  const ShardedReplayResult r = run_sharded_replay(trace, cfg, factory);
  EXPECT_GT(r.merged.requests, 0u);

  const std::string path = "obs_test_fleet.json";
  ASSERT_TRUE(write_chrome_trace(path, fleet));
  const std::string text = slurp(path);
  std::remove(path.c_str());
  expect_balanced_json(text);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NE(text.find("\"shard " + std::to_string(s) + "\""),
              std::string::npos)
        << "shard " << s << " missing from trace";
  }
  // The driver's origin-uplink gauges ride along with the runtime's.
  EXPECT_NE(text.find("origin.queue_depth"), std::string::npos);

  const std::string csv_path = "obs_test_fleet.csv";
  ASSERT_TRUE(write_timeseries_csv(csv_path, fleet));
  const std::string csv = slurp(csv_path);
  std::remove(csv_path.c_str());
  std::stringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("origin.queue_depth"), std::string::npos);
  std::string units;
  ASSERT_TRUE(std::getline(lines, units));
  EXPECT_EQ(units.rfind("#units,s,", 0), 0u) << units;
  std::size_t rows = 0;
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, fleet.shard(0).series().size() +
                      fleet.shard(1).series().size() +
                      fleet.shard(2).series().size());
}

}  // namespace
}  // namespace specpf
