#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {
namespace {

constexpr int kSamples = 200000;

double sample_mean(const Distribution& dist, std::uint64_t seed,
                   int n = kSamples) {
  Rng rng(seed);
  KahanSum sum;
  for (int i = 0; i < n; ++i) sum.add(dist.sample(rng));
  return sum.value() / n;
}

TEST(DeterministicDist, AlwaysReturnsValue) {
  DeterministicDist dist(3.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(dist.mean(), 3.5);
}

TEST(DeterministicDist, RejectsNegative) {
  EXPECT_THROW(DeterministicDist(-1.0), ContractViolation);
}

TEST(ExponentialDist, MeanMatches) {
  ExponentialDist dist(2.5);
  EXPECT_NEAR(sample_mean(dist, 3), 2.5, 0.03);
}

TEST(ExponentialDist, VarianceIsMeanSquared) {
  ExponentialDist dist(2.0);
  Rng rng(5);
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = dist.sample(rng);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sumsq / kSamples - mean * mean;
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(ExponentialDist, RejectsNonPositiveMean) {
  EXPECT_THROW(ExponentialDist(0.0), ContractViolation);
  EXPECT_THROW(ExponentialDist(-1.0), ContractViolation);
}

TEST(UniformDist, MeanAndBounds) {
  UniformDist dist(2.0, 6.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
  }
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_NEAR(sample_mean(dist, 9), 4.0, 0.02);
}

TEST(BoundedParetoDist, SamplesWithinBounds) {
  BoundedParetoDist dist(1.2, 1.0, 1000.0);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(BoundedParetoDist, EmpiricalMeanMatchesAnalytic) {
  BoundedParetoDist dist(1.5, 1.0, 100.0);
  EXPECT_NEAR(sample_mean(dist, 13, 500000) / dist.mean(), 1.0, 0.02);
}

TEST(BoundedParetoDist, ShapeOneSpecialCase) {
  BoundedParetoDist dist(1.0, 1.0, 10.0);
  // E[X] for bounded Pareto α=1 on [1,10]: ln(10)/(1 - 1/10) ≈ 2.5584.
  EXPECT_NEAR(dist.mean(), std::log(10.0) / 0.9, 1e-9);
  EXPECT_NEAR(sample_mean(dist, 17, 500000) / dist.mean(), 1.0, 0.02);
}

TEST(LogNormalDist, MeanMatchesFormula) {
  LogNormalDist dist(0.5, 0.75);
  EXPECT_DOUBLE_EQ(dist.mean(), std::exp(0.5 + 0.5 * 0.75 * 0.75));
  EXPECT_NEAR(sample_mean(dist, 19, 500000) / dist.mean(), 1.0, 0.02);
}

// --- Zipf ---

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, PmfSumsToOne) {
  const double alpha = GetParam();
  ZipfDist zipf(500, alpha);
  double total = 0.0;
  for (std::size_t i = 0; i < 500; ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfTest, PmfIsDecreasingInRank) {
  ZipfDist zipf(100, GetParam());
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_GT(zipf.pmf(i - 1), zipf.pmf(i));
  }
}

TEST_P(ZipfTest, SamplingMatchesPmf) {
  const double alpha = GetParam();
  constexpr std::size_t kN = 50;
  ZipfDist zipf(kN, alpha);
  Rng rng(23);
  std::vector<int> counts(kN, 0);
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t rank : {0ULL, 1ULL, 5ULL, 20ULL}) {
    const double expected = zipf.pmf(rank);
    const double observed = static_cast<double>(counts[rank]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01 + expected * 0.05)
        << "alpha=" << alpha << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(ZipfDist, SingleItemAlwaysRankZero) {
  ZipfDist zipf(1, 0.9);
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 1.0);
}

TEST(ZipfDist, LargeCatalogSamplesInRange) {
  ZipfDist zipf(10'000'000, 0.99);
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(zipf.sample(rng), 10'000'000u);
}

TEST(ZipfDist, RejectsBadParameters) {
  EXPECT_THROW(ZipfDist(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfDist(10, 0.0), ContractViolation);
  EXPECT_THROW(ZipfDist(10, -1.0), ContractViolation);
}

// --- Discrete / alias method ---

TEST(DiscreteDist, MatchesWeights) {
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  DiscreteDist dist(weights);
  Rng rng(37);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) ++counts[dist.sample(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, weights[i] / 10.0,
                0.005);
  }
}

TEST(DiscreteDist, PmfNormalised) {
  DiscreteDist dist(std::vector<double>{5.0, 0.0, 5.0});
  EXPECT_DOUBLE_EQ(dist.pmf(0), 0.5);
  EXPECT_DOUBLE_EQ(dist.pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(dist.pmf(2), 0.5);
}

TEST(DiscreteDist, ZeroWeightNeverSampled) {
  DiscreteDist dist(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(41);
  for (int i = 0; i < 100000; ++i) ASSERT_NE(dist.sample(rng), 1u);
}

TEST(DiscreteDist, SingleOutcome) {
  DiscreteDist dist(std::vector<double>{3.0});
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 0u);
}

TEST(DiscreteDist, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteDist(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(DiscreteDist(std::vector<double>{0.0, 0.0}), ContractViolation);
  EXPECT_THROW(DiscreteDist(std::vector<double>{1.0, -1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace specpf
