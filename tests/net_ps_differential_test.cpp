// Differential test for the virtual-time PS server: an independent, naive
// O(n²) processor-sharing simulator (advance all remaining works between
// events) must produce identical completion times on random workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "des/simulator.hpp"
#include "net/ps_server.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

struct Arrival {
  double time;
  double size;
};

/// Reference PS: event-by-event remaining-work bookkeeping, no virtual time.
std::vector<double> naive_ps_completions(const std::vector<Arrival>& arrivals,
                                         double bandwidth) {
  struct Job {
    double remaining;
    std::size_t index;
  };
  std::vector<double> completions(arrivals.size(), -1.0);
  std::vector<Job> active;
  double now = 0.0;
  std::size_t next_arrival = 0;

  while (next_arrival < arrivals.size() || !active.empty()) {
    // Next completion among active jobs at current sharing rate.
    double next_completion = std::numeric_limits<double>::infinity();
    if (!active.empty()) {
      const double rate = bandwidth / static_cast<double>(active.size());
      double min_remaining = std::numeric_limits<double>::infinity();
      for (const Job& j : active) {
        min_remaining = std::min(min_remaining, j.remaining);
      }
      next_completion = now + min_remaining / rate;
    }
    const double next_arrival_time =
        next_arrival < arrivals.size()
            ? arrivals[next_arrival].time
            : std::numeric_limits<double>::infinity();

    if (next_arrival_time <= next_completion) {
      // Advance work to the arrival instant, then admit.
      if (!active.empty()) {
        const double rate = bandwidth / static_cast<double>(active.size());
        for (Job& j : active) j.remaining -= rate * (next_arrival_time - now);
      }
      now = next_arrival_time;
      active.push_back(Job{arrivals[next_arrival].size, next_arrival});
      ++next_arrival;
    } else {
      const double rate = bandwidth / static_cast<double>(active.size());
      for (Job& j : active) j.remaining -= rate * (next_completion - now);
      now = next_completion;
      // Retire every job whose remaining work hit zero (ties complete
      // together, matching the egalitarian server).
      for (auto it = active.begin(); it != active.end();) {
        if (it->remaining <= 1e-9 * bandwidth) {
          completions[it->index] = now;
          it = active.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return completions;
}

std::vector<double> server_ps_completions(const std::vector<Arrival>& arrivals,
                                          double bandwidth) {
  Simulator sim;
  PsServer server(sim, bandwidth);
  std::vector<double> completions(arrivals.size(), -1.0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    sim.schedule_at(arrivals[i].time, [&, i] {
      server.submit(arrivals[i].size, [&completions, i](const TransferResult& r) {
        completions[i] = r.finish_time;
      });
    });
  }
  sim.run();
  return completions;
}

class PsDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsDifferential, MatchesNaiveReferenceOnRandomWorkload) {
  Rng rng(GetParam());
  const double bandwidth = 1.0 + rng.next_double() * 9.0;
  std::vector<Arrival> arrivals;
  double t = 0.0;
  const std::size_t n = 200 + rng.next_below(300);
  for (std::size_t i = 0; i < n; ++i) {
    t += -0.2 * std::log1p(-rng.next_double());
    arrivals.push_back({t, 0.01 + rng.next_double() * 3.0});
  }
  const auto expected = naive_ps_completions(arrivals, bandwidth);
  const auto actual = server_ps_completions(arrivals, bandwidth);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_GT(actual[i], 0.0) << "job " << i << " never completed";
    EXPECT_NEAR(actual[i], expected[i], 1e-6)
        << "job " << i << " of " << n << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(PsDifferential, SimultaneousArrivalsAndEqualSizes) {
  // Adversarial ties: equal sizes arriving at identical instants.
  std::vector<Arrival> arrivals;
  for (int batch = 0; batch < 5; ++batch) {
    for (int j = 0; j < 4; ++j) {
      arrivals.push_back({batch * 0.5, 1.0});
    }
  }
  const auto expected = naive_ps_completions(arrivals, 4.0);
  const auto actual = server_ps_completions(arrivals, 4.0);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-6) << i;
  }
}

TEST(PsDifferential, ExtremeSizeContrast) {
  // A giant job with a stream of tiny ones riding through it.
  std::vector<Arrival> arrivals{{0.0, 100.0}};
  for (int i = 1; i <= 50; ++i) {
    arrivals.push_back({static_cast<double>(i) * 0.1, 0.01});
  }
  const auto expected = naive_ps_completions(arrivals, 2.0);
  const auto actual = server_ps_completions(arrivals, 2.0);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5) << i;
  }
}

}  // namespace
}  // namespace specpf
