// Audit-layer tests: clean structures sweep clean, corrupted structures get
// caught. The corruption half works through AuditPeer (declared in
// util/audit.hpp, defined only here, friend of every auditable structure):
// each test builds a healthy structure, verifies audit() reports nothing,
// injects exactly the defect class the walker exists to catch — a stale
// generation or scribbled freed slot in the engine slab, a broken intrusive
// chain or desynced residency entry in the cache arenas, a free-list cycle,
// successor-total drift in the context arena, metadata corruption in the
// robin-hood tables, a demand-count desync in the stack — and asserts the
// sweep fails with a message naming the defect.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache_arena.hpp"
#include "cache/cache_plane.hpp"
#include "cache/factory.hpp"
#include "des/simulator.hpp"
#include "obs/divergence.hpp"
#include "obs/telemetry.hpp"
#include "policy/policies.hpp"
#include "predict/context_arena.hpp"
#include "predict/factory.hpp"
#include "predict/predictor_plane.hpp"
#include "sim/stack_runtime.hpp"
#include "util/audit.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

/// Test-only invariant breaker. Every auditable class befriends this
/// struct; the library never defines it, so these mutators are the only
/// code that can reach into the slabs from outside.
struct AuditPeer {
  // --- cache arenas (intrusive-list slab) ---------------------------------
  static void break_chain(arena::ListArenaBase& a, std::uint32_t user) {
    // The chain head's prev must be kNull; pointing it anywhere else is the
    // signature of a botched unlink/splice.
    a.nodes_[a.users_[user].head].prev = 7;
  }
  static void desync_residency(arena::ListArenaBase& a, std::uint32_t user,
                               ItemId item) {
    // Redirect one residency entry at the wrong slab node.
    a.map_[arena::residency_key(user, item)] = a.users_[user].head;
  }
  static void cycle_free_list(arena::ListArenaBase& a) {
    // Two fabricated slab nodes linked into a 2-cycle at the free head.
    const auto n1 = static_cast<arena::NodeIndex>(a.nodes_.size());
    a.nodes_.emplace_back();
    const auto n2 = static_cast<arena::NodeIndex>(a.nodes_.size());
    a.nodes_.emplace_back();
    a.nodes_[n1].next = n2;
    a.nodes_[n2].next = n1;
    a.free_ = n1;
  }

  // --- context arena ------------------------------------------------------
  static void drift_successor_total(ContextArena& a, ContextArena::CtxId c) {
    ++a.total_[c];  // context total no longer equals the successor-count sum
  }
  static void orphan_successor(ContextArena& a, ContextArena::CtxId c) {
    a.head_[c] = ContextArena::kNoSucc;  // leak the whole successor chain
  }

  // --- flat hash tables ---------------------------------------------------
  static void corrupt_meta(FlatHashMap<std::uint32_t>& m) {
    for (std::size_t i = 0; i < m.capacity_; ++i) {
      if (m.meta_[i] != 0) {
        ++m.meta_[i];  // stored probe distance no longer matches the key
        return;
      }
    }
  }

  // --- DES engine slab ----------------------------------------------------
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static std::uint32_t freed_tracked_slot(const Simulator& s) {
    for (std::uint32_t slot = s.free_head_; slot != kNoSlot;
         slot = s.node_at(slot).next_free) {
      if (slot < s.poisoned_.size() && s.poisoned_[slot]) return slot;
    }
    return kNoSlot;
  }
  static void rollback_generation(Simulator& s, std::uint32_t slot) {
    --s.node_at(slot).generation;  // forge a reusable stale handle
  }
  static void scribble_freed_slot(Simulator& s, std::uint32_t slot) {
    // A write through a stale handle lands in freed storage: simulate the
    // scribble by repainting the poison fill.
    s.node_at(slot).action.poison_storage(0xAB);
  }
  static void cycle_engine_free_list(Simulator& s) {
    s.node_at(s.free_head_).next_free = s.free_head_;
  }
  static void desync_tombstone_count(Simulator& s) { ++s.dead_in_heap_; }
  static bool break_pending_order(Simulator& s) {
    if (s.sorted_run_.size() >= 2) {
      std::swap(s.sorted_run_.front(), s.sorted_run_.back());
      return true;
    }
    if (s.heapified_ > Simulator::kHeapBase + 1) {
      s.heap_[Simulator::kHeapBase].time += 1e9;
      return true;
    }
    return false;
  }

  // --- stack runtime ------------------------------------------------------
  static void desync_demand_count(StackRuntime& rt) {
    ++rt.demand_inflight_[0];
  }
  static void drift_estimate_sum(StackRuntime& rt) {
    rt.estimate_sum_ += 0.5;
  }

  // --- telemetry plane ----------------------------------------------------
  static void reverse_recorder_timestamps(TimeSeriesRecorder& r) {
    // A row stamped before its predecessor: the signature of a sample taken
    // outside the engine's time order.
    r.times_[1] = r.times_[0] - 1.0;
  }
  static void unbalance_span_counters(SpanTracer& t) {
    ++t.closes_;  // closes no longer reconcile with opens/overwrites
  }
  static void desync_registry_names(TelemetryRegistry& r) {
    r.counter_names_.pop_back();  // slot with no name
  }

  // --- divergence detector ------------------------------------------------
  static void advance_detector_cursor(DivergenceDetector& d) {
    // A staleness cursor ahead of its recorder means evaluate() would skip
    // rows that were never seen — the signature of a recorder swap or a
    // torn read of recorded().
    d.signals_[0].last_recorded = d.signals_[0].series->recorded() + 5;
  }
  static void latch_without_onset(DivergenceDetector& d) {
    // A divergent latch with no onset estimate: the latch path always
    // records one, so this state can only come from memory corruption.
    d.signals_[0].diverged = true;
    d.signals_[0].onset = -1.0;
  }
};

namespace {

/// Deterministic LCG so the sweeps need no <random> plumbing.
struct TinyRng {
  std::uint64_t s;
  std::uint64_t next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>((next() >> 33) % n);
  }
};

void expect_failure_containing(const AuditReport& report,
                               const std::string& needle) {
  EXPECT_FALSE(report.ok()) << "corruption was not detected";
  const auto& fails = report.failures();
  const bool found = std::any_of(
      fails.begin(), fails.end(), [&](const std::string& f) {
        return f.find(needle) != std::string::npos;
      });
  EXPECT_TRUE(found) << "no failure mentions '" << needle
                     << "'; got:\n" << report.summary();
}

// ---------------------------------------------------------------------------
// Clean sweeps: healthy structures audit clean in every configuration.
// ---------------------------------------------------------------------------

TEST(AuditClean, CachePlanesAllKindsBothArenaVariants) {
  for (int k = 0; k < kNumCacheKinds; ++k) {
    // capacity 4 selects the small (inline-residency) arenas, 48 the
    // slab + FlatIndexMap arenas; both variants of every policy.
    for (std::size_t capacity : {std::size_t{4}, std::size_t{48}}) {
      CachePlaneConfig cfg;
      cfg.num_users = 16;
      cfg.capacity = capacity;
      cfg.seed = 20010803;
      auto plane =
          make_cache_plane(static_cast<CacheKind>(k), cfg, /*use_legacy=*/false);
      TinyRng rng{0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k)};
      for (int op = 0; op < 4000; ++op) {
        const std::uint32_t user = rng.below(16);
        const ItemId item = rng.below(120);
        plane->access(user, item);
        switch (rng.below(3)) {
          case 0: plane->admit_demand(user, item); break;
          case 1: plane->admit_prefetch(user, item); break;
          default: plane->admit_prefetch_accessed(user, item); break;
        }
      }
      AuditReport report;
      plane->audit(report);
      EXPECT_TRUE(report.ok())
          << "kind " << k << " capacity " << capacity << ": "
          << report.summary();
      EXPECT_GT(report.checks(), 20u);
    }
  }
}

TEST(AuditClean, LegacyCachePlaneCountersOnly) {
  CachePlaneConfig cfg;
  cfg.num_users = 4;
  cfg.capacity = 8;
  auto plane = make_cache_plane(CacheKind::kLru, cfg, /*use_legacy=*/true);
  for (int op = 0; op < 200; ++op) {
    plane->access(op % 4, static_cast<ItemId>(op % 20));
    plane->admit_demand(op % 4, static_cast<ItemId>(op % 20));
  }
  AuditReport report;
  plane->audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(AuditClean, PredictorPlanesAllArenaKinds) {
  for (PredictorKind kind : {PredictorKind::kMarkov, PredictorKind::kPpm,
                             PredictorKind::kDependencyGraph,
                             PredictorKind::kFrequency}) {
    PredictorPlaneConfig cfg;
    cfg.num_users = 8;
    auto plane = make_predictor_plane(kind, cfg, /*use_legacy=*/false);
    TinyRng rng{42};
    std::vector<core::Candidate> scratch;
    for (int op = 0; op < 3000; ++op) {
      const UserId user = rng.below(8);
      // Sessions with repeated short motifs so contexts accumulate real
      // successor mass (plus noise so interning keeps growing).
      const std::uint64_t item =
          (op % 5 == 0) ? rng.below(200) : (op % 7);
      plane->observe(user, item);
      if (op % 17 == 0) plane->predict_into(user, 4, scratch);
    }
    AuditReport report;
    plane->audit(report);
    EXPECT_TRUE(report.ok()) << predictor_kind_name(kind) << ": "
                             << report.summary();
  }
}

TEST(AuditClean, EngineScheduleCancelRunSweepsClean) {
  Simulator sim;
  sim.enable_audit_mode();
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(sim.schedule_at(0.01 * (i + 1), [&fired] { ++fired; }));
  }
  for (int i = 0; i < 500; i += 3) sim.cancel(ids[i]);
  sim.run_until(2.0);  // executes ~2/5 of the live events
  for (int i = 0; i < 40; ++i) {
    sim.schedule_in(0.5 + 0.01 * i, [&fired] { ++fired; });
  }
  AuditReport report;
  sim.audit(report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks(), 500u);
  sim.run();
  AuditReport drained;
  sim.audit(drained);
  EXPECT_TRUE(drained.ok()) << drained.summary();
  EXPECT_GT(fired, 0);
}

TEST(AuditClean, StackRuntimeEndToEnd) {
  Simulator sim;
  PredictorPlaneConfig pcfg;
  pcfg.num_users = 6;
  auto predictor =
      make_predictor_plane(PredictorKind::kMarkov, pcfg, /*use_legacy=*/false);
  FixedThresholdPolicy policy(0.05);
  StackRuntimeConfig cfg;
  cfg.num_users = 6;
  cfg.cache_capacity = 8;
  cfg.bandwidth = 50.0;
  StackRuntime runtime(sim, *predictor, policy, std::move(cfg));
  TinyRng rng{7};
  for (int i = 0; i < 300; ++i) {
    const UserId user = rng.below(6);
    const ItemId item = (i % 4 == 0) ? rng.below(64) : (i % 9);
    sim.schedule_at(0.05 * (i + 1),
                    [&runtime, user, item] { runtime.handle_request(user, item); });
  }
  sim.schedule_at(5.0, [&runtime] { runtime.begin_measurement(); });
  // Mid-run sweep with transfers genuinely in flight.
  AuditReport midrun;
  sim.schedule_at(9.0, [&runtime, &midrun] { runtime.audit(midrun); });
  sim.run();
  EXPECT_TRUE(midrun.ok()) << midrun.summary();
  EXPECT_GT(midrun.checks(), 50u);
  AuditReport drained;
  runtime.audit(drained);
  EXPECT_TRUE(drained.ok()) << drained.summary();
}

// ---------------------------------------------------------------------------
// Corruption injection: every defect class the walkers exist for.
// ---------------------------------------------------------------------------

/// LRU arena with enough traffic that user 0 has a full chain.
arena::LruArena seeded_lru() {
  arena::LruArena a(/*num_users=*/4, /*capacity=*/6, /*seed=*/1);
  for (std::uint32_t user = 0; user < 4; ++user) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      a.insert(user, /*item=*/user * 100 + i, arena::EntryTag::kTagged,
               [](ItemId, arena::EntryTag) {});
    }
  }
  return a;
}

TEST(AuditInjection, CacheArenaBrokenIntrusiveChain) {
  arena::LruArena a = seeded_lru();
  AuditReport clean;
  a.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::break_chain(a, 0);
  AuditReport report;
  a.audit(report);
  expect_failure_containing(report, "broken prev link");
}

TEST(AuditInjection, CacheArenaResidencyDesync) {
  arena::LruArena a = seeded_lru();
  // Remap the residency entry of an item user 0 still caches (items 4..9
  // survive with capacity 6; the chain head is item 9, so desync item 5).
  AuditPeer::desync_residency(a, 0, 5);
  AuditReport report;
  a.audit(report);
  expect_failure_containing(report, "residency index");
}

TEST(AuditInjection, CacheArenaFreeListCycle) {
  arena::LruArena a = seeded_lru();
  AuditPeer::cycle_free_list(a);
  AuditReport report;
  a.audit(report);
  expect_failure_containing(report, "cycle");
}

TEST(AuditInjection, ContextArenaSuccessorTotalDrift) {
  ContextArena arena;
  const ContextArena::CtxId ctx = arena.intern(0xABCDu);
  for (std::uint64_t item = 0; item < 12; ++item) {
    arena.add(ctx, arena.intern_item(item % 5));
  }
  AuditReport clean;
  arena.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::drift_successor_total(arena, ctx);
  AuditReport report;
  arena.audit(report);
  EXPECT_FALSE(report.ok()) << "successor-total drift was not detected";
}

TEST(AuditInjection, ContextArenaOrphanedSuccessorChain) {
  ContextArena arena;
  const ContextArena::CtxId ctx = arena.intern(0x1234u);
  for (std::uint64_t item = 0; item < 8; ++item) {
    arena.add(ctx, arena.intern_item(item));
  }
  AuditPeer::orphan_successor(arena, ctx);
  AuditReport report;
  arena.audit(report);
  EXPECT_FALSE(report.ok()) << "orphaned successor slots were not detected";
}

TEST(AuditInjection, FlatHashMapMetadataCorruption) {
  FlatHashMap<std::uint32_t> map;
  for (std::uint64_t k = 0; k < 200; ++k) map[k * 0x5851F42Dull] = k;
  AuditReport clean;
  map.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::corrupt_meta(map);
  AuditReport report;
  map.audit(report);
  EXPECT_FALSE(report.ok()) << "probe-distance corruption was not detected";
}

/// Engine with audit mode on, some executed (freed) slots, and pending
/// events in the ordered tier.
void seed_engine(Simulator& sim) {
  sim.enable_audit_mode();
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(0.1 * (i + 1), [] {});
  }
  sim.run_until(2.0);  // frees ~20 slots, leaves the rest pending
}

TEST(AuditInjection, EngineStaleGeneration) {
  Simulator sim;
  seed_engine(sim);
  const std::uint32_t slot = AuditPeer::freed_tracked_slot(sim);
  ASSERT_NE(slot, AuditPeer::kNoSlot);
  AuditReport clean;
  sim.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::rollback_generation(sim, slot);
  AuditReport report;
  sim.audit(report);
  expect_failure_containing(report, "generation");
}

TEST(AuditInjection, EngineFreedSlotScribble) {
  Simulator sim;
  seed_engine(sim);
  const std::uint32_t slot = AuditPeer::freed_tracked_slot(sim);
  ASSERT_NE(slot, AuditPeer::kNoSlot);
  AuditPeer::scribble_freed_slot(sim, slot);
  AuditReport report;
  sim.audit(report);
  expect_failure_containing(report, "poison");
}

TEST(AuditInjection, EngineFreeListCycle) {
  Simulator sim;
  seed_engine(sim);
  AuditPeer::cycle_engine_free_list(sim);
  AuditReport report;
  sim.audit(report);
  expect_failure_containing(report, "cycle");
}

TEST(AuditInjection, EngineTombstoneCountDesync) {
  Simulator sim;
  seed_engine(sim);
  AuditPeer::desync_tombstone_count(sim);
  AuditReport report;
  sim.audit(report);
  EXPECT_FALSE(report.ok()) << "tombstone-count desync was not detected";
}

TEST(AuditInjection, EnginePendingOrderViolation) {
  Simulator sim;
  seed_engine(sim);
  ASSERT_TRUE(AuditPeer::break_pending_order(sim))
      << "seed_engine left no ordered pending tier to corrupt";
  AuditReport report;
  sim.audit(report);
  EXPECT_FALSE(report.ok()) << "pending-order violation was not detected";
}

TEST(AuditInjection, StackRuntimeDemandCountDesync) {
  Simulator sim;
  PredictorPlaneConfig pcfg;
  pcfg.num_users = 2;
  auto predictor =
      make_predictor_plane(PredictorKind::kFrequency, pcfg, false);
  FixedThresholdPolicy policy(0.05);
  StackRuntimeConfig cfg;
  cfg.num_users = 2;
  cfg.cache_capacity = 4;
  cfg.bandwidth = 100.0;
  StackRuntime runtime(sim, *predictor, policy, std::move(cfg));
  for (int i = 0; i < 40; ++i) {
    sim.schedule_at(0.1 * (i + 1), [&runtime, i] {
      runtime.handle_request(static_cast<UserId>(i % 2),
                             static_cast<ItemId>(i % 7));
    });
  }
  sim.run();
  AuditReport clean;
  runtime.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::desync_demand_count(runtime);
  AuditReport report;
  runtime.audit(report);
  expect_failure_containing(report, "demand");
}

TEST(AuditInjection, StackRuntimeEstimateSumDrift) {
  Simulator sim;
  PredictorPlaneConfig pcfg;
  pcfg.num_users = 2;
  auto predictor =
      make_predictor_plane(PredictorKind::kFrequency, pcfg, false);
  FixedThresholdPolicy policy(0.05);
  StackRuntimeConfig cfg;
  cfg.num_users = 2;
  cfg.cache_capacity = 4;
  cfg.bandwidth = 100.0;
  StackRuntime runtime(sim, *predictor, policy, std::move(cfg));
  for (int i = 0; i < 40; ++i) {
    sim.schedule_at(0.1 * (i + 1), [&runtime, i] {
      runtime.handle_request(static_cast<UserId>(i % 2),
                             static_cast<ItemId>(i % 7));
    });
  }
  sim.run();
  AuditPeer::drift_estimate_sum(runtime);
  AuditReport report;
  runtime.audit(report);
  expect_failure_containing(report, "drifted");
}

TEST(AuditInjection, TelemetryRecorderTimestampReversal) {
  TimeSeriesRecorder rec;
  rec.configure(/*num_gauges=*/2, /*capacity=*/16, /*interval=*/0.5);
  const std::vector<double> row = {1.0, 2.0};
  for (int i = 0; i < 6; ++i) rec.record(0.5 * i, row);
  AuditReport clean;
  rec.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::reverse_recorder_timestamps(rec);
  AuditReport report;
  rec.audit(report);
  expect_failure_containing(report, "monotone");
}

TEST(AuditInjection, TelemetrySpanBalanceBroken) {
  SpanTracer spans;
  spans.configure(8);
  for (int i = 0; i < 5; ++i) {
    const auto ref = spans.open(SpanTracer::SpanKind::kDemandFetch,
                                0.1 * i, /*user=*/1, /*item=*/i);
    spans.close(ref, 0.1 * i + 0.05);
  }
  AuditReport clean;
  spans.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::unbalance_span_counters(spans);
  AuditReport report;
  spans.audit(report);
  expect_failure_containing(report, "span balance");
}

TEST(AuditInjection, TelemetryRegistryNameSlotDesync) {
  TelemetryRegistry reg;
  reg.register_counter("req.count");
  reg.register_counter("req.hit");
  reg.register_gauge("link.queue_depth");
  AuditReport clean;
  reg.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::desync_registry_names(reg);
  AuditReport report;
  reg.audit(report);
  expect_failure_containing(report, "desynced");
}

TEST(AuditInjection, DivergenceDetectorCursorAheadOfRecorder) {
  TimeSeriesRecorder rec;
  rec.configure(/*num_gauges=*/1, /*capacity=*/64, /*interval=*/0.25);
  const std::vector<double> row = {3.0};
  for (int i = 0; i < 20; ++i) rec.record(0.25 * i, row);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "link.depth_ewma", 8.0);
  det.evaluate();
  AuditReport clean;
  det.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::advance_detector_cursor(det);
  AuditReport report;
  det.audit(report);
  expect_failure_containing(report, "staleness cursor");
}

TEST(AuditInjection, DivergenceDetectorLatchWithoutOnset) {
  TimeSeriesRecorder rec;
  rec.configure(1, 64, 0.25);
  const std::vector<double> row = {3.0};
  for (int i = 0; i < 20; ++i) rec.record(0.25 * i, row);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "link.depth_ewma", 8.0);
  det.evaluate();
  AuditReport clean;
  det.audit(clean);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  AuditPeer::latch_without_onset(det);
  AuditReport report;
  det.audit(report);
  expect_failure_containing(report, "onset");
}

// ---------------------------------------------------------------------------
// Report mechanics.
// ---------------------------------------------------------------------------

TEST(AuditReportTest, RequireThrowsWithScopedMessage) {
  AuditReport report;
  {
    AuditScope outer(report, "outer");
    AuditScope inner(report, "inner");
    report.check(false, "it broke");
  }
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("outer: inner: it broke"),
            std::string::npos)
      << report.summary();
  EXPECT_THROW(report.require(), ContractViolation);
}

TEST(AuditReportTest, CleanReportRequiresQuietly) {
  AuditReport report;
  report.check(true, "fine");
  EXPECT_TRUE(report.ok());
  EXPECT_NO_THROW(report.require());
  EXPECT_EQ(report.checks(), 1u);
}

}  // namespace
}  // namespace specpf
