// ValueCache: the min-value-eviction policy that realises Model A's
// "evict zero-value items" assumption.
#include <gtest/gtest.h>

#include "cache/value_cache.hpp"
#include "util/contract.hpp"

namespace specpf {
namespace {

TEST(ValueCache, EvictsLowestValue) {
  ValueCache cache(3);
  cache.insert_valued(1, EntryTag::kTagged, 0.9);
  cache.insert_valued(2, EntryTag::kTagged, 0.1);
  cache.insert_valued(3, EntryTag::kTagged, 0.5);
  ItemId victim = 0;
  cache.set_eviction_hook([&](ItemId item, EntryTag) { victim = item; });
  cache.insert_valued(4, EntryTag::kTagged, 0.7);
  EXPECT_EQ(victim, 2u);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
}

TEST(ValueCache, AdmissionControlRefusesWorthlessItems) {
  ValueCache cache(2);
  cache.insert_valued(1, EntryTag::kTagged, 0.8);
  cache.insert_valued(2, EntryTag::kTagged, 0.6);
  // New item worth less than the minimum resident: refused, no eviction.
  EXPECT_FALSE(cache.insert_valued(3, EntryTag::kTagged, 0.1));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ValueCache, ZeroValueItemsAreAlwaysTheVictims) {
  // The Model A scenario: as long as zero-value entries exist, prefetching
  // valuable items evicts only those.
  ValueCache cache(4);
  cache.insert_valued(1, EntryTag::kTagged, 0.0);
  cache.insert_valued(2, EntryTag::kTagged, 0.0);
  cache.insert_valued(3, EntryTag::kTagged, 0.5);
  cache.insert_valued(4, EntryTag::kTagged, 0.6);
  std::vector<ItemId> victims;
  cache.set_eviction_hook([&](ItemId item, EntryTag) {
    victims.push_back(item);
  });
  cache.insert_valued(10, EntryTag::kUntagged, 0.3);
  cache.insert_valued(11, EntryTag::kUntagged, 0.3);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_TRUE((victims[0] == 1 && victims[1] == 2) ||
              (victims[0] == 2 && victims[1] == 1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(ValueCache, SetValueRebalancesVictimOrder) {
  ValueCache cache(2);
  cache.insert_valued(1, EntryTag::kTagged, 0.9);
  cache.insert_valued(2, EntryTag::kTagged, 0.8);
  EXPECT_TRUE(cache.set_value(1, 0.01));  // 1 becomes the victim
  ItemId victim = 0;
  cache.set_eviction_hook([&](ItemId item, EntryTag) { victim = item; });
  cache.insert_valued(3, EntryTag::kTagged, 0.5);
  EXPECT_EQ(victim, 1u);
  EXPECT_FALSE(cache.set_value(42, 1.0));
}

TEST(ValueCache, ValueQueries) {
  ValueCache cache(4);
  cache.insert_valued(1, EntryTag::kTagged, 0.25);
  cache.insert_valued(2, EntryTag::kTagged, 0.75);
  EXPECT_DOUBLE_EQ(*cache.value_of(1), 0.25);
  EXPECT_DOUBLE_EQ(*cache.min_value(), 0.25);
  EXPECT_FALSE(cache.value_of(99).has_value());
  ValueCache empty(2);
  EXPECT_FALSE(empty.min_value().has_value());
}

TEST(ValueCache, ReinsertUpdatesValueAndTag) {
  ValueCache cache(2);
  cache.insert_valued(1, EntryTag::kUntagged, 0.2);
  EXPECT_TRUE(cache.insert_valued(1, EntryTag::kTagged, 0.9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.value_of(1), 0.9);
  EXPECT_EQ(*cache.lookup(1), EntryTag::kTagged);
}

TEST(ValueCache, CacheInterfaceConformance) {
  ValueCache cache(2);
  cache.insert(5, EntryTag::kTagged);  // value defaults to 0
  EXPECT_TRUE(cache.contains(5));
  EXPECT_EQ(*cache.lookup(5), EntryTag::kTagged);
  EXPECT_TRUE(cache.set_tag(5, EntryTag::kUntagged));
  EXPECT_EQ(*cache.lookup(5), EntryTag::kUntagged);
  EXPECT_TRUE(cache.erase(5));
  EXPECT_FALSE(cache.erase(5));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(ValueCache(0), ContractViolation);
}

TEST(ValueCache, EqualValuesTieBreakDeterministically) {
  ValueCache cache(2);
  cache.insert_valued(7, EntryTag::kTagged, 0.5);
  cache.insert_valued(3, EntryTag::kTagged, 0.5);
  ItemId victim = 0;
  cache.set_eviction_hook([&](ItemId item, EntryTag) { victim = item; });
  cache.insert_valued(9, EntryTag::kTagged, 0.6);
  EXPECT_EQ(victim, 3u);  // (0.5, 3) < (0.5, 7) in the value set
}

}  // namespace
}  // namespace specpf
