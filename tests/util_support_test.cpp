// Thread pool, table renderer, and argparse tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/argparse.hpp"
#include "util/contract.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace specpf {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(100);
  parallel_for(pool, 100, [&](std::size_t i) { touched[i] = 1; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, RethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(Table, MarkdownHasHeaderSeparatorAndRows) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("y"), std::int64_t{7}});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a"), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_NE(md.find("1.5000"), std::string::npos);
  EXPECT_NE(md.find("| 7"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"v"});
  t.set_precision(2).add_row({3.14159});
  EXPECT_NE(t.to_markdown().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_markdown().find("3.1416"), std::string::npos);
}

TEST(Table, CsvEscapesSeparators) {
  Table t({"name"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("he said \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), ContractViolation);
}

TEST(Table, RowAccessors) {
  Table t({"a"});
  t.add_row({1.0}).add_row({2.0});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 1u);
}

TEST(ArgParser, ParsesEqualsAndSpaceForms) {
  ArgParser p("prog", "test");
  p.add_flag("alpha", "1.0", "");
  p.add_flag("name", "x", "");
  const char* argv[] = {"prog", "--alpha=2.5", "--name", "web"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_DOUBLE_EQ(p.get_double("alpha"), 2.5);
  EXPECT_EQ(p.get_string("name"), "web");
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p("prog", "test");
  p.add_flag("count", "7", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("count"), 7);
}

TEST(ArgParser, BooleanToggle) {
  ArgParser p("prog", "test");
  p.add_flag("verbose", "false", "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagFails) {
  ArgParser p("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, PositionalCollected) {
  ArgParser p("prog", "test");
  const char* argv[] = {"prog", "file1", "file2"};
  ASSERT_TRUE(p.parse(3, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "file1");
}

TEST(Contract, ViolationMessageNamesKindAndExpression) {
  try {
    SPECPF_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace specpf
