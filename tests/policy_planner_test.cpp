// PrefetchPlanner (the paper's decision rule as a library API) and the
// policy implementations built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model_a.hpp"
#include "core/planner.hpp"
#include "policy/policies.hpp"
#include "util/contract.hpp"

namespace specpf {
namespace {

using core::Candidate;
using core::InteractionModel;
using core::OperatingPoint;
using core::PrefetchPlanner;
using core::SystemParams;

SystemParams paper_params(double hit_ratio) {
  SystemParams p;
  p.bandwidth = 50.0;
  p.request_rate = 30.0;
  p.mean_item_size = 1.0;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

TEST(Planner, SelectsExactlyItemsAboveThreshold) {
  PrefetchPlanner planner(paper_params(0.0), InteractionModel::kModelA);
  EXPECT_DOUBLE_EQ(planner.threshold(), 0.6);
  const std::vector<Candidate> candidates{
      {1, 0.9}, {2, 0.61}, {3, 0.6}, {4, 0.59}, {5, 0.1}};
  const auto plan = planner.plan(candidates);
  ASSERT_EQ(plan.selected.size(), 2u);
  EXPECT_EQ(plan.selected[0].item, 1u);
  EXPECT_EQ(plan.selected[1].item, 2u);  // strictly-above: 0.6 excluded
  EXPECT_NEAR(plan.probability_mass, 1.51, 1e-12);
}

TEST(Planner, EmptyCandidatesGiveEmptyPlan) {
  PrefetchPlanner planner(paper_params(0.3), InteractionModel::kModelA);
  const auto plan = planner.plan({});
  EXPECT_TRUE(plan.selected.empty());
  EXPECT_NEAR(plan.predicted_gain, 0.0, 1e-12);
  EXPECT_TRUE(plan.feasible);
}

TEST(Planner, UniformCandidatesMatchClosedFormPrediction) {
  // k identical candidates with probability p must reproduce the paper's
  // n̄(F)=k forms exactly. Use a lightly loaded system so two candidates at
  // p=0.35 stay above threshold (ρ' = 0.2) and Σp ≤ f' (eq. 6).
  SystemParams params = paper_params(0.0);
  params.request_rate = 10.0;
  PrefetchPlanner planner(params, InteractionModel::kModelA);
  const double p = 0.35;
  const std::vector<Candidate> candidates{{1, p}, {2, p}};
  const auto plan = planner.plan(candidates);
  ASSERT_EQ(plan.selected.size(), 2u);
  EXPECT_NEAR(plan.predicted_hit_ratio,
              core::model_a::hit_ratio(params, p, 2.0), 1e-12);
  EXPECT_NEAR(plan.predicted_access_time,
              core::model_a::access_time(params, p, 2.0), 1e-12);
  EXPECT_NEAR(plan.predicted_gain, core::model_a::gain(params, p, 2.0),
              1e-12);
}

TEST(Planner, PredictedGainPositiveForSelectedBatch) {
  // Candidate masses consistent with eq. (6): Σp ≤ f' = 0.7.
  PrefetchPlanner planner(paper_params(0.3), InteractionModel::kModelA);
  const auto plan = planner.plan({{1, 0.5}, {2, 0.15}, {3, 0.05}});
  EXPECT_EQ(plan.selected.size(), 1u);  // threshold 0.42
  EXPECT_GT(plan.predicted_gain, 0.0);
  EXPECT_GT(plan.predicted_excess_cost, 0.0);
  EXPECT_TRUE(plan.feasible);
}

TEST(Planner, ModelBUsesHigherThreshold) {
  SystemParams params = paper_params(0.5);
  params.cache_items = 10.0;  // victim value 0.05
  PrefetchPlanner a(params, InteractionModel::kModelA);
  PrefetchPlanner b(params, InteractionModel::kModelB);
  EXPECT_NEAR(b.threshold() - a.threshold(), 0.05, 1e-12);
  const std::vector<Candidate> candidates{{1, a.threshold() + 0.02}};
  EXPECT_EQ(a.plan(candidates).selected.size(), 1u);
  EXPECT_TRUE(b.plan(candidates).selected.empty());
}

TEST(Planner, BudgetKeepsHighestProbabilities) {
  PrefetchPlanner planner(paper_params(0.0), InteractionModel::kModelA);
  const std::vector<Candidate> candidates{
      {1, 0.7}, {2, 0.95}, {3, 0.8}, {4, 0.65}};
  const auto plan = planner.plan_with_budget(candidates, 2);
  ASSERT_EQ(plan.selected.size(), 2u);
  EXPECT_EQ(plan.selected[0].item, 2u);
  EXPECT_EQ(plan.selected[1].item, 3u);
}

TEST(Planner, RejectsOutOfRangeProbability) {
  PrefetchPlanner planner(paper_params(0.0), InteractionModel::kModelA);
  EXPECT_THROW(planner.plan({{1, 1.5}}), ContractViolation);
}

TEST(Planner, SetParamsUpdatesThreshold) {
  PrefetchPlanner planner(paper_params(0.0), InteractionModel::kModelA);
  SystemParams lighter = paper_params(0.0);
  lighter.request_rate = 10.0;  // ρ' = 0.2
  planner.set_params(lighter);
  EXPECT_DOUBLE_EQ(planner.threshold(), 0.2);
}

// --- Policies ---

PolicyContext make_ctx(double hit_ratio) {
  PolicyContext ctx;
  ctx.params = paper_params(hit_ratio);
  return ctx;
}

TEST(NoPrefetchPolicy, NeverSelects) {
  NoPrefetchPolicy policy;
  EXPECT_TRUE(policy.select({{1, 0.99}}, make_ctx(0.0)).empty());
  EXPECT_EQ(policy.name(), "none");
}

TEST(ThresholdPolicy, AppliesDynamicThreshold) {
  ThresholdPolicy policy(InteractionModel::kModelA);
  const auto ctx = make_ctx(0.3);  // p_th = 0.42
  const auto out = policy.select({{1, 0.5}, {2, 0.4}}, ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].item, 1u);
  EXPECT_NEAR(policy.threshold(ctx), 0.42, 1e-12);
}

TEST(ThresholdPolicy, ThresholdTracksLoad) {
  ThresholdPolicy policy(InteractionModel::kModelA);
  PolicyContext light = make_ctx(0.0);
  light.params.request_rate = 5.0;  // p_th = 0.1
  PolicyContext heavy = make_ctx(0.0);
  heavy.params.request_rate = 45.0;  // p_th = 0.9
  const std::vector<Candidate> candidates{{1, 0.5}};
  EXPECT_EQ(policy.select(candidates, light).size(), 1u);
  EXPECT_TRUE(policy.select(candidates, heavy).empty());
}

TEST(FixedThresholdPolicy, IgnoresContext) {
  FixedThresholdPolicy policy(0.25);
  PolicyContext heavy = make_ctx(0.0);
  heavy.params.request_rate = 49.0;  // system nearly saturated
  const auto out = policy.select({{1, 0.3}, {2, 0.2}}, heavy);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].item, 1u);
}

TEST(TopKPolicy, AlwaysTakesKMostProbable) {
  TopKPolicy policy(2);
  const auto out =
      policy.select({{1, 0.1}, {2, 0.3}, {3, 0.2}}, make_ctx(0.0));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].item, 2u);
  EXPECT_EQ(out[1].item, 3u);
  EXPECT_EQ(policy.name(), "top-2");
}

TEST(AdaptiveCostPolicy, WeightOneMatchesModelAThreshold) {
  AdaptiveCostPolicy adaptive(1.0);
  ThresholdPolicy reference(InteractionModel::kModelA);
  const auto ctx = make_ctx(0.3);
  const std::vector<Candidate> candidates{
      {1, 0.41}, {2, 0.43}, {3, 0.9}, {4, 0.1}};
  const auto a = adaptive.select(candidates, ctx);
  const auto b = reference.select(candidates, ctx);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].item, b[i].item);
}

TEST(AdaptiveCostPolicy, HigherWeightIsMoreConservative) {
  AdaptiveCostPolicy aggressive(0.5), conservative(2.0);
  const auto ctx = make_ctx(0.3);  // ρ' = 0.42
  const std::vector<Candidate> candidates{{1, 0.5}};
  EXPECT_EQ(aggressive.select(candidates, ctx).size(), 1u);
  EXPECT_TRUE(conservative.select(candidates, ctx).empty());
}

TEST(QosThresholdPolicy, GenerousCapMatchesPlainThreshold) {
  QosThresholdPolicy qos(InteractionModel::kModelA, /*max_utilization=*/0.99);
  ThresholdPolicy plain(InteractionModel::kModelA);
  // Light load (ρ' = 0.2) so several candidates clear the threshold while
  // their probability mass stays eq.-(6)-consistent (Σp ≤ f' = 1).
  PolicyContext ctx = make_ctx(0.0);
  ctx.params.request_rate = 10.0;
  const std::vector<Candidate> candidates{
      {1, 0.35}, {2, 0.30}, {3, 0.25}, {4, 0.05}};
  const auto a = qos.select(candidates, ctx);
  const auto b = plain.select(candidates, ctx);
  ASSERT_EQ(b.size(), 3u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].item, b[i].item);
}

TEST(QosThresholdPolicy, TightCapShrinksTheBatch) {
  // ρ' = 0.42; each p=0.5 prefetch adds (1-p)λs̄/b = 0.3 of utilisation.
  // A cap of 0.80 admits one item; the plain rule would take all five.
  auto ctx = make_ctx(0.3);
  QosThresholdPolicy tight(InteractionModel::kModelA, 0.80);
  ThresholdPolicy plain(InteractionModel::kModelA);
  const std::vector<Candidate> candidates{
      {1, 0.5}, {2, 0.5}, {3, 0.5}, {4, 0.5}, {5, 0.5}};
  const auto unconstrained = plain.select(candidates, ctx);
  const auto constrained = tight.select(candidates, ctx);
  EXPECT_EQ(unconstrained.size(), 5u);
  EXPECT_EQ(constrained.size(), 1u);
}

TEST(QosThresholdPolicy, CapBelowCurrentLoadBlocksAllPrefetching) {
  auto ctx = make_ctx(0.3);  // ρ' = 0.42
  QosThresholdPolicy qos(InteractionModel::kModelA, 0.40);
  EXPECT_TRUE(qos.select({{1, 0.9}}, ctx).empty());
}

TEST(QosThresholdPolicy, NeverSelectsBelowThreshold) {
  QosThresholdPolicy qos(InteractionModel::kModelA, 0.99);
  const auto ctx = make_ctx(0.3);
  const auto out = qos.select({{1, 0.4}, {2, 0.2}}, ctx);  // p_th = 0.42
  EXPECT_TRUE(out.empty());
}

TEST(QosThresholdPolicy, RejectsInvalidCap) {
  EXPECT_THROW(QosThresholdPolicy(InteractionModel::kModelA, 0.0),
               ContractViolation);
  EXPECT_THROW(QosThresholdPolicy(InteractionModel::kModelA, 1.0),
               ContractViolation);
}

TEST(PolicyNames, AreDistinctAndStable) {
  EXPECT_EQ(ThresholdPolicy(InteractionModel::kModelA).name(), "threshold-A");
  EXPECT_EQ(ThresholdPolicy(InteractionModel::kModelB).name(), "threshold-B");
  EXPECT_EQ(FixedThresholdPolicy(0.5).name(), "fixed-0.5");
}

}  // namespace
}  // namespace specpf
