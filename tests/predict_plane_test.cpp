// Differential + unit tests for the slab-backed SoA predictor plane
// (predict/predictor_plane.hpp, predict/context_arena.hpp):
//  1. ContextArena bookkeeping matches a reference map-of-maps under random
//     load, and the quantized-counter edge cases (saturation, halving) do
//     the exact ceil(c/2) aging the header promises.
//  2. HistoryRing preserves order across wraparound.
//  3. Fuzz differential: every arena plane predicts bit-identically to its
//     legacy virtual Predictor table across orders x user counts x
//     candidate limits — exact double equality, not approximate.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "predict/context_arena.hpp"
#include "predict/predictor_plane.hpp"
#include "util/rng.hpp"
#include "workload/session_graph.hpp"

namespace specpf {
namespace {

using core::Candidate;

TEST(ContextArena, CountsMatchReferenceMap) {
  ContextArena arena;
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>> reference;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t ctx_key = rng.next_u64() % 17;
    const std::uint64_t item = rng.next_u64() % 40;
    arena.add(arena.intern(ctx_key), arena.intern_item(item));
    ++reference[ctx_key][item];
  }
  ASSERT_EQ(arena.context_count(), reference.size());
  for (const auto& [ctx_key, successors] : reference) {
    const ContextArena::CtxId ctx = arena.find(ctx_key);
    ASSERT_NE(ctx, ContextArena::kNoCtx);
    EXPECT_EQ(arena.distinct(ctx), successors.size());
    std::uint64_t want_total = 0;
    for (const auto& [item, count] : successors) want_total += count;
    EXPECT_EQ(arena.total(ctx), want_total);
    std::map<std::uint64_t, std::uint64_t> got;
    arena.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
      got[item] = c;
    });
    EXPECT_EQ(got, successors);
  }
  EXPECT_EQ(arena.halvings(), 0u);  // counts stayed far below saturation
}

TEST(ContextArena, FindOnUnknownKeyIsNoCtx) {
  ContextArena arena;
  EXPECT_EQ(arena.find(123), ContextArena::kNoCtx);
  const ContextArena::CtxId ctx = arena.intern(123);
  EXPECT_EQ(arena.find(123), ctx);
  EXPECT_EQ(arena.total(ctx), 0u);
  EXPECT_EQ(arena.distinct(ctx), 0u);
}

TEST(ContextArena, SaturationHalvesEveryCounterRoundingUp) {
  ContextArena arena;
  const ContextArena::CtxId ctx = arena.intern(7);
  const std::uint32_t a = arena.intern_item(100);
  const std::uint32_t b = arena.intern_item(200);
  for (int i = 0; i < 3; ++i) arena.add(ctx, b);
  for (std::uint32_t i = 0; i < ContextArena::kCounterMax; ++i) {
    arena.add(ctx, a);
  }
  EXPECT_EQ(arena.halvings(), 0u);
  EXPECT_EQ(arena.total(ctx), std::uint64_t{ContextArena::kCounterMax} + 3);

  // The add that would overflow `a` ages the whole context first:
  // a: 65535 -> 32768 (then the pending increment lands: 32769),
  // b: 3 -> 2, and the total is recomputed from the aged counts.
  arena.add(ctx, a);
  EXPECT_EQ(arena.halvings(), 1u);
  std::map<std::uint64_t, std::uint64_t> got;
  arena.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
    got[item] = c;
  });
  EXPECT_EQ(got[100], 32769u);
  EXPECT_EQ(got[200], 2u);
  EXPECT_EQ(arena.total(ctx), 32771u);
  EXPECT_EQ(arena.distinct(ctx), 2u);  // no successor is ever forgotten
}

TEST(ContextArena, HalvingNeverZeroesACount) {
  // A count of 1 halves to ceil(1/2) = 1, so even rare successors survive
  // arbitrarily many agings.
  ContextArena arena;
  const ContextArena::CtxId ctx = arena.intern(1);
  const std::uint32_t rare = arena.intern_item(999);
  const std::uint32_t hot = arena.intern_item(111);
  arena.add(ctx, rare);
  // Two full saturation cycles on the hot item.
  for (int cycle = 0; cycle < 2; ++cycle) {
    while (arena.halvings() == static_cast<std::uint64_t>(cycle)) {
      arena.add(ctx, hot);
    }
  }
  EXPECT_EQ(arena.halvings(), 2u);
  std::uint64_t rare_count = 0;
  arena.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
    if (item == 999) rare_count = c;
    EXPECT_GE(c, 1u);
  });
  EXPECT_EQ(rare_count, 1u);
}

TEST(ContextArena, SlabGrowthStress) {
  // Enough volume to force several growth doublings of every slab and
  // index; the arena must stay exactly consistent with the reference.
  ContextArena arena;
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>> reference;
  Rng rng(11);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t ctx_key = rng.next_u64() % 4096;
    const std::uint64_t item = rng.next_u64() % 2048;
    arena.add(arena.intern(ctx_key), arena.intern_item(item));
    ++reference[ctx_key][item];
  }
  ASSERT_EQ(arena.context_count(), reference.size());
  EXPECT_EQ(arena.item_count(), 2048u);
  std::size_t total_successors = 0;
  for (const auto& [ctx_key, successors] : reference) {
    const ContextArena::CtxId ctx = arena.find(ctx_key);
    ASSERT_NE(ctx, ContextArena::kNoCtx);
    total_successors += successors.size();
    std::map<std::uint64_t, std::uint64_t> got;
    arena.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
      got[item] = c;
    });
    EXPECT_EQ(got, successors);
  }
  EXPECT_EQ(arena.successor_count(), total_successors);
}

TEST(HistoryRing, PreservesOrderAcrossWraparound) {
  HistoryRing ring(2, 4);
  EXPECT_EQ(ring.size(0), 0u);
  for (std::uint64_t v = 1; v <= 6; ++v) ring.push(0, v * 10);
  ring.push(1, 7);  // the other user's ring is independent
  ASSERT_EQ(ring.size(0), 4u);
  EXPECT_EQ(ring.at(0, 0), 30u);  // oldest surviving entry
  EXPECT_EQ(ring.at(0, 1), 40u);
  EXPECT_EQ(ring.at(0, 2), 50u);
  EXPECT_EQ(ring.at(0, 3), 60u);
  EXPECT_EQ(ring.newest(0), 60u);
  ASSERT_EQ(ring.size(1), 1u);
  EXPECT_EQ(ring.newest(1), 7u);
}

// --- plane vs legacy fuzz differential --------------------------------------

/// Drives the same random stream through both backends, comparing
/// predict_into output exactly (same items, bit-identical probabilities)
/// after every observation.
void expect_bit_identical(PredictorKind kind, const PredictorPlaneConfig& cfg,
                          std::size_t max_candidates, std::uint64_t seed,
                          std::size_t events, std::uint64_t item_space) {
  auto plane = make_predictor_plane(kind, cfg, false);
  auto legacy = make_predictor_plane(kind, cfg, true);
  Rng rng(seed);
  std::vector<Candidate> got, want;
  for (std::size_t i = 0; i < events; ++i) {
    const UserId user = static_cast<UserId>(rng.next_u64() % cfg.num_users);
    const std::uint64_t item = rng.next_u64() % item_space;
    plane->observe(user, item);
    legacy->observe(user, item);
    plane->predict_into(user, max_candidates, got);
    legacy->predict_into(user, max_candidates, want);
    ASSERT_EQ(got.size(), want.size())
        << predictor_kind_name(kind) << " event " << i;
    for (std::size_t c = 0; c < got.size(); ++c) {
      ASSERT_EQ(got[c].item, want[c].item)
          << predictor_kind_name(kind) << " event " << i << " rank " << c;
      ASSERT_EQ(got[c].probability, want[c].probability)
          << predictor_kind_name(kind) << " event " << i << " rank " << c;
    }
  }
  // The differential only holds below counter saturation — assert the fuzz
  // volume never crossed it, so a future tweak can't quietly void the test.
  EXPECT_EQ(plane->counter_halvings(), 0u);
}

TEST(PredictPlaneDifferential, FrequencyMatchesLegacy) {
  for (const std::size_t limit : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}, std::size_t{64}}) {
    PredictorPlaneConfig cfg;
    cfg.num_users = 3;
    expect_bit_identical(PredictorKind::kFrequency, cfg, limit, 21, 4000, 50);
  }
}

TEST(PredictPlaneDifferential, MarkovMatchesLegacy) {
  for (const std::size_t users : {std::size_t{1}, std::size_t{5}}) {
    for (const std::size_t limit : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{64}}) {
      PredictorPlaneConfig cfg;
      cfg.num_users = users;
      expect_bit_identical(PredictorKind::kMarkov, cfg, limit, 22, 4000, 40);
    }
  }
}

TEST(PredictPlaneDifferential, MarkovLaplaceMatchesLegacy) {
  PredictorPlaneConfig cfg;
  cfg.num_users = 4;
  cfg.markov_laplace = 0.5;
  expect_bit_identical(PredictorKind::kMarkov, cfg, 8, 23, 4000, 40);
}

TEST(PredictPlaneDifferential, PpmMatchesLegacyAcrossOrders) {
  for (const std::size_t order : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    for (const std::size_t users : {std::size_t{1}, std::size_t{5}}) {
      for (const std::size_t limit : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}, std::size_t{64}}) {
        PredictorPlaneConfig cfg;
        cfg.num_users = users;
        cfg.ppm_order = order;
        expect_bit_identical(PredictorKind::kPpm, cfg, limit,
                             100 + order, 3000, 30);
      }
    }
  }
}

TEST(PredictPlaneDifferential, DependencyGraphMatchesLegacy) {
  for (const std::size_t lookahead : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
    for (const std::size_t limit : {std::size_t{1}, std::size_t{8},
                                    std::size_t{64}}) {
      PredictorPlaneConfig cfg;
      cfg.num_users = 5;
      cfg.depgraph_lookahead = lookahead;
      expect_bit_identical(PredictorKind::kDependencyGraph, cfg, limit,
                           200 + lookahead, 3000, 30);
    }
  }
}

TEST(PredictPlaneDifferential, OracleMatchesLegacy) {
  SessionGraphConfig gcfg;
  gcfg.num_pages = 64;
  gcfg.out_degree = 4;
  const SessionGraph graph(gcfg, 17);
  for (const std::size_t limit : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    PredictorPlaneConfig cfg;
    cfg.num_users = 4;
    cfg.graph = &graph;
    expect_bit_identical(PredictorKind::kOracle, cfg, limit, 24, 2000, 64);
  }
}

TEST(PredictPlane, MarkovSurvivesCounterSaturation) {
  // Past 65535 repetitions of one transition the plane diverges from the
  // (unbounded-counter) legacy table by design; it must keep producing the
  // same *distribution* with bounded counters.
  PredictorPlaneConfig cfg;
  cfg.num_users = 1;
  auto plane = make_predictor_plane(PredictorKind::kMarkov, cfg, false);
  plane->observe(0, 1);
  for (int i = 0; i < 70000; ++i) {
    plane->observe(0, 2);
    plane->observe(0, 1);
  }
  EXPECT_GE(plane->counter_halvings(), 1u);
  const auto after = plane->predict(0, 8);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].item, 2u);
  EXPECT_EQ(after[0].probability, 1.0);
}

TEST(PredictPlane, PredictIntoReplacesStaleScratchContents) {
  PredictorPlaneConfig cfg;
  cfg.num_users = 1;
  auto plane = make_predictor_plane(PredictorKind::kMarkov, cfg, false);
  std::vector<Candidate> scratch(5, Candidate{999, 0.123});
  plane->predict_into(0, 8, scratch);  // nothing observed: must clear
  EXPECT_TRUE(scratch.empty());
  plane->observe(0, 1);
  plane->observe(0, 2);
  plane->observe(0, 1);  // back on item 1, whose lone successor is 2
  plane->predict_into(0, 8, scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch[0].item, 2u);
}

TEST(PredictorFactory, NamesRoundTrip) {
  for (int k = 0; k < kNumPredictorKinds; ++k) {
    const auto kind = static_cast<PredictorKind>(k);
    PredictorKind parsed;
    ASSERT_TRUE(parse_predictor_kind(predictor_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PredictorKind parsed;
  EXPECT_FALSE(parse_predictor_kind("nonsense", &parsed));
}

}  // namespace
}  // namespace specpf
