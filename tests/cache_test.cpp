// Cache substrate: generic interface properties parameterised over every
// eviction policy, plus policy-specific behaviour.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/clock_cache.hpp"
#include "cache/fifo.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "cache/random_cache.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

using Factory = std::function<std::unique_ptr<Cache>(std::size_t)>;

struct CacheCase {
  std::string name;
  Factory make;
};

void PrintTo(const CacheCase& c, std::ostream* os) { *os << c.name; }

class AnyCacheTest : public ::testing::TestWithParam<CacheCase> {
 protected:
  std::unique_ptr<Cache> make(std::size_t cap) const {
    return GetParam().make(cap);
  }
};

TEST_P(AnyCacheTest, InsertThenLookupHits) {
  auto cache = make(4);
  cache->insert(1, EntryTag::kTagged);
  const auto tag = cache->lookup(1);
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(*tag, EntryTag::kTagged);
}

TEST_P(AnyCacheTest, MissingItemMisses) {
  auto cache = make(4);
  EXPECT_FALSE(cache->lookup(99).has_value());
  EXPECT_FALSE(cache->contains(99));
}

TEST_P(AnyCacheTest, NeverExceedsCapacity) {
  auto cache = make(8);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    cache->insert(rng.next_below(100), EntryTag::kTagged);
    ASSERT_LE(cache->size(), 8u);
  }
  EXPECT_EQ(cache->size(), 8u);
}

TEST_P(AnyCacheTest, EvictionHookFiresOncePerEviction) {
  auto cache = make(2);
  int evictions = 0;
  cache->set_eviction_hook([&](ItemId, EntryTag) { ++evictions; });
  for (ItemId i = 0; i < 10; ++i) cache->insert(i, EntryTag::kTagged);
  EXPECT_EQ(evictions, 8);
  EXPECT_EQ(cache->stats().evictions, 8u);
}

TEST_P(AnyCacheTest, EraseRemovesWithoutEvictionCount) {
  auto cache = make(4);
  cache->insert(1, EntryTag::kTagged);
  EXPECT_TRUE(cache->erase(1));
  EXPECT_FALSE(cache->erase(1));
  EXPECT_FALSE(cache->contains(1));
  EXPECT_EQ(cache->stats().evictions, 0u);
}

TEST_P(AnyCacheTest, SetTagUpdatesResidentEntry) {
  auto cache = make(4);
  cache->insert(1, EntryTag::kUntagged);
  EXPECT_TRUE(cache->set_tag(1, EntryTag::kTagged));
  EXPECT_EQ(*cache->lookup(1), EntryTag::kTagged);
  EXPECT_FALSE(cache->set_tag(42, EntryTag::kTagged));
}

TEST_P(AnyCacheTest, ReinsertUpdatesTagWithoutGrowth) {
  auto cache = make(4);
  cache->insert(1, EntryTag::kTagged);
  cache->insert(1, EntryTag::kUntagged);
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_EQ(*cache->lookup(1), EntryTag::kUntagged);
}

TEST_P(AnyCacheTest, StatsCountLookupsAndHits) {
  auto cache = make(4);
  cache->insert(1, EntryTag::kTagged);
  cache->lookup(1);
  cache->lookup(2);
  EXPECT_EQ(cache->stats().lookups, 2u);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache->stats().hit_ratio(), 0.5);
  cache->reset_stats();
  EXPECT_EQ(cache->stats().lookups, 0u);
}

TEST_P(AnyCacheTest, ContainsDoesNotPerturbStats) {
  auto cache = make(4);
  cache->insert(1, EntryTag::kTagged);
  cache->contains(1);
  cache->contains(2);
  EXPECT_EQ(cache->stats().lookups, 0u);
}

TEST_P(AnyCacheTest, CapacityOneStillWorks) {
  auto cache = make(1);
  cache->insert(1, EntryTag::kTagged);
  cache->insert(2, EntryTag::kTagged);
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_TRUE(cache->contains(2));
  EXPECT_FALSE(cache->contains(1));
}

TEST_P(AnyCacheTest, WorkloadConservation) {
  // hits + misses == lookups under arbitrary traffic.
  auto cache = make(16);
  Rng rng(11);
  std::uint64_t misses = 0;
  for (int i = 0; i < 5000; ++i) {
    const ItemId item = rng.next_below(64);
    if (!cache->lookup(item).has_value()) {
      ++misses;
      cache->insert(item, EntryTag::kTagged);
    }
  }
  EXPECT_EQ(cache->stats().hits + misses, cache->stats().lookups);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AnyCacheTest,
    ::testing::Values(
        CacheCase{"lru",
                  [](std::size_t c) { return std::make_unique<LruCache>(c); }},
        CacheCase{"fifo",
                  [](std::size_t c) { return std::make_unique<FifoCache>(c); }},
        CacheCase{"lfu",
                  [](std::size_t c) { return std::make_unique<LfuCache>(c); }},
        CacheCase{"clock",
                  [](std::size_t c) {
                    return std::make_unique<ClockCache>(c);
                  }},
        CacheCase{"random",
                  [](std::size_t c) {
                    return std::make_unique<RandomCache>(c, 42);
                  }}),
    [](const ::testing::TestParamInfo<CacheCase>& info) {
      return info.param.name;
    });

// --- Policy-specific behaviour ---

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(3);
  cache.insert(1, EntryTag::kTagged);
  cache.insert(2, EntryTag::kTagged);
  cache.insert(3, EntryTag::kTagged);
  cache.lookup(1);  // refresh 1; victim order now 2,3,1
  cache.insert(4, EntryTag::kTagged);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(FifoCache, LookupDoesNotRefreshPosition) {
  FifoCache cache(3);
  cache.insert(1, EntryTag::kTagged);
  cache.insert(2, EntryTag::kTagged);
  cache.insert(3, EntryTag::kTagged);
  cache.lookup(1);  // irrelevant for FIFO
  cache.insert(4, EntryTag::kTagged);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LfuCache, EvictsLeastFrequentlyUsed) {
  LfuCache cache(3);
  cache.insert(1, EntryTag::kTagged);
  cache.insert(2, EntryTag::kTagged);
  cache.insert(3, EntryTag::kTagged);
  cache.lookup(1);
  cache.lookup(1);
  cache.lookup(3);
  cache.insert(4, EntryTag::kTagged);  // 2 has lowest frequency
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.frequency(1), 3u);  // insert + two lookups
  EXPECT_EQ(cache.frequency(4), 1u);
}

TEST(LfuCache, TieBreaksLeastRecentWithinFrequency) {
  LfuCache cache(2);
  cache.insert(1, EntryTag::kTagged);
  cache.insert(2, EntryTag::kTagged);
  // Both at frequency 1; 1 is older within the bucket.
  cache.insert(3, EntryTag::kTagged);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(ClockCache, SecondChanceSpairesReferencedFrames) {
  ClockCache cache(3);
  cache.insert(1, EntryTag::kTagged);
  cache.insert(2, EntryTag::kTagged);
  cache.insert(3, EntryTag::kTagged);
  cache.lookup(1);  // sets reference bit again (insert set it too)
  // All referenced: sweep clears all bits, evicts frame 0 on second pass …
  cache.insert(4, EntryTag::kTagged);
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(RandomCache, EvictionVictimVaries) {
  // Over many trials, the victim should not always be the same item.
  int first_evicted = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandomCache cache(3, seed);
    cache.insert(1, EntryTag::kTagged);
    cache.insert(2, EntryTag::kTagged);
    cache.insert(3, EntryTag::kTagged);
    ItemId victim = 0;
    cache.set_eviction_hook([&](ItemId item, EntryTag) { victim = item; });
    cache.insert(4, EntryTag::kTagged);
    if (victim == 1) ++first_evicted;
  }
  EXPECT_GT(first_evicted, 0);
  EXPECT_LT(first_evicted, 20);
}

TEST(CacheConstruction, RejectsZeroCapacity) {
  EXPECT_THROW(LruCache(0), ContractViolation);
  EXPECT_THROW(FifoCache(0), ContractViolation);
  EXPECT_THROW(LfuCache(0), ContractViolation);
  EXPECT_THROW(ClockCache(0), ContractViolation);
  EXPECT_THROW(RandomCache(0, 1), ContractViolation);
}

}  // namespace
}  // namespace specpf
