#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace specpf {
namespace {

TEST(KahanSum, SumsExactlyRepresentableValues) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(sum.value(), 5050.0);
}

TEST(KahanSum, CompensatesSmallTermsAgainstLarge) {
  // Naive summation loses the 1.0s entirely against 1e16.
  KahanSum sum;
  sum.add(1e16);
  for (int i = 0; i < 1000; ++i) sum.add(1.0);
  sum.add(-1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 1000.0);
}

TEST(KahanSum, ResetClears) {
  KahanSum sum;
  sum.add(5.0);
  sum.reset();
  EXPECT_DOUBLE_EQ(sum.value(), 0.0);
}

TEST(KahanSum, OperatorPlusEquals) {
  KahanSum sum;
  sum += 1.5;
  sum += 2.5;
  EXPECT_DOUBLE_EQ(sum.value(), 4.0);
}

TEST(AlmostEqual, ExactEquality) { EXPECT_TRUE(almost_equal(1.0, 1.0)); }

TEST(AlmostEqual, WithinRelativeTolerance) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(almost_equal(1e10, 1e10 * (1 + 1e-10)));
}

TEST(AlmostEqual, NearZeroUsesAbsoluteTolerance) {
  EXPECT_TRUE(almost_equal(0.0, 1e-13));
  EXPECT_FALSE(almost_equal(0.0, 1e-3));
}

TEST(SafeDiv, NormalDivision) { EXPECT_DOUBLE_EQ(safe_div(10.0, 4.0), 2.5); }

TEST(SafeDiv, ZeroDenominatorFallback) {
  EXPECT_DOUBLE_EQ(safe_div(10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_div(10.0, 0.0, -1.0), -1.0);
}

TEST(GeneralizedHarmonic, KnownValues) {
  // H_{1,s} = 1 for any s.
  EXPECT_DOUBLE_EQ(generalized_harmonic(1, 2.0), 1.0);
  // H_{3,1} = 1 + 1/2 + 1/3.
  EXPECT_NEAR(generalized_harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  // H_{2,2} = 1 + 1/4.
  EXPECT_NEAR(generalized_harmonic(2, 2.0), 1.25, 1e-12);
}

TEST(GeneralizedHarmonic, ConvergesTowardZeta) {
  // H_{n,2} -> pi^2/6 as n grows.
  EXPECT_NEAR(generalized_harmonic(100000, 2.0), M_PI * M_PI / 6.0, 1e-4);
}

TEST(GeneralizedHarmonic, MonotoneInN) {
  EXPECT_LT(generalized_harmonic(10, 1.2), generalized_harmonic(20, 1.2));
}

TEST(RelativeError, Basics) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.9, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 1.0), 0.0);
}

TEST(RelativeError, FloorPreventsDivideByZero) {
  EXPECT_LT(relative_error(0.0, 0.0), 1e-6);
  EXPECT_GT(relative_error(1.0, 0.0), 1.0);
}

}  // namespace
}  // namespace specpf
