// SimMetrics: the client-side accounting for t̄, h, R and n̄(R).
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace specpf {
namespace {

TEST(SimMetrics, EmptyIsAllZero) {
  SimMetrics m;
  EXPECT_EQ(m.requests(), 0u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_access_time(), 0.0);
  EXPECT_DOUBLE_EQ(m.retrieval_time_per_request(), 0.0);
  EXPECT_DOUBLE_EQ(m.retrievals_per_request(), 0.0);
}

TEST(SimMetrics, HitRatioCountsAllAccessKinds) {
  SimMetrics m;
  m.record_hit();                 // free hit
  m.record_inflight_hit(0.25);    // hit with residual wait
  m.record_miss(1.0);             // demand fetch
  m.record_miss(3.0);
  EXPECT_EQ(m.requests(), 4u);
  EXPECT_EQ(m.hits(), 2u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.5);
}

TEST(SimMetrics, AccessTimeAveragesHitsAtTheirWait) {
  SimMetrics m;
  m.record_hit();              // 0
  m.record_inflight_hit(0.4);  // 0.4
  m.record_miss(2.0);          // 2.0
  EXPECT_DOUBLE_EQ(m.mean_access_time(), (0.0 + 0.4 + 2.0) / 3.0);
}

TEST(SimMetrics, RetrievalPerRequestSumsBothJobKinds) {
  SimMetrics m;
  m.record_miss(1.0);
  m.record_demand_retrieval(1.0);
  m.record_hit();
  m.record_prefetch_retrieval(0.5);
  m.record_prefetch_retrieval(0.5);
  // R = (1.0 + 0.5 + 0.5) / 2 requests.
  EXPECT_DOUBLE_EQ(m.retrieval_time_per_request(), 1.0);
  // n̄(R) = 3 retrievals / 2 requests.
  EXPECT_DOUBLE_EQ(m.retrievals_per_request(), 1.5);
  EXPECT_EQ(m.demand_retrievals(), 1u);
  EXPECT_EQ(m.prefetch_retrievals(), 2u);
}

TEST(SimMetrics, SeparatesSojournKinds) {
  SimMetrics m;
  m.record_demand_retrieval(2.0);
  m.record_demand_retrieval(4.0);
  m.record_prefetch_retrieval(10.0);
  EXPECT_DOUBLE_EQ(m.mean_demand_sojourn(), 3.0);
  EXPECT_DOUBLE_EQ(m.mean_prefetch_sojourn(), 10.0);
}

TEST(SimMetrics, InflightAccounting) {
  SimMetrics m;
  m.record_inflight_hit(0.2);
  m.record_inflight_hit(0.4);
  EXPECT_EQ(m.inflight_hits(), 2u);
  EXPECT_NEAR(m.mean_inflight_wait(), 0.3, 1e-15);
}

TEST(SimMetrics, WastedPrefetchCounter) {
  SimMetrics m;
  m.record_wasted_prefetch();
  m.record_wasted_prefetch();
  EXPECT_EQ(m.wasted_prefetches(), 2u);
}

TEST(SimMetrics, ResetClearsEverything) {
  SimMetrics m;
  m.record_miss(1.0);
  m.record_demand_retrieval(1.0);
  m.record_inflight_hit(0.3);
  m.record_wasted_prefetch();
  m.reset();
  EXPECT_EQ(m.requests(), 0u);
  EXPECT_EQ(m.demand_retrievals(), 0u);
  EXPECT_EQ(m.inflight_hits(), 0u);
  EXPECT_EQ(m.wasted_prefetches(), 0u);
  EXPECT_DOUBLE_EQ(m.mean_access_time(), 0.0);
}

TEST(SimMetrics, AccessTimeStatsExposeDispersion) {
  SimMetrics m;
  for (double t : {1.0, 2.0, 3.0, 4.0}) m.record_miss(t);
  EXPECT_EQ(m.access_time_stats().count(), 4u);
  EXPECT_DOUBLE_EQ(m.access_time_stats().mean(), 2.5);
  EXPECT_GT(m.access_time_stats().std_error(), 0.0);
}

}  // namespace
}  // namespace specpf
