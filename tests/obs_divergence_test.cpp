// DivergenceDetector trend tests on constructed analytic trajectories —
// the three regimes the detector exists to separate, driven by hand-fed
// recorder rows with known shapes:
//
//   * ρ < 1: an elevated transient that drains exponentially must read
//     stable (the drain-ratio test beats the elevated test);
//   * ρ ≈ 1: a sawtooth plateau around the elevated level — no drain, no
//     sustained growth — must read metastable and never latch divergence;
//   * ρ > 1: flat noise floor, then linear growth from a known t_g — must
//     latch divergent with an onset estimate within two sample intervals
//     of t_g, and the latch must survive a later drain.
//
// Plus the aggregation/wiring contracts: worst-signal-wins across watched
// gauges, watch_plane() attachment by gauge name on a sealed plane, the
// settle-time cutoff, and the min-samples gate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/divergence.hpp"
#include "obs/telemetry.hpp"

namespace specpf {
namespace {

constexpr double kInterval = 0.25;

/// Feeds one value-per-row into gauge 0 at the default cadence, calling
/// evaluate() after every row (the online usage pattern), and returns the
/// final verdict.
StabilityVerdict feed(DivergenceDetector& det, TimeSeriesRecorder& rec,
                      const std::vector<double>& values, double t0 = 0.0) {
  std::vector<double> row(rec.num_gauges(), 0.0);
  StabilityVerdict v = StabilityVerdict::kStable;
  for (std::size_t i = 0; i < values.size(); ++i) {
    row[0] = values[i];
    rec.record(t0 + kInterval * static_cast<double>(i), row);
    v = det.evaluate();
  }
  return v;
}

TEST(DivergenceDetector, DecayingTransientReadsStable) {
  TimeSeriesRecorder rec;
  rec.configure(/*num_gauges=*/1, /*capacity=*/512, kInterval);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "link.depth_ewma", det.config().depth_level);

  // Queue depth 40·exp(-t/4): starts well above the elevated level but
  // drains monotonically — the ρ < 1 shape after a burst.
  std::vector<double> traj;
  for (int i = 0; i < 120; ++i) {
    traj.push_back(40.0 * std::exp(-kInterval * i / 4.0));
  }
  EXPECT_EQ(feed(det, rec, traj), StabilityVerdict::kStable);
  EXPECT_LT(det.onset_time(), 0.0);
  EXPECT_TRUE(det.onset_signal().empty());
}

TEST(DivergenceDetector, SawtoothPlateauReadsMetastableWithoutLatching) {
  TimeSeriesRecorder rec;
  rec.configure(1, 512, kInterval);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "link.depth_ewma", det.config().depth_level);

  // Elevated sawtooth around 10 (level is 8): every other step dips 15%,
  // beyond the 10% tolerance, so no growth run ever sustains; the last
  // value never falls under drain_ratio · window-peak either. ρ ≈ 1: the
  // queue neither empties nor provably grows.
  std::vector<double> traj;
  for (int i = 0; i < 160; ++i) traj.push_back(i % 2 == 0 ? 10.0 : 8.5);
  std::vector<double> row(1, 0.0);
  for (std::size_t i = 0; i < traj.size(); ++i) {
    row[0] = traj[i];
    rec.record(kInterval * static_cast<double>(i), row);
    // Never divergent at any point along the plateau — a latch here would
    // poison every later verdict.
    EXPECT_NE(det.evaluate(), StabilityVerdict::kDivergent) << "row " << i;
  }
  EXPECT_EQ(det.verdict(), StabilityVerdict::kMetastable);
  EXPECT_LT(det.onset_time(), 0.0);
}

TEST(DivergenceDetector, LinearGrowthLatchesDivergentNearOnset) {
  TimeSeriesRecorder rec;
  rec.configure(1, 512, kInterval);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "link.depth_ewma", det.config().depth_level);

  // Low sawtooth noise floor (dips break any spurious run), then linear
  // growth at 1 job/s from t_g — the empirical ρ > 1 signature.
  const int growth_start = 80;
  const double t_g = kInterval * growth_start;
  std::vector<double> traj;
  for (int i = 0; i < growth_start; ++i) {
    traj.push_back(i % 2 == 0 ? 2.0 : 1.6);
  }
  for (int i = growth_start; i < growth_start + 120; ++i) {
    traj.push_back(1.6 + 1.0 * kInterval * (i - growth_start));
  }
  EXPECT_EQ(feed(det, rec, traj), StabilityVerdict::kDivergent);
  ASSERT_GE(det.onset_time(), 0.0);
  EXPECT_NEAR(det.onset_time(), t_g, 2.0 * kInterval);
  EXPECT_EQ(det.onset_signal(), "link.depth_ewma");
  EXPECT_GT(det.peak(0), det.config().depth_level);

  // The latch is final: a full drain afterwards must not downgrade the
  // verdict (an aborted run was still provably unstable while it grew).
  std::vector<double> drain;
  for (int i = 0; i < 80; ++i) drain.push_back(0.5);
  const double t_end = kInterval * static_cast<double>(traj.size());
  EXPECT_EQ(feed(det, rec, drain, t_end), StabilityVerdict::kDivergent);
  EXPECT_NEAR(det.onset_time(), t_g, 2.0 * kInterval);
}

TEST(DivergenceDetector, WorstSignalWinsAcrossGauges) {
  TimeSeriesRecorder rec;
  rec.configure(/*num_gauges=*/2, /*capacity=*/512, kInterval);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "shard0/link.depth_ewma", det.config().depth_level);
  det.watch(rec, 1, "shard1/link.depth_ewma", det.config().depth_level);
  ASSERT_EQ(det.num_signals(), 2u);

  // Gauge 0 drains; gauge 1 grows past the level. Fleet verdict = worst.
  std::vector<double> row(2, 0.0);
  for (int i = 0; i < 120; ++i) {
    row[0] = 20.0 * std::exp(-kInterval * i / 4.0);
    row[1] = i % 2 == 0 && i < 40 ? 1.0
                                  : 0.8 + 0.8 * kInterval * (i >= 40 ? i - 40 : 0);
    rec.record(kInterval * i, row);
    det.evaluate();
  }
  EXPECT_EQ(det.verdict(), StabilityVerdict::kDivergent);
  EXPECT_EQ(det.signal_verdict(0), StabilityVerdict::kStable);
  EXPECT_EQ(det.signal_verdict(1), StabilityVerdict::kDivergent);
  EXPECT_EQ(det.onset_signal(), "shard1/link.depth_ewma");
}

TEST(DivergenceDetector, SettleTimeSuppressesColdStartTransient) {
  // The same growth ramp twice: without a settle window it latches (the
  // cold-start transient looks like divergence); with settle_time past the
  // ramp it reads stable. This is the spurious-latch class the field
  // exists to prevent.
  auto run = [](double settle) {
    TimeSeriesRecorder rec;
    rec.configure(1, 512, kInterval);
    DivergenceDetector det;
    DivergenceConfig cfg;
    cfg.settle_time = settle;
    det.configure(cfg);
    det.watch(rec, 0, "link.depth_ewma", cfg.depth_level);
    std::vector<double> traj;
    for (int i = 0; i < 48; ++i) traj.push_back(1.0 + 0.3 * i);  // warmup ramp
    for (int i = 0; i < 80; ++i) traj.push_back(i % 2 == 0 ? 4.0 : 3.3);
    return feed(det, rec, traj);
  };
  EXPECT_EQ(run(0.0), StabilityVerdict::kDivergent);
  EXPECT_EQ(run(48 * kInterval), StabilityVerdict::kStable);
}

TEST(DivergenceDetector, MinSamplesGatesEarlyVerdicts) {
  TimeSeriesRecorder rec;
  rec.configure(1, 512, kInterval);
  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch(rec, 0, "link.depth_ewma", det.config().depth_level);

  // Steep growth, but fewer rows than min_samples: no verdict yet.
  std::vector<double> traj;
  for (std::size_t i = 0; i + 1 < det.config().min_samples; ++i) {
    traj.push_back(10.0 + 5.0 * static_cast<double>(i));
  }
  EXPECT_EQ(feed(det, rec, traj), StabilityVerdict::kStable);
}

TEST(DivergenceDetector, WatchPlaneAttachesRegisteredGaugesOnly) {
  TelemetryConfig cfg;
  cfg.sample_interval = kInterval;
  TelemetryPlane plane(cfg);
  TelemetryRegistry& reg = plane.registry();
  const auto g_depth = reg.register_gauge("link.depth_ewma", "jobs");
  reg.register_gauge("link.queue_depth", "jobs");  // not divergence-relevant
  const auto g_util = reg.register_gauge("link.util_ewma", "ratio");
  double depth = 0.0;
  plane.set_gauge_source([&, g_depth, g_util](TelemetryRegistry& r) {
    r.set_gauge(g_depth, depth);
    r.set_gauge(g_util, 0.2);
  });
  plane.seal();

  DivergenceDetector det;
  det.configure(DivergenceConfig{});
  det.watch_plane(plane, "shard0/");
  // Two of the six candidate names are registered; the raw queue-depth
  // gauge is not a candidate, and the origin.* names are absent.
  ASSERT_EQ(det.num_signals(), 2u);
  EXPECT_EQ(det.signal_name(0), "shard0/link.depth_ewma");
  EXPECT_EQ(det.signal_name(1), "shard0/link.util_ewma");

  // Drive the plane through a growth ramp; the detector reads the sealed
  // recorder directly.
  for (int i = 0; i < 120; ++i) {
    depth = i < 40 ? (i % 2 == 0 ? 1.0 : 0.8)
                   : 0.8 + 0.6 * kInterval * (i - 40);
    plane.sample_now(kInterval * i);
    det.evaluate();
  }
  EXPECT_EQ(det.verdict(), StabilityVerdict::kDivergent);
  EXPECT_EQ(det.onset_signal(), "shard0/link.depth_ewma");
  EXPECT_EQ(det.signal_verdict(1), StabilityVerdict::kStable);  // util at 0.2
}

}  // namespace
}  // namespace specpf
