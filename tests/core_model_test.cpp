// Core analytical model: transcription cross-checks (explicit Model A/B
// formulas vs the generalised victim-value implementation), the paper's
// worked parameter points, and the structural properties the paper proves.
#include <gtest/gtest.h>

#include <cmath>

#include "core/interaction.hpp"
#include "core/model_a.hpp"
#include "core/model_b.hpp"
#include "core/no_prefetch.hpp"
#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf::core {
namespace {

SystemParams paper_params(double hit_ratio) {
  // The evaluation setting of Figs. 2–3: s̄=1, λ=30, b=50.
  SystemParams p;
  p.bandwidth = 50.0;
  p.request_rate = 30.0;
  p.mean_item_size = 1.0;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

// ---------------------------------------------------------------------------
// No-prefetch baseline (§2.3)
// ---------------------------------------------------------------------------

TEST(NoPrefetch, PaperEquationValues) {
  const auto r = analyze_no_prefetch(paper_params(0.0));
  EXPECT_DOUBLE_EQ(r.utilization, 0.6);  // ρ' = 30/50
  // Eq. (4): r̄' = 1/(50·0.4) = 0.05; eq. (5): t̄' = f'·r̄' = 0.05.
  EXPECT_DOUBLE_EQ(r.retrieval_time, 0.05);
  EXPECT_DOUBLE_EQ(r.access_time, 0.05);
}

TEST(NoPrefetch, HitRatioScalesUtilization) {
  const auto r = analyze_no_prefetch(paper_params(0.3));
  EXPECT_NEAR(r.utilization, 0.42, 1e-12);  // 0.7·30/50
  // t̄' = f's̄/(b − f'λs̄) = 0.7/(50−21) = 0.0241379...
  EXPECT_NEAR(r.access_time, 0.7 / 29.0, 1e-12);
}

TEST(NoPrefetch, ZeroRequestsMeansZeroUtilization) {
  SystemParams p = paper_params(0.0);
  p.request_rate = 0.0;
  const auto r = analyze_no_prefetch(p);
  EXPECT_DOUBLE_EQ(r.utilization, 0.0);
  EXPECT_DOUBLE_EQ(r.access_time, p.mean_item_size / p.bandwidth);
}

TEST(NoPrefetch, RejectsOverloadedSystem) {
  SystemParams p = paper_params(0.0);
  p.request_rate = 60.0;  // ρ' = 1.2
  EXPECT_THROW(analyze_no_prefetch(p), ContractViolation);
}

TEST(SystemParams, MaxCandidatesEquationSix) {
  EXPECT_DOUBLE_EQ(max_candidates(paper_params(0.0), 0.5), 2.0);
  EXPECT_DOUBLE_EQ(max_candidates(paper_params(0.3), 0.7), 1.0);
  EXPECT_THROW(max_candidates(paper_params(0.0), 0.0), ContractViolation);
}

TEST(SystemParams, ValidationRejectsOutOfDomain) {
  SystemParams p = paper_params(0.0);
  p.bandwidth = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = paper_params(0.0);
  p.hit_ratio = 1.5;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = paper_params(0.0);
  p.mean_item_size = -1.0;
  EXPECT_THROW(p.validate(), ContractViolation);
}

// ---------------------------------------------------------------------------
// Model A explicit formulas vs generalised implementation
// ---------------------------------------------------------------------------

struct Point {
  double hit_ratio, p, nf;
};

class ModelCrossCheck : public ::testing::TestWithParam<Point> {};

TEST_P(ModelCrossCheck, ModelAMatchesGeneralisedQZero) {
  const auto [h, p, nf] = GetParam();
  const SystemParams params = paper_params(h);
  const OperatingPoint op{p, nf};
  const auto general = analyze(params, op, InteractionModel::kModelA);
  EXPECT_NEAR(general.hit_ratio, model_a::hit_ratio(params, p, nf), 1e-12);
  EXPECT_NEAR(general.utilization, model_a::utilization(params, p, nf), 1e-12);
  EXPECT_NEAR(general.retrieval_time, model_a::retrieval_time(params, p, nf),
              1e-12);
  EXPECT_NEAR(general.access_time, model_a::access_time(params, p, nf), 1e-12);
  EXPECT_NEAR(general.gain, model_a::gain(params, p, nf), 1e-12);
  EXPECT_NEAR(general.threshold, model_a::threshold(params), 1e-12);
}

TEST_P(ModelCrossCheck, ModelBMatchesGeneralisedQHOverNc) {
  const auto [h, p, nf] = GetParam();
  const SystemParams params = paper_params(h);
  const OperatingPoint op{p, nf};
  const auto general = analyze(params, op, InteractionModel::kModelB);
  EXPECT_NEAR(general.hit_ratio, model_b::hit_ratio(params, p, nf), 1e-12);
  EXPECT_NEAR(general.utilization, model_b::utilization(params, p, nf), 1e-12);
  EXPECT_NEAR(general.retrieval_time, model_b::retrieval_time(params, p, nf),
              1e-12);
  EXPECT_NEAR(general.access_time, model_b::access_time(params, p, nf), 1e-12);
  EXPECT_NEAR(general.gain, model_b::gain(params, p, nf), 1e-12);
  EXPECT_NEAR(general.threshold, model_b::threshold(params), 1e-12);
}

TEST_P(ModelCrossCheck, GainIsAccessTimeDifferenceBothModels) {
  // G (factored form, eqs. 11/19) must equal t̄' − t̄ computed directly.
  const auto [h, p, nf] = GetParam();
  const SystemParams params = paper_params(h);
  const OperatingPoint op{p, nf};
  for (auto model : {InteractionModel::kModelA, InteractionModel::kModelB}) {
    const auto a = analyze(params, op, model);
    if (!a.conditions.total_within_capacity) continue;
    EXPECT_NEAR(a.gain, a.baseline.access_time - a.access_time, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelCrossCheck,
    ::testing::Values(Point{0.0, 0.1, 0.2}, Point{0.0, 0.5, 0.5},
                      Point{0.0, 0.7, 1.0}, Point{0.0, 0.9, 1.1},
                      Point{0.3, 0.2, 0.4}, Point{0.3, 0.5, 1.0},
                      Point{0.3, 0.8, 0.5}, Point{0.3, 0.9, 0.7},
                      Point{0.6, 0.95, 0.3}, Point{0.5, 0.75, 0.6}));

// ---------------------------------------------------------------------------
// Thresholds (eqs. 13 and 21) and the headline sign property
// ---------------------------------------------------------------------------

TEST(Threshold, ModelAEqualsRhoPrime) {
  // Paper's example: s̄=1, λ=30, b=50 ⇒ p_th = 0.6 (h'=0), 0.42 (h'=0.3).
  EXPECT_DOUBLE_EQ(threshold(paper_params(0.0), InteractionModel::kModelA),
                   0.6);
  EXPECT_NEAR(threshold(paper_params(0.3), InteractionModel::kModelA), 0.42,
              1e-12);
}

TEST(Threshold, ModelBAddsVictimValue) {
  const SystemParams p = paper_params(0.3);
  EXPECT_NEAR(threshold(p, InteractionModel::kModelB), 0.42 + 0.3 / 100.0,
              1e-12);
}

TEST(Threshold, GapIsAtMostInverseCacheSize) {
  // §6: p_th(B) − p_th(A) = h'/n̄(C) ≤ 1/n̄(C) since h' ≤ 1.
  for (double h : {0.0, 0.2, 0.5, 0.9}) {
    for (double nc : {5.0, 50.0, 500.0}) {
      SystemParams p = paper_params(h);
      p.cache_items = nc;
      const double gap = threshold(p, InteractionModel::kModelB) -
                         threshold(p, InteractionModel::kModelA);
      EXPECT_NEAR(gap, h / nc, 1e-12);
      EXPECT_LE(gap, 1.0 / nc + 1e-12);
    }
  }
}

class SignProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SignProperty, GainSignDeterminedExclusivelyByThreshold) {
  // The paper's central claim: for any n̄(F) in (0, max(np)],
  //  * if p > p_th, condition 3 holds automatically (the eq. 14/22
  //    redundancy argument) and G > 0;
  //  * if p < p_th and the system is still stable, G < 0 — prefetching at
  //    sub-threshold probabilities always hurts (when it saturates the
  //    system instead, the closed forms no longer apply).
  const auto [h, p, nf_frac] = GetParam();
  const SystemParams params = paper_params(h);
  for (auto model : {InteractionModel::kModelA, InteractionModel::kModelB}) {
    const double q = victim_value(params, model);
    if (p <= q) continue;  // below victim value: not a meaningful candidate
    const double nf = nf_frac * params.fault_ratio() / p;  // ≤ max(np)
    if (nf <= 0.0) continue;
    const auto a = analyze(params, {p, nf}, model);
    const double pth = a.threshold;
    if (p > pth + 1e-9) {
      ASSERT_TRUE(a.conditions.total_within_capacity)
          << "condition 3 must be redundant above threshold, h=" << h
          << " p=" << p;
      EXPECT_GT(a.gain, 0.0);
    } else if (p < pth - 1e-9) {
      if (a.conditions.total_within_capacity) EXPECT_LT(a.gain, 0.0);
    } else if (a.conditions.total_within_capacity) {
      EXPECT_NEAR(a.gain, 0.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SignProperty,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.5),
                       ::testing::Values(0.1, 0.3, 0.42, 0.5, 0.6, 0.7, 0.9),
                       ::testing::Values(0.25, 0.5, 1.0)));

// ---------------------------------------------------------------------------
// Monotonicity of G in n̄(F) (paper §3.1 argument below Fig. 2)
// ---------------------------------------------------------------------------

class Monotonicity : public ::testing::TestWithParam<double> {};

TEST_P(Monotonicity, GainMonotoneInPrefetchRateWhileStable) {
  // Paper §3.1: for fixed p ≠ p_th, |G| grows monotonically in n̄(F)
  // (numerator grows in magnitude, denominator shrinks but stays positive).
  // The "stays positive" premise is automatic for p > p_th (condition-3
  // redundancy); for p < p_th it bounds the sweep at the capacity limit.
  const double p = GetParam();
  for (double h : {0.0, 0.3}) {
    const SystemParams params = paper_params(h);
    const double pth = threshold(params, InteractionModel::kModelA);
    const double max_np = params.fault_ratio() / p;
    const double cap =
        prefetch_rate_capacity_limit(params, p, InteractionModel::kModelA);
    const double nf_end = std::min(max_np, cap * (1.0 - 1e-9));
    double prev = 0.0;
    bool first = true;
    for (double nf = nf_end / 32.0; nf <= nf_end + 1e-12;
         nf += nf_end / 32.0) {
      const double g = model_a::gain(params, p, nf);
      if (!first) {
        if (p > pth + 1e-9) {
          EXPECT_GT(g, prev) << "p=" << p << " nf=" << nf;
        } else if (p < pth - 1e-9) {
          EXPECT_LT(g, prev) << "p=" << p << " nf=" << nf;
        }
      }
      prev = g;
      first = false;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ProbabilityGrid, Monotonicity,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

// ---------------------------------------------------------------------------
// Condition redundancy (eqs. 12–14, 20–22)
// ---------------------------------------------------------------------------

TEST(Conditions, Condition3RedundantWithinMaxNpModelA) {
  // Eq. (14): at the least useful bandwidth the n̄(F) bound equals f'/p =
  // max(np), so staying within max(np) keeps condition 3 satisfied.
  for (double h : {0.0, 0.3, 0.6}) {
    SystemParams params = paper_params(h);
    for (double p : {0.65, 0.7, 0.8, 0.95}) {
      const double limit =
          prefetch_rate_limit_at_min_bandwidth(params, p,
                                               InteractionModel::kModelA);
      EXPECT_NEAR(limit, params.fault_ratio() / p, 1e-12);
      EXPECT_GE(limit, max_candidates(params, p) - 1e-12);
    }
  }
}

TEST(Conditions, Condition3BoundExceedsMaxNpModelB) {
  // Eq. (22): f'/(p − h'/n̄(C)) > f'/p.
  SystemParams params = paper_params(0.3);
  for (double p : {0.5, 0.7, 0.9}) {
    const double limit = prefetch_rate_limit_at_min_bandwidth(
        params, p, InteractionModel::kModelB);
    EXPECT_GT(limit, max_candidates(params, p));
  }
}

TEST(Conditions, CapacityLimitAtActualBandwidth) {
  const SystemParams params = paper_params(0.0);
  // b − f'λs̄ = 20; coefficient (1−p)λs̄ = 15 at p=0.5 ⇒ n̄(F) < 4/3.
  const double lim = prefetch_rate_capacity_limit(params, 0.5,
                                                  InteractionModel::kModelA);
  EXPECT_NEAR(lim, 20.0 / 15.0, 1e-12);
  const auto at_limit = analyze(params, {0.5, lim - 1e-9},
                                InteractionModel::kModelA);
  EXPECT_TRUE(at_limit.conditions.total_within_capacity);
  const auto beyond = analyze(params, {0.5, lim + 1e-6},
                              InteractionModel::kModelA);
  EXPECT_FALSE(beyond.conditions.total_within_capacity);
}

TEST(Conditions, PerfectProbabilityNeverSaturates) {
  // p = 1 under Model A: every prefetch replaces a demand fetch one-for-one,
  // so no n̄(F) can overload the system.
  const SystemParams params = paper_params(0.0);
  EXPECT_TRUE(std::isinf(prefetch_rate_capacity_limit(
      params, 1.0, InteractionModel::kModelA)));
}

TEST(Conditions, Condition2FollowsFromBaselineStability) {
  const auto a = analyze(paper_params(0.3), {0.5, 0.5},
                         InteractionModel::kModelA);
  EXPECT_TRUE(a.conditions.demand_within_capacity);
}

// ---------------------------------------------------------------------------
// §6: Model A approximates Model B for large caches
// ---------------------------------------------------------------------------

TEST(ModelComparison, ObservablesConvergeAsCacheGrows) {
  const OperatingPoint op{0.7, 1.0};
  double prev_gap = 1e9;
  for (double nc : {10.0, 100.0, 1000.0, 10000.0}) {
    SystemParams params = paper_params(0.3);
    params.cache_items = nc;
    const auto a = analyze(params, op, InteractionModel::kModelA);
    const auto b = analyze(params, op, InteractionModel::kModelB);
    const double gap = std::abs(a.gain - b.gain);
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 1e-4);
}

TEST(ModelComparison, ModelAbLiesBetweenAandB) {
  // §6's "more realistic" model AB: victim value q ∈ (0, h'/n̄(C)) must give
  // results bracketed by the two extremes.
  const SystemParams params = paper_params(0.4);
  const OperatingPoint op{0.8, 0.5};
  const double qb = victim_value(params, InteractionModel::kModelB);
  const auto a = analyze(params, op, InteractionModel::kModelA);
  const auto b = analyze(params, op, InteractionModel::kModelB);
  const auto ab = analyze_with_victim_value(params, op, qb / 2.0);
  EXPECT_GT(ab.gain, b.gain);
  EXPECT_LT(ab.gain, a.gain);
  EXPECT_GT(ab.threshold, a.threshold);
  EXPECT_LT(ab.threshold, b.threshold);
  EXPECT_LT(ab.hit_ratio, a.hit_ratio);
  EXPECT_GT(ab.hit_ratio, b.hit_ratio);
}

TEST(ModelComparison, HitRatioAlwaysImprovesUnderModelA) {
  // Model A's defining property: h ≥ h' for any prefetching.
  for (double h : {0.0, 0.3, 0.7}) {
    const SystemParams params = paper_params(h);
    for (double p : {0.1, 0.5, 0.9}) {
      for (double nf : {0.1, 0.5, 1.0}) {
        if (nf * p > params.fault_ratio()) continue;
        EXPECT_GE(model_a::hit_ratio(params, p, nf), params.hit_ratio);
      }
    }
  }
}

TEST(ModelComparison, ModelBHitRatioCanDegrade) {
  // With p below h'/n̄(C), prefetching under Model B *lowers* the hit ratio.
  SystemParams params = paper_params(0.8);
  params.cache_items = 10.0;  // victim value 0.08
  EXPECT_LT(model_b::hit_ratio(params, 0.05, 1.0), params.hit_ratio);
}

TEST(ZeroPrefetchRate, ReducesToBaselineExactly) {
  for (double h : {0.0, 0.3}) {
    const SystemParams params = paper_params(h);
    for (auto model : {InteractionModel::kModelA, InteractionModel::kModelB}) {
      const auto a = analyze(params, {0.5, 0.0}, model);
      EXPECT_DOUBLE_EQ(a.gain, 0.0);
      EXPECT_NEAR(a.hit_ratio, params.hit_ratio, 1e-12);
      EXPECT_NEAR(a.access_time, a.baseline.access_time, 1e-12);
      EXPECT_NEAR(a.utilization, a.baseline.utilization, 1e-12);
    }
  }
}

}  // namespace
}  // namespace specpf::core
