#include <gtest/gtest.h>

#include "queueing/mg1_ps.hpp"
#include "queueing/mm1.hpp"
#include "util/contract.hpp"

namespace specpf {
namespace {

TEST(MG1PS, UtilizationIsLambdaTimesService) {
  MG1PS q(30.0, 1.0 / 50.0);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.6);
  EXPECT_TRUE(q.stable());
}

TEST(MG1PS, SojournMatchesPaperEquationTwo) {
  // Paper eq. (2): r̄ = x/(1-ρ).
  MG1PS q(30.0, 0.02);  // ρ = 0.6
  EXPECT_DOUBLE_EQ(q.mean_sojourn_for(0.02), 0.02 / 0.4);
  EXPECT_DOUBLE_EQ(q.mean_sojourn(), 0.05);
}

TEST(MG1PS, SojournLinearInServiceRequirement) {
  MG1PS q(10.0, 0.05);  // ρ = 0.5
  EXPECT_DOUBLE_EQ(q.mean_sojourn_for(0.2), 2.0 * q.mean_sojourn_for(0.1));
}

TEST(MG1PS, SlowdownDivergesNearSaturation) {
  MG1PS q(99.0, 0.01);  // ρ = 0.99
  EXPECT_NEAR(q.slowdown(), 100.0, 1e-9);
}

TEST(MG1PS, LittlesLawConsistency) {
  MG1PS q(20.0, 0.03);  // ρ = 0.6
  EXPECT_NEAR(q.mean_jobs_in_system(),
              q.arrival_rate() * q.mean_sojourn(), 1e-12);
}

TEST(MG1PS, UnstableSystemRejectsSojournQuery) {
  MG1PS q(100.0, 0.02);  // ρ = 2
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.mean_sojourn(), ContractViolation);
}

TEST(MG1PS, RejectsBadConstruction) {
  EXPECT_THROW(MG1PS(-1.0, 0.1), ContractViolation);
  EXPECT_THROW(MG1PS(1.0, 0.0), ContractViolation);
}

TEST(MM1, ClassicFormulas) {
  MM1 q(3.0, 5.0);  // ρ = 0.6
  EXPECT_DOUBLE_EQ(q.utilization(), 0.6);
  EXPECT_DOUBLE_EQ(q.mean_sojourn(), 0.5);           // 1/(5-3)
  EXPECT_NEAR(q.mean_wait(), 0.3, 1e-12);            // ρ/(μ-λ)
  EXPECT_NEAR(q.mean_jobs_in_system(), 1.5, 1e-12);  // ρ/(1-ρ)
}

TEST(MM1, StationaryDistributionSumsToOne) {
  MM1 q(4.0, 5.0);
  double total = 0.0;
  for (std::size_t n = 0; n < 200; ++n) total += q.prob_n_jobs(n);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MM1, SojournDecomposesIntoWaitPlusService) {
  MM1 q(2.0, 8.0);
  EXPECT_NEAR(q.mean_sojourn(), q.mean_wait() + 1.0 / 8.0, 1e-12);
}

TEST(MG1Fcfs, PollaczekKhinchineMatchesMm1SpecialCase) {
  // For exponential service (E[S²] = 2/μ²), PK reduces to the M/M/1 wait.
  const double lambda = 3.0, mu = 5.0;
  const double pk =
      mg1_fcfs_mean_wait(lambda, 1.0 / mu, 2.0 / (mu * mu));
  MM1 q(lambda, mu);
  EXPECT_NEAR(pk, q.mean_wait(), 1e-12);
}

TEST(MG1Fcfs, DeterministicServiceHalvesWait) {
  // E[S²] = x² for deterministic vs 2x² for exponential: half the wait.
  const double lambda = 3.0, x = 0.2;
  const double det = mg1_fcfs_mean_wait(lambda, x, x * x);
  const double exp = mg1_fcfs_mean_wait(lambda, x, 2 * x * x);
  EXPECT_NEAR(det * 2.0, exp, 1e-12);
}

TEST(MG1Fcfs, RejectsUnstable) {
  EXPECT_THROW(mg1_fcfs_mean_wait(10.0, 0.2, 0.08), ContractViolation);
}

}  // namespace
}  // namespace specpf
