// Regression pins for the reproduced figures: exact closed-form values at
// named grid points of Figs. 1–3 and the §6 table. If a refactor of the
// core algebra shifts any of these, a figure would silently change shape —
// these tests catch that before the benches do.
#include <gtest/gtest.h>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "core/model_a.hpp"
#include "core/model_b.hpp"

namespace specpf::core {
namespace {

SystemParams params_at(double hit_ratio, double bandwidth = 50.0,
                       double size = 1.0) {
  SystemParams p;
  p.bandwidth = bandwidth;
  p.request_rate = 30.0;
  p.mean_item_size = size;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

// --- Fig. 1 pins: p_th = f'λs/b ---

TEST(Fig1Pins, PanelHZero) {
  EXPECT_DOUBLE_EQ(model_a::threshold(params_at(0.0, 50.0, 1.0)), 0.6);
  EXPECT_DOUBLE_EQ(model_a::threshold(params_at(0.0, 100.0, 1.0)), 0.3);
  EXPECT_DOUBLE_EQ(model_a::threshold(params_at(0.0, 300.0, 5.0)), 0.5);
  EXPECT_DOUBLE_EQ(model_a::threshold(params_at(0.0, 450.0, 10.0)),
                   30.0 * 10.0 / 450.0);
}

TEST(Fig1Pins, PanelHPointThree) {
  EXPECT_NEAR(model_a::threshold(params_at(0.3, 50.0, 1.0)), 0.42, 1e-12);
  EXPECT_NEAR(model_a::threshold(params_at(0.3, 150.0, 2.0)), 0.28, 1e-12);
  // Panel ratio: h'=0.3 thresholds are exactly 0.7× the h'=0 ones.
  for (double b : {50.0, 200.0, 450.0}) {
    for (double s : {0.5, 3.0, 8.0}) {
      EXPECT_NEAR(model_a::threshold(params_at(0.3, b, s)),
                  0.7 * model_a::threshold(params_at(0.0, b, s)), 1e-12);
    }
  }
}

// --- Fig. 2 pins: G values on the plotted grid (h'=0 panel) ---

TEST(Fig2Pins, PanelHZeroSpotValues) {
  const SystemParams p = params_at(0.0);
  // From the regenerated table: G(p=0.7, nF=2.0) = 0.25 exactly:
  // 2·1·(35−30)/((20)(50−30−2·0.3·30)) = 10/(20·2) = 0.25.
  EXPECT_NEAR(model_a::gain(p, 0.7, 2.0), 0.25, 1e-12);
  // G(p=0.9, nF=1.0) = 1·(45−30)/((20)(50−30−3)) = 15/340.
  EXPECT_NEAR(model_a::gain(p, 0.9, 1.0), 15.0 / 340.0, 1e-12);
  // G(p=0.5, nF=1.0) = (25−30)/((20)(50−30−15)) = −5/100.
  EXPECT_NEAR(model_a::gain(p, 0.5, 1.0), -0.05, 1e-12);
  // p = p_th ⇒ identically zero at any admissible nF.
  for (double nf : {0.2, 0.8, 1.4}) {
    EXPECT_NEAR(model_a::gain(p, 0.6, nf), 0.0, 1e-15);
  }
}

TEST(Fig2Pins, PanelHPointThreeSpotValues) {
  const SystemParams p = params_at(0.3);
  // p_th = 0.42: G(0.5, 1.0) = 1·(25−21)/((29)(50−21−15)) = 4/(29·14).
  EXPECT_NEAR(model_a::gain(p, 0.5, 1.0), 4.0 / (29.0 * 14.0), 1e-12);
  // Below threshold: G(0.3, 0.5) = 0.5·(15−21)/((29)(50−21−0.5·0.7·30))
  EXPECT_NEAR(model_a::gain(p, 0.3, 0.5),
              0.5 * (15.0 - 21.0) / (29.0 * (29.0 - 10.5)), 1e-12);
}

// --- Fig. 3 pins: C = (ρ−ρ')/(λ(1−ρ)(1−ρ')) ---

TEST(Fig3Pins, SpotValues) {
  const SystemParams p = params_at(0.0);
  // p=0.5, nF=1: ρ = (1−0.5+1)·0.6 = 0.9, ρ' = 0.6.
  {
    const auto a = analyze(p, {0.5, 1.0}, InteractionModel::kModelA);
    EXPECT_NEAR(a.utilization, 0.9, 1e-12);
    EXPECT_NEAR(excess_cost(a.utilization, 0.6, 30.0),
                0.3 / (30.0 * 0.1 * 0.4), 1e-12);
  }
  // p=0.9, nF=1: ρ = (1−0.9+1)·0.6 = 0.66.
  {
    const auto a = analyze(p, {0.9, 1.0}, InteractionModel::kModelA);
    EXPECT_NEAR(excess_cost(a.utilization, 0.6, 30.0),
                0.06 / (30.0 * 0.34 * 0.4), 1e-12);
  }
}

// --- §6 table pins ---

TEST(Section6Pins, ThresholdGapAndConvergence) {
  const OperatingPoint op{0.7, 1.0};
  SystemParams p = params_at(0.3);
  p.cache_items = 20.0;
  EXPECT_NEAR(model_b::threshold(p) - model_a::threshold(p), 0.015, 1e-12);
  EXPECT_NEAR(model_a::hit_ratio(p, op.access_probability, op.prefetch_rate),
              1.0, 1e-12);
  EXPECT_NEAR(model_b::hit_ratio(p, op.access_probability, op.prefetch_rate),
              0.985, 1e-12);
  // Exact G values listed in the regenerated §6 table at n̄(C)=20.
  EXPECT_NEAR(model_a::gain(p, 0.7, 1.0), 0.02414, 5e-6);
  EXPECT_NEAR(model_b::gain(p, 0.7, 1.0), 0.02337, 5e-6);
}

// --- reference-point constants quoted throughout the docs ---

TEST(ReferencePins, NoPrefetchBaselines) {
  const auto h0 = analyze_no_prefetch(params_at(0.0));
  EXPECT_DOUBLE_EQ(h0.access_time, 0.05);
  EXPECT_DOUBLE_EQ(h0.utilization, 0.6);
  const auto h3 = analyze_no_prefetch(params_at(0.3));
  EXPECT_NEAR(h3.access_time, 0.7 / 29.0, 1e-15);
  EXPECT_NEAR(h3.utilization, 0.42, 1e-15);
}

}  // namespace
}  // namespace specpf::core
