// Processor-sharing and FIFO server tests: exact sharing behaviour on
// hand-constructed scenarios, then statistical agreement with M/G/1-PS and
// Pollaczek–Khinchine closed forms (the paper's eq. 2 substrate).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "net/fifo_server.hpp"
#include "util/contract.hpp"
#include "net/ps_server.hpp"
#include "queueing/mg1_ps.hpp"
#include "queueing/mm1.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

TEST(PsServer, SingleJobRunsAtFullBandwidth) {
  Simulator sim;
  PsServer server(sim, 10.0);
  double finish = -1.0;
  server.submit(5.0, [&](const TransferResult& r) { finish = r.finish_time; });
  sim.run();
  EXPECT_DOUBLE_EQ(finish, 0.5);  // 5 units / 10 units-per-s
}

TEST(PsServer, TwoEqualJobsShareEqually) {
  Simulator sim;
  PsServer server(sim, 10.0);
  std::vector<double> finishes;
  server.submit(5.0, [&](const TransferResult& r) {
    finishes.push_back(r.finish_time);
  });
  server.submit(5.0, [&](const TransferResult& r) {
    finishes.push_back(r.finish_time);
  });
  sim.run();
  ASSERT_EQ(finishes.size(), 2u);
  // Each gets 5 units/s: both complete at t = 1.0.
  EXPECT_DOUBLE_EQ(finishes[0], 1.0);
  EXPECT_DOUBLE_EQ(finishes[1], 1.0);
}

TEST(PsServer, ShortJobOvertakesLongJob) {
  Simulator sim;
  PsServer server(sim, 10.0);
  double long_finish = -1, short_finish = -1;
  server.submit(10.0, [&](const TransferResult& r) {
    long_finish = r.finish_time;
  });
  server.submit(2.0, [&](const TransferResult& r) {
    short_finish = r.finish_time;
  });
  sim.run();
  // Both run at 5 u/s; short finishes at 0.4 having consumed 2 units; the
  // long one then speeds up to 10 u/s with 8 units left: 0.4 + 0.8 = 1.2.
  EXPECT_DOUBLE_EQ(short_finish, 0.4);
  EXPECT_DOUBLE_EQ(long_finish, 1.2);
}

TEST(PsServer, LateArrivalSlowsExistingJob) {
  Simulator sim;
  PsServer server(sim, 10.0);
  double first_finish = -1;
  server.submit(10.0, [&](const TransferResult& r) {
    first_finish = r.finish_time;
  });
  sim.schedule_at(0.5, [&] {
    server.submit(10.0, [](const TransferResult&) {});
  });
  sim.run();
  // First job: 5 units alone (0.5s), then shares: needs 5 more units at
  // 5 u/s = 1.0s; finishes at 1.5.
  EXPECT_DOUBLE_EQ(first_finish, 1.5);
}

TEST(PsServer, SojournRecordedPerJob) {
  Simulator sim;
  PsServer server(sim, 1.0);
  double sojourn = -1;
  sim.schedule_at(2.0, [&] {
    server.submit(3.0, [&](const TransferResult& r) { sojourn = r.sojourn(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sojourn, 3.0);
}

TEST(PsServer, ActiveJobsTracksOccupancy) {
  Simulator sim;
  PsServer server(sim, 1.0);
  server.submit(10.0, [](const TransferResult&) {});
  server.submit(10.0, [](const TransferResult&) {});
  EXPECT_EQ(server.active_jobs(), 2u);
  sim.run();
  EXPECT_EQ(server.active_jobs(), 0u);
}

TEST(PsServer, RejectsNonPositiveSize) {
  Simulator sim;
  PsServer server(sim, 1.0);
  EXPECT_THROW(server.submit(0.0, nullptr), ContractViolation);
}

TEST(PsServer, ManyEqualJobsFairness) {
  Simulator sim;
  PsServer server(sim, 10.0);
  std::vector<double> finishes;
  for (int i = 0; i < 10; ++i) {
    server.submit(1.0, [&](const TransferResult& r) {
      finishes.push_back(r.finish_time);
    });
  }
  sim.run();
  // All ten share: each sees 1 u/s; all complete together at t = 1.
  for (double f : finishes) EXPECT_NEAR(f, 1.0, 1e-9);
}

// --- Statistical agreement with queueing theory ---

struct MG1Case {
  double rho;
  bool exponential;  // service-time distribution
};

class PsServerQueueing : public ::testing::TestWithParam<MG1Case> {};

TEST_P(PsServerQueueing, MeanSojournMatchesMG1PS) {
  // Drive Poisson arrivals into the PS server and compare the measured mean
  // sojourn to x̄/(1-ρ) — including the *insensitivity* property (same
  // answer for deterministic and exponential service).
  const auto [rho, exponential] = GetParam();
  const double bandwidth = 10.0;
  const double mean_size = 1.0;
  const double lambda = rho * bandwidth / mean_size;

  Simulator sim;
  PsServer server(sim, bandwidth);
  Rng rng(12345);
  ExponentialDist interarrival(1.0 / lambda);
  std::unique_ptr<Distribution> sizes;
  if (exponential) {
    sizes = std::make_unique<ExponentialDist>(mean_size);
  } else {
    sizes = std::make_unique<DeterministicDist>(mean_size);
  }

  const double warmup = 200.0;
  const double horizon = 6000.0;
  std::function<void()> arrive = [&] {
    server.submit(sizes->sample(rng), nullptr);
    const double dt = interarrival.sample(rng);
    if (sim.now() + dt < horizon) sim.schedule_in(dt, arrive);
  };
  sim.schedule_in(interarrival.sample(rng), arrive);
  sim.schedule_at(warmup, [&] { server.reset_stats(); });
  sim.run_until(horizon);

  const ServerStats stats = server.stats();
  const MG1PS theory(lambda, mean_size / bandwidth);
  ASSERT_GT(stats.completed, 1000u);
  EXPECT_NEAR(stats.mean_sojourn / theory.mean_sojourn(), 1.0, 0.08)
      << "rho=" << rho << " exp=" << exponential;
  EXPECT_NEAR(stats.utilization, rho, 0.03);
  EXPECT_NEAR(stats.mean_jobs_in_system / theory.mean_jobs_in_system(), 1.0,
              0.10);
}

INSTANTIATE_TEST_SUITE_P(
    LoadGrid, PsServerQueueing,
    ::testing::Values(MG1Case{0.3, true}, MG1Case{0.3, false},
                      MG1Case{0.6, true}, MG1Case{0.6, false},
                      MG1Case{0.8, true}, MG1Case{0.8, false}));

TEST(FifoServer, ServesInOrder) {
  Simulator sim;
  FifoServer server(sim, 10.0);
  std::vector<int> order;
  server.submit(5.0, [&](const TransferResult&) { order.push_back(1); });
  server.submit(1.0, [&](const TransferResult&) { order.push_back(2); });
  server.submit(1.0, [&](const TransferResult&) { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FifoServer, QueueingDelaysAccumulate) {
  Simulator sim;
  FifoServer server(sim, 1.0);
  std::vector<double> finishes;
  for (int i = 0; i < 3; ++i) {
    server.submit(2.0, [&](const TransferResult& r) {
      finishes.push_back(r.finish_time);
    });
  }
  sim.run();
  EXPECT_EQ(finishes, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(FifoServer, MatchesMM1Sojourn) {
  const double bandwidth = 10.0, mean_size = 1.0, rho = 0.6;
  const double lambda = rho * bandwidth / mean_size;
  Simulator sim;
  FifoServer server(sim, bandwidth);
  Rng rng(777);
  ExponentialDist interarrival(1.0 / lambda);
  ExponentialDist sizes(mean_size);
  const double horizon = 6000.0;
  std::function<void()> arrive = [&] {
    server.submit(sizes.sample(rng), nullptr);
    const double dt = interarrival.sample(rng);
    if (sim.now() + dt < horizon) sim.schedule_in(dt, arrive);
  };
  sim.schedule_in(interarrival.sample(rng), arrive);
  sim.schedule_at(200.0, [&] { server.reset_stats(); });
  sim.run_until(horizon);

  MM1 theory(lambda, bandwidth / mean_size);
  EXPECT_NEAR(server.stats().mean_sojourn / theory.mean_sojourn(), 1.0, 0.08);
}

TEST(FifoServer, DeterministicServiceBeatsExponentialUnderFCFS) {
  // PK: FCFS wait halves with deterministic service. PS is insensitive —
  // this contrast justifies the paper's choice of the PS model for shared
  // links with heterogeneous transfers.
  const double bandwidth = 10.0, mean_size = 1.0, rho = 0.7;
  const double lambda = rho * bandwidth / mean_size;
  auto run = [&](bool exponential) {
    Simulator sim;
    FifoServer server(sim, bandwidth);
    Rng rng(31337);
    ExponentialDist interarrival(1.0 / lambda);
    ExponentialDist exp_sizes(mean_size);
    DeterministicDist det_sizes(mean_size);
    const double horizon = 8000.0;
    std::function<void()> arrive = [&] {
      const double s =
          exponential ? exp_sizes.sample(rng) : det_sizes.sample(rng);
      server.submit(s, nullptr);
      const double dt = interarrival.sample(rng);
      if (sim.now() + dt < horizon) sim.schedule_in(dt, arrive);
    };
    sim.schedule_in(interarrival.sample(rng), arrive);
    sim.schedule_at(300.0, [&] { server.reset_stats(); });
    sim.run_until(horizon);
    return server.stats().mean_sojourn;
  };
  const double exp_sojourn = run(true);
  const double det_sojourn = run(false);
  EXPECT_LT(det_sojourn, exp_sojourn * 0.85);
}

}  // namespace
}  // namespace specpf
