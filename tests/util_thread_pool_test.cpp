// ThreadPool: the move-only task path (no shared_ptr-per-task), batch
// submission, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace specpf {
namespace {

TEST(MoveOnlyTask, HoldsMoveOnlyCaptures) {
  auto value = std::make_unique<int>(41);
  int out = 0;
  MoveOnlyTask task([v = std::move(value), &out] { out = *v + 1; });
  EXPECT_TRUE(static_cast<bool>(task));
  MoveOnlyTask moved = std::move(task);
  moved();
  EXPECT_EQ(out, 42);
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyCallables) {
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(7);
  auto future = pool.submit([p = std::move(payload)] { return *p * 3; });
  EXPECT_EQ(future.get(), 21);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitBatchRunsEveryTaskInOrderOfFutures) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::function<std::size_t()>> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.emplace_back([i] { return i * i; });
  }
  auto futures = pool.submit_batch(std::move(tasks));
  ASSERT_EQ(futures.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, SubmitBatchOnSingleWorkerCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.emplace_back([&sum, i] { sum.fetch_add(i); });
  }
  auto futures = pool.submit_batch(std::move(tasks));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, EmptyBatchIsFine) {
  ThreadPool pool(2);
  auto futures = pool.submit_batch(std::vector<std::function<void()>>{});
  EXPECT_TRUE(futures.empty());
}

TEST(ThreadPool, BatchTasksWithMoveOnlyState) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  // packaged_task is itself move-only — a queue of MoveOnlyTask must take
  // it without shared_ptr wrapping.
  for (int i = 0; i < 8; ++i) {
    std::packaged_task<int()> t([i] { return i + 100; });
    futures.push_back(t.get_future());
    pool.submit([t = std::move(t)]() mutable { t(); });
  }
  int total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 8 * 100 + 28);
}

}  // namespace
}  // namespace specpf
