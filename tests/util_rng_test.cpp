#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace specpf {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, CopyableSnapshotsState) {
  Rng a(7);
  for (int i = 0; i < 10; ++i) a.next_u64();
  Rng snapshot = a;
  std::vector<std::uint64_t> from_a, from_snapshot;
  for (int i = 0; i < 50; ++i) from_a.push_back(a.next_u64());
  for (int i = 0; i < 50; ++i) from_snapshot.push_back(snapshot.next_u64());
  EXPECT_EQ(from_a, from_snapshot);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(3.0, 7.0);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(17);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.next_below(n), n);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng(23);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(kBuckets)];
  // Chi-square with 9 dof, 99.9% critical value ~27.9.
  const double expected = static_cast<double>(kN) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(29);
  constexpr int kN = 100000;
  int successes = 0;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++successes;
  }
  EXPECT_NEAR(static_cast<double>(successes) / kN, 0.3, 0.01);
}

TEST(Rng, SubstreamsAreReproducible) {
  Rng parent(31);
  Rng s1 = parent.substream(5);
  Rng s2 = Rng(31).substream(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(Rng, SubstreamsAreDecorrelated) {
  Rng parent(37);
  Rng s0 = parent.substream(0);
  Rng s1 = parent.substream(1);
  // Distinct outputs and low agreement across a window.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ManySubstreamsDistinctSeeds) {
  Rng parent(41);
  std::set<std::uint64_t> first_outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    first_outputs.insert(parent.substream(i).next_u64());
  }
  EXPECT_EQ(first_outputs.size(), 1000u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace specpf
