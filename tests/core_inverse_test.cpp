// Inverse (QoS-provisioning) problems: each inversion is checked by
// plugging the answer back into the forward closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "core/inverse.hpp"
#include "core/no_prefetch.hpp"
#include "util/contract.hpp"

namespace specpf::core {
namespace {

SystemParams paper_params(double hit_ratio) {
  SystemParams p;
  p.bandwidth = 50.0;
  p.request_rate = 30.0;
  p.mean_item_size = 1.0;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

TEST(MinBandwidth, RoundTripsThroughEquationFive) {
  for (double h : {0.0, 0.3, 0.7}) {
    for (double target : {0.01, 0.05, 0.2}) {
      SystemParams params = paper_params(h);
      const double b = min_bandwidth_for_access_time(params, target);
      params.bandwidth = b;
      const auto base = analyze_no_prefetch(params);
      EXPECT_NEAR(base.access_time, target, 1e-9)
          << "h=" << h << " target=" << target;
    }
  }
}

TEST(MinBandwidth, PerfectCacheNeedsNoBandwidth) {
  EXPECT_DOUBLE_EQ(min_bandwidth_for_access_time(paper_params(1.0), 0.05),
                   0.0);
}

TEST(MinBandwidth, TighterTargetsNeedMoreBandwidth) {
  const SystemParams params = paper_params(0.3);
  EXPECT_GT(min_bandwidth_for_access_time(params, 0.01),
            min_bandwidth_for_access_time(params, 0.1));
}

TEST(MinBandwidth, PrefetchVariantRoundTrips) {
  const OperatingPoint op{0.7, 0.5};
  for (double target : {0.02, 0.06}) {
    SystemParams params = paper_params(0.3);
    const double b = min_bandwidth_for_access_time(
        params, op, InteractionModel::kModelA, target);
    params.bandwidth = b;
    const auto a = analyze(params, op, InteractionModel::kModelA);
    EXPECT_NEAR(a.access_time, target, 1e-9);
  }
}

TEST(MinBandwidth, PrefetchingItemsAboveThresholdReducesRequirement) {
  // For the same access-time target, a system prefetching good candidates
  // needs *less* bandwidth than the no-prefetch system (that is the point
  // of prefetching); with p below threshold it needs more.
  const SystemParams params = paper_params(0.3);
  const double target = 0.02;
  const double b_plain = min_bandwidth_for_access_time(params, target);
  const double b_good = min_bandwidth_for_access_time(
      params, {0.9, 0.5}, InteractionModel::kModelA, target);
  const double b_bad = min_bandwidth_for_access_time(
      params, {0.1, 0.5}, InteractionModel::kModelA, target);
  EXPECT_LT(b_good, b_plain);
  EXPECT_GT(b_bad, b_plain);
}

TEST(MaxPrefetchRate, RoundTripsThroughAccessTime) {
  const SystemParams params = paper_params(0.3);
  const double p = 0.6;  // above p_th = 0.42: t̄ decreasing in n̄(F)
  const auto base = analyze_no_prefetch(params);
  // Target between t̄(0) and t̄ at the admissible edge: solution interior.
  const double target = base.access_time * 0.8;
  const double nf = max_prefetch_rate_for_access_time(
      params, p, InteractionModel::kModelA, target);
  ASSERT_GT(nf, 0.0);
  const auto a = analyze(params, {p, nf}, InteractionModel::kModelA);
  EXPECT_NEAR(a.access_time, target, 1e-9);
}

TEST(MaxPrefetchRate, SubThresholdBudgetCapsAtTargetViolation) {
  // p below threshold: t̄ increases with n̄(F); budget is how much pollution
  // a latency SLO tolerates.
  const SystemParams params = paper_params(0.3);
  const double p = 0.2;
  const auto base = analyze_no_prefetch(params);
  const double target = base.access_time * 1.2;  // 20% latency headroom
  const double nf = max_prefetch_rate_for_access_time(
      params, p, InteractionModel::kModelA, target);
  ASSERT_GT(nf, 0.0);
  const auto a = analyze(params, {p, nf}, InteractionModel::kModelA);
  EXPECT_NEAR(a.access_time, target, 1e-9);
  // Slightly more prefetching must violate the target.
  const auto beyond = analyze(params, {p, nf * 1.05},
                              InteractionModel::kModelA);
  EXPECT_GT(beyond.access_time, target);
}

TEST(MaxPrefetchRate, UnreachableTargetGivesZero) {
  const SystemParams params = paper_params(0.3);
  const auto base = analyze_no_prefetch(params);
  // Demand a *lower* access time than sub-threshold prefetching can ever
  // give: nothing is admissible.
  EXPECT_DOUBLE_EQ(max_prefetch_rate_for_access_time(
                       params, 0.2, InteractionModel::kModelA,
                       base.access_time * 0.5),
                   0.0);
}

TEST(MaxPrefetchRate, GenerousTargetGivesFullBudget) {
  const SystemParams params = paper_params(0.3);
  const double p = 0.9;
  const double nf = max_prefetch_rate_for_access_time(
      params, p, InteractionModel::kModelA, 10.0);
  EXPECT_NEAR(nf, params.fault_ratio() / p, 1e-9);  // max(np)
}

TEST(MaxPrefetchForUtilization, RoundTripsThroughRho) {
  const SystemParams params = paper_params(0.3);  // ρ' = 0.42
  for (double cap : {0.6, 0.8, 0.95}) {
    const double nf = max_prefetch_rate_for_utilization(
        params, 0.5, InteractionModel::kModelA, cap);
    ASSERT_GT(nf, 0.0);
    if (nf < params.fault_ratio() / 0.5 - 1e-9) {  // cap binding
      const auto a = analyze(params, {0.5, nf}, InteractionModel::kModelA);
      EXPECT_NEAR(a.utilization, cap, 1e-9) << "cap=" << cap;
    }
  }
}

TEST(MaxPrefetchForUtilization, ZeroWhenAlreadyOverCap) {
  const SystemParams params = paper_params(0.3);  // ρ' = 0.42
  EXPECT_DOUBLE_EQ(max_prefetch_rate_for_utilization(
                       params, 0.5, InteractionModel::kModelA, 0.40),
                   0.0);
}

TEST(MaxPrefetchForUtilization, PerfectPredictionGetsFullBudget) {
  const SystemParams params = paper_params(0.3);
  // p=1 under Model A adds no load: budget = max(np) = f'.
  EXPECT_NEAR(max_prefetch_rate_for_utilization(
                  params, 1.0, InteractionModel::kModelA, 0.5),
              params.fault_ratio(), 1e-12);
}

TEST(MaxPrefetchForUtilization, RejectsInvalidCap) {
  const SystemParams params = paper_params(0.3);
  EXPECT_THROW(max_prefetch_rate_for_utilization(
                   params, 0.5, InteractionModel::kModelA, 1.0),
               ContractViolation);
}

TEST(MinProbability, ZeroGainRecoversThreshold) {
  for (double h : {0.0, 0.3, 0.6}) {
    const SystemParams params = paper_params(h);
    for (auto model :
         {InteractionModel::kModelA, InteractionModel::kModelB}) {
      const double p0 =
          min_probability_for_gain(params, 0.5, model, 0.0);
      EXPECT_NEAR(p0, threshold(params, model), 1e-12);
    }
  }
}

TEST(MinProbability, RoundTripsThroughGain) {
  const SystemParams params = paper_params(0.3);
  const double nf = 0.5;
  for (double g : {0.002, 0.005, 0.01}) {
    const double p =
        min_probability_for_gain(params, nf, InteractionModel::kModelA, g);
    ASSERT_LE(p, 1.0) << "gain " << g << " should be attainable";
    const auto a = analyze(params, {p, nf}, InteractionModel::kModelA);
    EXPECT_NEAR(a.gain, g, 1e-9);
  }
}

TEST(MinProbability, ImpossibleGainSignalled) {
  const SystemParams params = paper_params(0.3);
  EXPECT_GT(min_probability_for_gain(params, 0.5,
                                     InteractionModel::kModelA, 100.0),
            1.0);
}

TEST(MinProbability, MonotoneInTargetGain) {
  const SystemParams params = paper_params(0.0);
  double prev = 0.0;
  for (double g : {0.0, 0.005, 0.01, 0.02}) {
    const double p =
        min_probability_for_gain(params, 0.5, InteractionModel::kModelA, g);
    EXPECT_GT(p, prev - 1e-15);
    prev = p;
  }
}

TEST(DemandHeadroom, RoundTripsThroughEquationFive) {
  SystemParams params = paper_params(0.3);
  const auto base = analyze_no_prefetch(params);
  const double target = base.access_time * 2.0;  // allow 2x latency
  const double headroom = demand_growth_headroom(params, target);
  ASSERT_GT(headroom, 1.0);
  params.request_rate *= headroom;
  const auto grown = analyze_no_prefetch(params);
  EXPECT_NEAR(grown.access_time, target, 1e-9);
}

TEST(DemandHeadroom, BelowOneWhenAlreadyViolated) {
  const SystemParams params = paper_params(0.3);
  const auto base = analyze_no_prefetch(params);
  EXPECT_LT(demand_growth_headroom(params, base.access_time * 0.5), 1.0);
}

TEST(DemandHeadroom, InfiniteForPerfectCache) {
  EXPECT_TRUE(std::isinf(demand_growth_headroom(paper_params(1.0), 0.01)));
}

TEST(InverseContracts, RejectBadInputs) {
  const SystemParams params = paper_params(0.3);
  EXPECT_THROW(min_bandwidth_for_access_time(params, 0.0),
               ContractViolation);
  EXPECT_THROW(max_prefetch_rate_for_access_time(
                   params, 0.0, InteractionModel::kModelA, 0.1),
               ContractViolation);
  EXPECT_THROW(
      min_probability_for_gain(params, 0.0, InteractionModel::kModelA, 0.01),
      ContractViolation);
}

}  // namespace
}  // namespace specpf::core
