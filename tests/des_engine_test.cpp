// Tests for the zero-allocation engine internals: a determinism differential
// against a reference (time, seq)-ordered engine, a cancel-heavy slab-reuse
// stress, and generation-counter ABA protection for recycled slots.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "des/simulator.hpp"
#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

// Reference engine with the seed implementation's semantics: closures
// ordered by (time, insertion sequence), lazy tombstone deletion. Any
// divergence between this and Simulator is an ordering bug.
class ReferenceEngine {
 public:
  using Handle = std::shared_ptr<bool>;

  Handle schedule_at(double when, std::function<void()> action) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Entry{when, next_seq_++, std::move(action), cancelled});
    return cancelled;
  }

  static void cancel(const Handle& handle) { *handle = true; }

  double now() const { return now_; }

  void run() {
    while (!queue_.empty()) {
      Entry entry = queue_.top();
      queue_.pop();
      if (*entry.cancelled) continue;
      now_ = entry.time;
      entry.action();
    }
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::function<void()> action;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

// A scripted random workload: bulk-scheduled events (exercising the sorted
// run), duplicate timestamps (exercising the seq tie-break), cancellations,
// and events that schedule children dynamically (exercising the heap path).
// Both engines must fire the surviving events in the identical order.
TEST(EngineDifferential, ExecutionOrderMatchesReferenceEngine) {
  constexpr int kInitial = 4000;  // above the sorted-run threshold
  Rng rng(42);
  std::vector<double> times;
  times.reserve(kInitial);
  for (int i = 0; i < kInitial; ++i) {
    // Coarse grid so many events share a timestamp.
    times.push_back(static_cast<double>(rng.next_u64() % 512));
  }

  std::vector<int> new_order;
  std::vector<int> ref_order;
  const auto record = [](std::vector<int>& log, int id) {
    log.push_back(id);
  };

  Simulator sim;
  ReferenceEngine ref;
  std::vector<EventId> new_ids;
  std::vector<ReferenceEngine::Handle> ref_ids;
  for (int i = 0; i < kInitial; ++i) {
    const double t = times[i];
    new_ids.push_back(sim.schedule_at(t, [&, i, t] {
      record(new_order, i);
      if (i % 7 == 0) {
        sim.schedule_at(t + 1.5, [&, i] { record(new_order, i + 100000); });
      }
    }));
    ref_ids.push_back(ref.schedule_at(t, [&, i, t] {
      record(ref_order, i);
      if (i % 7 == 0) {
        ref.schedule_at(t + 1.5, [&, i] { record(ref_order, i + 100000); });
      }
    }));
  }
  // Cancel a deterministic subset before anything runs.
  for (int i = 0; i < kInitial; i += 3) {
    sim.cancel(new_ids[i]);
    ReferenceEngine::cancel(ref_ids[i]);
  }

  sim.run();
  ref.run();

  ASSERT_EQ(new_order.size(), ref_order.size());
  EXPECT_EQ(new_order, ref_order);
  EXPECT_DOUBLE_EQ(sim.now(), ref.now());
}

// Full-stack determinism: identical seeds must give bit-identical metrics
// through caches, predictor, policy, and the shared PS server.
TEST(EngineDifferential, ProxySimMetricsAreReproducible) {
  ProxySimConfig config;
  config.num_users = 4;
  config.duration = 150.0;
  config.warmup = 20.0;
  config.seed = 7;

  ThresholdPolicy policy_a(core::InteractionModel::kModelA);
  ThresholdPolicy policy_b(core::InteractionModel::kModelA);
  const ProxySimResult a = run_proxy_sim(config, policy_a);
  const ProxySimResult b = run_proxy_sim(config, policy_b);

  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.demand_jobs, b.demand_jobs);
  EXPECT_EQ(a.prefetch_jobs, b.prefetch_jobs);
  EXPECT_EQ(a.inflight_hits, b.inflight_hits);
  EXPECT_EQ(a.mean_access_time, b.mean_access_time);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.server_utilization, b.server_utilization);
  EXPECT_EQ(a.retrieval_time_per_request, b.retrieval_time_per_request);
  EXPECT_EQ(a.hprime_estimate, b.hprime_estimate);
}

// Cancel-heavy slab churn: waves of schedule/cancel force tombstone
// compaction and free-list reuse; counts must stay exact throughout.
TEST(EngineStress, CancelWavesReuseSlots) {
  Simulator sim;
  Rng rng(3);
  std::uint64_t expected = 0;
  double horizon = 0.0;
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<EventId> ids;
    ids.reserve(5000);
    for (int i = 0; i < 5000; ++i) {
      const double t = horizon + rng.next_double() * 10.0;
      ids.push_back(sim.schedule_at(t, [] {}));
    }
    // Cancel two thirds — beyond the half-dead compaction threshold.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 3 != 0) sim.cancel(ids[i]);
    }
    expected += (ids.size() + 2) / 3;
    horizon += 10.0;
    sim.run_until(horizon);
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), expected);
  EXPECT_EQ(sim.pending(), 0u);
}

// A handle kept across its event's execution and the slot's reuse must not
// cancel the slot's new occupant (generation/ABA protection).
TEST(EngineStress, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;

  const EventId stale = sim.schedule_at(1.0, [&] { first_fired = true; });
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(first_fired);

  // The slot freed by the fired event is recycled for the next schedule.
  sim.schedule_at(2.0, [&] { second_fired = true; });
  sim.cancel(stale);  // must be a no-op
  sim.cancel(stale);  // idempotent
  sim.run();
  EXPECT_TRUE(second_fired);
  EXPECT_EQ(sim.events_executed(), 2u);
}

// Same protection when the first event is cancelled (not fired): collecting
// the tombstone releases the slot; the stale handle must stay dead.
TEST(EngineStress, StaleHandleAfterCancelAndReuse) {
  Simulator sim;
  bool victim_fired = false;
  bool survivor_fired = false;

  const EventId victim = sim.schedule_at(1.0, [&] { victim_fired = true; });
  sim.cancel(victim);
  sim.run();  // collects the tombstone, releasing the slot
  EXPECT_FALSE(victim_fired);

  sim.schedule_at(2.0, [&] { survivor_fired = true; });
  sim.cancel(victim);  // stale generation — no-op
  sim.run();
  EXPECT_TRUE(survivor_fired);
}

// InlineFunction is move-only, so move-only captures now work (they could
// not with std::function).
TEST(EngineActions, MoveOnlyCapturesAreSupported) {
  Simulator sim;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  sim.schedule_at(1.0, [p = std::move(payload), &seen] { seen = *p + 1; });
  sim.run();
  EXPECT_EQ(seen, 42);
}

// Cancelling mid-run events scheduled into the sorted run (bulk load) and
// the heap (dynamic) in the same simulation.
TEST(EngineStress, CancelAcrossBothTiers) {
  Simulator sim;
  std::vector<EventId> bulk;
  bulk.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    bulk.push_back(
        sim.schedule_at(static_cast<double>(i % 97) + 1.0, [] {}));
  }
  EXPECT_TRUE(sim.step());  // builds the sorted run
  // Cancel bulk events (now in the sorted run) and add heap-side events.
  std::vector<EventId> dynamic;
  for (int i = 0; i < 500; ++i) {
    dynamic.push_back(sim.schedule_at(50.0 + 0.001 * i, [] {}));
  }
  for (std::size_t i = 0; i < bulk.size(); i += 2) sim.cancel(bulk[i]);
  for (std::size_t i = 0; i < dynamic.size(); i += 2) sim.cancel(dynamic[i]);
  sim.run();
  // bulk[0] fired in step(); its cancel is a stale no-op. Of the 1999
  // remaining bulk events, the 999 other even indices are cancelled, leaving
  // 1000; of the 500 dynamic events, 250 survive.
  EXPECT_EQ(sim.events_executed(), 1u + 1000u + 250u);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace specpf
