// Differential tests: each production cache is checked against an
// obviously-correct (slow) reference model on long random operation
// sequences — lookups, inserts, erases, tag updates — comparing hit/miss
// outcomes, residency, size, and eviction victims step by step.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "cache/fifo.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "cache/value_cache.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

/// Reference LRU: vector ordered most-recent-first.
class RefLru {
 public:
  explicit RefLru(std::size_t cap) : cap_(cap) {}

  bool lookup(ItemId item) {
    auto it = std::find(order_.begin(), order_.end(), item);
    if (it == order_.end()) return false;
    order_.erase(it);
    order_.insert(order_.begin(), item);
    return true;
  }
  /// Returns the eviction victim, or nullopt.
  std::optional<ItemId> insert(ItemId item) {
    auto it = std::find(order_.begin(), order_.end(), item);
    if (it != order_.end()) {
      order_.erase(it);
      order_.insert(order_.begin(), item);
      return std::nullopt;
    }
    std::optional<ItemId> victim;
    if (order_.size() >= cap_) {
      victim = order_.back();
      order_.pop_back();
    }
    order_.insert(order_.begin(), item);
    return victim;
  }
  bool erase(ItemId item) {
    auto it = std::find(order_.begin(), order_.end(), item);
    if (it == order_.end()) return false;
    order_.erase(it);
    return true;
  }
  std::size_t size() const { return order_.size(); }

 private:
  std::size_t cap_;
  std::vector<ItemId> order_;
};

TEST(CacheDifferential, LruMatchesReferenceOnRandomOps) {
  for (std::uint64_t seed : {7ULL, 77ULL, 777ULL}) {
    LruCache cache(16);
    RefLru ref(16);
    std::vector<ItemId> victims;
    cache.set_eviction_hook(
        [&](ItemId item, EntryTag) { victims.push_back(item); });
    Rng rng(seed);
    for (int op = 0; op < 20000; ++op) {
      const ItemId item = rng.next_below(64);
      const auto kind = rng.next_below(10);
      if (kind < 5) {
        EXPECT_EQ(cache.lookup(item).has_value(), ref.lookup(item))
            << "op " << op;
      } else if (kind < 9) {
        victims.clear();
        const auto expected_victim = ref.insert(item);
        cache.insert(item, EntryTag::kTagged);
        if (expected_victim.has_value()) {
          ASSERT_EQ(victims.size(), 1u) << "op " << op;
          EXPECT_EQ(victims[0], *expected_victim) << "op " << op;
        } else {
          EXPECT_TRUE(victims.empty()) << "op " << op;
        }
      } else {
        EXPECT_EQ(cache.erase(item), ref.erase(item)) << "op " << op;
      }
      ASSERT_EQ(cache.size(), ref.size()) << "op " << op;
    }
  }
}

/// Reference FIFO: insertion-ordered vector, lookups don't touch order.
TEST(CacheDifferential, FifoMatchesReferenceOnRandomOps) {
  for (std::uint64_t seed : {3ULL, 33ULL}) {
    FifoCache cache(12);
    std::vector<ItemId> ref_order;  // front = oldest
    std::vector<ItemId> victims;
    cache.set_eviction_hook(
        [&](ItemId item, EntryTag) { victims.push_back(item); });
    Rng rng(seed);
    for (int op = 0; op < 20000; ++op) {
      const ItemId item = rng.next_below(48);
      const auto kind = rng.next_below(10);
      const bool resident =
          std::find(ref_order.begin(), ref_order.end(), item) !=
          ref_order.end();
      if (kind < 5) {
        EXPECT_EQ(cache.lookup(item).has_value(), resident) << "op " << op;
      } else if (kind < 9) {
        victims.clear();
        cache.insert(item, EntryTag::kTagged);
        if (!resident) {
          if (ref_order.size() >= 12) {
            ASSERT_EQ(victims.size(), 1u) << "op " << op;
            EXPECT_EQ(victims[0], ref_order.front()) << "op " << op;
            ref_order.erase(ref_order.begin());
          }
          ref_order.push_back(item);
        } else {
          EXPECT_TRUE(victims.empty()) << "op " << op;
        }
      } else {
        const bool erased = cache.erase(item);
        EXPECT_EQ(erased, resident) << "op " << op;
        if (resident) {
          ref_order.erase(
              std::find(ref_order.begin(), ref_order.end(), item));
        }
      }
      ASSERT_EQ(cache.size(), ref_order.size()) << "op " << op;
    }
  }
}

/// Reference LFU with LRU tie-break: (count, last-use recency) ordering.
TEST(CacheDifferential, LfuMatchesReferenceOnRandomOps) {
  constexpr std::size_t kCap = 10;
  LfuCache cache(kCap);
  struct RefEntry {
    std::uint64_t freq = 0;
    std::uint64_t touched = 0;  // global counter at last touch at this freq
  };
  std::map<ItemId, RefEntry> ref;
  std::uint64_t clock = 0;
  std::vector<ItemId> victims;
  cache.set_eviction_hook(
      [&](ItemId item, EntryTag) { victims.push_back(item); });

  auto ref_victim = [&]() {
    // Min frequency; among those, least recently touched.
    ItemId victim = 0;
    bool first = true;
    for (const auto& [item, e] : ref) {
      if (first || e.freq < ref.at(victim).freq ||
          (e.freq == ref.at(victim).freq &&
           e.touched < ref.at(victim).touched)) {
        victim = item;
        first = false;
      }
    }
    return victim;
  };

  Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const ItemId item = rng.next_below(32);
    const bool resident = ref.count(item) != 0;
    if (rng.bernoulli(0.5)) {
      EXPECT_EQ(cache.lookup(item).has_value(), resident) << "op " << op;
      if (resident) {
        ++ref[item].freq;
        ref[item].touched = ++clock;
      }
    } else {
      victims.clear();
      if (!resident && ref.size() >= kCap) {
        const ItemId expected = ref_victim();
        cache.insert(item, EntryTag::kTagged);
        ASSERT_EQ(victims.size(), 1u) << "op " << op;
        EXPECT_EQ(victims[0], expected) << "op " << op;
        ref.erase(expected);
        ref[item] = RefEntry{1, ++clock};
      } else {
        cache.insert(item, EntryTag::kTagged);
        EXPECT_TRUE(victims.empty()) << "op " << op;
        ++ref[item].freq;  // new items get freq 1, residents bump
        ref[item].touched = ++clock;
      }
    }
    ASSERT_EQ(cache.size(), ref.size()) << "op " << op;
    // Spot-check frequency bookkeeping.
    if (resident) {
      EXPECT_EQ(cache.frequency(item), ref[item].freq) << "op " << op;
    }
  }
}

/// ValueCache against a map-scan reference.
TEST(CacheDifferential, ValueCacheMatchesMinScanReference) {
  constexpr std::size_t kCap = 8;
  ValueCache cache(kCap);
  std::map<ItemId, double> ref;
  Rng rng(123);
  for (int op = 0; op < 10000; ++op) {
    const ItemId item = rng.next_below(40);
    const double value = rng.next_double();
    const bool resident = ref.count(item) != 0;
    if (resident || ref.size() < kCap) {
      EXPECT_TRUE(cache.insert_valued(item, EntryTag::kTagged, value));
      ref[item] = value;
    } else {
      auto min_it = std::min_element(
          ref.begin(), ref.end(), [](const auto& a, const auto& b) {
            if (a.second != b.second) return a.second < b.second;
            return a.first < b.first;
          });
      if (value < min_it->second) {
        EXPECT_FALSE(cache.insert_valued(item, EntryTag::kTagged, value));
      } else {
        EXPECT_TRUE(cache.insert_valued(item, EntryTag::kTagged, value));
        ref.erase(min_it);
        ref[item] = value;
      }
    }
    ASSERT_EQ(cache.size(), ref.size()) << "op " << op;
    if (!ref.empty()) {
      const double ref_min =
          std::min_element(ref.begin(), ref.end(), [](const auto& a,
                                                      const auto& b) {
            return a.second < b.second;
          })->second;
      EXPECT_DOUBLE_EQ(*cache.min_value(), ref_min) << "op " << op;
    }
  }
}

}  // namespace
}  // namespace specpf
