#include <gtest/gtest.h>

#include <map>

#include "predict/dependency_graph.hpp"
#include "predict/frequency.hpp"
#include "predict/markov.hpp"
#include "predict/oracle.hpp"
#include "predict/ppm.hpp"
#include "workload/session_graph.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

TEST(MarkovPredictor, EmptyModelPredictsNothing) {
  MarkovPredictor m;
  EXPECT_TRUE(m.predict(0, 10).empty());
  m.observe(0, 1);
  EXPECT_TRUE(m.predict(0, 10).empty());  // no successor of 1 seen yet
}

TEST(MarkovPredictor, LearnsDeterministicChain) {
  MarkovPredictor m;
  for (int rep = 0; rep < 5; ++rep) {
    m.observe(0, 1);
    m.observe(0, 2);
    m.observe(0, 3);
  }
  m.observe(0, 1);
  const auto pred = m.predict(0, 10);
  ASSERT_FALSE(pred.empty());
  EXPECT_EQ(pred[0].item, 2u);
  EXPECT_NEAR(pred[0].probability, 1.0, 1e-12);
}

TEST(MarkovPredictor, EstimatesTransitionMatrix) {
  // Two-state chain: 0 -> 1 w.p. 0.7, 0 -> 2 w.p. 0.3.
  MarkovPredictor m;
  Rng rng(3);
  std::uint64_t prev = 0;
  m.observe(0, prev);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t next =
        prev == 0 ? (rng.bernoulli(0.7) ? 1 : 2) : 0;
    m.observe(0, next);
    prev = next;
  }
  EXPECT_NEAR(m.transition_probability(0, 1), 0.7, 0.02);
  EXPECT_NEAR(m.transition_probability(0, 2), 0.3, 0.02);
  EXPECT_NEAR(m.transition_probability(1, 0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.transition_probability(42, 0), 0.0);
}

TEST(MarkovPredictor, PerUserContexts) {
  MarkovPredictor m;
  m.observe(1, 10);
  m.observe(1, 11);
  m.observe(2, 10);
  m.observe(2, 99);
  m.observe(1, 10);
  m.observe(2, 10);
  // User 1's last item is 10, and from 10 user transitions to 11 or 99.
  const auto pred = m.predict(1, 10);
  ASSERT_EQ(pred.size(), 2u);
  // Counts are global (shared model), probabilities 0.5/0.5.
  EXPECT_NEAR(pred[0].probability, 0.5, 1e-12);
}

TEST(MarkovPredictor, RespectsMaxCandidates) {
  MarkovPredictor m;
  for (std::uint64_t succ = 1; succ <= 20; ++succ) {
    m.observe(0, 0);
    m.observe(0, succ);
  }
  m.observe(0, 0);
  EXPECT_EQ(m.predict(0, 5).size(), 5u);
}

TEST(PpmPredictor, UsesLongContextWhenAvailable) {
  PpmPredictor ppm(2);
  // Sequence alternates contexts: (1,2)->3 and (4,2)->5.
  for (int rep = 0; rep < 10; ++rep) {
    ppm.observe(0, 1);
    ppm.observe(0, 2);
    ppm.observe(0, 3);
    ppm.observe(0, 4);
    ppm.observe(0, 2);
    ppm.observe(0, 5);
  }
  ppm.observe(0, 1);
  ppm.observe(0, 2);
  const auto pred = ppm.predict(0, 10);
  ASSERT_FALSE(pred.empty());
  // Order-2 context (1,2) strongly predicts 3; order-1 context (2) is
  // ambiguous between 3 and 5. The blend must rank 3 first.
  EXPECT_EQ(pred[0].item, 3u);
  EXPECT_GT(pred[0].probability, 0.5);
}

TEST(PpmPredictor, FallsBackToShorterContext) {
  PpmPredictor ppm(3);
  for (int rep = 0; rep < 5; ++rep) {
    ppm.observe(0, 7);
    ppm.observe(0, 8);
  }
  // New user context: only order-1 history (7) is informative.
  ppm.observe(1, 7);
  const auto pred = ppm.predict(1, 10);
  ASSERT_FALSE(pred.empty());
  EXPECT_EQ(pred[0].item, 8u);
}

TEST(PpmPredictor, ProbabilitiesAreSubStochastic) {
  PpmPredictor ppm(3);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) ppm.observe(0, rng.next_below(10));
  const auto pred = ppm.predict(0, 100);
  double total = 0.0;
  for (const auto& c : pred) {
    EXPECT_GE(c.probability, 0.0);
    EXPECT_LE(c.probability, 1.0);
    total += c.probability;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(DependencyGraph, CreditsFollowUpsWithinWindow) {
  DependencyGraphPredictor dep(3);
  // Pattern: A(1) then B(2) two steps later, every time.
  for (int rep = 0; rep < 10; ++rep) {
    dep.observe(0, 1);
    dep.observe(0, 7);
    dep.observe(0, 2);
  }
  EXPECT_NEAR(dep.dependency_probability(1, 2), 1.0, 0.11);
  EXPECT_GT(dep.dependency_probability(1, 7), 0.8);
}

TEST(DependencyGraph, WindowOneIsMarkovLike) {
  DependencyGraphPredictor dep(1);
  for (int rep = 0; rep < 10; ++rep) {
    dep.observe(0, 1);
    dep.observe(0, 2);
  }
  EXPECT_GT(dep.dependency_probability(1, 2), 0.8);
  EXPECT_DOUBLE_EQ(dep.dependency_probability(2, 2), 0.0);
}

TEST(DependencyGraph, PredictRanksByProbability) {
  DependencyGraphPredictor dep(2);
  for (int rep = 0; rep < 20; ++rep) {
    dep.observe(0, 1);
    dep.observe(0, rep % 4 == 0 ? 9 : 2);  // 2 follows 1 three times of four
  }
  dep.observe(0, 1);
  const auto pred = dep.predict(0, 10);
  ASSERT_GE(pred.size(), 2u);
  EXPECT_EQ(pred[0].item, 2u);
}

TEST(FrequencyPredictor, MatchesGlobalShares) {
  FrequencyPredictor freq;
  for (int i = 0; i < 60; ++i) freq.observe(0, 1);
  for (int i = 0; i < 30; ++i) freq.observe(1, 2);
  for (int i = 0; i < 10; ++i) freq.observe(0, 3);
  const auto pred = freq.predict(5, 10);
  ASSERT_EQ(pred.size(), 3u);
  EXPECT_EQ(pred[0].item, 1u);
  EXPECT_NEAR(pred[0].probability, 0.6, 1e-12);
  EXPECT_NEAR(pred[1].probability, 0.3, 1e-12);
}

TEST(OraclePredictor, ReturnsTrueGraphConditionals) {
  SessionGraphConfig cfg;
  cfg.num_pages = 30;
  cfg.out_degree = 3;
  cfg.exit_probability = 0.2;
  SessionGraph graph(cfg, 7);
  OraclePredictor oracle(graph);
  EXPECT_TRUE(oracle.predict(0, 10).empty());  // no observation yet
  oracle.observe(0, 5);
  const auto pred = oracle.predict(0, 10);
  const auto truth = graph.next_distribution(5);
  ASSERT_EQ(pred.size(), truth.size());
  std::map<std::uint64_t, double> truth_map;
  for (const auto& link : truth) truth_map[link.target] = link.probability;
  for (const auto& c : pred) {
    EXPECT_NEAR(c.probability, truth_map.at(c.item), 1e-12);
  }
}

TEST(OraclePredictor, TracksEachUserSeparately) {
  SessionGraphConfig cfg;
  cfg.num_pages = 30;
  SessionGraph graph(cfg, 9);
  OraclePredictor oracle(graph);
  oracle.observe(0, 3);
  oracle.observe(1, 8);
  const auto pred0 = oracle.predict(0, 1);
  const auto pred1 = oracle.predict(1, 1);
  ASSERT_FALSE(pred0.empty());
  ASSERT_FALSE(pred1.empty());
  EXPECT_EQ(pred0[0].item, graph.next_distribution(3)[0].target);
}

}  // namespace
}  // namespace specpf
