#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "stats/time_weighted.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

TEST(RunningStats, MatchesNaiveMoments) {
  RunningStats stats;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.std_error(), 0.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, left, right;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    all.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(stats.variance(), 0.25025, 1e-3);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(i % 10 + 0.5);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.1);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.1);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.1);
}

TEST(Histogram, UnderOverflowClamped) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, QuantileOfUniformSamples) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.25), 0.25, 0.02);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.02);
}

TEST(LogHistogram, QuantileSpansDecades) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(1.0);     // 2^0 bucket
  for (int i = 0; i < 1000; ++i) h.add(1024.0);  // 2^10 bucket
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 1.0);
  EXPECT_LE(median, 2048.0);
  EXPECT_GT(h.quantile(0.9), 512.0);
  EXPECT_LT(h.quantile(0.1), 3.0);
}

TEST(StudentT, KnownQuantiles) {
  // Classic table values, two-sided 95%.
  EXPECT_NEAR(student_t_quantile(1, 0.95), 12.706, 0.01);
  EXPECT_NEAR(student_t_quantile(5, 0.95), 2.571, 0.005);
  EXPECT_NEAR(student_t_quantile(10, 0.95), 2.228, 0.005);
  EXPECT_NEAR(student_t_quantile(30, 0.95), 2.042, 0.005);
  // Large dof approaches the normal 1.96.
  EXPECT_NEAR(student_t_quantile(10000, 0.95), 1.960, 0.005);
}

TEST(StudentT, NinetyAndNinetyNine) {
  EXPECT_NEAR(student_t_quantile(10, 0.90), 1.812, 0.005);
  EXPECT_NEAR(student_t_quantile(10, 0.99), 3.169, 0.01);
}

TEST(TInterval, ContainsTrueMeanForGaussianData) {
  Rng rng(11);
  int covered = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> samples;
    for (int i = 0; i < 20; ++i) {
      // Sum of 12 uniforms - 6: approx N(0,1).
      double z = -6.0;
      for (int k = 0; k < 12; ++k) z += rng.next_double();
      samples.push_back(5.0 + z);
    }
    if (t_interval(samples, 0.95).contains(5.0)) ++covered;
  }
  // 95% nominal coverage; allow generous slack for 200 trials.
  EXPECT_GE(covered, 180);
}

TEST(TInterval, DegenerateCases) {
  const auto ci = t_interval(std::vector<double>{3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(BatchMeans, TighterWindowThanRawVarianceForCorrelatedSeries) {
  // AR(1)-ish positively correlated series: batch means should produce a
  // *wider* (more honest) interval than pretending samples are iid.
  Rng rng(13);
  std::vector<double> series;
  double x = 0.0;
  for (int i = 0; i < 4096; ++i) {
    x = 0.9 * x + rng.next_double() - 0.5;
    series.push_back(x);
  }
  const auto naive = t_interval(series);
  const auto batched = batch_means(series, 16);
  EXPECT_GT(batched.half_width, naive.half_width);
}

TEST(BatchMeans, FallsBackWhenTooFewObservations) {
  std::vector<double> tiny{1.0, 2.0, 3.0};
  const auto ci = batch_means(tiny, 16);
  EXPECT_EQ(ci.samples, 3u);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.start(0.0, 2.0);
  tw.update(10.0, 4.0);   // value 2 for 10s
  tw.update(20.0, 0.0);   // value 4 for 10s
  // Average over [0, 40]: (2*10 + 4*10 + 0*20)/40 = 1.5.
  EXPECT_DOUBLE_EQ(tw.average_until(40.0), 1.5);
}

TEST(TimeWeighted, WindowRestart) {
  TimeWeighted tw;
  tw.start(0.0, 1.0);
  tw.update(5.0, 3.0);
  tw.start(5.0, 3.0);  // truncate: new origin
  EXPECT_DOUBLE_EQ(tw.average_until(10.0), 3.0);
}

TEST(TimeWeighted, ZeroWindowIsZero) {
  TimeWeighted tw;
  tw.start(1.0, 5.0);
  EXPECT_DOUBLE_EQ(tw.average_until(1.0), 0.0);
}

}  // namespace
}  // namespace specpf
