// Deeper property sweeps on the unified interaction algebra (Model AB
// family): identities the closed forms must satisfy for every victim value
// q ∈ [0, h'/n̄(C)], probability p, and prefetch rate n̄(F).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "queueing/mg1_ps.hpp"
#include "util/math.hpp"

namespace specpf::core {
namespace {

SystemParams make_params(double hit_ratio, double lambda = 30.0,
                         double bandwidth = 50.0) {
  SystemParams p;
  p.bandwidth = bandwidth;
  p.request_rate = lambda;
  p.mean_item_size = 1.0;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

using Sweep = std::tuple<double, double, double, double>;  // h', p, nF, q_frac

class InteractionAlgebra : public ::testing::TestWithParam<Sweep> {
 protected:
  void SetUp() override {
    const auto [h, p, nf, q_frac] = GetParam();
    params_ = make_params(h);
    q_ = q_frac * params_.hit_ratio / params_.cache_items;
    op_ = OperatingPoint{p, nf};
    analysis_ = analyze_with_victim_value(params_, op_, q_);
  }

  SystemParams params_;
  OperatingPoint op_;
  double q_ = 0.0;
  PrefetchAnalysis analysis_;
};

TEST_P(InteractionAlgebra, HitRatioDecomposition) {
  // h = h' + n̄(F)(p − q) exactly.
  EXPECT_NEAR(analysis_.hit_ratio,
              params_.hit_ratio + op_.prefetch_rate *
                                      (op_.access_probability - q_),
              1e-12);
}

TEST_P(InteractionAlgebra, UtilizationDecomposition) {
  // ρ = ρ' + n̄(F)(1 − p + q)·λs̄/b: the extra load is the prefetch traffic
  // minus the demand traffic it displaces.
  const double extra = op_.prefetch_rate *
                       (1.0 - op_.access_probability + q_) *
                       params_.request_rate * params_.mean_item_size /
                       params_.bandwidth;
  EXPECT_NEAR(analysis_.utilization, analysis_.baseline.utilization + extra,
              1e-12);
}

TEST_P(InteractionAlgebra, RetrievalTimeIsPsSojourn) {
  // r̄ must equal the M/G/1-PS sojourn at the *effective* arrival rate
  // (1 − h + n̄(F))λ — the paper's eq. (2) applied to eq. (8)'s stream.
  if (!analysis_.conditions.total_within_capacity) GTEST_SKIP();
  const double effective_rate =
      (1.0 - analysis_.hit_ratio + op_.prefetch_rate) * params_.request_rate;
  const MG1PS queue(effective_rate, params_.service_time());
  ASSERT_TRUE(queue.stable());
  EXPECT_NEAR(analysis_.retrieval_time, queue.mean_sojourn(), 1e-12);
}

TEST_P(InteractionAlgebra, AccessTimeIsMissWeightedSojourn) {
  if (!analysis_.conditions.total_within_capacity) GTEST_SKIP();
  EXPECT_NEAR(analysis_.access_time,
              (1.0 - analysis_.hit_ratio) * analysis_.retrieval_time, 1e-12);
}

TEST_P(InteractionAlgebra, GainIsBaselineMinusPrefetch) {
  if (!analysis_.conditions.total_within_capacity) GTEST_SKIP();
  EXPECT_NEAR(analysis_.gain,
              analysis_.baseline.access_time - analysis_.access_time, 1e-10);
}

TEST_P(InteractionAlgebra, ThresholdIsUtilizationPlusVictimValue) {
  EXPECT_NEAR(analysis_.threshold, analysis_.baseline.utilization + q_,
              1e-12);
}

TEST_P(InteractionAlgebra, RetrievalTimePerRequestIdentity) {
  // R = ρ/(λ(1−ρ)) must equal n̄(R)·r̄ with n̄(R) = 1 − h + n̄(F). Eq. (25).
  if (!analysis_.conditions.total_within_capacity ||
      analysis_.utilization >= 1.0) {
    GTEST_SKIP();
  }
  const double n_retrievals = 1.0 - analysis_.hit_ratio + op_.prefetch_rate;
  const double r_direct = n_retrievals * analysis_.retrieval_time;
  const double r_formula = retrieval_time_per_request(
      analysis_.utilization, params_.request_rate);
  EXPECT_NEAR(r_direct, r_formula, 1e-12);
}

TEST_P(InteractionAlgebra, ExcessCostMatchesRetrievalDifference) {
  // C = R − R' (eq. 23) computed directly must equal eq. (27).
  if (!analysis_.conditions.total_within_capacity ||
      analysis_.utilization >= 1.0) {
    GTEST_SKIP();
  }
  const double r = retrieval_time_per_request(analysis_.utilization,
                                              params_.request_rate);
  const double r_prime = retrieval_time_per_request(
      analysis_.baseline.utilization, params_.request_rate);
  const double c = excess_cost(analysis_.utilization,
                               analysis_.baseline.utilization,
                               params_.request_rate);
  EXPECT_NEAR(c, r - r_prime, 1e-12);
}

TEST_P(InteractionAlgebra, GainMonotoneInVictimValue) {
  // More valuable victims ⇒ less gain, higher threshold (fixed p, n̄(F)).
  const auto worse = analyze_with_victim_value(params_, op_, q_ + 0.001);
  if (analysis_.conditions.total_within_capacity &&
      worse.conditions.total_within_capacity) {
    EXPECT_LT(worse.gain, analysis_.gain + 1e-15);
    EXPECT_GT(worse.threshold, analysis_.threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InteractionAlgebra,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.6),      // h'
                       ::testing::Values(0.2, 0.5, 0.8),      // p
                       ::testing::Values(0.25, 0.5, 1.0),     // n̄(F)
                       ::testing::Values(0.0, 0.5, 1.0)));    // q as frac of h'/n̄C

// --- scaling properties across system sizes ---

TEST(InteractionScaling, GainScalesInverselyWithBandwidthAtFixedRho) {
  // Scaling (b, λ) together keeps ρ' and p_th fixed while all times shrink
  // by the bandwidth factor — t̄ and G are homogeneous of degree −1.
  const OperatingPoint op{0.7, 0.5};
  const auto small = analyze(make_params(0.3, 30.0, 50.0), op,
                             InteractionModel::kModelA);
  const auto big = analyze(make_params(0.3, 300.0, 500.0), op,
                           InteractionModel::kModelA);
  EXPECT_NEAR(small.threshold, big.threshold, 1e-12);
  EXPECT_NEAR(small.gain, 10.0 * big.gain, 1e-12);
  EXPECT_NEAR(small.access_time, 10.0 * big.access_time, 1e-12);
}

TEST(InteractionScaling, ItemSizeAndBandwidthOnlyEnterAsRatio) {
  const OperatingPoint op{0.6, 0.4};
  SystemParams a = make_params(0.2);
  a.mean_item_size = 2.0;
  a.bandwidth = 100.0;
  SystemParams b = make_params(0.2);
  b.mean_item_size = 1.0;
  b.bandwidth = 50.0;
  const auto ra = analyze(a, op, InteractionModel::kModelA);
  const auto rb = analyze(b, op, InteractionModel::kModelA);
  EXPECT_NEAR(ra.utilization, rb.utilization, 1e-12);
  EXPECT_NEAR(ra.threshold, rb.threshold, 1e-12);
  EXPECT_NEAR(ra.hit_ratio, rb.hit_ratio, 1e-12);
  // Times scale with s̄/b, which is equal here too.
  EXPECT_NEAR(ra.access_time, rb.access_time, 1e-12);
}

TEST(InteractionScaling, ThresholdIndependentOfPrefetchRate) {
  const SystemParams params = make_params(0.3);
  for (double nf : {0.1, 0.5, 1.0, 1.5}) {
    const auto r = analyze(params, {0.5, nf}, InteractionModel::kModelA);
    EXPECT_NEAR(r.threshold, 0.42, 1e-12);
  }
}

}  // namespace
}  // namespace specpf::core
