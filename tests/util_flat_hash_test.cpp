// FlatHashMap / FlatHashSet: unit coverage plus randomized differential
// fuzzing against the standard containers (exercises rehash growth and
// backward-shift deletion under heavy collision pressure).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

TEST(FlatHashMap, InsertFindEraseBasics) {
  FlatHashMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.erase(42));

  map[42] = 7;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_TRUE(map.contains(42));
  EXPECT_FALSE(map.contains(43));

  map[42] = 9;  // overwrite, no duplicate
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(42), 9);

  EXPECT_TRUE(map.erase(42));
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatHashMap, GetOrInsertReportsInsertion) {
  FlatHashMap<std::uint64_t> map;
  bool inserted = false;
  map.get_or_insert(5, &inserted) = 50;
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.get_or_insert(5, &inserted), 50u);
  EXPECT_FALSE(inserted);
}

TEST(FlatHashMap, ValueInitializedOnFirstAccess) {
  FlatHashMap<double> map;
  EXPECT_EQ(map[99], 0.0);
  FlatHashMap<std::vector<int>> vmap;
  EXPECT_TRUE(vmap[7].empty());
  vmap[7].push_back(1);
  EXPECT_EQ(vmap[7].size(), 1u);
}

TEST(FlatHashMap, TakeMovesValueOut) {
  FlatHashMap<std::vector<double>> map;
  map[3] = {1.0, 2.0, 3.0};
  const std::vector<double> taken = map.take(3);
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_FALSE(map.contains(3));
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashMap, GrowsThroughManyRehashes) {
  FlatHashMap<std::uint64_t> map;
  const std::uint64_t n = 100000;
  for (std::uint64_t k = 0; k < n; ++k) map[k * 2654435761u] = k;
  EXPECT_EQ(map.size(), n);
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t* v = map.find(k * 2654435761u);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatHashMap, ReserveSurvivesFillWithoutLosingEntries) {
  // Note: robin-hood displacement may move entries between slots even
  // without a rehash, so pointer stability is NOT part of the contract —
  // only that every value survives filling up to the reserved size.
  FlatHashMap<std::uint64_t> map;
  map.reserve(1000);
  for (std::uint64_t k = 1; k <= 1000; ++k) map[k] = k + 10;
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), k + 10);
  }
}

TEST(FlatHashMap, IterationVisitsEachEntryOnce) {
  FlatHashMap<std::uint64_t> map;
  for (std::uint64_t k = 1; k <= 500; ++k) map[k * 7919] = k;
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  for (const auto& [key, value] : map) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate key " << key;
  }
  EXPECT_EQ(seen.size(), 500u);
  for (std::uint64_t k = 1; k <= 500; ++k) EXPECT_EQ(seen.at(k * 7919), k);
}

TEST(FlatHashMap, MoveConstructAndAssign) {
  FlatHashMap<int> a;
  a[1] = 10;
  a[2] = 20;
  FlatHashMap<int> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(*b.find(2), 20);
  FlatHashMap<int> c;
  c[5] = 50;
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(*c.find(1), 10);
  EXPECT_FALSE(c.contains(5));
}

TEST(FlatHashMap, ClearThenReuse) {
  FlatHashMap<int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map[k] = static_cast<int>(k);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  map[5] = 55;
  EXPECT_EQ(*map.find(5), 55);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, NonTrivialValuesSurviveEraseChurn) {
  // std::string values force real construct/move/destroy through the
  // backward-shift path.
  FlatHashMap<std::string> map;
  for (std::uint64_t k = 0; k < 200; ++k) {
    map[k] = "value-" + std::to_string(k);
  }
  for (std::uint64_t k = 0; k < 200; k += 2) EXPECT_TRUE(map.erase(k));
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 1; k < 200; k += 2) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), "value-" + std::to_string(k));
  }
  for (std::uint64_t k = 0; k < 200; k += 2) EXPECT_FALSE(map.contains(k));
}

TEST(FlatHashMap, FuzzDifferentialAgainstUnorderedMap) {
  // Small key range concentrates collisions and forces long probe chains
  // interleaved with backward-shift erases.
  FlatHashMap<std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(0xF1A7);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng.next_u64() % 512;
    switch (rng.next_u64() % 3) {
      case 0: {  // insert / overwrite
        const std::uint64_t value = rng.next_u64();
        map[key] = value;
        ref[key] = value;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      }
      case 2: {  // lookup
        const std::uint64_t* v = map.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full sweep at the end: contents must match exactly, both directions.
  std::size_t visited = 0;
  for (const auto& [key, value] : map) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
    ++visited;
  }
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatIndexMap, InsertFindEraseBasics) {
  FlatIndexMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.erase(42));

  map[42] = 7;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7u);
  EXPECT_TRUE(map.contains(42));
  EXPECT_FALSE(map.contains(43));

  map[42] = 9;  // overwrite, no duplicate
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(42), 9u);

  EXPECT_TRUE(map.erase(42));
  EXPECT_TRUE(map.empty());
}

TEST(FlatIndexMap, FuzzDifferentialAgainstUnorderedMap) {
  // Same differential as FlatHashMap's, against the SoA specialisation the
  // cache arena's residency index uses.
  FlatIndexMap map;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  Rng rng(0xF1A8);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng.next_u64() % 512;
    switch (rng.next_u64() % 3) {
      case 0: {  // insert / overwrite
        const auto value = static_cast<std::uint32_t>(rng.next_u64());
        map[key] = value;
        ref[key] = value;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      }
      case 2: {  // lookup
        const std::uint32_t* v = map.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Every reference entry must still be found (the SoA map lacks
  // iteration by design — residency probes are point lookups).
  for (const auto& [key, value] : ref) {
    const std::uint32_t* v = map.find(key);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, value);
  }
}

TEST(FlatIndexMap, ReserveSurvivesFillWithoutLosingEntries) {
  FlatIndexMap map;
  map.reserve(4096);
  for (std::uint64_t k = 0; k < 4096; ++k) {
    map[k << 32 | k] = static_cast<std::uint32_t>(k);
  }
  EXPECT_EQ(map.size(), 4096u);
  for (std::uint64_t k = 0; k < 4096; ++k) {
    ASSERT_NE(map.find(k << 32 | k), nullptr);
    EXPECT_EQ(*map.find(k << 32 | k), static_cast<std::uint32_t>(k));
  }
}

TEST(FlatHashSet, BasicsAndFuzz) {
  FlatHashSet set;
  EXPECT_TRUE(set.insert(10));
  EXPECT_FALSE(set.insert(10));
  EXPECT_TRUE(set.contains(10));
  EXPECT_TRUE(set.erase(10));
  EXPECT_FALSE(set.erase(10));
  EXPECT_TRUE(set.empty());

  std::unordered_set<std::uint64_t> ref;
  Rng rng(0x5E7);
  for (int op = 0; op < 50000; ++op) {
    const std::uint64_t key = rng.next_u64() % 256;
    if (rng.next_u64() % 2 == 0) {
      EXPECT_EQ(set.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), ref.erase(key) > 0);
    }
  }
  EXPECT_EQ(set.size(), ref.size());
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(set.contains(k), ref.count(k) > 0);
  }
}

}  // namespace
}  // namespace specpf
