// §4 online h' estimation: protocol transitions and statistical accuracy on
// synthetic access streams with known ground truth.
#include <gtest/gtest.h>

#include <memory>

#include "cache/lru.hpp"
#include "cache/tagged_cache.hpp"
#include "core/hit_ratio_estimator.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

using core::EntryTag;
using core::HitRatioEstimator;

TEST(HitRatioEstimator, TagConstants) {
  EXPECT_EQ(HitRatioEstimator::prefetch_insert_tag(), EntryTag::kUntagged);
  EXPECT_EQ(HitRatioEstimator::demand_insert_tag(), EntryTag::kTagged);
}

TEST(HitRatioEstimator, TaggedHitIncrementsBoth) {
  HitRatioEstimator est;
  est.on_cache_hit(EntryTag::kTagged);
  EXPECT_EQ(est.accesses(), 1u);
  EXPECT_EQ(est.tagged_hits(), 1u);
}

TEST(HitRatioEstimator, UntaggedHitCountsAccessOnlyAndPromotes) {
  HitRatioEstimator est;
  const EntryTag after = est.on_cache_hit(EntryTag::kUntagged);
  EXPECT_EQ(after, EntryTag::kTagged);
  EXPECT_EQ(est.accesses(), 1u);
  EXPECT_EQ(est.tagged_hits(), 0u);
}

TEST(HitRatioEstimator, MissCountsAccessOnly) {
  HitRatioEstimator est;
  est.on_cache_miss();
  EXPECT_EQ(est.accesses(), 1u);
  EXPECT_EQ(est.tagged_hits(), 0u);
}

TEST(HitRatioEstimator, ModelAEstimateIsRatio) {
  HitRatioEstimator est;
  est.on_cache_hit(EntryTag::kTagged);
  est.on_cache_hit(EntryTag::kTagged);
  est.on_cache_miss();
  est.on_cache_hit(EntryTag::kUntagged);
  EXPECT_DOUBLE_EQ(est.estimate_model_a(), 0.5);
}

TEST(HitRatioEstimator, ModelBAppliesCorrectionFactor) {
  HitRatioEstimator est;
  est.on_cache_hit(EntryTag::kTagged);
  est.on_cache_miss();
  // ĥ'_B = 0.5 × n̄(C)/(n̄(C)−n̄(F)) = 0.5 × 100/80.
  EXPECT_DOUBLE_EQ(est.estimate_model_b(100.0, 20.0), 0.625);
}

TEST(HitRatioEstimator, ModelBRejectsDegenerateCache) {
  HitRatioEstimator est;
  EXPECT_THROW(est.estimate_model_b(10.0, 10.0), ContractViolation);
  EXPECT_THROW(est.estimate_model_b(5.0, -1.0), ContractViolation);
}

TEST(HitRatioEstimator, EmptyEstimateIsZero) {
  HitRatioEstimator est;
  EXPECT_DOUBLE_EQ(est.estimate_model_a(), 0.0);
}

TEST(HitRatioEstimator, ResetClearsCounters) {
  HitRatioEstimator est;
  est.on_cache_hit(EntryTag::kTagged);
  est.reset();
  EXPECT_EQ(est.accesses(), 0u);
  EXPECT_DOUBLE_EQ(est.estimate_model_a(), 0.0);
}

// --- Protocol through TaggedCache ---

TEST(TaggedCache, SecondTouchOfPrefetchedEntryCountsAsWouldHaveHit) {
  TaggedCache cache(std::make_unique<LruCache>(10));
  cache.admit_prefetch(7);
  // First touch: untagged -> access counted, no nhit, becomes tagged.
  EXPECT_EQ(cache.access(7), AccessOutcome::kHitUntagged);
  // Second touch: tagged -> nhit.
  EXPECT_EQ(cache.access(7), AccessOutcome::kHitTagged);
  EXPECT_EQ(cache.estimator().accesses(), 2u);
  EXPECT_EQ(cache.estimator().tagged_hits(), 1u);
}

TEST(TaggedCache, DemandAdmissionsAreTagged) {
  TaggedCache cache(std::make_unique<LruCache>(10));
  EXPECT_EQ(cache.access(3), AccessOutcome::kMiss);
  cache.admit_demand(3);
  EXPECT_EQ(cache.access(3), AccessOutcome::kHitTagged);
}

TEST(TaggedCache, PrefetchAccessedInFlightCountsAsUsed) {
  TaggedCache cache(std::make_unique<LruCache>(10));
  cache.admit_prefetch_accessed(5);
  EXPECT_EQ(cache.prefetch_inserts(), 1u);
  EXPECT_EQ(cache.prefetch_first_uses(), 1u);
  EXPECT_EQ(cache.access(5), AccessOutcome::kHitTagged);
}

TEST(TaggedCache, TracksRealizedPrefetchRate) {
  TaggedCache cache(std::make_unique<LruCache>(10));
  cache.access(1);  // miss, naccess=1
  cache.admit_prefetch(2);
  cache.admit_prefetch(3);
  cache.access(2);  // naccess=2
  EXPECT_DOUBLE_EQ(cache.realized_prefetch_rate(), 1.0);
}

// Statistical accuracy: IRM stream over a small hot set, cache large enough
// to hold everything. Ground truth h' = hit ratio of an identical cache
// receiving no prefetches.
TEST(TaggedCache, EstimateMatchesGroundTruthUnderPrefetching) {
  constexpr std::size_t kItems = 40;
  constexpr std::size_t kCap = 400;
  constexpr int kAccesses = 60000;

  TaggedCache with_prefetch(std::make_unique<LruCache>(kCap));
  TaggedCache without_prefetch(std::make_unique<LruCache>(kCap));

  Rng rng(99);
  Rng noise(100);
  for (int i = 0; i < kAccesses; ++i) {
    // Requests over items [0, kItems); prefetcher speculatively inserts
    // *cold* items from a disjoint range (never accessed: pure pollution,
    // which §4's protocol must not count as would-have-hits).
    const std::uint64_t item = rng.next_below(kItems);
    if (with_prefetch.access(item) == AccessOutcome::kMiss) {
      with_prefetch.admit_demand(item);
    }
    if (without_prefetch.access(item) == AccessOutcome::kMiss) {
      without_prefetch.admit_demand(item);
    }
    // Also prefetch a *hot* item sometimes: prefetch-caused hits must be
    // excluded from ĥ'.
    with_prefetch.admit_prefetch(1000 + noise.next_below(5000));
    if (noise.bernoulli(0.3)) {
      with_prefetch.admit_prefetch(noise.next_below(kItems));
    }
  }
  const double truth = without_prefetch.estimator().estimate_model_a();
  const double estimate = with_prefetch.estimate_model_a();
  EXPECT_NEAR(estimate, truth, 0.02);
}

}  // namespace
}  // namespace specpf
