#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.hpp"
#include "util/contract.hpp"

namespace specpf {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulator, CancelledEventsDoNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  sim.cancel(id);  // no-op
  sim.cancel(id);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  EventId later;
  sim.schedule_at(1.0, [&] { sim.cancel(later); });
  later = sim.schedule_at(2.0, [&] { fired = true; });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtHorizonAndSetsClock) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(2.0, [&] { fired.push_back(2.0); });
  sim.schedule_at(10.0, [&] { fired.push_back(10.0); });
  sim.run_until(5.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilExecutesEventsAtExactHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), ContractViolation);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, LargeVolumeStressOrdering) {
  Simulator sim;
  double last = -1.0;
  std::uint64_t fired = 0;
  // Deterministic pseudo-random times, including duplicates.
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++fired;
    });
  }
  sim.run();
  EXPECT_EQ(fired, 20000u);
}

}  // namespace
}  // namespace specpf
