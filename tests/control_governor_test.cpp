// The prefetch control plane: governor unit behaviour, the name factory,
// runtime wiring (feedback + throttle accounting), the no-op differential
// (installing the control plane must be bit-identical to running without
// it), and bit-determinism of governed sharded runs across worker-thread
// counts.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "control/governor.hpp"
#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/stack_runtime.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"

namespace specpf {
namespace {

core::Candidate candidate(double p) { return {1, p}; }

LoadSignals calm() { return {}; }

LoadSignals congested(double slowdown) {
  LoadSignals s;
  s.slowdown = slowdown;
  s.utilization = 1.0;
  s.queue_depth = 100.0;
  return s;
}

// --- unit behaviour ---------------------------------------------------------

TEST(TokenBucketGovernor, SpendsAndRefillsPerGroup) {
  GovernorConfig cfg;
  cfg.token_rate = 10.0;         // 10 bytes/s per group
  cfg.token_burst_seconds = 1.0;  // burst 10
  cfg.token_groups = 4;
  TokenBucketGovernor gov(cfg);

  // Burst: 10 admissions of size 1 at t=0, then dry.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(gov.admit(0.0, /*user=*/0, candidate(0.9), 1.0, calm()));
  }
  EXPECT_FALSE(gov.admit(0.0, 0, candidate(0.9), 1.0, calm()));
  // Other groups have their own buckets.
  EXPECT_TRUE(gov.admit(0.0, 1, candidate(0.9), 1.0, calm()));
  // Half a second refills 5 tokens for group 0 (users 0, 4, 8, ... fold in).
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(gov.admit(0.5, 4, candidate(0.9), 1.0, calm())) << i;
  }
  EXPECT_FALSE(gov.admit(0.5, 0, candidate(0.9), 1.0, calm()));
  // Refill clamps at the burst: after a long idle stretch exactly 10 fit.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(gov.admit(100.0, 0, candidate(0.9), 1.0, calm()));
  }
  EXPECT_FALSE(gov.admit(100.0, 0, candidate(0.9), 1.0, calm()));
}

TEST(AimdGovernor, ThrottlesUnderCongestionAndRecovers) {
  GovernorConfig cfg;
  cfg.aimd_setpoint = 2.0;
  cfg.aimd_interval = 1.0;
  cfg.aimd_mult = 2.0;
  cfg.aimd_decrease = 0.05;
  cfg.aimd_kick = 0.1;
  AimdGovernor gov(cfg);

  // θ starts at 0: everything the policy selected is admitted.
  EXPECT_TRUE(gov.admit(0.0, 0, candidate(0.01), 1.0, calm()));
  EXPECT_EQ(gov.theta(), 0.0);

  // Sustained congestion: θ kicks to 0.1 then doubles per interval.
  EXPECT_TRUE(gov.admit(1.5, 0, candidate(0.5), 1.0, congested(10.0)));
  EXPECT_DOUBLE_EQ(gov.theta(), 0.1);
  gov.admit(2.5, 0, candidate(0.5), 1.0, congested(10.0));
  EXPECT_DOUBLE_EQ(gov.theta(), 0.2);
  gov.admit(3.5, 0, candidate(0.5), 1.0, congested(10.0));
  EXPECT_DOUBLE_EQ(gov.theta(), 0.4);
  // A weak candidate is now refused, a strong one still passes.
  EXPECT_FALSE(gov.admit(3.6, 0, candidate(0.3), 1.0, congested(10.0)));
  EXPECT_TRUE(gov.admit(3.7, 0, candidate(0.9), 1.0, congested(10.0)));

  // Calm again: additive decay, 0.05 per interval.
  gov.admit(4.5, 0, candidate(0.5), 1.0, calm());
  EXPECT_NEAR(gov.theta(), 0.35, 1e-12);
  gov.admit(5.5, 0, candidate(0.5), 1.0, calm());
  EXPECT_NEAR(gov.theta(), 0.30, 1e-12);
}

TEST(AimdGovernor, ReactsToFleetSignalFromEpochBarrier) {
  GovernorConfig cfg;
  cfg.aimd_setpoint = 2.0;
  cfg.aimd_interval = 1.0;
  cfg.aimd_kick = 0.1;
  AimdGovernor gov(cfg);
  gov.admit(0.0, 0, candidate(0.5), 1.0, calm());  // arm the interval clock
  // Local link calm, but the fleet reports congestion past the setpoint.
  gov.set_fleet_signal(5.0);
  gov.admit(1.5, 0, candidate(0.5), 1.0, calm());
  EXPECT_DOUBLE_EQ(gov.theta(), 0.1);
}

TEST(ConfidenceGovernor, CutsDepthAsPrecisionDrops) {
  GovernorConfig cfg;
  cfg.conf_alpha = 0.5;
  // Exactly representable thresholds so the depth fractions are exact.
  cfg.conf_high = 0.75;
  cfg.conf_low = 0.25;
  ConfidenceGovernor gov(cfg);

  // Optimistic start: full depth.
  EXPECT_EQ(gov.precision(), 1.0);
  EXPECT_EQ(gov.depth_limit(8), 8u);

  gov.on_prefetch_wasted();  // precision 0.5 → fraction 0.25/0.5 = 0.5
  EXPECT_EQ(gov.depth_limit(8), 4u);
  gov.on_prefetch_wasted();  // 0.25 → fraction 0 → depth 0
  EXPECT_EQ(gov.depth_limit(8), 0u);
  gov.on_prefetch_useful();  // 0.625 → fraction 0.75 → 6
  EXPECT_EQ(gov.depth_limit(8), 6u);
  gov.on_prefetch_useful();  // 0.8125 >= high → full depth
  EXPECT_EQ(gov.depth_limit(8), 8u);
  // admit() itself never refuses.
  EXPECT_TRUE(gov.admit(0.0, 0, candidate(0.0), 1.0, congested(100.0)));
}

TEST(GovernorFactory, BuildsByNameAndRejectsUnknown) {
  EXPECT_NE(make_governor_by_name("noop"), nullptr);
  auto token = make_governor_by_name("token-123.5");
  ASSERT_NE(token, nullptr);
  EXPECT_EQ(token->name(), "token-123.5");
  auto aimd = make_governor_by_name("aimd-2.5");
  ASSERT_NE(aimd, nullptr);
  EXPECT_EQ(aimd->name(), "aimd-2.5");
  auto conf = make_governor_by_name("conf-0.4");
  ASSERT_NE(conf, nullptr);
  EXPECT_EQ(conf->name(), "conf-0.4");
  EXPECT_EQ(make_governor_by_name(""), nullptr);
  EXPECT_EQ(make_governor_by_name("bogus"), nullptr);
  EXPECT_EQ(make_governor_by_name("token-"), nullptr);
  // Strict suffix parsing: trailing garbage is a typo, not a rate.
  EXPECT_EQ(make_governor_by_name("token-200x"), nullptr);
  EXPECT_EQ(make_governor_by_name("aimd-3;"), nullptr);
  EXPECT_TRUE(is_governor_name("token-200"));
  EXPECT_TRUE(is_governor_name("noop"));
  EXPECT_FALSE(is_governor_name("token-200x"));
  EXPECT_FALSE(is_governor_name(""));
}

// --- trace fixtures ---------------------------------------------------------

Trace make_flash_trace(std::size_t users = 3000, std::size_t requests = 40000,
                       std::uint64_t seed = 77) {
  SyntheticTraceConfig cfg;
  cfg.num_users = users;
  cfg.num_requests = requests;
  cfg.request_rate = 800.0;
  cfg.graph.num_pages = 200;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.25;
  cfg.graph.link_skew = 1.6;
  cfg.seed = seed;
  const double span = static_cast<double>(requests) / cfg.request_rate;
  EXPECT_TRUE(make_scenario_modulation("flash", span, 8, &cfg.modulation));
  return cfg.modulation.kind == ArrivalModulation::Kind::kFlashCrowd
             ? generate_synthetic_trace(cfg)
             : Trace{};
}

TraceReplayConfig replay_config() {
  TraceReplayConfig cfg;
  cfg.bandwidth = 4000.0;
  cfg.cache_capacity = 8;
  cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  cfg.max_prefetch_per_request = 4;
  cfg.seed = 99;
  return cfg;
}

void expect_result_eq(const ProxySimResult& a, const ProxySimResult& b) {
  EXPECT_EQ(a.mean_access_time, b.mean_access_time);
  EXPECT_EQ(a.access_time_std_error, b.access_time_std_error);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.server_utilization, b.server_utilization);
  EXPECT_EQ(a.retrieval_time_per_request, b.retrieval_time_per_request);
  EXPECT_EQ(a.hprime_estimate, b.hprime_estimate);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.demand_jobs, b.demand_jobs);
  EXPECT_EQ(a.prefetch_jobs, b.prefetch_jobs);
  EXPECT_EQ(a.wasted_prefetch_evictions, b.wasted_prefetch_evictions);
  EXPECT_EQ(a.inflight_hits, b.inflight_hits);
  EXPECT_EQ(a.mean_inflight_wait, b.mean_inflight_wait);
  EXPECT_EQ(a.mean_demand_sojourn, b.mean_demand_sojourn);
  EXPECT_EQ(a.throttled_prefetches, b.throttled_prefetches);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  EXPECT_EQ(a.peak_slowdown, b.peak_slowdown);
}

// --- runtime wiring ---------------------------------------------------------

// Installing the no-op governor (which senses but never refuses) must be
// bit-identical to the ungoverned runtime on everything the ungoverned
// runtime measures.
TEST(ControlPlaneWiring, NoopGovernorIsBitIdenticalToUngoverned) {
  const Trace trace = make_flash_trace();
  TraceReplayConfig cfg = replay_config();

  FixedThresholdPolicy aggressive(0.05);
  const ProxySimResult plain = run_trace_replay(trace, cfg, aggressive);

  cfg.governor = "noop";
  FixedThresholdPolicy aggressive2(0.05);
  const ProxySimResult noop = run_trace_replay(trace, cfg, aggressive2);

  EXPECT_GT(plain.prefetch_jobs, 0u);
  EXPECT_EQ(noop.throttled_prefetches, 0u);
  // The noop run carries sensor peaks (its governor turns the sensor on);
  // every dynamics-and-metrics field must match bit for bit.
  EXPECT_EQ(noop.mean_access_time, plain.mean_access_time);
  EXPECT_EQ(noop.hit_ratio, plain.hit_ratio);
  EXPECT_EQ(noop.server_utilization, plain.server_utilization);
  EXPECT_EQ(noop.requests, plain.requests);
  EXPECT_EQ(noop.demand_jobs, plain.demand_jobs);
  EXPECT_EQ(noop.prefetch_jobs, plain.prefetch_jobs);
  EXPECT_EQ(noop.inflight_hits, plain.inflight_hits);
  EXPECT_EQ(noop.wasted_prefetch_evictions, plain.wasted_prefetch_evictions);
  EXPECT_EQ(noop.hprime_estimate, plain.hprime_estimate);
  EXPECT_EQ(noop.mean_demand_sojourn, plain.mean_demand_sojourn);
}

// Enabling the sensor without a governor is pure observation: everything
// except the peak_* fields matches the sensor-less run bit for bit.
TEST(ControlPlaneWiring, SensorAloneIsPureObservation) {
  const Trace trace = make_flash_trace(1000, 15000, 5);
  TraceReplayConfig cfg = replay_config();

  FixedThresholdPolicy p1(0.05);
  const ProxySimResult off = run_trace_replay(trace, cfg, p1);
  cfg.enable_load_sensor = true;
  FixedThresholdPolicy p2(0.05);
  const ProxySimResult on = run_trace_replay(trace, cfg, p2);

  EXPECT_EQ(off.peak_queue_depth, 0.0);
  EXPECT_GT(on.peak_queue_depth, 0.0);
  EXPECT_EQ(on.mean_access_time, off.mean_access_time);
  EXPECT_EQ(on.hit_ratio, off.hit_ratio);
  EXPECT_EQ(on.requests, off.requests);
  EXPECT_EQ(on.demand_jobs, off.demand_jobs);
  EXPECT_EQ(on.prefetch_jobs, off.prefetch_jobs);
  EXPECT_EQ(on.server_utilization, off.server_utilization);
}

// A congested flash crowd with a binding governor must actually throttle,
// shrink the measured peak, and not lose instant (zero-wait) hits.
TEST(ControlPlaneWiring, GovernedRunThrottlesAndCutsPeakLoad) {
  const Trace trace = make_flash_trace();
  TraceReplayConfig cfg = replay_config();
  cfg.enable_load_sensor = true;

  FixedThresholdPolicy aggressive(0.05);
  const ProxySimResult plain = run_trace_replay(trace, cfg, aggressive);

  cfg.governor = "aimd-3";
  FixedThresholdPolicy aggressive2(0.05);
  const ProxySimResult governed = run_trace_replay(trace, cfg, aggressive2);

  EXPECT_GT(governed.throttled_prefetches, 0u);
  EXPECT_LT(governed.prefetch_jobs, plain.prefetch_jobs);
  EXPECT_LT(governed.peak_queue_depth, plain.peak_queue_depth);
  EXPECT_LT(governed.peak_slowdown, plain.peak_slowdown);
  EXPECT_LE(governed.mean_access_time, plain.mean_access_time);
}

// The confidence governor reacts to a misleading predictor by cutting
// depth, which shows up as throttled prefetches and less prefetch traffic.
TEST(ControlPlaneWiring, ConfidenceGovernorThrottlesWastefulPrefetching) {
  const Trace trace = make_flash_trace(500, 20000, 11);
  TraceReplayConfig cfg = replay_config();
  cfg.bandwidth = 50000.0;  // uncongested: only precision can throttle
  cfg.cache_capacity = 4;   // tiny caches: speculative inserts get evicted
  // Frequency prediction on session-graph traffic wastes heavily.
  cfg.predictor_kind = TraceReplayConfig::PredictorKind::kFrequency;
  cfg.governor_config.conf_alpha = 0.05;

  FixedThresholdPolicy aggressive(0.0);
  const ProxySimResult plain = run_trace_replay(trace, cfg, aggressive);

  cfg.governor = "conf-0.6";
  FixedThresholdPolicy aggressive2(0.0);
  const ProxySimResult governed = run_trace_replay(trace, cfg, aggressive2);

  EXPECT_GT(governed.throttled_prefetches, 0u);
  EXPECT_LT(governed.prefetch_jobs, plain.prefetch_jobs);
  EXPECT_LT(governed.wasted_prefetch_evictions,
            plain.wasted_prefetch_evictions);
}

// --- sharded determinism ----------------------------------------------------

TEST(ControlPlaneSharded, GovernedRunsBitIdenticalAcross128Threads) {
  const Trace trace = make_flash_trace();
  for (const char* governor : {"token-5", "aimd-3"}) {
    ShardedReplayConfig cfg;
    cfg.stack = replay_config();
    // Per-shard links sized so the flash crowd congests each region and
    // both governors actually bind.
    cfg.stack.bandwidth = 500.0;
    cfg.stack.governor = governor;
    cfg.num_shards = 8;
    cfg.backbone_latency = 0.05;
    cfg.backbone_bandwidth = 8000.0;
    const PolicyFactory factory = [] {
      return std::make_unique<FixedThresholdPolicy>(0.05);
    };

    ShardedReplayResult runs[3];
    const std::size_t thread_counts[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
      cfg.num_threads = thread_counts[i];
      runs[i] = run_sharded_replay(trace, cfg, factory);
    }
    EXPECT_GT(runs[0].merged.throttled_prefetches, 0u) << governor;
    EXPECT_GT(runs[0].cross_shard_events, 0u);
    for (int i = 1; i < 3; ++i) {
      expect_result_eq(runs[i].merged, runs[0].merged);
      EXPECT_EQ(runs[i].epochs, runs[0].epochs) << governor;
      EXPECT_EQ(runs[i].cross_shard_events, runs[0].cross_shard_events);
      EXPECT_EQ(runs[i].backbone.peak_queue_depth,
                runs[0].backbone.peak_queue_depth);
      EXPECT_EQ(runs[i].backbone.peak_slowdown,
                runs[0].backbone.peak_slowdown);
      ASSERT_EQ(runs[i].per_shard.size(), runs[0].per_shard.size());
      for (std::size_t s = 0; s < runs[0].per_shard.size(); ++s) {
        expect_result_eq(runs[i].per_shard[s], runs[0].per_shard[s]);
      }
    }
  }
}

// 1-shard governed run must match the unsharded governed replay bit for
// bit (shard 0 inherits the root seed; the setpoint exchange is a no-op at
// S = 1, mirroring the mailbox rule).
TEST(ControlPlaneSharded, OneShardGovernedMatchesUnshardedGoverned) {
  const Trace trace = make_flash_trace(800, 12000, 5);
  TraceReplayConfig cfg = replay_config();
  cfg.governor = "token-50";

  FixedThresholdPolicy policy(0.05);
  const ProxySimResult unsharded = run_trace_replay(trace, cfg, policy);

  ShardedReplayConfig scfg;
  scfg.stack = cfg;
  scfg.num_shards = 1;
  scfg.num_threads = 1;
  const ShardedReplayResult sharded = run_sharded_replay(
      trace, scfg, [] { return std::make_unique<FixedThresholdPolicy>(0.05); });
  expect_result_eq(sharded.merged, unsharded);
}

}  // namespace
}  // namespace specpf
