// Excess retrieval cost (paper §5): formula identities, positivity, and the
// load-impedance phenomenon.
#include <gtest/gtest.h>

#include "core/excess_cost.hpp"
#include "core/model_a.hpp"
#include "util/contract.hpp"

namespace specpf::core {
namespace {

SystemParams paper_params(double hit_ratio) {
  SystemParams p;
  p.bandwidth = 50.0;
  p.request_rate = 30.0;
  p.mean_item_size = 1.0;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

TEST(RetrievalPerRequest, EquationTwentyFive) {
  // R = ρ/(λ(1−ρ)).
  EXPECT_DOUBLE_EQ(retrieval_time_per_request(0.6, 30.0),
                   0.6 / (30.0 * 0.4));
  EXPECT_DOUBLE_EQ(retrieval_time_per_request(0.0, 30.0), 0.0);
}

TEST(RetrievalPerRequest, BaselineIdentity) {
  // R' for the no-prefetch system must equal f'·r̄' (each request retrieves
  // f' items on average, each taking r̄').
  const SystemParams params = paper_params(0.3);
  const auto base = analyze_no_prefetch(params);
  const double r_prime =
      retrieval_time_per_request(base.utilization, params.request_rate);
  EXPECT_NEAR(r_prime, params.fault_ratio() * base.retrieval_time, 1e-12);
}

TEST(ExcessCost, EquationTwentySeven) {
  // C = (ρ−ρ')/(λ(1−ρ)(1−ρ')).
  const double c = excess_cost(0.8, 0.6, 30.0);
  EXPECT_NEAR(c, 0.2 / (30.0 * 0.2 * 0.4), 1e-12);
}

TEST(ExcessCost, ZeroWhenLoadUnchanged) {
  EXPECT_DOUBLE_EQ(excess_cost(0.6, 0.6, 30.0), 0.0);
}

TEST(ExcessCost, PositiveWheneverPrefetchingAddsLoad) {
  const SystemParams params = paper_params(0.0);
  for (double p : {0.1, 0.5, 0.9}) {
    for (double nf : {0.1, 0.5, 1.0}) {
      if (nf * p > params.fault_ratio()) continue;
      const auto a = analyze(params, {p, nf}, InteractionModel::kModelA);
      if (!a.conditions.total_within_capacity || a.utilization >= 1.0) continue;
      if (p < 1.0) {
        // With p < 1 some prefetches are wasted, so load strictly rises.
        EXPECT_GT(excess_cost(params, {p, nf}, InteractionModel::kModelA),
                  0.0);
      }
    }
  }
}

TEST(ExcessCost, ZeroAtPerfectPredictionModelA) {
  // p = 1 under Model A: prefetches exactly replace demand fetches; ρ = ρ'
  // and the excess cost vanishes.
  const SystemParams params = paper_params(0.0);
  const auto a = analyze(params, {1.0, 0.5}, InteractionModel::kModelA);
  EXPECT_NEAR(a.utilization, a.baseline.utilization, 1e-12);
  EXPECT_NEAR(excess_cost(params, {1.0, 0.5}, InteractionModel::kModelA), 0.0,
              1e-12);
}

TEST(ExcessCost, IncreasingInPrefetchRate) {
  const SystemParams params = paper_params(0.3);
  double prev = 0.0;
  for (double nf = 0.1; nf <= 1.0; nf += 0.1) {
    const double c = excess_cost(params, {0.5, nf},
                                 InteractionModel::kModelA);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(ExcessCost, LoadImpedance) {
  // §5: prefetching the same item costs more when the system is loaded.
  // Compare the marginal cost of the same prefetch increment at low vs high
  // baseline utilisation (vary λ).
  SystemParams lightly_loaded = paper_params(0.0);
  lightly_loaded.request_rate = 10.0;  // ρ' = 0.2
  SystemParams heavily_loaded = paper_params(0.0);
  heavily_loaded.request_rate = 40.0;  // ρ' = 0.8

  const OperatingPoint op{0.3, 0.25};
  const double c_light =
      excess_cost(lightly_loaded, op, InteractionModel::kModelA);
  const double c_heavy =
      excess_cost(heavily_loaded, op, InteractionModel::kModelA);
  EXPECT_GT(c_heavy, c_light);
}

TEST(ExcessCost, ConvexInPrefetchRate) {
  // Load impedance again, as convexity along n̄(F): second differences of
  // C(n̄(F)) are positive.
  const SystemParams params = paper_params(0.0);
  const double h = 0.05;
  double c0 = excess_cost(params, {0.3, 0.2}, InteractionModel::kModelA);
  double c1 = excess_cost(params, {0.3, 0.2 + h}, InteractionModel::kModelA);
  double c2 =
      excess_cost(params, {0.3, 0.2 + 2 * h}, InteractionModel::kModelA);
  EXPECT_GT(c2 - c1, c1 - c0);
}

TEST(ExcessCost, HigherProbabilityLowersCost) {
  // At equal n̄(F), better predictions convert more prefetches into avoided
  // demand fetches, so C decreases with p (Fig. 3's ordering).
  const SystemParams params = paper_params(0.0);
  double prev = 1e9;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double c = excess_cost(params, {p, 0.5},
                                 InteractionModel::kModelA);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(ExcessCost, ContractsRejectUnstableInputs) {
  EXPECT_THROW(excess_cost(1.0, 0.5, 30.0), ContractViolation);
  EXPECT_THROW(excess_cost(0.5, 1.2, 30.0), ContractViolation);
  EXPECT_THROW(retrieval_time_per_request(1.0, 30.0), ContractViolation);
}

}  // namespace
}  // namespace specpf::core
