// Merge semantics backing the sharded runtime's canonical-order reduction:
// SimMetrics, Histogram/LogHistogram, ServerStats, and BackboneStats. The
// load-bearing property is that a merge of one accumulator into a fresh one
// reproduces it bit-for-bit (the 1-shard differential depends on it), and
// that counter-style state adds exactly.
#include <gtest/gtest.h>

#include "net/backbone.hpp"
#include "net/server.hpp"
#include "sim/metrics.hpp"
#include "stats/histogram.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

SimMetrics make_metrics(std::uint64_t seed, int samples) {
  SimMetrics m;
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    switch (rng.next_below(4)) {
      case 0:
        m.record_hit();
        break;
      case 1:
        m.record_miss(rng.next_double());
        break;
      case 2:
        m.record_inflight_hit(rng.next_double() * 0.5);
        break;
      case 3:
        m.record_demand_retrieval(rng.next_double() * 2.0);
        m.record_prefetch_retrieval(rng.next_double());
        if (rng.bernoulli(0.25)) m.record_wasted_prefetch();
        break;
    }
  }
  return m;
}

void expect_metrics_eq(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.requests(), b.requests());
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.hit_ratio(), b.hit_ratio());
  EXPECT_EQ(a.mean_access_time(), b.mean_access_time());
  EXPECT_EQ(a.access_time_stats().std_error(),
            b.access_time_stats().std_error());
  EXPECT_EQ(a.retrieval_time_per_request(), b.retrieval_time_per_request());
  EXPECT_EQ(a.retrievals_per_request(), b.retrievals_per_request());
  EXPECT_EQ(a.demand_retrievals(), b.demand_retrievals());
  EXPECT_EQ(a.prefetch_retrievals(), b.prefetch_retrievals());
  EXPECT_EQ(a.mean_demand_sojourn(), b.mean_demand_sojourn());
  EXPECT_EQ(a.mean_prefetch_sojourn(), b.mean_prefetch_sojourn());
  EXPECT_EQ(a.inflight_hits(), b.inflight_hits());
  EXPECT_EQ(a.mean_inflight_wait(), b.mean_inflight_wait());
  EXPECT_EQ(a.wasted_prefetches(), b.wasted_prefetches());
}

TEST(SimMetricsMerge, MergeIntoEmptyIsIdentity) {
  const SimMetrics m = make_metrics(7, 500);
  SimMetrics merged;
  merged.merge(m);
  expect_metrics_eq(merged, m);
}

TEST(SimMetricsMerge, MergeOfEmptyIsNoOp) {
  SimMetrics m = make_metrics(7, 500);
  const SimMetrics reference = make_metrics(7, 500);
  m.merge(SimMetrics{});
  expect_metrics_eq(m, reference);
}

TEST(SimMetricsMerge, CountersAddExactlyAndMomentsCombine) {
  SimMetrics a = make_metrics(1, 400);
  const SimMetrics b = make_metrics(2, 300);
  const std::uint64_t requests = a.requests() + b.requests();
  const std::uint64_t hits = a.hits() + b.hits();
  const std::uint64_t wasted = a.wasted_prefetches() + b.wasted_prefetches();
  const std::uint64_t demand = a.demand_retrievals() + b.demand_retrievals();
  const double total_sojourn = a.retrieval_time_per_request() *
                                   static_cast<double>(a.requests()) +
                               b.retrieval_time_per_request() *
                                   static_cast<double>(b.requests());
  a.merge(b);
  EXPECT_EQ(a.requests(), requests);
  EXPECT_EQ(a.hits(), hits);
  EXPECT_EQ(a.wasted_prefetches(), wasted);
  EXPECT_EQ(a.demand_retrievals(), demand);
  EXPECT_NEAR(a.retrieval_time_per_request(),
              total_sojourn / static_cast<double>(requests), 1e-12);
}

TEST(SimMetricsMerge, MergeMatchesSequentialAccumulationClosely) {
  // Chan's update is not bit-identical to sequential Welford, but the
  // merged moments must agree to floating-point noise.
  SimMetrics split_a = make_metrics(11, 600);
  const SimMetrics split_b = make_metrics(12, 600);
  SimMetrics joint;
  joint.merge(make_metrics(11, 600));
  joint.merge(make_metrics(12, 600));
  split_a.merge(split_b);
  EXPECT_NEAR(split_a.mean_access_time(), joint.mean_access_time(), 1e-14);
  EXPECT_NEAR(split_a.access_time_stats().variance(),
              joint.access_time_stats().variance(), 1e-12);
}

TEST(HistogramMerge, BinsAddExactly) {
  Histogram a(0.0, 10.0, 20);
  Histogram b(0.0, 10.0, 20);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) a.add(rng.uniform(-1.0, 12.0));
  for (int i = 0; i < 700; ++i) b.add(rng.uniform(-1.0, 12.0));

  Histogram joint(0.0, 10.0, 20);
  joint.merge(a);
  joint.merge(b);
  EXPECT_EQ(joint.count(), a.count() + b.count());
  EXPECT_EQ(joint.underflow(), a.underflow() + b.underflow());
  EXPECT_EQ(joint.overflow(), a.overflow() + b.overflow());
  for (std::size_t i = 0; i < joint.bin_count_size(); ++i) {
    EXPECT_EQ(joint.bin_count(i), a.bin_count(i) + b.bin_count(i));
  }
  // Merge of one into empty reproduces quantiles exactly.
  Histogram copy(0.0, 10.0, 20);
  copy.merge(a);
  EXPECT_EQ(copy.quantile(0.5), a.quantile(0.5));
  EXPECT_EQ(copy.quantile(0.99), a.quantile(0.99));
}

TEST(HistogramMerge, MismatchedBinningIsRejected) {
  Histogram a(0.0, 10.0, 20);
  Histogram b(0.0, 10.0, 10);
  EXPECT_THROW(a.merge(b), ContractViolation);
  Histogram c(0.0, 9.0, 20);
  EXPECT_THROW(a.merge(c), ContractViolation);
}

TEST(LogHistogramMerge, BinsAddExactly) {
  LogHistogram a, b;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) a.add(rng.next_double() * 100.0);
  for (int i = 0; i < 400; ++i) b.add(rng.next_double() * 0.01);
  LogHistogram joint;
  joint.merge(a);
  joint.merge(b);
  EXPECT_EQ(joint.count(), a.count() + b.count());

  LogHistogram copy;
  copy.merge(a);
  EXPECT_EQ(copy.quantile(0.5), a.quantile(0.5));
}

TEST(ServerStatsMerge, SingleLinkIsVerbatim) {
  ServerStats s;
  s.completed = 41;
  s.mean_sojourn = 0.731;
  s.mean_jobs_in_system = 2.5;
  s.utilization = 0.61;
  s.total_service_demand = 17.25;
  const ServerStats merged = merge_server_stats({s});
  EXPECT_EQ(merged.completed, s.completed);
  EXPECT_EQ(merged.mean_sojourn, s.mean_sojourn);
  EXPECT_EQ(merged.mean_jobs_in_system, s.mean_jobs_in_system);
  EXPECT_EQ(merged.utilization, s.utilization);
  EXPECT_EQ(merged.total_service_demand, s.total_service_demand);
}

TEST(ServerStatsMerge, ParallelLinksCombine) {
  ServerStats a, b;
  a.completed = 10;
  a.mean_sojourn = 1.0;
  a.mean_jobs_in_system = 1.0;
  a.utilization = 0.5;
  a.total_service_demand = 5.0;
  b.completed = 30;
  b.mean_sojourn = 2.0;
  b.mean_jobs_in_system = 3.0;
  b.utilization = 0.9;
  b.total_service_demand = 45.0;
  const ServerStats merged = merge_server_stats({a, b});
  EXPECT_EQ(merged.completed, 40u);
  EXPECT_DOUBLE_EQ(merged.mean_sojourn, (10.0 * 1.0 + 30.0 * 2.0) / 40.0);
  EXPECT_DOUBLE_EQ(merged.mean_jobs_in_system, 4.0);
  EXPECT_DOUBLE_EQ(merged.utilization, 0.7);
  EXPECT_DOUBLE_EQ(merged.total_service_demand, 50.0);
}

TEST(BackboneStatsMerge, SingleLinkIsVerbatimAndCountersAdd) {
  BackboneStats a;
  a.demand_jobs = 7;
  a.prefetch_jobs = 11;
  a.completed = 15;
  a.mean_sojourn = 0.25;
  a.utilization = 0.4;
  a.total_service_demand = 3.0;
  const BackboneStats one = merge_backbone_stats({a});
  EXPECT_EQ(one.mean_sojourn, a.mean_sojourn);
  EXPECT_EQ(one.jobs(), 18u);

  BackboneStats b;
  b.demand_jobs = 3;
  b.prefetch_jobs = 1;
  b.completed = 5;
  b.mean_sojourn = 0.45;
  b.utilization = 0.2;
  b.total_service_demand = 1.0;
  const BackboneStats merged = merge_backbone_stats({a, b});
  EXPECT_EQ(merged.demand_jobs, 10u);
  EXPECT_EQ(merged.prefetch_jobs, 12u);
  EXPECT_EQ(merged.completed, 20u);
  EXPECT_DOUBLE_EQ(merged.mean_sojourn, (15.0 * 0.25 + 5.0 * 0.45) / 20.0);
  EXPECT_DOUBLE_EQ(merged.utilization, 0.3);
  EXPECT_DOUBLE_EQ(merged.total_service_demand, 4.0);
}

}  // namespace
}  // namespace specpf
