// Replication harness and validation tooling.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/validation.hpp"
#include "util/contract.hpp"

namespace specpf {
namespace {

AbstractSimConfig quick_config() {
  AbstractSimConfig cfg;
  cfg.params.bandwidth = 50.0;
  cfg.params.request_rate = 30.0;
  cfg.params.mean_item_size = 1.0;
  cfg.params.hit_ratio = 0.3;
  cfg.op = {0.6, 0.5};
  cfg.duration = 300.0;
  cfg.warmup = 30.0;
  cfg.seed = 77;
  return cfg;
}

TEST(Replications, AggregatesRequestedCount) {
  const auto batch = run_abstract_replications(quick_config(), 5);
  EXPECT_EQ(batch.replications, 5u);
  EXPECT_EQ(batch.access_time.samples, 5u);
  EXPECT_GT(batch.total_requests, 5u * 5000u);  // ~9000 requests per rep
}

TEST(Replications, ParallelAndSerialAgreeExactly) {
  // Substream seeding makes the result independent of scheduling.
  const auto parallel = run_abstract_replications(quick_config(), 6, true);
  const auto serial = run_abstract_replications(quick_config(), 6, false);
  EXPECT_DOUBLE_EQ(parallel.access_time.mean, serial.access_time.mean);
  EXPECT_DOUBLE_EQ(parallel.hit_ratio.mean, serial.hit_ratio.mean);
  EXPECT_DOUBLE_EQ(parallel.utilization.mean, serial.utilization.mean);
}

TEST(Replications, IntervalNarrowsWithMoreReplications) {
  const auto few = run_abstract_replications(quick_config(), 4);
  const auto many = run_abstract_replications(quick_config(), 16);
  EXPECT_LT(many.access_time.half_width, few.access_time.half_width);
}

TEST(Replications, RejectsZeroReplications) {
  EXPECT_THROW(run_abstract_replications(quick_config(), 0),
               ContractViolation);
}

TEST(Validation, RowCarriesConsistentAnalytics) {
  ValidationOptions opt;
  opt.replications = 4;
  opt.duration = 300.0;
  opt.warmup = 30.0;
  core::SystemParams params = quick_config().params;
  const auto row = validate_point(params, {0.6, 0.5},
                                  core::InteractionModel::kModelA, opt);
  const auto direct =
      core::analyze(params, {0.6, 0.5}, core::InteractionModel::kModelA);
  EXPECT_DOUBLE_EQ(row.analytic_gain, direct.gain);
  EXPECT_DOUBLE_EQ(row.analytic_access_time, direct.access_time);
  EXPECT_DOUBLE_EQ(row.analytic_access_time_no_prefetch,
                   direct.baseline.access_time);
  // Relative errors are consistent with the stored values.
  EXPECT_GT(row.sim_prefetch.access_time.mean, 0.0);
  EXPECT_LT(row.err_access_time, 0.25);  // quick run: loose sanity bound
}

TEST(Validation, BaselineRunHasNoPrefetchTraffic) {
  ValidationOptions opt;
  opt.replications = 2;
  opt.duration = 200.0;
  opt.warmup = 20.0;
  const auto row = validate_point(quick_config().params, {0.6, 0.5},
                                  core::InteractionModel::kModelA, opt);
  // Baseline hit ratio must sit at h' (no prefetched-hit class).
  EXPECT_NEAR(row.sim_baseline.hit_ratio.mean, 0.3, 0.02);
}

}  // namespace
}  // namespace specpf
