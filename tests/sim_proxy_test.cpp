// Full-stack proxy simulation: smoke, conservation, and directional
// (shape) properties of the end-to-end system.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"

namespace specpf {
namespace {

ProxySimConfig small_config() {
  ProxySimConfig cfg;
  cfg.num_users = 4;
  cfg.bandwidth = 40.0;
  cfg.graph.num_pages = 60;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.2;
  cfg.session_rate_per_user = 0.8;
  cfg.think_time_mean = 0.4;
  cfg.cache_capacity = 24;
  cfg.duration = 600.0;
  cfg.warmup = 100.0;
  cfg.seed = 7;
  return cfg;
}

TEST(ProxySim, SmokeRunProducesTraffic) {
  auto cfg = small_config();
  NoPrefetchPolicy policy;
  const auto result = run_proxy_sim(cfg, policy);
  EXPECT_GT(result.requests, 500u);
  EXPECT_GT(result.demand_jobs, 0u);
  EXPECT_EQ(result.prefetch_jobs, 0u);
  EXPECT_GT(result.hit_ratio, 0.0);
  EXPECT_LT(result.hit_ratio, 1.0);
  EXPECT_GT(result.server_utilization, 0.0);
  EXPECT_LT(result.server_utilization, 1.0);
  EXPECT_EQ(result.policy, "none");
}

TEST(ProxySim, DeterministicGivenSeed) {
  auto cfg = small_config();
  cfg.duration = 200.0;
  NoPrefetchPolicy p1, p2;
  const auto a = run_proxy_sim(cfg, p1);
  const auto b = run_proxy_sim(cfg, p2);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_access_time, b.mean_access_time);
}

TEST(ProxySim, PrefetchingRaisesHitRatioWithOracle) {
  auto cfg = small_config();
  cfg.predictor_kind = ProxySimConfig::PredictorKind::kOracle;
  NoPrefetchPolicy none;
  FixedThresholdPolicy aggressive(0.05);
  const auto base = run_proxy_sim(cfg, none);
  const auto pref = run_proxy_sim(cfg, aggressive);
  EXPECT_GT(pref.hit_ratio, base.hit_ratio);
  EXPECT_GT(pref.prefetch_jobs, 0u);
  EXPECT_GT(pref.server_utilization, base.server_utilization);
}

TEST(ProxySim, HitRatioEstimatorApproximatesNoPrefetchTruth) {
  // ĥ' measured *while prefetching* (tagged protocol) should approximate
  // the hit ratio of the same system with prefetching disabled. §4's
  // derivation assumes n̄(C) "large enough to accommodate an arbitrary
  // number of prefetched items"; use a cache with light eviction pressure
  // (the table_hprime_estimator bench quantifies the bias when that
  // assumption is violated).
  auto cfg = small_config();
  cfg.cache_capacity = 80;
  cfg.duration = 1200.0;
  NoPrefetchPolicy none;
  const auto base = run_proxy_sim(cfg, none);
  ThresholdPolicy threshold(core::InteractionModel::kModelA);
  const auto pref = run_proxy_sim(cfg, threshold);
  EXPECT_NEAR(pref.hprime_estimate, base.hit_ratio, 0.05);
}

TEST(ProxySim, ThresholdPolicyBeatsNoneOnPredictableWorkload) {
  // Low load, highly predictable sessions: prefetching should cut access
  // time relative to the cache-only baseline.
  auto cfg = small_config();
  cfg.bandwidth = 60.0;  // ρ' comfortably below 1
  cfg.graph.link_skew = 2.0;  // concentrated link probabilities
  cfg.duration = 1200.0;
  NoPrefetchPolicy none;
  ThresholdPolicy threshold(core::InteractionModel::kModelA);
  const auto base = run_proxy_sim(cfg, none);
  const auto pref = run_proxy_sim(cfg, threshold);
  EXPECT_LT(pref.mean_access_time, base.mean_access_time);
}

TEST(ProxySim, IndiscriminatePrefetchingUnderHighLoadBackfires) {
  // The paper's warning: near saturation, prefetching low-probability items
  // degrades access time. Fixed threshold 0.01 prefetches everything the
  // predictor surfaces; bandwidth is scarce.
  auto cfg = small_config();
  cfg.bandwidth = 14.0;
  cfg.num_users = 6;
  cfg.duration = 900.0;
  NoPrefetchPolicy none;
  FixedThresholdPolicy spray(0.01);
  const auto base = run_proxy_sim(cfg, none);
  const auto pref = run_proxy_sim(cfg, spray);
  EXPECT_GT(pref.mean_access_time, base.mean_access_time);
}

TEST(ProxySim, ThresholdPolicySurvivesHighLoad) {
  // Same overloaded setting: the load-aware threshold rule must not
  // degrade the baseline by more than noise (it prefetches only winners).
  auto cfg = small_config();
  cfg.bandwidth = 14.0;
  cfg.num_users = 6;
  cfg.duration = 900.0;
  NoPrefetchPolicy none;
  ThresholdPolicy threshold(core::InteractionModel::kModelA);
  const auto base = run_proxy_sim(cfg, none);
  const auto pref = run_proxy_sim(cfg, threshold);
  EXPECT_LT(pref.mean_access_time, base.mean_access_time * 1.10);
}

TEST(ProxySim, WastedPrefetchesTrackedUnderSpray) {
  auto cfg = small_config();
  cfg.cache_capacity = 8;  // small cache: pollution gets evicted
  FixedThresholdPolicy spray(0.01);
  const auto result = run_proxy_sim(cfg, spray);
  EXPECT_GT(result.prefetch_jobs, 0u);
  EXPECT_GT(result.wasted_prefetch_evictions, 0u);
  EXPECT_GT(result.prefetch_useful_fraction, 0.0);
  EXPECT_LT(result.prefetch_useful_fraction, 1.0);
}

TEST(ProxySim, LearnedPredictorApproachesOracleHitRatio) {
  auto cfg = small_config();
  cfg.duration = 1500.0;
  cfg.predictor_kind = ProxySimConfig::PredictorKind::kOracle;
  ThresholdPolicy p1(core::InteractionModel::kModelA);
  const auto oracle = run_proxy_sim(cfg, p1);
  cfg.predictor_kind = ProxySimConfig::PredictorKind::kMarkov;
  ThresholdPolicy p2(core::InteractionModel::kModelA);
  const auto markov = run_proxy_sim(cfg, p2);
  // A converged first-order Markov model on a first-order workload should
  // get within a few points of the oracle.
  EXPECT_NEAR(markov.hit_ratio, oracle.hit_ratio, 0.06);
}

TEST(ProxySim, AllCacheKindsRun) {
  for (auto kind :
       {ProxySimConfig::CacheKind::kLru, ProxySimConfig::CacheKind::kLfu,
        ProxySimConfig::CacheKind::kFifo, ProxySimConfig::CacheKind::kClock,
        ProxySimConfig::CacheKind::kRandom}) {
    auto cfg = small_config();
    cfg.cache_kind = kind;
    cfg.duration = 150.0;
    cfg.warmup = 30.0;
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto result = run_proxy_sim(cfg, policy);
    EXPECT_GT(result.requests, 100u);
  }
}

TEST(ProxySim, AllPredictorsRun) {
  for (auto kind : {ProxySimConfig::PredictorKind::kMarkov,
                    ProxySimConfig::PredictorKind::kPpm,
                    ProxySimConfig::PredictorKind::kDependencyGraph,
                    ProxySimConfig::PredictorKind::kFrequency,
                    ProxySimConfig::PredictorKind::kOracle}) {
    auto cfg = small_config();
    cfg.predictor_kind = kind;
    cfg.duration = 150.0;
    cfg.warmup = 30.0;
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto result = run_proxy_sim(cfg, policy);
    EXPECT_GT(result.requests, 100u);
  }
}

TEST(ProxySim, ModelBEstimatorRuns) {
  auto cfg = small_config();
  cfg.estimator_model = core::InteractionModel::kModelB;
  cfg.duration = 300.0;
  ThresholdPolicy policy(core::InteractionModel::kModelB);
  const auto result = run_proxy_sim(cfg, policy);
  EXPECT_GE(result.hprime_estimate, 0.0);
  EXPECT_LE(result.hprime_estimate, 1.0);
}

}  // namespace
}  // namespace specpf
