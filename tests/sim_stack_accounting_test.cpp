// Regression tests for the StackRuntime warmup/idle-link accounting fixes,
// driven through scripted DES scenarios with hand-computable timings:
//  1. wasted_evictions_ is reset at begin_measurement(), so warmup
//     evictions never leak into ProxySimResult::wasted_prefetch_evictions.
//  2. A demand miss that attaches to an in-flight prefetch promotes it to
//     demand, so the idle-link rule defers further prefetch dispatch while
//     the user is blocked.
//  3. A retrieval submitted during warmup but completing inside the
//     measurement window is counted in retrieval metrics (measuring_ is
//     re-read at completion).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "des/simulator.hpp"
#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "sim/stack_runtime.hpp"

namespace specpf {
namespace {

using core::Candidate;

/// Returns exactly the candidates set via set(); lets a test script the
/// prefetch decisions of each request.
class ScriptedPredictor final : public PredictorPlane {
 public:
  void observe(UserId, std::uint64_t) override {}
  void predict_into(UserId, std::size_t,
                    std::vector<Candidate>& out) const override {
    out = next_;
  }
  void set(std::vector<Candidate> next) { next_ = std::move(next); }

 private:
  std::vector<Candidate> next_;
};

TEST(StackAccounting, WarmupEvictionsDoNotLeakIntoMeasurement) {
  Simulator sim;
  ScriptedPredictor predictor;
  FixedThresholdPolicy policy(0.01);  // prefetch everything scripted
  StackRuntimeConfig cfg;
  cfg.bandwidth = 1000.0;  // transfers complete almost instantly
  cfg.num_users = 1;
  cfg.cache_capacity = 2;
  StackRuntime runtime(sim, predictor, policy, std::move(cfg));

  // Warmup: each request prefetches a never-touched item; capacity 2
  // guarantees untagged (wasted) evictions.
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(0.1 * (i + 1), [&runtime, &predictor, i] {
      predictor.set({Candidate{static_cast<std::uint64_t>(100 + i), 0.9}});
      runtime.handle_request(0, static_cast<std::uint64_t>(i));
    });
  }
  sim.schedule_at(2.0, [&runtime] { runtime.begin_measurement(); });
  sim.run();

  const ServerStats horizon = runtime.snapshot_server();
  const ProxySimResult quiet = runtime.finalize(horizon, "scripted");
  // All evictions happened during warmup; the measured window must be clean.
  EXPECT_EQ(quiet.wasted_prefetch_evictions, 0u);

  // Same churn after begin_measurement() must still be counted.
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(3.0 + 0.1 * i, [&runtime, &predictor, i] {
      predictor.set({Candidate{static_cast<std::uint64_t>(200 + i), 0.9}});
      runtime.handle_request(0, static_cast<std::uint64_t>(10 + i));
    });
  }
  sim.run();
  const ProxySimResult busy = runtime.finalize(runtime.snapshot_server(),
                                               "scripted");
  EXPECT_GT(busy.wasted_prefetch_evictions, 0u);
}

TEST(StackAccounting, DemandMissAttachingToPrefetchDefersNewPrefetches) {
  // bandwidth 1, item size 1: a transfer alone takes exactly 1s; two
  // concurrent transfers share the PS link at rate 1/2 each.
  Simulator sim;
  ScriptedPredictor predictor;
  FixedThresholdPolicy policy(0.01);
  StackRuntimeConfig cfg;
  cfg.bandwidth = 1.0;
  cfg.item_size = 1.0;
  cfg.num_users = 1;
  cfg.cache_capacity = 8;
  StackRuntime runtime(sim, predictor, policy, std::move(cfg));
  runtime.begin_measurement();

  // t=0: demand miss on item 1; prefetch of 2 is deferred (demand in
  // flight), dispatches at t=1 when the demand lands, so prefetch 2 is in
  // flight alone over (1, 2).
  sim.schedule_at(0.0, [&] {
    predictor.set({Candidate{2, 0.9}});
    runtime.handle_request(0, 1);
  });
  // t=1.5: demand miss on item 2 attaches to the in-flight prefetch — the
  // user is now blocked on it. The scripted prefetch of item 3 must be
  // deferred until t=2.0; if it dispatched now, PS sharing would stretch
  // prefetch 2's completion to t=2.5 and the inflight wait to 1.0s.
  sim.schedule_at(1.5, [&] {
    predictor.set({Candidate{3, 0.9}});
    runtime.handle_request(0, 2);
  });
  sim.run();

  const ProxySimResult r = runtime.finalize(runtime.snapshot_server(),
                                            "scripted");
  EXPECT_EQ(r.inflight_hits, 1u);
  EXPECT_DOUBLE_EQ(r.mean_inflight_wait, 0.5);
  EXPECT_EQ(r.prefetch_jobs, 2u);  // items 2 and 3 both still prefetched
  EXPECT_EQ(r.demand_jobs, 1u);    // item 1 only; item 2 stayed a prefetch
}

TEST(StackAccounting, WarmupSubmittedRetrievalCompletingInWindowIsCounted) {
  Simulator sim;
  ScriptedPredictor predictor;  // returns {} until set: no prefetches
  NoPrefetchPolicy policy;
  StackRuntimeConfig cfg;
  cfg.bandwidth = 1.0;  // 1s transfer
  cfg.num_users = 1;
  StackRuntime runtime(sim, predictor, policy, std::move(cfg));

  // Demand submitted at t=0 (warmup), completes at t=1.0 — inside the
  // measurement window that starts at t=0.5.
  sim.schedule_at(0.0, [&] { runtime.handle_request(0, 7); });
  sim.schedule_at(0.5, [&runtime] { runtime.begin_measurement(); });
  sim.run();

  const ProxySimResult r = runtime.finalize(runtime.snapshot_server(),
                                            "scripted");
  EXPECT_EQ(r.demand_jobs, 1u);
  // The request itself fired pre-window, so it is (correctly) not a
  // measured access.
  EXPECT_EQ(r.requests, 0u);
}

}  // namespace
}  // namespace specpf
