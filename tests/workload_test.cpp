#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "workload/catalog.hpp"
#include "workload/request_stream.hpp"
#include "workload/session_graph.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace.hpp"

namespace specpf {
namespace {

TEST(Catalog, FixedSizesAllEqualMean) {
  CatalogConfig cfg;
  cfg.num_items = 100;
  cfg.mean_size = 2.5;
  Catalog catalog(cfg, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(catalog.item_size(i), 2.5);
  }
  EXPECT_DOUBLE_EQ(catalog.mean_size(), 2.5);
  EXPECT_DOUBLE_EQ(catalog.popularity_weighted_mean_size(), 2.5);
}

TEST(Catalog, PopularityIsZipfNormalised) {
  CatalogConfig cfg;
  cfg.num_items = 50;
  cfg.zipf_alpha = 0.8;
  Catalog catalog(cfg, 1);
  double total = 0.0;
  for (std::uint64_t i = 0; i < 50; ++i) total += catalog.popularity(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(catalog.popularity(0), catalog.popularity(49));
}

TEST(Catalog, ExponentialSizesMatchMean) {
  CatalogConfig cfg;
  cfg.num_items = 20000;
  cfg.size_model = CatalogConfig::SizeModel::kExponential;
  cfg.mean_size = 3.0;
  Catalog catalog(cfg, 7);
  EXPECT_NEAR(catalog.mean_size(), 3.0, 0.1);
}

TEST(Catalog, BoundedParetoSizesMatchMean) {
  CatalogConfig cfg;
  cfg.num_items = 100000;
  cfg.size_model = CatalogConfig::SizeModel::kBoundedPareto;
  cfg.mean_size = 2.0;
  cfg.pareto_shape = 1.3;
  Catalog catalog(cfg, 11);
  EXPECT_NEAR(catalog.mean_size() / 2.0, 1.0, 0.1);
}

TEST(Catalog, ItemsCoveringMass) {
  CatalogConfig cfg;
  cfg.num_items = 1000;
  cfg.zipf_alpha = 1.0;
  Catalog catalog(cfg, 1);
  const std::size_t half = catalog.items_covering(0.5);
  EXPECT_GT(half, 1u);
  EXPECT_LT(half, 500u);  // Zipf: half the mass in far fewer than half items
  EXPECT_EQ(catalog.items_covering(1.0), 1000u);
}

TEST(Catalog, SamplingFollowsPopularity) {
  CatalogConfig cfg;
  cfg.num_items = 20;
  cfg.zipf_alpha = 1.0;
  Catalog catalog(cfg, 3);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[catalog.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, catalog.popularity(0),
              0.01);
}

TEST(IrmStream, PoissonInterarrivalsMatchRate) {
  CatalogConfig cfg;
  cfg.num_items = 10;
  Catalog catalog(cfg, 1);
  IrmStream stream(catalog, 4.0, Rng(9));
  double prev = 0.0;
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const Request r = stream.next();
    EXPECT_GT(r.time, prev);
    sum += r.time - prev;
    prev = r.time;
    ASSERT_LT(r.item, 10u);
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(SessionGraph, LinkProbabilitiesSumToOne) {
  SessionGraphConfig cfg;
  cfg.num_pages = 50;
  cfg.out_degree = 4;
  SessionGraph graph(cfg, 13);
  for (std::uint64_t page = 0; page < 50; ++page) {
    double total = 0.0;
    for (const auto& link : graph.links(page)) {
      total += link.probability;
      EXPECT_NE(link.target, page);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SessionGraph, NextDistributionScalesByContinuation) {
  SessionGraphConfig cfg;
  cfg.exit_probability = 0.25;
  SessionGraph graph(cfg, 17);
  double total = 0.0;
  for (const auto& link : graph.next_distribution(0)) {
    total += link.probability;
  }
  EXPECT_NEAR(total, 0.75, 1e-9);
}

TEST(SessionGraph, SessionLengthIsGeometric) {
  SessionGraphConfig cfg;
  cfg.exit_probability = 0.2;  // mean length 5
  SessionGraph graph(cfg, 19);
  Rng rng(21);
  double total_length = 0.0;
  constexpr int kSessions = 20000;
  for (int i = 0; i < kSessions; ++i) {
    total_length += static_cast<double>(graph.sample_session(rng).size());
  }
  EXPECT_NEAR(total_length / kSessions, 5.0, 0.15);
}

TEST(SessionGraph, SessionsFollowEdges) {
  SessionGraphConfig cfg;
  cfg.num_pages = 30;
  SessionGraph graph(cfg, 23);
  Rng rng(25);
  for (int s = 0; s < 200; ++s) {
    const auto session = graph.sample_session(rng);
    for (std::size_t i = 1; i < session.size(); ++i) {
      const auto& links = graph.links(session[i - 1]);
      const bool is_neighbor =
          std::any_of(links.begin(), links.end(), [&](const auto& l) {
            return l.target == session[i];
          });
      ASSERT_TRUE(is_neighbor);
    }
  }
}

TEST(SessionGraph, PopularityEstimateNormalised) {
  SessionGraphConfig cfg;
  cfg.num_pages = 40;
  SessionGraph graph(cfg, 27);
  const auto pop = graph.estimate_popularity(1, 5000);
  double total = 0.0;
  for (double p : pop) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SessionStream, ProducesMonotoneTimesAndValidPages) {
  SessionGraphConfig cfg;
  cfg.num_pages = 25;
  SessionGraph graph(cfg, 29);
  SessionStream stream(graph, 0.5, 0.2, Rng(31));
  double prev = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const Request r = stream.next();
    ASSERT_GE(r.time, prev);
    ASSERT_LT(r.item, 25u);
    prev = r.time;
  }
}

TEST(Trace, CsvRoundTrip) {
  Trace trace;
  trace.append({0.5, 1, 100});
  trace.append({1.25, 2, 200});
  trace.append({2.0, 1, 100});
  std::stringstream ss;
  trace.save_csv(ss);
  const Trace loaded = Trace::load_csv(ss);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.records()[1].time, 1.25);
  EXPECT_EQ(loaded.records()[1].user, 2u);
  EXPECT_EQ(loaded.records()[2].item, 100u);
}

TEST(Trace, RejectsBadHeaderAndRecords) {
  std::stringstream bad_header("nope\n");
  EXPECT_THROW(Trace::load_csv(bad_header), std::runtime_error);
  std::stringstream bad_record("time,user,item\n1.0;2;3\n");
  EXPECT_THROW(Trace::load_csv(bad_record), std::runtime_error);
}

TEST(Trace, LoadCsvRejectsMalformedLinesWithLineNumbers) {
  const char* cases[] = {
      "time,user,item\n1.0,2\n",             // missing column
      "time,user,item\n1.0,2,3,4\n",         // trailing garbage
      "time,user,item\n1.0,-2,3\n",          // negative user
      "time,user,item\n1.0,2,-3\n",          // negative item
      "time,user,item\nnan,2,3\n",           // non-finite time
      "time,user,item\ninf,2,3\n",
      "time,user,item\nabc,2,3\n",           // non-numeric time
      "time,user,item\n2.0,1,1\n1.0,2,2\n",  // time moves backwards
  };
  for (const char* text : cases) {
    std::stringstream ss(text);
    SCOPED_TRACE(text);
    try {
      Trace::load_csv(ss);
      FAIL() << "expected rejection";
    } catch (const std::runtime_error& e) {
      // Every rejection names the offending line (all cases above fail on
      // line 2 or 3 of the stream).
      EXPECT_TRUE(std::string(e.what()).find("line") != std::string::npos)
          << e.what();
    }
  }
  // Equal timestamps are fine (only strict regressions reject).
  std::stringstream ties("time,user,item\n1.0,1,1\n1.0,2,2\n");
  EXPECT_EQ(Trace::load_csv(ties).size(), 2u);
}

TEST(TraceShardViewTest, MatchesPartitionByUser) {
  Trace trace;
  Rng rng(41);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.next_double() * 0.1;
    trace.append({t, static_cast<std::uint32_t>(rng.next_u64() % 50),
                  rng.next_u64() % 200});
  }
  constexpr std::size_t kShards = 7;
  const auto parts = trace.partition_by_user(kShards);
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    const TraceShardView view(trace, s, kShards);
    EXPECT_EQ(view.count(), parts[s].size()) << "shard " << s;
    total += view.count();
    std::size_t i = 0;
    for (const TraceRecord& r : view) {
      ASSERT_LT(i, parts[s].size()) << "shard " << s;
      EXPECT_DOUBLE_EQ(r.time, parts[s].records()[i].time);
      EXPECT_EQ(r.user, parts[s].records()[i].user);
      EXPECT_EQ(r.item, parts[s].records()[i].item);
      ++i;
    }
    EXPECT_EQ(i, parts[s].size()) << "shard " << s;
  }
  EXPECT_EQ(total, trace.size());
  // A 1-way view walks the whole trace.
  const TraceShardView whole(trace, 0, 1);
  EXPECT_EQ(whole.count(), trace.size());
}

TEST(Trace, Statistics) {
  Trace trace;
  trace.append({0.0, 0, 5});
  trace.append({1.0, 1, 5});
  trace.append({4.0, 0, 7});
  EXPECT_EQ(trace.unique_items(), 2u);
  EXPECT_EQ(trace.unique_users(), 2u);
  EXPECT_DOUBLE_EQ(trace.duration(), 4.0);
  EXPECT_DOUBLE_EQ(trace.mean_request_rate(), 0.75);
  const auto counts = trace.item_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].second, 2u);  // item 5 twice
}

TEST(Trace, SortByTime) {
  Trace trace;
  trace.append({3.0, 0, 1});
  trace.append({1.0, 0, 2});
  EXPECT_FALSE(trace.is_time_ordered());
  trace.sort_by_time();
  EXPECT_TRUE(trace.is_time_ordered());
  EXPECT_EQ(trace.records()[0].item, 2u);
}

TEST(SyntheticTrace, TimeOrderedAndSized) {
  SyntheticTraceConfig cfg;
  cfg.num_users = 2000;
  cfg.num_requests = 20000;
  cfg.request_rate = 100.0;
  cfg.seed = 3;
  const Trace trace = generate_synthetic_trace(cfg);
  EXPECT_EQ(trace.size(), cfg.num_requests);
  EXPECT_TRUE(trace.is_time_ordered());
  // Uniform user draws with requests >> users cover almost everyone.
  EXPECT_GT(trace.unique_users(), cfg.num_users * 9 / 10);
  EXPECT_LE(trace.unique_users(), cfg.num_users);
  EXPECT_LE(trace.unique_items(), cfg.graph.num_pages);
  EXPECT_GT(trace.unique_items(), 0u);
  // Poisson process at the configured aggregate rate.
  EXPECT_NEAR(trace.mean_request_rate(), cfg.request_rate,
              cfg.request_rate * 0.1);
}

TEST(SyntheticTrace, DeterministicPerSeed) {
  SyntheticTraceConfig cfg;
  cfg.num_users = 100;
  cfg.num_requests = 1000;
  const Trace a = generate_synthetic_trace(cfg);
  const Trace b = generate_synthetic_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].user, b.records()[i].user);
    EXPECT_EQ(a.records()[i].item, b.records()[i].item);
    EXPECT_DOUBLE_EQ(a.records()[i].time, b.records()[i].time);
  }
  cfg.seed = 99;
  const Trace c = generate_synthetic_trace(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a.records()[i].item != c.records()[i].item ||
              a.records()[i].user != c.records()[i].user;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTraceStreamTest, MatchesMaterializedTraceAndReplaysOnReset) {
  SyntheticTraceConfig cfg;
  cfg.num_users = 150;
  cfg.num_requests = 2500;
  cfg.request_rate = 40.0;
  cfg.seed = 37;
  const Trace trace = generate_synthetic_trace(cfg);

  SyntheticTraceStream stream(cfg);
  TraceRecord r;
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass " + std::to_string(pass));
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(stream.next(&r)) << "record " << i;
      EXPECT_DOUBLE_EQ(r.time, trace.records()[i].time) << "record " << i;
      EXPECT_EQ(r.user, trace.records()[i].user) << "record " << i;
      EXPECT_EQ(r.item, trace.records()[i].item) << "record " << i;
    }
    EXPECT_FALSE(stream.next(&r));  // exhausted at num_requests
    stream.reset();                 // second pass replays identically
  }
}

TEST(SyntheticTrace, PerUserSequencesFollowTheSessionGraph) {
  // Consecutive items of one user must be linked in the generating graph
  // (or be session restarts at an entry page) — the structure predictors
  // learn from.
  SyntheticTraceConfig cfg;
  cfg.num_users = 10;
  cfg.num_requests = 2000;
  cfg.seed = 17;
  SessionGraph graph(cfg.graph, Rng(cfg.seed).substream(1).next_u64());
  const Trace trace = generate_synthetic_trace(cfg);
  std::map<std::uint32_t, std::uint64_t> last;
  std::size_t linked = 0, steps = 0;
  for (const auto& r : trace.records()) {
    auto it = last.find(r.user);
    if (it != last.end()) {
      ++steps;
      for (const auto& link : graph.links(it->second)) {
        if (link.target == r.item) {
          ++linked;
          break;
        }
      }
    }
    last[r.user] = r.item;
  }
  ASSERT_GT(steps, 500u);
  // With exit probability 0.15 most steps follow a link.
  EXPECT_GT(static_cast<double>(linked) / static_cast<double>(steps), 0.6);
}

}  // namespace
}  // namespace specpf
