// Sharded runtime: the 1-shard differential against the unsharded replay
// path, bit-determinism across worker thread counts, conservative-epoch
// cross-shard traffic, and the user→shard trace partition.
#include <gtest/gtest.h>

#include <memory>

#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"

namespace specpf {
namespace {

Trace make_trace(std::size_t users = 3000, std::size_t requests = 30000,
                 std::uint64_t seed = 77) {
  SyntheticTraceConfig cfg;
  cfg.num_users = users;
  cfg.num_requests = requests;
  cfg.request_rate = 300.0;
  cfg.graph.num_pages = 200;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.25;
  cfg.graph.link_skew = 1.6;
  cfg.seed = seed;
  return generate_synthetic_trace(cfg);
}

TraceReplayConfig replay_config() {
  TraceReplayConfig cfg;
  cfg.bandwidth = 400.0;
  cfg.cache_capacity = 8;
  cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  cfg.max_prefetch_per_request = 4;
  cfg.seed = 99;
  return cfg;
}

ShardedReplayConfig sharded_config(std::size_t shards, std::size_t threads) {
  ShardedReplayConfig cfg;
  cfg.stack = replay_config();
  cfg.num_shards = shards;
  cfg.num_threads = threads;
  cfg.backbone_latency = 0.05;
  cfg.backbone_bandwidth = 2000.0;
  return cfg;
}

PolicyFactory threshold_factory() {
  return [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };
}

// Exact equality, field by field: "bit-identical" is the contract.
void expect_result_eq(const ProxySimResult& a, const ProxySimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.mean_access_time, b.mean_access_time);
  EXPECT_EQ(a.access_time_std_error, b.access_time_std_error);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.server_utilization, b.server_utilization);
  EXPECT_EQ(a.retrieval_time_per_request, b.retrieval_time_per_request);
  EXPECT_EQ(a.retrievals_per_request, b.retrievals_per_request);
  EXPECT_EQ(a.hprime_estimate, b.hprime_estimate);
  EXPECT_EQ(a.prefetch_useful_fraction, b.prefetch_useful_fraction);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.demand_jobs, b.demand_jobs);
  EXPECT_EQ(a.prefetch_jobs, b.prefetch_jobs);
  EXPECT_EQ(a.wasted_prefetch_evictions, b.wasted_prefetch_evictions);
  EXPECT_EQ(a.inflight_hits, b.inflight_hits);
  EXPECT_EQ(a.mean_inflight_wait, b.mean_inflight_wait);
  EXPECT_EQ(a.mean_demand_sojourn, b.mean_demand_sojourn);
}

void expect_backbone_eq(const BackboneStats& a, const BackboneStats& b) {
  EXPECT_EQ(a.demand_jobs, b.demand_jobs);
  EXPECT_EQ(a.prefetch_jobs, b.prefetch_jobs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mean_sojourn, b.mean_sojourn);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.total_service_demand, b.total_service_demand);
}

TEST(ShardedSim, OneShardMatchesUnshardedReplay) {
  const Trace trace = make_trace();
  const TraceReplayConfig cfg = replay_config();

  ThresholdPolicy unsharded_policy(core::InteractionModel::kModelA);
  const ProxySimResult unsharded =
      run_trace_replay(trace, cfg, unsharded_policy);

  const ShardedReplayResult sharded =
      run_sharded_replay(trace, sharded_config(1, 1), threshold_factory());

  EXPECT_GT(unsharded.requests, 0u);
  EXPECT_GT(unsharded.prefetch_jobs, 0u);
  expect_result_eq(sharded.merged, unsharded);
  ASSERT_EQ(sharded.per_shard.size(), 1u);
  expect_result_eq(sharded.per_shard[0], unsharded);
  EXPECT_EQ(sharded.cross_shard_events, 0u);
  EXPECT_EQ(sharded.backbone.jobs(), 0u);
}

// The seed path matters too: the random cache kind draws per-user eviction
// streams from the root seed, which shard 0 must inherit verbatim.
TEST(ShardedSim, OneShardMatchesUnshardedReplayWithRandomCache) {
  const Trace trace = make_trace(800, 12000, 5);
  TraceReplayConfig cfg = replay_config();
  cfg.cache_kind = ProxySimConfig::CacheKind::kRandom;

  ThresholdPolicy policy(core::InteractionModel::kModelA);
  const ProxySimResult unsharded = run_trace_replay(trace, cfg, policy);

  ShardedReplayConfig scfg = sharded_config(1, 1);
  scfg.stack = cfg;
  const ShardedReplayResult sharded =
      run_sharded_replay(trace, scfg, threshold_factory());
  expect_result_eq(sharded.merged, unsharded);
}

TEST(ShardedSim, DeterministicAcrossThreadCounts) {
  const Trace trace = make_trace();
  ShardedReplayResult runs[3];
  const std::size_t thread_counts[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    runs[i] = run_sharded_replay(trace, sharded_config(8, thread_counts[i]),
                                 threshold_factory());
  }
  EXPECT_GT(runs[0].cross_shard_events, 0u);
  EXPECT_GT(runs[0].epochs, 0u);
  for (int i = 1; i < 3; ++i) {
    expect_result_eq(runs[i].merged, runs[0].merged);
    expect_backbone_eq(runs[i].backbone, runs[0].backbone);
    EXPECT_EQ(runs[i].epochs, runs[0].epochs);
    EXPECT_EQ(runs[i].cross_shard_events, runs[0].cross_shard_events);
    ASSERT_EQ(runs[i].per_shard.size(), runs[0].per_shard.size());
    for (std::size_t s = 0; s < runs[0].per_shard.size(); ++s) {
      expect_result_eq(runs[i].per_shard[s], runs[0].per_shard[s]);
    }
  }
}

TEST(ShardedSim, CrossShardTrafficFlowsToHomeShards) {
  const Trace trace = make_trace(2000, 20000, 13);
  const ShardedReplayResult r =
      run_sharded_replay(trace, sharded_config(4, 1), threshold_factory());

  // With items homed by item % 4, roughly 3/4 of retrievals cross shards.
  EXPECT_GT(r.cross_shard_events, 0u);
  // Backbone counters reset at the warmup boundary; the raw event count
  // covers the whole run.
  EXPECT_LE(r.backbone.jobs(), r.cross_shard_events);
  EXPECT_GT(r.backbone.demand_jobs, 0u);
  EXPECT_GT(r.backbone.prefetch_jobs, 0u);
  EXPECT_GT(r.backbone.utilization, 0.0);
  // The fleet still serves every request exactly once.
  EXPECT_EQ(r.merged.requests, trace.size() -
                                   static_cast<std::size_t>(
                                       0.1 * static_cast<double>(trace.size())));
}

TEST(ShardedSim, UserlessShardStillServesHomedItems) {
  // Users all map to shard 0 of 2 (even ids); odd items are homed on the
  // userless shard 1, which must accumulate the backbone load for them.
  std::vector<TraceRecord> records;
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += 0.01;
    records.push_back(
        {t, static_cast<std::uint32_t>((i % 40) * 2),
         static_cast<std::uint64_t>(i % 21)});
  }
  const Trace trace(std::move(records));
  ShardedReplayConfig cfg = sharded_config(2, 1);
  const ShardedReplayResult r =
      run_sharded_replay(trace, cfg, threshold_factory());
  EXPECT_GT(r.cross_shard_events, 0u);
  EXPECT_GT(r.backbone.jobs(), 0u);
  ASSERT_EQ(r.per_shard.size(), 2u);
  EXPECT_GT(r.per_shard[0].requests, 0u);
  EXPECT_EQ(r.per_shard[1].requests, 0u);
}

TEST(ShardedSim, NoPrefetchPolicyProducesNoPrefetchBackboneTraffic) {
  const Trace trace = make_trace(1000, 10000, 3);
  const ShardedReplayResult r = run_sharded_replay(
      trace, sharded_config(4, 1),
      [] { return std::make_unique<NoPrefetchPolicy>(); });
  EXPECT_EQ(r.merged.prefetch_jobs, 0u);
  EXPECT_EQ(r.backbone.prefetch_jobs, 0u);
  EXPECT_GT(r.backbone.demand_jobs, 0u);
}

TEST(TracePartition, PartitionByUserPreservesOrderAndCoverage) {
  const Trace trace = make_trace(64, 5000, 21);
  const auto parts = trace.partition_by_user(8);
  ASSERT_EQ(parts.size(), 8u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    total += parts[s].size();
    EXPECT_TRUE(parts[s].is_time_ordered());
    for (const auto& r : parts[s].records()) {
      EXPECT_EQ(r.user % 8, s);
    }
    // The non-copying view agrees with the copying partition.
    EXPECT_EQ(TraceShardView(trace, static_cast<std::uint32_t>(s), 8).count(),
              parts[s].size());
  }
  EXPECT_EQ(total, trace.size());

  const auto whole = trace.partition_by_user(1);
  ASSERT_EQ(whole.size(), 1u);
  ASSERT_EQ(whole[0].size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(whole[0].records()[i].time, trace.records()[i].time);
    EXPECT_EQ(whole[0].records()[i].user, trace.records()[i].user);
    EXPECT_EQ(whole[0].records()[i].item, trace.records()[i].item);
  }
}

TEST(SimulatorEpochHook, NextEventTimeTracksQueue) {
  Simulator sim;
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
  int fired = 0;
  sim.schedule_at(2.0, [&] { ++fired; });
  const EventId early = sim.schedule_at(1.0, [&] { ++fired; });
  EXPECT_EQ(sim.next_event_time(), 1.0);
  sim.cancel(early);
  EXPECT_EQ(sim.next_event_time(), 2.0);  // tombstone collected
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
}

}  // namespace
}  // namespace specpf
