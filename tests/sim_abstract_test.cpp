// Abstract validation simulator vs the paper's closed forms. These are the
// central reproduction tests: the DES realises the paper's stochastic
// assumptions and must land on eqs. (5), (7)–(11), (15)–(19), (27).
#include <gtest/gtest.h>

#include <cmath>

#include "core/excess_cost.hpp"
#include "sim/abstract_sim.hpp"
#include "sim/experiment.hpp"
#include "sim/validation.hpp"
#include "util/contract.hpp"

namespace specpf {
namespace {

using core::InteractionModel;
using core::OperatingPoint;
using core::SystemParams;

SystemParams paper_params(double hit_ratio) {
  SystemParams p;
  p.bandwidth = 50.0;
  p.request_rate = 30.0;
  p.mean_item_size = 1.0;
  p.hit_ratio = hit_ratio;
  p.cache_items = 100.0;
  return p;
}

AbstractSimConfig base_config(double hit_ratio, double p, double nf,
                              InteractionModel model) {
  AbstractSimConfig cfg;
  cfg.params = paper_params(hit_ratio);
  cfg.op = OperatingPoint{p, nf};
  cfg.model = model;
  cfg.duration = 1500.0;
  cfg.warmup = 150.0;
  cfg.seed = 20260608;
  return cfg;
}

TEST(AbstractSim, NoPrefetchMatchesEquationFive) {
  // t̄' = 0.05 at the paper's reference point (h'=0).
  auto cfg = base_config(0.0, 0.5, 0.0, InteractionModel::kModelA);
  const auto batch = run_abstract_replications(cfg, 8);
  EXPECT_NEAR(batch.access_time.mean, 0.05, 0.004);
  EXPECT_NEAR(batch.utilization.mean, 0.6, 0.02);
  EXPECT_NEAR(batch.hit_ratio.mean, 0.0, 1e-12);
}

TEST(AbstractSim, NoPrefetchWithCacheMatchesEquationFive) {
  auto cfg = base_config(0.3, 0.5, 0.0, InteractionModel::kModelA);
  const auto batch = run_abstract_replications(cfg, 8);
  EXPECT_NEAR(batch.access_time.mean, 0.7 / 29.0, 0.002);
  EXPECT_NEAR(batch.utilization.mean, 0.42, 0.02);
  EXPECT_NEAR(batch.hit_ratio.mean, 0.3, 0.01);
}

struct ValidationCase {
  double hit_ratio, p, nf;
  InteractionModel model;
};

class AbstractSimValidation
    : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(AbstractSimValidation, MatchesClosedFormsWithinTolerance) {
  const auto [h, p, nf, model] = GetParam();
  auto cfg = base_config(h, p, nf, model);
  const auto analytic = core::analyze(cfg.params, cfg.op, model);
  ASSERT_TRUE(analytic.conditions.total_within_capacity);

  const auto batch = run_abstract_replications(cfg, 8);
  EXPECT_NEAR(batch.hit_ratio.mean, analytic.hit_ratio, 0.01)
      << "hit ratio mismatch";
  EXPECT_NEAR(batch.utilization.mean, analytic.utilization, 0.025)
      << "utilization mismatch";
  // Access time: within 8% relative (PS sojourn tails are noisy).
  EXPECT_NEAR(batch.access_time.mean / analytic.access_time, 1.0, 0.08)
      << "access time mismatch: sim=" << batch.access_time.mean
      << " analytic=" << analytic.access_time;
  // Demand-job sojourn must match r̄ of eqs. (9)/(17).
  EXPECT_NEAR(batch.demand_sojourn.mean / analytic.retrieval_time, 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbstractSimValidation,
    ::testing::Values(
        ValidationCase{0.0, 0.7, 0.5, InteractionModel::kModelA},
        ValidationCase{0.0, 0.9, 1.0, InteractionModel::kModelA},
        ValidationCase{0.0, 0.3, 0.3, InteractionModel::kModelA},
        ValidationCase{0.3, 0.5, 0.5, InteractionModel::kModelA},
        ValidationCase{0.3, 0.8, 0.8, InteractionModel::kModelA},
        ValidationCase{0.3, 0.5, 0.5, InteractionModel::kModelB},
        ValidationCase{0.5, 0.7, 0.6, InteractionModel::kModelB}));

TEST(AbstractSim, GainChangesSignAtThreshold) {
  // The headline result, empirically: simulated gain is positive above
  // p_th = 0.6 and negative below it (h' = 0 reference point).
  for (double p : {0.3, 0.8}) {
    auto cfg = base_config(0.0, p, 0.6, InteractionModel::kModelA);
    const auto with = run_abstract_replications(cfg, 8);
    auto base = cfg;
    base.op.prefetch_rate = 0.0;
    const auto without = run_abstract_replications(base, 8);
    const double gain = without.access_time.mean - with.access_time.mean;
    if (p > 0.6) {
      EXPECT_GT(gain, 0.0) << "p=" << p;
    } else {
      EXPECT_LT(gain, 0.0) << "p=" << p;
    }
  }
}

TEST(AbstractSim, MeasuredRetrievalPerRequestMatchesEquationTwentyFive) {
  auto cfg = base_config(0.0, 0.7, 0.5, InteractionModel::kModelA);
  const auto analytic = core::analyze(cfg.params, cfg.op, cfg.model);
  const auto batch = run_abstract_replications(cfg, 8);
  const double r_expected = core::retrieval_time_per_request(
      analytic.utilization, cfg.params.request_rate);
  EXPECT_NEAR(batch.retrieval_per_request.mean / r_expected, 1.0, 0.08);
}

TEST(AbstractSim, ExcessCostMatchesEquationTwentySeven) {
  ValidationOptions opt;
  opt.replications = 8;
  opt.duration = 1500.0;
  const auto row =
      validate_point(paper_params(0.0), OperatingPoint{0.5, 0.5},
                     InteractionModel::kModelA, opt);
  EXPECT_GT(row.sim_excess_cost, 0.0);
  EXPECT_NEAR(row.sim_excess_cost / row.analytic_excess_cost, 1.0, 0.15);
}

TEST(AbstractSim, ServiceDistributionInsensitivity) {
  // M/G/1-PS means depend on the size distribution only through its mean:
  // deterministic and exponential item sizes must give the same t̄.
  auto cfg = base_config(0.0, 0.7, 0.5, InteractionModel::kModelA);
  cfg.size_dist = AbstractSimConfig::SizeDist::kExponential;
  const auto exp_batch = run_abstract_replications(cfg, 8);
  cfg.size_dist = AbstractSimConfig::SizeDist::kFixed;
  const auto det_batch = run_abstract_replications(cfg, 8);
  EXPECT_NEAR(exp_batch.access_time.mean / det_batch.access_time.mean, 1.0,
              0.08);
}

TEST(AbstractSim, InflightWaitOnlyAddsDelay) {
  // Accounting for still-in-flight prefetched items can only raise the
  // measured access time relative to the paper's idealisation.
  auto cfg = base_config(0.0, 0.7, 1.0, InteractionModel::kModelA);
  const auto ideal = run_abstract_replications(cfg, 6);
  cfg.inflight_wait = true;
  const auto waity = run_abstract_replications(cfg, 6);
  EXPECT_GE(waity.access_time.mean, ideal.access_time.mean * 0.98);
}

TEST(AbstractSim, DeterministicGivenSeed) {
  auto cfg = base_config(0.3, 0.6, 0.4, InteractionModel::kModelA);
  cfg.duration = 300.0;
  const auto a = run_abstract_sim(cfg);
  const auto b = run_abstract_sim(cfg);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_access_time, b.mean_access_time);
  EXPECT_DOUBLE_EQ(a.hit_ratio, b.hit_ratio);
}

TEST(AbstractSim, SeedChangesRealization) {
  auto cfg = base_config(0.3, 0.6, 0.4, InteractionModel::kModelA);
  cfg.duration = 300.0;
  const auto a = run_abstract_sim(cfg);
  cfg.seed ^= 0xDEADBEEF;
  const auto b = run_abstract_sim(cfg);
  EXPECT_NE(a.requests, b.requests);
}

TEST(AbstractSim, RejectsInconsistentOperatingPoint) {
  // n̄(F)·p > f' violates eq. (6).
  auto cfg = base_config(0.5, 0.9, 1.0, InteractionModel::kModelA);
  EXPECT_THROW(run_abstract_sim(cfg), ContractViolation);
}

TEST(AbstractSim, ModelBLowersHitRatioVersusModelA) {
  auto cfg_a = base_config(0.6, 0.8, 0.4, InteractionModel::kModelA);
  cfg_a.params.cache_items = 10.0;  // make the victim value visible
  auto cfg_b = cfg_a;
  cfg_b.model = InteractionModel::kModelB;
  const auto a = run_abstract_replications(cfg_a, 6);
  const auto b = run_abstract_replications(cfg_b, 6);
  // Model B loses n̄(F)·h'/n̄(C) = 0.4·0.06 = 0.024 of hit ratio.
  EXPECT_NEAR(a.hit_ratio.mean - b.hit_ratio.mean, 0.024, 0.01);
}

}  // namespace
}  // namespace specpf
