// Analytic step-response coverage for the control plane's estimators:
// the EWMA flavours (stats/ewma.hpp), the time-weighted averager they
// complement (stats/time_weighted.hpp), and the LinkLoadSensor built on
// them (control/load_sensor.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "control/load_sensor.hpp"
#include "stats/ewma.hpp"
#include "stats/time_weighted.hpp"

namespace specpf {
namespace {

// --- HoldEwma ---------------------------------------------------------------

// dv/dt = (x - v)/τ with a held step input has the closed form
// v(t) = X + (v₀ - X)·e^(-(t-t₀)/τ). The discrete update must reproduce it
// exactly, no matter how the observation times partition the interval.
TEST(HoldEwma, StepResponseMatchesClosedForm) {
  const double tau = 2.0;
  HoldEwma ewma(tau);
  ewma.observe(0.0, 0.0);  // v₀ = 0, held signal 0
  ewma.observe(1.0, 5.0);  // step to X = 5 at t₀ = 1

  // Sample at irregular instants; each reading must sit on the analytic
  // curve v(t) = 5·(1 - e^(-(t-1)/τ)).
  for (double t : {1.25, 1.5, 2.0, 3.0, 4.5, 9.0}) {
    ewma.observe(t, 5.0);
    const double expected = 5.0 * (1.0 - std::exp(-(t - 1.0) / tau));
    EXPECT_NEAR(ewma.value(), expected, 1e-12) << "t=" << t;
  }
}

TEST(HoldEwma, SamplingPartitionDoesNotChangeTheAnswer) {
  const double tau = 0.7;
  // Same signal path — 0 until t=1, then 3.0 — sampled coarsely vs finely.
  HoldEwma coarse(tau);
  coarse.observe(0.0, 0.0);
  coarse.observe(1.0, 3.0);
  coarse.observe(6.0, 3.0);

  HoldEwma fine(tau);
  fine.observe(0.0, 0.0);
  fine.observe(1.0, 3.0);
  for (double t = 1.1; t < 6.05; t += 0.1) fine.observe(t, 3.0);
  fine.observe(6.0, 3.0);

  EXPECT_NEAR(coarse.value(), fine.value(), 1e-9);
}

TEST(HoldEwma, ValueAtDecaysForwardWithoutMutation) {
  HoldEwma ewma(1.0);
  ewma.observe(0.0, 0.0);
  ewma.observe(0.0, 4.0);  // held signal becomes 4 at t=0, v stays 0
  const double at2 = ewma.value_at(2.0);
  EXPECT_NEAR(at2, 4.0 * (1.0 - std::exp(-2.0)), 1e-12);
  EXPECT_EQ(ewma.value(), 0.0);  // read did not advance the state
}

TEST(HoldEwma, FirstObservationSeedsWithoutTransient) {
  HoldEwma ewma(5.0);
  ewma.observe(10.0, 7.5);
  EXPECT_EQ(ewma.value(), 7.5);
  ewma.observe(20.0, 7.5);
  EXPECT_NEAR(ewma.value(), 7.5, 1e-12);  // constant signal stays put
}

// --- EventEwma --------------------------------------------------------------

TEST(EventEwma, GeometricStepResponse) {
  const double alpha = 0.25;
  EventEwma ewma(alpha);
  ewma.add(0.0);  // seeds at 0
  // After n observations of X, v_n = X·(1 - (1-α)^n).
  for (int n = 1; n <= 8; ++n) {
    ewma.add(2.0);
    const double expected = 2.0 * (1.0 - std::pow(1.0 - alpha, n));
    EXPECT_NEAR(ewma.value(), expected, 1e-12) << "n=" << n;
  }
}

TEST(EventEwma, PreseededStartIsOptimistic) {
  EventEwma precision(0.5, 1.0);
  EXPECT_EQ(precision.value(), 1.0);
  precision.add(0.0);  // one wasted prefetch
  EXPECT_NEAR(precision.value(), 0.5, 1e-12);
  precision.add(1.0);
  EXPECT_NEAR(precision.value(), 0.75, 1e-12);
}

// --- TimeWeighted (satellite coverage: analytic cases) ----------------------

TEST(TimeWeighted, StepFunctionAverageIsExact) {
  TimeWeighted tw;
  tw.start(0.0, 0.0);
  tw.update(4.0, 10.0);  // 0 over [0,4), 10 over [4,10)
  EXPECT_NEAR(tw.average_until(10.0), (0.0 * 4.0 + 10.0 * 6.0) / 10.0, 1e-12);
}

TEST(TimeWeighted, StaircaseAverageMatchesClosedForm) {
  // x(t) = k over [k, k+1), k = 0..4: ∫ = 0+1+2+3+4 = 10 over 5s.
  TimeWeighted tw;
  tw.start(0.0, 0.0);
  for (int k = 1; k <= 4; ++k) tw.update(static_cast<double>(k),
                                         static_cast<double>(k));
  EXPECT_NEAR(tw.average_until(5.0), 2.0, 1e-12);
}

TEST(TimeWeighted, RedundantUpdatesDoNotChangeTheAverage) {
  TimeWeighted plain;
  plain.start(0.0, 3.0);
  TimeWeighted chatty;
  chatty.start(0.0, 3.0);
  for (double t = 0.5; t < 8.0; t += 0.5) chatty.update(t, 3.0);
  EXPECT_NEAR(plain.average_until(8.0), chatty.average_until(8.0), 1e-12);
  EXPECT_NEAR(chatty.average_until(8.0), 3.0, 1e-12);
}

TEST(TimeWeighted, CurrentTracksLastValue) {
  TimeWeighted tw;
  tw.start(0.0, 1.0);
  tw.update(2.0, 6.0);
  EXPECT_EQ(tw.current(), 6.0);
}

// --- LinkLoadSensor ---------------------------------------------------------

TEST(LinkLoadSensor, QueueObservationsDriveUtilizationAndDepth) {
  LoadSensorConfig cfg;
  cfg.tau = 1.0;
  LinkLoadSensor sensor(cfg);
  sensor.observe_queue(0.0, 0);
  EXPECT_EQ(sensor.signals().utilization, 0.0);
  EXPECT_EQ(sensor.signals().queue_depth, 0.0);

  // Queue jumps to 4 at t=0 and stays; by t=3 the EWMAs must sit on the
  // step-response curve toward 1.0 (busy) and 4.0 (depth).
  sensor.observe_queue(0.0, 4);
  sensor.observe_queue(1.0, 4);
  sensor.observe_queue(3.0, 4);
  const double charge = 1.0 - std::exp(-3.0);
  EXPECT_NEAR(sensor.signals().utilization, charge, 1e-12);
  EXPECT_NEAR(sensor.signals().queue_depth, 4.0 * charge, 1e-12);
  EXPECT_NEAR(sensor.signals().peak_queue_depth, 4.0 * charge, 1e-12);
}

TEST(LinkLoadSensor, SlowdownIsSojournOverNominal) {
  LinkLoadSensor sensor;
  EXPECT_EQ(sensor.signals().slowdown, 1.0);  // idle default
  // Completion took 3x the unloaded service time; α = 0.05.
  sensor.observe_completion(1.0, 0.3, 0.1);
  EXPECT_NEAR(sensor.signals().slowdown, 1.0 + 0.05 * (3.0 - 1.0), 1e-12);
  EXPECT_NEAR(sensor.signals().peak_slowdown, sensor.signals().slowdown,
              1e-12);
}

TEST(LinkLoadSensor, ResetPeaksKeepsLearnedStateButClearsPeaks) {
  LinkLoadSensor sensor;
  sensor.observe_queue(0.0, 10);
  sensor.observe_queue(5.0, 10);  // depth EWMA well charged
  sensor.observe_queue(6.0, 2);   // load drops
  sensor.observe_queue(9.0, 2);
  const double before_reset = sensor.signals().queue_depth;
  EXPECT_GT(sensor.signals().peak_queue_depth, before_reset);
  sensor.reset_peaks();
  EXPECT_EQ(sensor.signals().peak_queue_depth, before_reset);
  EXPECT_EQ(sensor.signals().queue_depth, before_reset);  // state survives
}

}  // namespace
}  // namespace specpf
