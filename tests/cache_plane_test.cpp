// Cache-plane differential tests: the slab-backed arena backend must be
// bit-identical to the legacy per-user TaggedCache fleet — same access
// outcomes, residency, sizes, ĥ' estimates, and eviction victims (with
// tags) — across all five eviction policies under long random protocol
// sequences, plus the §4 tag-transition edge cases pinned on both paths.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_plane.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"

namespace specpf {
namespace {

using core::EntryTag;
using core::InteractionModel;

constexpr CacheKind kAllKinds[] = {CacheKind::kLru, CacheKind::kLfu,
                                   CacheKind::kFifo, CacheKind::kClock,
                                   CacheKind::kRandom};

struct Eviction {
  std::uint32_t user;
  ItemId item;
  EntryTag tag;
  bool operator==(const Eviction& o) const {
    return user == o.user && item == o.item && tag == o.tag;
  }
};

struct PlaneUnderTest {
  std::unique_ptr<CachePlane> plane;
  std::vector<Eviction> evictions;

  PlaneUnderTest(CacheKind kind, const CachePlaneConfig& config,
                 bool use_legacy) {
    plane = make_cache_plane(kind, config, use_legacy);
    plane->set_eviction_observer(
        [this](std::uint32_t user, ItemId item, EntryTag tag) {
          evictions.push_back(Eviction{user, item, tag});
        });
  }
};

/// Drives both backends through an identical random §4 protocol sequence
/// and checks every observable after every operation. Capacity selects the
/// arena's residency mode: ≤ kInlineResidencyCapacity takes the per-user
/// block arenas, above it the shared-slab + FlatIndexMap arenas.
void run_differential(CacheKind kind, std::size_t capacity,
                      std::uint64_t seed) {
  CachePlaneConfig config;
  config.num_users = 8;
  config.capacity = capacity;
  config.seed = 17;
  PlaneUnderTest arena(kind, config, /*use_legacy=*/false);
  PlaneUnderTest legacy(kind, config, /*use_legacy=*/true);

  Rng rng(seed);
  for (int op = 0; op < 30000; ++op) {
    const auto user = static_cast<std::uint32_t>(rng.next_below(8));
    const ItemId item = rng.next_below(capacity * 4);  // keeps evictions hot
    const auto kind_draw = rng.next_below(100);
    if (kind_draw < 55) {
      ASSERT_EQ(arena.plane->access(user, item),
                legacy.plane->access(user, item))
          << "op " << op;
    } else if (kind_draw < 70) {
      arena.plane->admit_demand(user, item);
      legacy.plane->admit_demand(user, item);
    } else if (kind_draw < 88) {
      arena.plane->admit_prefetch(user, item);
      legacy.plane->admit_prefetch(user, item);
    } else {
      arena.plane->admit_prefetch_accessed(user, item);
      legacy.plane->admit_prefetch_accessed(user, item);
    }
    ASSERT_EQ(arena.plane->contains(user, item),
              legacy.plane->contains(user, item))
        << "op " << op;
    ASSERT_EQ(arena.plane->size(user), legacy.plane->size(user))
        << "op " << op;
    ASSERT_EQ(arena.evictions.size(), legacy.evictions.size()) << "op " << op;
  }
  EXPECT_EQ(arena.evictions, legacy.evictions);
  EXPECT_FALSE(arena.evictions.empty());

  for (std::uint32_t u = 0; u < config.num_users; ++u) {
    EXPECT_DOUBLE_EQ(arena.plane->estimate(u, InteractionModel::kModelA),
                     legacy.plane->estimate(u, InteractionModel::kModelA));
    EXPECT_DOUBLE_EQ(arena.plane->estimate(u, InteractionModel::kModelB),
                     legacy.plane->estimate(u, InteractionModel::kModelB));
    EXPECT_EQ(arena.plane->prefetch_inserts(u), legacy.plane->prefetch_inserts(u));
    EXPECT_EQ(arena.plane->prefetch_first_uses(u),
              legacy.plane->prefetch_first_uses(u));
  }
  const CachePlaneTotals ta = arena.plane->totals(InteractionModel::kModelB);
  const CachePlaneTotals tl = legacy.plane->totals(InteractionModel::kModelB);
  EXPECT_DOUBLE_EQ(ta.hprime_sum, tl.hprime_sum);
  EXPECT_EQ(ta.prefetch_inserts, tl.prefetch_inserts);
  EXPECT_EQ(ta.prefetch_first_uses, tl.prefetch_first_uses);
}

class CachePlaneDifferential : public ::testing::TestWithParam<CacheKind> {};

TEST_P(CachePlaneDifferential, SmallArenaMatchesLegacyOnRandomProtocolOps) {
  for (std::uint64_t seed : {11ULL, 1111ULL}) {
    run_differential(GetParam(), /*capacity=*/6, seed);
  }
}

TEST_P(CachePlaneDifferential, MappedArenaMatchesLegacyOnRandomProtocolOps) {
  for (std::uint64_t seed : {11ULL, 1111ULL}) {
    run_differential(GetParam(), /*capacity=*/24, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CachePlaneDifferential,
                         ::testing::ValuesIn(kAllKinds),
                         [](const ::testing::TestParamInfo<CacheKind>& info) {
                           return std::string(cache_kind_name(info.param));
                         });

// --- §4 tag-transition edge cases, pinned identically on both backends ---

class TagTransition : public ::testing::TestWithParam<bool> {
 protected:
  static constexpr std::uint32_t kUser = 0;
};

TEST_P(TagTransition, AdmitPrefetchAccessedOnResidentItemRetagsAndCounts) {
  CachePlaneConfig config;
  config.num_users = 1;
  config.capacity = 4;
  auto plane = make_cache_plane(CacheKind::kLru, config, GetParam());

  plane->admit_prefetch(kUser, 1);  // resident, untagged
  EXPECT_EQ(plane->prefetch_inserts(kUser), 1u);
  // An in-flight prefetch of the same item was claimed by a request: the
  // admission retags the resident entry and counts another used prefetch.
  plane->admit_prefetch_accessed(kUser, 1);
  EXPECT_EQ(plane->size(kUser), 1u);
  EXPECT_EQ(plane->prefetch_inserts(kUser), 2u);
  EXPECT_EQ(plane->prefetch_first_uses(kUser), 1u);
  // The entry is now tagged: the next access is a would-have-hit.
  EXPECT_EQ(plane->access(kUser, 1), AccessOutcome::kHitTagged);
}

TEST_P(TagTransition, DemandReinsertOverUntaggedEntryUpgradesTag) {
  CachePlaneConfig config;
  config.num_users = 1;
  config.capacity = 4;
  auto plane = make_cache_plane(CacheKind::kLru, config, GetParam());

  plane->admit_prefetch(kUser, 7);  // untagged
  plane->admit_demand(kUser, 7);    // re-insert upgrades to tagged, no growth
  EXPECT_EQ(plane->size(kUser), 1u);
  EXPECT_EQ(plane->access(kUser, 7), AccessOutcome::kHitTagged);
  // Re-prefetch of the (now tagged) resident item must not downgrade it.
  plane->admit_prefetch(kUser, 7);
  EXPECT_EQ(plane->prefetch_inserts(kUser), 1u);
  EXPECT_EQ(plane->access(kUser, 7), AccessOutcome::kHitTagged);
}

TEST_P(TagTransition, ClockSecondChanceEvictionReportsVictimTagFaithfully) {
  CachePlaneConfig config;
  config.num_users = 1;
  config.capacity = 3;
  auto plane = make_cache_plane(CacheKind::kClock, config, GetParam());
  std::vector<Eviction> evictions;
  plane->set_eviction_observer(
      [&evictions](std::uint32_t user, ItemId item, EntryTag tag) {
        evictions.push_back(Eviction{user, item, tag});
      });

  plane->admit_prefetch(kUser, 1);  // frame 0, untagged, referenced
  plane->admit_demand(kUser, 2);    // frame 1, tagged
  plane->admit_demand(kUser, 3);    // frame 2, tagged
  // All reference bits set: the sweep clears every bit on the first pass
  // and takes frame 0 on the second — evicting the untagged prefetch.
  plane->admit_demand(kUser, 4);
  ASSERT_EQ(evictions.size(), 1u);
  EXPECT_EQ(evictions[0], (Eviction{kUser, 1, EntryTag::kUntagged}));

  // Touch 2 so its second chance spares it; the next insert must evict the
  // unreferenced 3 and report its (tagged) tag, not the hand's first stop.
  EXPECT_EQ(plane->access(kUser, 2), AccessOutcome::kHitTagged);
  plane->admit_demand(kUser, 5);
  ASSERT_EQ(evictions.size(), 2u);
  EXPECT_EQ(evictions[1], (Eviction{kUser, 3, EntryTag::kTagged}));
  EXPECT_TRUE(plane->contains(kUser, 2));
}

INSTANTIATE_TEST_SUITE_P(Backends, TagTransition, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "legacy" : "arena";
                         });

// --- the RSS probe the memory benchmarks rely on ---

TEST(MemoryUsage, ProbesResidentSetOnLinux) {
  const MemoryUsage usage = read_memory_usage();
#if defined(__linux__)
  EXPECT_GT(usage.resident_bytes, 0u);
  EXPECT_GE(usage.peak_resident_bytes, usage.resident_bytes);
  // Touch a real allocation and confirm the probe can only grow.
  std::vector<char> block(16 << 20, 1);
  const MemoryUsage after = read_memory_usage();
  EXPECT_GE(after.peak_resident_bytes, usage.peak_resident_bytes);
  EXPECT_GT(block[8 << 20], 0);
#else
  (void)usage;
#endif
}

}  // namespace
}  // namespace specpf
