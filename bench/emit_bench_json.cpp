// Perf-trajectory recorder: runs the engine + proxy-sim benchmarks with a
// plain chrono harness (no google-benchmark dependency) and writes the
// results as JSON so every PR can snapshot BENCH_engine.json and the perf
// history stays diffable.
//
// Usage: emit_bench_json [output.json]   (default: BENCH_engine.json)
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "engine_workloads.hpp"
#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/rng.hpp"

namespace {

using specpf::Rng;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly until ~0.5s elapses; returns best seconds/call.
double best_time(const std::function<void()>& body) {
  double best = 1e30;
  double total = 0.0;
  int calls = 0;
  while (total < 0.5 || calls < 3) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt < best) best = dt;
    total += dt;
    ++calls;
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

double bench_schedule_run(std::size_t events) {
  Rng rng(1);
  return best_time(
      [&] { specpf::benchwork::schedule_and_run(rng, events); });
}

double bench_cancel_heavy() {
  Rng rng(2);
  return best_time([&] { specpf::benchwork::cancel_heavy(rng); });
}

double bench_ps_server(std::uint64_t* jobs_out) {
  std::uint64_t completed = 0;
  const double secs = best_time(
      [&] { completed = specpf::benchwork::ps_server_throughput(); });
  *jobs_out = completed;
  return secs;
}

double bench_proxy_sim(std::uint64_t* requests_out) {
  specpf::ProxySimConfig config;
  config.num_users = 8;
  config.duration = 300.0;
  config.warmup = 30.0;
  config.seed = 11;
  std::uint64_t requests = 0;
  const double secs = best_time([&] {
    specpf::ThresholdPolicy policy(specpf::core::InteractionModel::kModelA);
    const auto result = run_proxy_sim(config, policy);
    requests = result.requests;
  });
  *requests_out = requests;
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_engine.json";

  std::vector<Metric> metrics;
  const std::size_t kSizes[] = {1024, 16384, 131072};
  for (std::size_t events : kSizes) {
    const double secs = bench_schedule_run(events);
    const double per_event_ns = secs / static_cast<double>(events) * 1e9;
    const std::string base =
        "engine.schedule_and_run." + std::to_string(events);
    metrics.push_back({base + ".events_per_sec",
                       static_cast<double>(events) / secs, "events/s"});
    metrics.push_back({base + ".ns_per_event", per_event_ns, "ns"});
  }

  const double cancel_secs = bench_cancel_heavy();
  metrics.push_back({"engine.cancel_heavy.ms_per_iter", cancel_secs * 1e3,
                     "ms"});

  std::uint64_t ps_jobs = 0;
  const double ps_secs = bench_ps_server(&ps_jobs);
  metrics.push_back({"ps_server.ops_per_sec",
                     static_cast<double>(ps_jobs) / ps_secs, "jobs/s"});

  std::uint64_t requests = 0;
  const double proxy_secs = bench_proxy_sim(&requests);
  metrics.push_back({"proxy_sim.requests_per_sec",
                     static_cast<double>(requests) / proxy_secs,
                     "requests/s"});

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-45s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }
  return 0;
}
