// Cache-plane perf/memory recorder: measures the slab-backed arena cache
// plane against the legacy per-user TaggedCache fleet — resident bytes per
// user (via the util/mem RSS probe) under the million-user sweep's own
// workload shape, cold construction of a million-user fleet, protocol-op
// churn throughput, and an end-to-end trace replay — and writes
// BENCH_cache.json alongside the engine/stack/shard snapshots.
//
// The fleet footprint is measured by replaying the same synthetic
// session trace the million_user_sweep example uses (1M users, 3 requests
// per user on average, 400 pages) directly against the cache plane:
// demand admissions on misses plus a prefetch admission stream in the
// sweep's observed prefetch:demand ratio — the engine, in-flight map, and
// predictor are deliberately absent so the number isolates the caches.
//
// The arena is measured before the legacy fleet so allocator page reuse
// can only shrink the legacy numbers: the reported ratios are lower
// bounds on the arena's advantage.
//
// Usage: perf_cache_arena [output.json] [num_users]
//        (defaults: BENCH_cache.json, 1000000)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_plane.hpp"
#include "policy/policies.hpp"
#include "sim/trace_replay.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly until ~0.5s elapses; returns best seconds/call.
double best_time(const std::function<void()>& body) {
  double best = 1e30;
  double total = 0.0;
  int calls = 0;
  while (total < 0.5 || calls < 3) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt < best) best = dt;
    total += dt;
    ++calls;
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

constexpr std::size_t kCapacity = 8;  // the million-user sweep's default

/// The sweep's cache-plane traffic, minus the engine: every trace record is
/// an access; misses demand-admit, and every other miss also prefetch-admits
/// a neighbour page (≈ the sweep's realised prefetch:demand job ratio).
std::uint64_t drive_sweep_workload(CachePlane& plane, const Trace& trace,
                                   std::size_t num_pages) {
  std::uint64_t checksum = 0;
  std::uint64_t misses = 0;
  for (const auto& r : trace.records()) {
    switch (plane.access(r.user, r.item)) {
      case AccessOutcome::kHitTagged:
        checksum += 3;
        break;
      case AccessOutcome::kHitUntagged:
        checksum += 2;
        break;
      case AccessOutcome::kMiss:
        ++checksum;
        plane.admit_demand(r.user, r.item);
        if ((++misses & 1) == 0) {
          plane.admit_prefetch(r.user, (r.item + 1) % num_pages);
        }
        break;
    }
  }
  return checksum;
}

/// RSS delta of construct + sweep replay, construction time, and drive
/// throughput, for one backend.
struct FleetCost {
  double construct_secs = 0.0;
  double drive_secs = 0.0;
  double bytes_per_user = 0.0;
  std::uint64_t checksum = 0;
};

FleetCost measure_fleet(bool use_legacy, std::size_t num_users,
                        const Trace& trace, std::size_t num_pages) {
  CachePlaneConfig config;
  config.num_users = num_users;
  config.capacity = kCapacity;
  config.seed = 7;
  const std::size_t rss_before = read_memory_usage().resident_bytes;
  auto t0 = Clock::now();
  auto plane = make_cache_plane(CacheKind::kLru, config, use_legacy);
  FleetCost cost;
  cost.construct_secs = seconds_since(t0);
  t0 = Clock::now();
  cost.checksum = drive_sweep_workload(*plane, trace, num_pages);
  cost.drive_secs = seconds_since(t0);
  const std::size_t rss_after = read_memory_usage().resident_bytes;
  cost.bytes_per_user =
      rss_after > rss_before
          ? static_cast<double>(rss_after - rss_before) /
                static_cast<double>(num_users)
          : 0.0;
  return cost;
}

/// The stack's per-request cache work, replayed against one backend: an
/// access, and on a miss a demand or prefetch admission, over a rolling
/// population — returns ops/sec and a checksum for cross-backend equality.
constexpr std::size_t kChurnUsers = 65536;
constexpr std::size_t kChurnOps = 2000000;

std::uint64_t churn(CachePlane& plane) {
  Rng rng(42);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < kChurnOps; ++i) {
    const auto user = static_cast<std::uint32_t>(rng.next_below(kChurnUsers));
    const ItemId item = rng.next_below(4096);
    switch (plane.access(user, item)) {
      case AccessOutcome::kHitTagged:
        checksum += 3;
        break;
      case AccessOutcome::kHitUntagged:
        checksum += 2;
        break;
      case AccessOutcome::kMiss:
        ++checksum;
        if ((i & 3) == 0) {
          plane.admit_prefetch(user, item);
        } else {
          plane.admit_demand(user, item);
        }
        break;
    }
  }
  return checksum;
}

double bench_churn(bool use_legacy, std::uint64_t* checksum) {
  return best_time([&] {
    CachePlaneConfig config;
    config.num_users = kChurnUsers;
    config.capacity = kCapacity;
    config.seed = 7;
    auto plane = make_cache_plane(CacheKind::kLru, config, use_legacy);
    *checksum = churn(*plane);
  });
}

double bench_trace_replay(bool use_legacy, std::uint64_t* requests_out) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 50000;
  trace_cfg.num_requests = 200000;
  trace_cfg.request_rate = 1000.0;
  trace_cfg.graph.num_pages = 400;
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.seed = 5;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = 1200.0;
  replay_cfg.cache_capacity = kCapacity;
  replay_cfg.max_prefetch_per_request = 4;
  replay_cfg.use_legacy_caches = use_legacy;
  std::uint64_t requests = 0;
  const double secs = best_time([&] {
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto result = run_trace_replay(trace, replay_cfg, policy);
    requests = result.requests;
  });
  *requests_out = requests;
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_cache.json";
  const std::size_t num_users =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1000000;
  std::vector<Metric> metrics;

  // The sweep-shaped trace both fleet measurements replay (allocated before
  // the first RSS snapshot, so it cancels out of the deltas).
  constexpr std::size_t kNumPages = 400;
  SyntheticTraceConfig sweep_cfg;
  sweep_cfg.num_users = num_users;
  sweep_cfg.num_requests = 3 * num_users;
  sweep_cfg.request_rate = 10000.0;
  sweep_cfg.graph.num_pages = kNumPages;
  sweep_cfg.graph.out_degree = 3;
  sweep_cfg.graph.exit_probability = 0.25;
  sweep_cfg.graph.link_skew = 1.6;
  sweep_cfg.seed = 2001;
  const Trace sweep_trace = generate_synthetic_trace(sweep_cfg);

  // Fleet footprint and cold construction. Arena first (see header note).
  const FleetCost arena_cost =
      measure_fleet(false, num_users, sweep_trace, kNumPages);
  const FleetCost legacy_cost =
      measure_fleet(true, num_users, sweep_trace, kNumPages);
  if (arena_cost.checksum != legacy_cost.checksum) {
    std::fprintf(stderr, "fleet replay diverged: arena=%llu legacy=%llu\n",
                 static_cast<unsigned long long>(arena_cost.checksum),
                 static_cast<unsigned long long>(legacy_cost.checksum));
    return 1;
  }
  metrics.push_back({"cache.fleet.users", static_cast<double>(num_users), ""});
  metrics.push_back(
      {"cache.fleet.arena_bytes_per_user", arena_cost.bytes_per_user, "B"});
  metrics.push_back(
      {"cache.fleet.legacy_bytes_per_user", legacy_cost.bytes_per_user, "B"});
  if (arena_cost.bytes_per_user > 0.0) {
    metrics.push_back({"cache.fleet.legacy_vs_arena_bytes_ratio",
                       legacy_cost.bytes_per_user / arena_cost.bytes_per_user,
                       "x"});
  }
  metrics.push_back({"cache.fleet.arena_construct_users_per_sec",
                     static_cast<double>(num_users) / arena_cost.construct_secs,
                     "users/s"});
  metrics.push_back(
      {"cache.fleet.legacy_construct_users_per_sec",
       static_cast<double>(num_users) / legacy_cost.construct_secs, "users/s"});
  metrics.push_back({"cache.fleet.construct_speedup",
                     legacy_cost.construct_secs / arena_cost.construct_secs,
                     "x"});
  const double sweep_ops = static_cast<double>(sweep_trace.size());
  metrics.push_back({"cache.fleet.arena_sweep_ops_per_sec",
                     sweep_ops / arena_cost.drive_secs, "ops/s"});
  metrics.push_back({"cache.fleet.legacy_sweep_ops_per_sec",
                     sweep_ops / legacy_cost.drive_secs, "ops/s"});

  // Protocol-op churn.
  std::uint64_t arena_checksum = 0, legacy_checksum = 0;
  const double arena_churn_secs = bench_churn(false, &arena_checksum);
  const double legacy_churn_secs = bench_churn(true, &legacy_checksum);
  if (arena_checksum != legacy_checksum) {
    std::fprintf(stderr, "cache plane churn diverged: arena=%llu legacy=%llu\n",
                 static_cast<unsigned long long>(arena_checksum),
                 static_cast<unsigned long long>(legacy_checksum));
    return 1;
  }
  const double ops = static_cast<double>(kChurnOps);
  metrics.push_back(
      {"cache.churn.arena_ops_per_sec", ops / arena_churn_secs, "ops/s"});
  metrics.push_back(
      {"cache.churn.legacy_ops_per_sec", ops / legacy_churn_secs, "ops/s"});
  metrics.push_back({"cache.churn.arena_vs_legacy_speedup",
                     legacy_churn_secs / arena_churn_secs, "x"});

  // End-to-end replay.
  std::uint64_t arena_requests = 0, legacy_requests = 0;
  const double arena_replay_secs = bench_trace_replay(false, &arena_requests);
  const double legacy_replay_secs = bench_trace_replay(true, &legacy_requests);
  if (arena_requests != legacy_requests) {
    std::fprintf(stderr, "trace replay backends diverged: arena=%llu legacy=%llu\n",
                 static_cast<unsigned long long>(arena_requests),
                 static_cast<unsigned long long>(legacy_requests));
    return 1;
  }
  metrics.push_back({"cache.trace_replay.arena_requests_per_sec",
                     static_cast<double>(arena_requests) / arena_replay_secs,
                     "requests/s"});
  metrics.push_back({"cache.trace_replay.legacy_requests_per_sec",
                     static_cast<double>(legacy_requests) / legacy_replay_secs,
                     "requests/s"});
  metrics.push_back({"cache.trace_replay.arena_vs_legacy_speedup",
                     legacy_replay_secs / arena_replay_secs, "x"});

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-45s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }
  return 0;
}
