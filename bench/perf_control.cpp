// Control-plane perf/behaviour recorder: measures what the prefetch
// governors do to network load under a flash crowd — peak smoothed queue
// depth, peak slowdown, access time, and hit ratios, governed vs
// ungoverned — plus the runtime overhead of sensing and governing, and
// writes BENCH_control.json alongside the other snapshots.
//
// The binary re-verifies the subsystem's contracts before writing
// anything:
//   1. a replay with the no-op governor is bit-identical to the
//      ungoverned replay (installing the control plane changes nothing
//      until a governor actually refuses work), and
//   2. a governed sharded run is bit-identical across 1/2/8 worker
//      threads (governor state is shard-local; setpoint exchange happens
//      at epoch barriers on the driver thread).
//
// The headline metrics record the acceptance scenario: under the flash
// crowd, the token-bucket governor must cut the peak queue depth and peak
// slowdown versus ungoverned at an equal-or-better *instant* hit ratio
// (hits served with zero wait — the overall ratio also counts hits that
// blocked on a live transfer, which is exactly what congestion inflates).
//
// Usage: perf_control [output.json]   (default: BENCH_control.json)
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

Trace make_flash_trace() {
  SyntheticTraceConfig cfg;
  cfg.num_users = 30000;
  cfg.num_requests = 150000;
  cfg.request_rate = 4000.0;
  cfg.graph.num_pages = 400;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.25;
  cfg.graph.link_skew = 1.6;
  cfg.seed = 2001;
  const double span =
      static_cast<double>(cfg.num_requests) / cfg.request_rate;
  const bool ok =
      make_scenario_modulation("flash", span, 8, &cfg.modulation);
  (void)ok;
  return generate_synthetic_trace(cfg);
}

TraceReplayConfig stack_config() {
  TraceReplayConfig cfg;
  cfg.bandwidth = 23000.0;
  cfg.cache_capacity = 8;
  cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  cfg.max_prefetch_per_request = 4;
  cfg.seed = 2001;
  cfg.enable_load_sensor = true;
  return cfg;
}

std::unique_ptr<PrefetchPolicy> aggressive_policy() {
  return make_policy_by_name("fixed-0.05");
}

PolicyFactory aggressive_factory() {
  return [] { return make_policy_by_name("fixed-0.05"); };
}

template <typename F>
double best_of_two(const F& body) {
  double best = 1e30;
  for (int i = 0; i < 2; ++i) {
    const auto t0 = Clock::now();
    body();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt < best) best = dt;
  }
  return best;
}

bool results_equal(const ProxySimResult& a, const ProxySimResult& b) {
  return a.mean_access_time == b.mean_access_time &&
         a.hit_ratio == b.hit_ratio &&
         a.server_utilization == b.server_utilization &&
         a.requests == b.requests && a.demand_jobs == b.demand_jobs &&
         a.prefetch_jobs == b.prefetch_jobs &&
         a.inflight_hits == b.inflight_hits &&
         a.hprime_estimate == b.hprime_estimate &&
         a.throttled_prefetches == b.throttled_prefetches &&
         a.peak_queue_depth == b.peak_queue_depth &&
         a.peak_slowdown == b.peak_slowdown;
}

double instant_hit_ratio(const ProxySimResult& r) {
  if (r.requests == 0) return 0.0;
  return r.hit_ratio - static_cast<double>(r.inflight_hits) /
                           static_cast<double>(r.requests);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_control.json";
  std::vector<Metric> metrics;

  const Trace trace = make_flash_trace();
  TraceReplayConfig stack = stack_config();

  // Contract 1: noop governor == ungoverned, bit for bit.
  ProxySimResult ungoverned;
  {
    auto policy = aggressive_policy();
    ungoverned = run_trace_replay(trace, stack, *policy);
  }
  {
    TraceReplayConfig noop = stack;
    noop.governor = "noop";
    auto policy = aggressive_policy();
    const ProxySimResult r = run_trace_replay(trace, noop, *policy);
    if (!results_equal(r, ungoverned)) {
      std::fprintf(stderr, "noop-governed replay diverged from ungoverned\n");
      return 1;
    }
  }

  // Contract 2: governed sharded runs are thread-count deterministic.
  {
    ShardedReplayConfig fleet;
    fleet.stack = stack;
    fleet.stack.governor = "aimd-3";
    fleet.num_shards = 8;
    fleet.backbone_bandwidth = 46000.0;
    fleet.backbone_latency = 0.05;
    ShardedReplayResult reference;
    bool have_reference = false;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      fleet.num_threads = threads;
      const ShardedReplayResult r =
          run_sharded_replay(trace, fleet, aggressive_factory());
      if (!have_reference) {
        reference = r;
        have_reference = true;
      } else if (!results_equal(r.merged, reference.merged) ||
                 r.cross_shard_events != reference.cross_shard_events) {
        std::fprintf(stderr,
                     "governed 8-shard run diverged at %zu worker threads\n",
                     threads);
        return 1;
      }
    }
    metrics.push_back({"control.shard8.throttled_prefetches",
                       static_cast<double>(
                           reference.merged.throttled_prefetches),
                       "prefetches"});
  }

  // Headline: flash-crowd win per governor.
  const char* governors[] = {"token-200", "aimd-3", "conf-0.35"};
  metrics.push_back({"control.flash.ungoverned.peak_queue_depth",
                     ungoverned.peak_queue_depth, "jobs"});
  metrics.push_back({"control.flash.ungoverned.peak_slowdown",
                     ungoverned.peak_slowdown, "x"});
  metrics.push_back({"control.flash.ungoverned.mean_access_time",
                     ungoverned.mean_access_time, "s"});
  metrics.push_back({"control.flash.ungoverned.hit_ratio",
                     ungoverned.hit_ratio, "ratio"});
  metrics.push_back({"control.flash.ungoverned.instant_hit_ratio",
                     instant_hit_ratio(ungoverned), "ratio"});
  ProxySimResult token_result;
  for (const char* name : governors) {
    TraceReplayConfig governed = stack;
    governed.governor = name;
    auto policy = aggressive_policy();
    const ProxySimResult r = run_trace_replay(trace, governed, *policy);
    if (std::string(name) == "token-200") token_result = r;
    const std::string prefix = std::string("control.flash.") + name + ".";
    metrics.push_back({prefix + "peak_queue_depth", r.peak_queue_depth,
                       "jobs"});
    metrics.push_back({prefix + "peak_slowdown", r.peak_slowdown, "x"});
    metrics.push_back({prefix + "mean_access_time", r.mean_access_time, "s"});
    metrics.push_back({prefix + "hit_ratio", r.hit_ratio, "ratio"});
    metrics.push_back({prefix + "instant_hit_ratio", instant_hit_ratio(r),
                       "ratio"});
    metrics.push_back({prefix + "throttled_prefetches",
                       static_cast<double>(r.throttled_prefetches),
                       "prefetches"});
  }

  // Acceptance gate: the token bucket must cut both peaks at an
  // equal-or-better instant hit ratio.
  if (!(token_result.peak_queue_depth < ungoverned.peak_queue_depth &&
        token_result.peak_slowdown < ungoverned.peak_slowdown &&
        instant_hit_ratio(token_result) >=
            instant_hit_ratio(ungoverned))) {
    std::fprintf(stderr,
                 "token-200 failed the flash-crowd acceptance gate\n");
    return 1;
  }
  metrics.push_back(
      {"control.flash.token200_peak_depth_reduction",
       ungoverned.peak_queue_depth / token_result.peak_queue_depth, "x"});
  metrics.push_back(
      {"control.flash.token200_access_time_reduction",
       ungoverned.mean_access_time / token_result.mean_access_time, "x"});

  // Overhead of the control plane on the hot path: ungoverned/no-sensor vs
  // sensor-on vs governed throughput on the same replay.
  const std::uint64_t requests = ungoverned.requests;
  TraceReplayConfig plain = stack;
  plain.enable_load_sensor = false;
  const double plain_secs = best_of_two([&] {
    auto policy = aggressive_policy();
    (void)run_trace_replay(trace, plain, *policy);
  });
  const double sensed_secs = best_of_two([&] {
    auto policy = aggressive_policy();
    (void)run_trace_replay(trace, stack, *policy);
  });
  TraceReplayConfig governed = stack;
  governed.governor = "token-200";
  const double governed_secs = best_of_two([&] {
    auto policy = aggressive_policy();
    (void)run_trace_replay(trace, governed, *policy);
  });
  metrics.push_back({"control.replay.ungoverned_requests_per_sec",
                     static_cast<double>(requests) / plain_secs,
                     "requests/s"});
  metrics.push_back({"control.replay.sensor_overhead",
                     sensed_secs / plain_secs, "x"});
  metrics.push_back({"control.replay.governed_requests_per_sec",
                     static_cast<double>(requests) / governed_secs,
                     "requests/s"});

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-55s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }
  return 0;
}
