// Trace-pipeline perf recorder: measures what the out-of-core .spt path
// costs and saves, with the same plain chrono harness as perf_stack, and
// writes BENCH_trace.json.
//
// Legs:
//   * encode  — write_trace_file over a streamed 1M-record synthetic
//     source: records/s and payload MB/s out, plus bytes/record (the
//     on-disk compression the varint+delta format buys vs the 24-byte
//     in-RAM TraceRecord).
//   * decode  — full TraceCursor scan of that file: records/s back in.
//   * replay  — streamed-source replay vs the in-RAM vector replay over
//     an identical 300k-record workload; the two results are verified
//     bit-identical before either leg is timed, so the overhead number
//     can only describe runs that agree.
//   * rss     — peak resident set of a streamed generator replay vs the
//     bytes the same trace would pin as an in-RAM vector. The streamed
//     leg runs first (peak RSS is a high-water mark, monotone within a
//     process), so the in-RAM leg cannot inflate its reading.
//
// --rss-sweep N replaces the default 4M-request rss leg with an N-request
// streamed run (no in-RAM counterpart — at N = 1e9 there isn't enough RAM,
// which is the point) and reports the measured streamed peak against the
// 24·N-byte vector floor the in-RAM path would need before event overhead.
//
// Usage: perf_trace [output.json] [--rss-sweep N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "policy/policies.hpp"
#include "sim/trace_replay.hpp"
#include "util/mem.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly until ~0.5s elapses; returns best seconds/call.
double best_time(const std::function<void()>& body) {
  double best = 1e30;
  double total = 0.0;
  int calls = 0;
  while (total < 0.5 || calls < 3) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt < best) best = dt;
    total += dt;
    ++calls;
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

SyntheticTraceConfig make_trace_config(std::size_t requests) {
  SyntheticTraceConfig cfg;
  cfg.num_users = 50000;
  cfg.num_requests = requests;
  cfg.request_rate = 1000.0;
  cfg.graph.num_pages = 400;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.25;
  cfg.seed = 5;
  return cfg;
}

TraceReplayConfig make_replay_config() {
  TraceReplayConfig cfg;
  cfg.bandwidth = 1200.0;
  cfg.cache_capacity = 8;
  cfg.max_prefetch_per_request = 4;
  return cfg;
}

bool results_identical(const ProxySimResult& a, const ProxySimResult& b) {
  return a.requests == b.requests && a.demand_jobs == b.demand_jobs &&
         a.prefetch_jobs == b.prefetch_jobs &&
         a.mean_access_time == b.mean_access_time &&
         a.hit_ratio == b.hit_ratio;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = "BENCH_trace.json";
  std::size_t rss_sweep = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rss-sweep") == 0 && i + 1 < argc) {
      rss_sweep = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      path = argv[i];
    }
  }
  std::vector<Metric> metrics;
  const char* tmp_spt = "perf_trace_tmp.spt";

  // --- rss leg first: peak RSS is a process-lifetime high-water mark, so
  // the streamed reading must be taken before anything materializes a big
  // vector. The streamed replay's peak should track the epoch window and
  // the 50k-user stack, not the request count.
  {
    const std::size_t n = rss_sweep ? rss_sweep : 4000000;
    const SyntheticTraceConfig cfg = make_trace_config(n);
    SyntheticTraceStream stream(cfg);
    const TraceReplayConfig replay_cfg = make_replay_config();
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto t0 = Clock::now();
    const ProxySimResult r = run_trace_replay(stream, replay_cfg, policy);
    const double secs = seconds_since(t0);
    const double streamed_peak =
        static_cast<double>(read_memory_usage().peak_resident_bytes);
    const double in_ram_floor = 24.0 * static_cast<double>(n);
    metrics.push_back({"trace.rss.requests", static_cast<double>(n), "records"});
    metrics.push_back({"trace.rss.streamed_replay_requests_per_sec",
                       static_cast<double>(r.requests) / secs, "requests/s"});
    metrics.push_back(
        {"trace.rss.streamed_peak_bytes", streamed_peak, "bytes"});
    metrics.push_back(
        {"trace.rss.in_ram_vector_floor_bytes", in_ram_floor, "bytes"});
    metrics.push_back({"trace.rss.in_ram_floor_over_streamed_peak",
                       in_ram_floor / streamed_peak, "x"});
    if (!rss_sweep) {
      // Small enough to also measure the in-RAM path for real: regenerate
      // the identical trace as a vector and replay it.
      const Trace trace = generate_synthetic_trace(cfg);
      ThresholdPolicy ram_policy(core::InteractionModel::kModelA);
      const ProxySimResult ram_r =
          run_trace_replay(trace, replay_cfg, ram_policy);
      if (!results_identical(r, ram_r)) {
        std::fprintf(stderr, "rss leg: streamed result diverged from in-RAM\n");
        return 1;
      }
      const double ram_peak =
          static_cast<double>(read_memory_usage().peak_resident_bytes);
      metrics.push_back({"trace.rss.in_ram_peak_bytes", ram_peak, "bytes"});
    }
  }

  // --- encode: stream 1M generated records straight into an .spt file.
  const SyntheticTraceConfig enc_cfg = make_trace_config(1000000);
  {
    std::uint64_t written = 0;
    const double secs = best_time([&] {
      SyntheticTraceStream stream(enc_cfg);
      written = write_trace_file(tmp_spt, stream);
    });
    const TraceFile file(tmp_spt);
    const double payload_mb =
        static_cast<double>(file.header().payload_bytes) / 1e6;
    metrics.push_back({"trace.encode.records_per_sec",
                       static_cast<double>(written) / secs, "records/s"});
    metrics.push_back(
        {"trace.encode.payload_mb_per_sec", payload_mb / secs, "MB/s"});
    metrics.push_back(
        {"trace.encode.bytes_per_record", file.bytes_per_record(), "bytes"});
  }

  // --- decode: full cursor scan of the file just written.
  {
    const TraceFile file(tmp_spt);
    std::uint64_t decoded = 0;
    const double secs = best_time([&] {
      TraceCursor cursor(file);
      TraceRecord r;
      decoded = 0;
      while (cursor.next(&r)) ++decoded;
    });
    if (decoded != file.record_count()) {
      std::fprintf(stderr, "decode leg lost records\n");
      return 1;
    }
    metrics.push_back({"trace.decode.records_per_sec",
                       static_cast<double>(decoded) / secs, "records/s"});
  }
  std::remove(tmp_spt);

  // --- replay: streamed generator source vs in-RAM vector, identical
  // workload. Bit-identity is checked before timing.
  {
    const SyntheticTraceConfig cfg = make_trace_config(300000);
    const TraceReplayConfig replay_cfg = make_replay_config();
    const Trace trace = generate_synthetic_trace(cfg);
    const double requests = static_cast<double>(trace.size());

    ProxySimResult ram_r, streamed_r;
    {
      ThresholdPolicy policy(core::InteractionModel::kModelA);
      ram_r = run_trace_replay(trace, replay_cfg, policy);
    }
    {
      SyntheticTraceStream stream(cfg);
      ThresholdPolicy policy(core::InteractionModel::kModelA);
      streamed_r = run_trace_replay(stream, replay_cfg, policy);
    }
    if (!results_identical(ram_r, streamed_r)) {
      std::fprintf(stderr, "streamed replay diverged from in-RAM replay\n");
      return 1;
    }

    const double ram_secs = best_time([&] {
      ThresholdPolicy policy(core::InteractionModel::kModelA);
      ram_r = run_trace_replay(trace, replay_cfg, policy);
    });
    const double streamed_secs = best_time([&] {
      SyntheticTraceStream stream(cfg);
      ThresholdPolicy policy(core::InteractionModel::kModelA);
      streamed_r = run_trace_replay(stream, replay_cfg, policy);
    });
    metrics.push_back({"trace.replay.in_ram_requests_per_sec",
                       requests / ram_secs, "requests/s"});
    metrics.push_back({"trace.replay.streamed_requests_per_sec",
                       requests / streamed_secs, "requests/s"});
    metrics.push_back({"trace.replay.streamed_overhead",
                       streamed_secs / ram_secs, "x"});
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-48s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }
  return 0;
}
