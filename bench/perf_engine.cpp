// Engine micro-benchmarks: event queue, PS server, RNG, distributions.
// Workload bodies live in engine_workloads.hpp, shared with emit_bench_json
// so the JSON trajectory and these numbers measure the same thing.
#include <benchmark/benchmark.h>

#include "engine_workloads.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace specpf;

void BM_EventQueue_ScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchwork::schedule_and_run(rng, events));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueue_ScheduleAndRun)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_EventQueue_CancelHeavy(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchwork::cancel_heavy(rng));
  }
}
BENCHMARK(BM_EventQueue_CancelHeavy);

void BM_PsServer_Throughput(benchmark::State& state) {
  // Sustained M/M/1-PS at rho = 0.7: jobs processed per second of CPU.
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchwork::ps_server_throughput());
  }
}
BENCHMARK(BM_PsServer_Throughput);

void BM_Rng_NextDouble(benchmark::State& state) {
  Rng rng(4);
  double acc = 0.0;
  for (auto _ : state) acc += rng.next_double();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Rng_NextDouble);

void BM_Zipf_Sample(benchmark::State& state) {
  ZipfDist zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  Rng rng(5);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += zipf.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Zipf_Sample)->Arg(1000)->Arg(1000000);

void BM_Discrete_AliasSample(benchmark::State& state) {
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  Rng seed_rng(6);
  for (auto& w : weights) w = seed_rng.next_double() + 0.01;
  DiscreteDist dist(weights);
  Rng rng(7);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Discrete_AliasSample)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
