// Engine micro-benchmarks: event queue, PS server, RNG, distributions.
#include <benchmark/benchmark.h>

#include <functional>

#include "des/simulator.hpp"
#include "net/ps_server.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace specpf;

void BM_EventQueue_ScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Simulator sim;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(rng.next_double() * 1000.0, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueue_ScheduleAndRun)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_EventQueue_CancelHeavy(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(sim.schedule_at(rng.next_double() * 100.0, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventQueue_CancelHeavy);

void BM_PsServer_Throughput(benchmark::State& state) {
  // Sustained M/M/1-PS at rho = 0.7: jobs processed per second of CPU.
  for (auto _ : state) {
    Simulator sim;
    PsServer server(sim, 10.0);
    Rng rng(3);
    ExponentialDist interarrival(1.0 / 7.0);
    ExponentialDist sizes(1.0);
    std::function<void()> arrive = [&] {
      server.submit(sizes.sample(rng), nullptr);
      const double dt = interarrival.sample(rng);
      if (sim.now() + dt < 2000.0) sim.schedule_in(dt, arrive);
    };
    sim.schedule_in(interarrival.sample(rng), arrive);
    sim.run();
    benchmark::DoNotOptimize(server.stats().completed);
  }
}
BENCHMARK(BM_PsServer_Throughput);

void BM_Rng_NextDouble(benchmark::State& state) {
  Rng rng(4);
  double acc = 0.0;
  for (auto _ : state) acc += rng.next_double();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Rng_NextDouble);

void BM_Zipf_Sample(benchmark::State& state) {
  ZipfDist zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  Rng rng(5);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += zipf.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Zipf_Sample)->Arg(1000)->Arg(1000000);

void BM_Discrete_AliasSample(benchmark::State& state) {
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  Rng seed_rng(6);
  for (auto& w : weights) w = seed_rng.next_double() + 0.01;
  DiscreteDist dist(weights);
  Rng rng(7);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Discrete_AliasSample)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
