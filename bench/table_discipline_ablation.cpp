// Ablation: processor-sharing vs FIFO service at the shared server.
//
// The paper's closed forms assume PS (round-robin). Under FIFO the mean
// sojourn follows Pollaczek–Khinchine and depends on the service-time
// second moment, so heavy-tailed item sizes penalise FIFO while PS is
// insensitive. This table quantifies where the closed forms stop applying
// if the link is actually FIFO.
#include <functional>
#include <iostream>
#include <memory>

#include "des/simulator.hpp"
#include "net/fifo_server.hpp"
#include "net/ps_server.hpp"
#include "queueing/mg1_ps.hpp"
#include "queueing/mm1.hpp"
#include "util/argparse.hpp"
#include "util/distributions.hpp"
#include "util/table.hpp"

namespace {

using namespace specpf;

double run_server(bool ps, const Distribution& sizes, double lambda,
                  double bandwidth, double horizon, std::uint64_t seed) {
  Simulator sim;
  std::unique_ptr<Server> server;
  if (ps) {
    server = std::make_unique<PsServer>(sim, bandwidth);
  } else {
    server = std::make_unique<FifoServer>(sim, bandwidth);
  }
  Rng rng(seed);
  ExponentialDist interarrival(1.0 / lambda);
  std::function<void()> arrive = [&] {
    server->submit(sizes.sample(rng), nullptr);
    const double dt = interarrival.sample(rng);
    if (sim.now() + dt < horizon) {
      sim.schedule_in(dt, [&arrive] { arrive(); });
    }
  };
  sim.schedule_in(interarrival.sample(rng), [&arrive] { arrive(); });
  sim.schedule_at(horizon / 10.0, [&] { server->reset_stats(); });
  sim.run_until(horizon);
  return server->stats().mean_sojourn;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("table_discipline_ablation",
                 "PS vs FIFO under different size distributions");
  args.add_flag("horizon", "6000", "simulated seconds per run");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;
  const double horizon = args.get_double("horizon");

  const double bandwidth = 10.0;
  const double mean_size = 1.0;

  Table table({"rho", "size dist", "PS sim", "PS theory x/(1-rho)",
               "FIFO sim", "FIFO/PS ratio"});
  table.set_title("Service-discipline ablation (mean size 1, bandwidth 10)");
  table.set_precision(4);

  for (double rho : {0.3, 0.6, 0.8}) {
    const double lambda = rho * bandwidth / mean_size;
    const MG1PS theory(lambda, mean_size / bandwidth);
    struct SizeCase {
      std::string name;
      std::unique_ptr<Distribution> dist;
    };
    std::vector<SizeCase> cases;
    cases.push_back({"deterministic",
                     std::make_unique<DeterministicDist>(mean_size)});
    cases.push_back({"exponential",
                     std::make_unique<ExponentialDist>(mean_size)});
    {
      // Bounded Pareto scaled to unit mean: heavy tail, CV >> 1.
      BoundedParetoDist probe(1.4, 1.0, 1000.0);
      const double scale = mean_size / probe.mean();
      cases.push_back({"pareto(1.4)",
                       std::make_unique<BoundedParetoDist>(1.4, scale,
                                                           scale * 1000.0)});
    }
    for (const auto& c : cases) {
      const double ps = run_server(true, *c.dist, lambda, bandwidth, horizon,
                                   1234);
      const double fifo = run_server(false, *c.dist, lambda, bandwidth,
                                     horizon, 1234);
      table.add_row({rho, c.name, ps, theory.mean_sojourn(), fifo, fifo / ps});
    }
  }

  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout << "Expected: PS sim tracks x/(1-rho) for every distribution "
                 "(insensitivity);\nFIFO/PS ratio grows with load and tail "
                 "weight.\n";
  }
  return 0;
}
