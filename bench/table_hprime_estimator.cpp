// §4 online h' estimator: accuracy of the tagged/untagged protocol while
// prefetching runs, as a function of cache pressure.
//
// Ground truth h' is the hit ratio of the identical system with prefetching
// disabled. §4 assumes "the cache size n̄(C) is large enough"; this table
// quantifies the estimator's bias when that assumption is stressed (small
// caches lose tagged entries to prefetch evictions, so ĥ' under-reads; the
// Model-B correction n̄(C)/(n̄(C)−n̄(F)) recovers part of the gap).
#include <iostream>

#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_hprime_estimator",
                 "Accuracy of the §4 online h' estimator");
  args.add_flag("duration", "1200", "measured seconds per run");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  Table table({"cache cap", "pages", "truth h'", "est A", "est B", "bias A",
               "bias B", "prefetch/req"});
  table.set_title("§4 h' estimator accuracy vs cache pressure (threshold-A "
                  "policy, oracle predictor)");
  table.set_precision(4);

  for (const auto& [cap, pages] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {16, 60}, {24, 60}, {48, 60}, {80, 60}, {120, 150}, {200, 150}}) {
    ProxySimConfig cfg;
    cfg.num_users = 4;
    cfg.bandwidth = 40.0;
    cfg.graph.num_pages = pages;
    cfg.graph.out_degree = 3;
    cfg.graph.exit_probability = 0.2;
    cfg.session_rate_per_user = 0.8;
    cfg.think_time_mean = 0.4;
    cfg.cache_capacity = cap;
    cfg.duration = args.get_double("duration");
    cfg.warmup = cfg.duration / 10.0;
    cfg.seed = 7;

    NoPrefetchPolicy none;
    const auto truth = run_proxy_sim(cfg, none);

    ThresholdPolicy policy_a(core::InteractionModel::kModelA);
    const auto est_a = run_proxy_sim(cfg, policy_a);

    ProxySimConfig cfg_b = cfg;
    cfg_b.estimator_model = core::InteractionModel::kModelB;
    ThresholdPolicy policy_b(core::InteractionModel::kModelB);
    const auto est_b = run_proxy_sim(cfg_b, policy_b);

    const double prefetch_rate =
        static_cast<double>(est_a.prefetch_jobs) /
        static_cast<double>(est_a.requests);
    table.add_row({static_cast<std::int64_t>(cap),
                   static_cast<std::int64_t>(pages), truth.hit_ratio,
                   est_a.hprime_estimate, est_b.hprime_estimate,
                   est_a.hprime_estimate - truth.hit_ratio,
                   est_b.hprime_estimate - truth.hit_ratio, prefetch_rate});
  }

  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout << "Expected: bias → 0 as the cache grows (the §4 large-cache "
                 "assumption);\nModel-B correction reduces |bias| under "
                 "pressure.\n";
  }
  return 0;
}
