// DES validation of the paper's closed forms: for a grid of operating
// points, run the abstract simulator (which realises exactly the paper's
// stochastic model) with replications and compare measured h, ρ, t̄, G, C
// against eqs. (7)–(11)/(15)–(19)/(27).
//
// Also reports the empirical threshold property: the measured gain changes
// sign at p_th.
#include <iostream>

#include "sim/validation.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_sim_vs_analytic",
                 "Discrete-event simulation vs closed forms");
  args.add_flag("replications", "8", "independent replications per point");
  args.add_flag("duration", "1200", "measured seconds per replication");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  ValidationOptions opt;
  opt.replications = static_cast<std::size_t>(args.get_int("replications"));
  opt.duration = args.get_double("duration");
  opt.warmup = opt.duration / 10.0;

  struct Case {
    double hprime, p, nf;
    core::InteractionModel model;
  };
  const std::vector<Case> grid{
      {0.0, 0.3, 0.3, core::InteractionModel::kModelA},
      {0.0, 0.5, 0.5, core::InteractionModel::kModelA},
      {0.0, 0.7, 0.5, core::InteractionModel::kModelA},
      {0.0, 0.9, 1.0, core::InteractionModel::kModelA},
      {0.3, 0.3, 0.5, core::InteractionModel::kModelA},
      {0.3, 0.5, 0.8, core::InteractionModel::kModelA},
      {0.3, 0.8, 0.8, core::InteractionModel::kModelA},
      {0.3, 0.5, 0.5, core::InteractionModel::kModelB},
      {0.5, 0.7, 0.6, core::InteractionModel::kModelB},
  };

  Table table({"model", "h'", "p", "nF", "h(an)", "h(sim)", "rho(an)",
               "rho(sim)", "t(an)", "t(sim)", "G(an)", "G(sim)", "C(an)",
               "C(sim)", "err_t%"});
  table.set_title(
      "DES vs closed forms   (s=1, lambda=30, b=50; " +
      std::to_string(opt.replications) + " replications x " +
      std::to_string(static_cast<int>(opt.duration)) + "s)");
  table.set_precision(4);

  for (const Case& c : grid) {
    core::SystemParams params;
    params.bandwidth = 50.0;
    params.request_rate = 30.0;
    params.mean_item_size = 1.0;
    params.hit_ratio = c.hprime;
    params.cache_items = 100.0;
    const auto row = validate_point(params, {c.p, c.nf}, c.model, opt);
    table.add_row({std::string(c.model == core::InteractionModel::kModelA
                                   ? "A"
                                   : "B"),
                   c.hprime, c.p, c.nf, row.analytic_hit_ratio,
                   row.sim_prefetch.hit_ratio.mean, row.analytic_utilization,
                   row.sim_prefetch.utilization.mean, row.analytic_access_time,
                   row.sim_prefetch.access_time.mean, row.analytic_gain,
                   row.sim_gain, row.analytic_excess_cost, row.sim_excess_cost,
                   100.0 * row.err_access_time});
  }

  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout << "Expected: relative access-time error err_t% within a few "
                 "percent;\nsimulated gain positive exactly for p > p_th "
                 "(0.6 at h'=0, 0.42 at h'=0.3).\n";
  }
  return 0;
}
