// Shared engine benchmark workloads, used by both the google-benchmark
// harness (perf_engine.cpp) and the JSON trajectory recorder
// (emit_bench_json.cpp) so the two always measure the same thing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/simulator.hpp"
#include "net/ps_server.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf::benchwork {

/// Schedules `events` empty actions at random times and drains the queue.
inline std::uint64_t schedule_and_run(Rng& rng, std::size_t events) {
  Simulator sim;
  for (std::size_t i = 0; i < events; ++i) {
    sim.schedule_at(rng.next_double() * 1000.0, [] {});
  }
  sim.run();
  return sim.events_executed();
}

/// Schedules 10000 events, cancels every other one, then drains.
inline std::uint64_t cancel_heavy(Rng& rng) {
  Simulator sim;
  std::vector<EventId> ids;
  ids.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(sim.schedule_at(rng.next_double() * 100.0, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  return sim.events_executed();
}

/// Sustained M/M/1-PS at rho = 0.7 for 2000 simulated seconds; returns jobs
/// completed.
inline std::uint64_t ps_server_throughput() {
  Simulator sim;
  PsServer server(sim, 10.0);
  Rng rng(3);
  ExponentialDist interarrival(1.0 / 7.0);
  ExponentialDist sizes(1.0);
  std::function<void()> arrive = [&] {
    server.submit(sizes.sample(rng), nullptr);
    const double dt = interarrival.sample(rng);
    if (sim.now() + dt < 2000.0) {
      sim.schedule_in(dt, [&arrive] { arrive(); });
    }
  };
  sim.schedule_in(interarrival.sample(rng), [&arrive] { arrive(); });
  sim.run();
  return server.stats().completed;
}

}  // namespace specpf::benchwork
