// Telemetry-plane perf recorder: measures what observability costs the
// replay hot loop, with the same plain chrono harness as perf_stack, and
// writes BENCH_obs.json.
//
// Three legs over an identical 50k-user markov replay:
//   * baseline — telemetry pointer null (the shipping default),
//   * disabled — telemetry pointer null again, timed after the enabled
//     leg, so the gate compares two independent measurements of the
//     null-hook path bracketing the run that exercised telemetry,
//   * enabled  — a full TelemetryPlane installed (counters, gauges,
//     sampling, span tracing).
//
// The CI gate (--check-obs-overhead) fails when disabled/baseline exceeds
// 2%: the null-telemetry hooks must stay free. The enabled overhead is
// recorded as a trajectory metric but not gated (it is allowed to cost a
// few percent — it does real work). The legs also re-verify the purity
// contract end to end: all three must produce bit-identical results.
//
// Usage: perf_obs [output.json] [--check-obs-overhead]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "policy/policies.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly until ~0.5s elapses; returns best seconds/call.
double best_time(const std::function<void()>& body) {
  double best = 1e30;
  double total = 0.0;
  int calls = 0;
  while (total < 0.5 || calls < 3) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt < best) best = dt;
    total += dt;
    ++calls;
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

Trace make_bench_trace() {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 50000;
  trace_cfg.num_requests = 200000;
  trace_cfg.request_rate = 1000.0;
  trace_cfg.graph.num_pages = 400;
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.seed = 5;
  return generate_synthetic_trace(trace_cfg);
}

TraceReplayConfig make_replay_config() {
  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = 1200.0;
  replay_cfg.cache_capacity = 8;
  replay_cfg.max_prefetch_per_request = 4;
  return replay_cfg;
}

/// One replay leg; when `enabled`, a fresh TelemetryPlane per call (the
/// per-run setup cost is part of what "enabled" costs).
double bench_replay(const Trace& trace, bool enabled, ProxySimResult* out) {
  const TraceReplayConfig base_cfg = make_replay_config();
  ProxySimResult result;
  const double secs = best_time([&] {
    TraceReplayConfig cfg = base_cfg;
    TelemetryPlane plane;
    if (enabled) cfg.telemetry = &plane;
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    result = run_trace_replay(trace, cfg, policy);
  });
  *out = result;
  return secs;
}

bool results_identical(const ProxySimResult& a, const ProxySimResult& b) {
  return a.requests == b.requests && a.demand_jobs == b.demand_jobs &&
         a.prefetch_jobs == b.prefetch_jobs &&
         a.mean_access_time == b.mean_access_time &&
         a.hit_ratio == b.hit_ratio;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = "BENCH_obs.json";
  bool check_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-obs-overhead") == 0) {
      check_overhead = true;
    } else {
      path = argv[i];
    }
  }
  std::vector<Metric> metrics;

  const Trace trace = make_bench_trace();
  const double requests = static_cast<double>(trace.size());

  ProxySimResult baseline_r, enabled_r, disabled_r;
  const double baseline_secs = bench_replay(trace, false, &baseline_r);
  const double enabled_secs = bench_replay(trace, true, &enabled_r);
  const double disabled_secs = bench_replay(trace, false, &disabled_r);

  // Purity contract, re-proven on the bench workload: telemetry on or off
  // must not change a single simulated number.
  if (!results_identical(baseline_r, enabled_r) ||
      !results_identical(baseline_r, disabled_r)) {
    std::fprintf(stderr, "telemetry changed simulation results\n");
    return 1;
  }

  const double disabled_overhead = disabled_secs / baseline_secs;
  const double enabled_overhead = enabled_secs / baseline_secs;
  metrics.push_back({"obs.trace_replay.baseline_requests_per_sec",
                     requests / baseline_secs, "requests/s"});
  metrics.push_back({"obs.trace_replay.disabled_requests_per_sec",
                     requests / disabled_secs, "requests/s"});
  metrics.push_back({"obs.trace_replay.enabled_requests_per_sec",
                     requests / enabled_secs, "requests/s"});
  metrics.push_back(
      {"obs.trace_replay.disabled_overhead", disabled_overhead, "x"});
  metrics.push_back(
      {"obs.trace_replay.enabled_overhead", enabled_overhead, "x"});

  // Microbenches for the three hot primitives, so a regression names the
  // primitive and not just the end-to-end loop.
  {
    TelemetryRegistry reg;
    const auto c = reg.register_counter("bench.counter");
    constexpr std::size_t kAdds = 1 << 22;
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < kAdds; ++i) reg.add(c);
    });
    metrics.push_back({"obs.registry.counter_adds_per_sec",
                       static_cast<double>(kAdds) / secs, "ops/s"});
  }
  {
    SpanTracer spans;
    spans.configure(1 << 16);
    constexpr std::size_t kSpans = 1 << 20;
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < kSpans; ++i) {
        const auto ref = spans.open(SpanTracer::SpanKind::kDemandFetch,
                                    static_cast<double>(i), 1, i);
        spans.close(ref, static_cast<double>(i) + 0.5);
      }
    });
    metrics.push_back({"obs.spans.open_close_pairs_per_sec",
                       static_cast<double>(kSpans) / secs, "ops/s"});
  }
  {
    TelemetryRegistry reg;
    for (int g = 0; g < 12; ++g) {
      reg.register_gauge("bench.gauge." + std::to_string(g));
    }
    TimeSeriesRecorder rec;
    rec.configure(reg.gauge_count(), 4096, 0.25);
    constexpr std::size_t kRows = 1 << 18;
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < kRows; ++i) {
        rec.record(static_cast<double>(i), reg.gauge_values());
      }
    });
    metrics.push_back({"obs.recorder.rows_per_sec",
                       static_cast<double>(kRows) / secs, "rows/s"});
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-48s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }

  // 2% tolerance: the disabled path is the same machine code as the
  // baseline apart from untaken null tests, so anything beyond timer noise
  // means a hook leaked real work onto the null path.
  if (check_overhead && disabled_overhead > 1.02) {
    std::fprintf(stderr,
                 "disabled-telemetry overhead %.3fx exceeds 1.02x budget\n",
                 disabled_overhead);
    return 1;
  }
  return 0;
}
