// Ablation for §6's "Model AB": sweep the per-eviction victim value q from
// 0 (Model A) to h'/n̄(C) (Model B) and track the threshold, gain and
// excess cost. The paper argues results interpolate monotonically — which
// is why Model A (one parameter fewer) is an adequate stand-in for the
// realistic middle ground.
#include <iostream>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_victim_value_sweep",
                 "Model AB: sweep the eviction-victim value q");
  // Defaults satisfy eq. (6): n̄(F)·p ≤ f' (0.8·0.7 = 0.56 ≤ 0.7).
  args.add_flag("hprime", "0.3", "no-prefetch hit ratio h'");
  args.add_flag("cache-items", "20", "n̄(C) (small to magnify the sweep)");
  args.add_flag("p", "0.7", "access probability");
  args.add_flag("nf", "0.8", "prefetch rate n̄(F)");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  core::SystemParams params;
  params.bandwidth = 50.0;
  params.request_rate = 30.0;
  params.mean_item_size = 1.0;
  params.hit_ratio = args.get_double("hprime");
  params.cache_items = args.get_double("cache-items");
  const core::OperatingPoint op{args.get_double("p"), args.get_double("nf")};

  const double q_model_b =
      core::victim_value(params, core::InteractionModel::kModelB);

  Table table({"q/q_B", "q", "p_th", "h", "rho", "t", "G", "C"});
  table.set_title("Model AB sweep: victim value q from Model A (0) to Model "
                  "B (h'/n̄C=" + std::to_string(q_model_b).substr(0, 6) + ")");
  table.set_precision(5);

  for (double frac = 0.0; frac <= 1.0 + 1e-9; frac += 0.125) {
    const double q = frac * q_model_b;
    const auto a = core::analyze_with_victim_value(params, op, q);
    const double c =
        a.conditions.total_within_capacity && a.utilization < 1.0
            ? core::excess_cost(a.utilization, a.baseline.utilization,
                                params.request_rate)
            : 0.0;
    table.add_row({frac, q, a.threshold, a.hit_ratio, a.utilization,
                   a.access_time, a.gain, c});
  }
  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout << "Expected: every column monotone in q; endpoints equal "
                 "Model A (q=0) and Model B (q/q_B=1).\n";
  }
  return 0;
}
