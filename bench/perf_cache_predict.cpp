// Micro-benchmarks for the cache policies and access predictors.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/clock_cache.hpp"
#include "cache/fifo.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "cache/random_cache.hpp"
#include "cache/tagged_cache.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/markov.hpp"
#include "predict/ppm.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace specpf;

template <typename CacheT>
std::unique_ptr<Cache> make_cache(std::size_t cap) {
  if constexpr (std::is_same_v<CacheT, RandomCache>) {
    return std::make_unique<RandomCache>(cap, 42);
  } else {
    return std::make_unique<CacheT>(cap);
  }
}

template <typename CacheT>
void BM_Cache_ZipfWorkload(benchmark::State& state) {
  const std::size_t cap = 1024;
  auto cache = make_cache<CacheT>(cap);
  ZipfDist zipf(16384, 0.9);
  Rng rng(11);
  for (auto _ : state) {
    const ItemId item = zipf.sample(rng);
    if (!cache->lookup(item).has_value()) {
      cache->insert(item, EntryTag::kTagged);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["hit_ratio"] = cache->stats().hit_ratio();
}
BENCHMARK_TEMPLATE(BM_Cache_ZipfWorkload, LruCache);
BENCHMARK_TEMPLATE(BM_Cache_ZipfWorkload, LfuCache);
BENCHMARK_TEMPLATE(BM_Cache_ZipfWorkload, FifoCache);
BENCHMARK_TEMPLATE(BM_Cache_ZipfWorkload, ClockCache);
BENCHMARK_TEMPLATE(BM_Cache_ZipfWorkload, RandomCache);

void BM_TaggedCache_Protocol(benchmark::State& state) {
  TaggedCache cache(std::make_unique<LruCache>(1024));
  ZipfDist zipf(8192, 0.9);
  Rng rng(13);
  for (auto _ : state) {
    const ItemId item = zipf.sample(rng);
    if (cache.access(item) == AccessOutcome::kMiss) {
      if (rng.bernoulli(0.5)) {
        cache.admit_demand(item);
      } else {
        cache.admit_prefetch(item);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TaggedCache_Protocol);

void BM_Markov_ObservePredict(benchmark::State& state) {
  MarkovPredictor predictor;
  ZipfDist zipf(2000, 0.8);
  Rng rng(17);
  for (auto _ : state) {
    predictor.observe(0, zipf.sample(rng));
    benchmark::DoNotOptimize(predictor.predict(0, 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Markov_ObservePredict);

void BM_Ppm_ObservePredict(benchmark::State& state) {
  PpmPredictor predictor(static_cast<std::size_t>(state.range(0)));
  ZipfDist zipf(2000, 0.8);
  Rng rng(19);
  for (auto _ : state) {
    predictor.observe(0, zipf.sample(rng));
    benchmark::DoNotOptimize(predictor.predict(0, 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ppm_ObservePredict)->Arg(2)->Arg(4);

void BM_DependencyGraph_ObservePredict(benchmark::State& state) {
  DependencyGraphPredictor predictor(4);
  ZipfDist zipf(2000, 0.8);
  Rng rng(23);
  for (auto _ : state) {
    predictor.observe(0, zipf.sample(rng));
    benchmark::DoNotOptimize(predictor.predict(0, 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DependencyGraph_ObservePredict);

}  // namespace

BENCHMARK_MAIN();
