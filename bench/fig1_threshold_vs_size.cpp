// Reproduces Figure 1: threshold access probability p_th as a function of
// item size s, for bandwidths b = 50..450 — two panels, h' = 0.0 and 0.3.
// λ = 30 throughout; Model A, so p_th = f'λs/b (clipped at 1: a probability
// cannot exceed 1, i.e. past the clip prefetching can never pay off).
//
// Expected shape (paper): straight lines through the origin with slope
// f'λ/b; higher bandwidth flattens the line; h' = 0.3 scales slopes by 0.7.
#include <iostream>

#include "core/interaction.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

namespace {

void panel(double hit_ratio, double lambda, bool csv) {
  using namespace specpf;
  std::vector<std::string> headers{"s"};
  for (int b = 50; b <= 450; b += 50) {
    headers.push_back("b=" + std::to_string(b));
  }
  Table table(std::move(headers));
  table.set_title("Fig. 1 — p_th vs item size s   (lambda=" +
                  std::to_string(static_cast<int>(lambda)) +
                  ", h'=" + std::to_string(hit_ratio).substr(0, 3) +
                  ", Model A)");
  table.set_precision(4);

  for (double s = 0.0; s <= 10.0 + 1e-9; s += 0.5) {
    std::vector<Cell> row{s};
    for (int b = 50; b <= 450; b += 50) {
      core::SystemParams params;
      params.bandwidth = static_cast<double>(b);
      params.request_rate = lambda;
      params.mean_item_size = s > 0.0 ? s : 1e-9;  // p_th(0) = 0
      params.hit_ratio = hit_ratio;
      const double pth =
          core::threshold(params, core::InteractionModel::kModelA);
      row.push_back(std::min(1.0, s > 0.0 ? pth : 0.0));
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    std::cout << table.to_csv() << '\n';
  } else {
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  specpf::ArgParser args("fig1_threshold_vs_size",
                         "Reproduces paper Fig. 1 (p_th vs s)");
  args.add_flag("lambda", "30", "request rate");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  const double lambda = args.get_double("lambda");
  const bool csv = args.get_bool("csv");
  panel(0.0, lambda, csv);
  panel(0.3, lambda, csv);
  return 0;
}
