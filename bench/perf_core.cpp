// Micro-benchmarks for the analytical core: a planner decision must be
// cheap enough to run on every user request (it is a handful of flops).
#include <benchmark/benchmark.h>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "core/planner.hpp"
#include "sim/abstract_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace specpf;

core::SystemParams reference_params() {
  core::SystemParams p;
  p.bandwidth = 50.0;
  p.request_rate = 30.0;
  p.mean_item_size = 1.0;
  p.hit_ratio = 0.3;
  p.cache_items = 100.0;
  return p;
}

void BM_Core_Analyze(benchmark::State& state) {
  const auto params = reference_params();
  double acc = 0.0;
  double p = 0.42;
  for (auto _ : state) {
    p = p < 0.9 ? p + 1e-6 : 0.42;
    acc += core::analyze(params, {p, 0.5}, core::InteractionModel::kModelA)
               .gain;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Core_Analyze);

void BM_Planner_PlanDecision(benchmark::State& state) {
  core::PrefetchPlanner planner(reference_params(),
                                core::InteractionModel::kModelA);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<core::Candidate> candidates(n);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    candidates[i] = {i, rng.next_double() * 0.7 / static_cast<double>(n)};
  }
  candidates[0].probability = 0.65;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(candidates));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Planner_PlanDecision)->Arg(8)->Arg(64)->Arg(512);

void BM_AbstractSim_EndToEnd(benchmark::State& state) {
  // Whole-simulation throughput: simulated seconds per wall second.
  AbstractSimConfig cfg;
  cfg.params = reference_params();
  cfg.op = {0.6, 0.5};
  cfg.duration = static_cast<double>(state.range(0));
  cfg.warmup = cfg.duration / 10.0;
  cfg.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_abstract_sim(cfg));
  }
  state.counters["sim_seconds_per_iter"] = cfg.duration;
}
BENCHMARK(BM_AbstractSim_EndToEnd)->Arg(200)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
