// Ablation: how prefetch jobs are injected into the shared server.
//
// The paper's eq. (8) models demand+prefetch traffic as one Poisson stream.
// A real prefetcher fires immediately after each request, making prefetch
// arrivals *batched with* and *correlated to* demand arrivals. This table
// measures how much those violations inflate the mean access time relative
// to the closed form — the gap is the "batching tax" a deployment pays that
// the model does not predict.
#include <iostream>

#include "core/interaction.hpp"
#include "sim/abstract_sim.hpp"
#include "sim/experiment.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_dispatch_ablation",
                 "Poisson vs per-request prefetch dispatch");
  args.add_flag("replications", "8", "replications per point");
  args.add_flag("duration", "1200", "measured seconds per replication");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  const auto reps = static_cast<std::size_t>(args.get_int("replications"));

  Table table({"h'", "p", "nF", "t(analytic)", "t(poisson)", "t(delayed)",
               "t(batch)", "batch tax %"});
  table.set_title("Prefetch dispatch ablation (s=1, lambda=30, b=50, Model A)");
  table.set_precision(4);

  struct Case {
    double hprime, p, nf;
  };
  for (const Case& c : {Case{0.0, 0.7, 0.5}, Case{0.0, 0.9, 1.0},
                        Case{0.3, 0.5, 0.5}, Case{0.3, 0.8, 0.8}}) {
    AbstractSimConfig cfg;
    cfg.params.bandwidth = 50.0;
    cfg.params.request_rate = 30.0;
    cfg.params.mean_item_size = 1.0;
    cfg.params.hit_ratio = c.hprime;
    cfg.op = {c.p, c.nf};
    cfg.duration = args.get_double("duration");
    cfg.warmup = cfg.duration / 10.0;
    cfg.seed = 99;

    const auto analytic =
        core::analyze(cfg.params, cfg.op, core::InteractionModel::kModelA);

    cfg.prefetch_dispatch =
        AbstractSimConfig::PrefetchDispatch::kIndependentPoisson;
    const auto poisson = run_abstract_replications(cfg, reps);
    cfg.prefetch_dispatch =
        AbstractSimConfig::PrefetchDispatch::kPerRequestDelayed;
    const auto delayed = run_abstract_replications(cfg, reps);
    cfg.prefetch_dispatch =
        AbstractSimConfig::PrefetchDispatch::kPerRequestBatch;
    const auto batch = run_abstract_replications(cfg, reps);

    table.add_row({c.hprime, c.p, c.nf, analytic.access_time,
                   poisson.access_time.mean, delayed.access_time.mean,
                   batch.access_time.mean,
                   100.0 * (batch.access_time.mean / analytic.access_time -
                            1.0)});
  }

  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout << "Expected: poisson ≈ analytic; delayed slightly above; "
                 "batch 10-25% above at moderate load.\n";
  }
  return 0;
}
