// Shard perf-trajectory recorder: measures the sharded runtime — epoch
// loop overhead at S=1 against the unsharded replay, multi-core scaling of
// an 8-shard fleet across worker-thread counts, and cross-shard traffic
// throughput — with the same plain chrono harness as perf_stack, and
// writes BENCH_shard.json alongside the engine/stack snapshots.
//
// The binary also re-verifies the subsystem's two contracts before
// writing anything: the 1-shard run must be bit-identical to the unsharded
// path, and every thread count must produce bit-identical merged results.
//
// Note: thread scaling is hardware-bound — the speedup metric records
// whatever the host provides (hardware_concurrency is included in the
// output for context; on a 1-core container the sweep degenerates to ~1x).
//
// Usage: perf_shard [output.json]   (default: BENCH_shard.json)
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "policy/policies.hpp"
#include "shard/sharded_sim.hpp"
#include "sim/trace_replay.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

Trace make_trace() {
  SyntheticTraceConfig cfg;
  cfg.num_users = 50000;
  cfg.num_requests = 200000;
  cfg.request_rate = 1000.0;
  cfg.graph.num_pages = 400;
  cfg.graph.out_degree = 3;
  cfg.graph.exit_probability = 0.25;
  cfg.seed = 5;
  return generate_synthetic_trace(cfg);
}

TraceReplayConfig stack_config() {
  TraceReplayConfig cfg;
  cfg.bandwidth = 1200.0;
  cfg.cache_capacity = 8;
  cfg.predictor_kind = TraceReplayConfig::PredictorKind::kMarkov;
  cfg.max_prefetch_per_request = 4;
  cfg.seed = 5;
  return cfg;
}

PolicyFactory threshold_factory() {
  return [] {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  };
}

/// Best of two runs — replay configs are seconds-long, so the perf_stack
/// 0.5s-repeat harness would triple the wall time for no extra signal.
template <typename F>
double best_of_two(const F& body) {
  double best = 1e30;
  for (int i = 0; i < 2; ++i) {
    const auto t0 = Clock::now();
    body();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt < best) best = dt;
  }
  return best;
}

bool results_equal(const ProxySimResult& a, const ProxySimResult& b) {
  return a.mean_access_time == b.mean_access_time &&
         a.hit_ratio == b.hit_ratio &&
         a.server_utilization == b.server_utilization &&
         a.requests == b.requests && a.demand_jobs == b.demand_jobs &&
         a.prefetch_jobs == b.prefetch_jobs &&
         a.inflight_hits == b.inflight_hits &&
         a.hprime_estimate == b.hprime_estimate;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_shard.json";
  std::vector<Metric> metrics;

  const Trace trace = make_trace();
  const TraceReplayConfig stack = stack_config();

  // Contract 1: 1 shard == unsharded, bit for bit.
  ThresholdPolicy unsharded_policy(core::InteractionModel::kModelA);
  const ProxySimResult unsharded =
      run_trace_replay(trace, stack, unsharded_policy);
  ShardedReplayConfig one_shard;
  one_shard.stack = stack;
  one_shard.num_shards = 1;
  one_shard.num_threads = 1;
  const ShardedReplayResult one =
      run_sharded_replay(trace, one_shard, threshold_factory());
  if (!results_equal(one.merged, unsharded)) {
    std::fprintf(stderr, "1-shard run diverged from the unsharded replay\n");
    return 1;
  }

  const std::uint64_t requests = unsharded.requests;
  double unsharded_secs = best_of_two([&] {
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    (void)run_trace_replay(trace, stack, policy);
  });
  metrics.push_back({"shard.replay.unsharded_requests_per_sec",
                     static_cast<double>(requests) / unsharded_secs,
                     "requests/s"});

  double one_shard_secs = best_of_two([&] {
    (void)run_sharded_replay(trace, one_shard, threshold_factory());
  });
  metrics.push_back({"shard.replay.one_shard_requests_per_sec",
                     static_cast<double>(requests) / one_shard_secs,
                     "requests/s"});
  metrics.push_back({"shard.replay.one_shard_vs_unsharded_overhead",
                     one_shard_secs / unsharded_secs, "x"});

  // Contract 2 + scaling: an 8-shard fleet across worker-thread counts.
  ShardedReplayConfig fleet;
  fleet.stack = stack;
  fleet.num_shards = 8;
  fleet.backbone_bandwidth = 10000.0;
  fleet.backbone_latency = 0.05;

  ShardedReplayResult reference;
  bool have_reference = false;
  double secs_1t = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    fleet.num_threads = threads;
    ShardedReplayResult last;
    const double secs = best_of_two(
        [&] { last = run_sharded_replay(trace, fleet, threshold_factory()); });
    if (!have_reference) {
      reference = last;
      have_reference = true;
      secs_1t = secs;
    } else if (!results_equal(last.merged, reference.merged) ||
               last.cross_shard_events != reference.cross_shard_events) {
      std::fprintf(stderr,
                   "8-shard run diverged at %zu worker threads\n", threads);
      return 1;
    }
    metrics.push_back(
        {"shard.replay.shard8_t" + std::to_string(threads) +
             "_requests_per_sec",
         static_cast<double>(last.merged.requests) / secs, "requests/s"});
    if (threads > 1) {
      metrics.push_back({"shard.replay.shard8_speedup_t" +
                             std::to_string(threads) + "_vs_t1",
                         secs_1t / secs, "x"});
    }
  }
  metrics.push_back({"shard.replay.shard8_epochs",
                     static_cast<double>(reference.epochs), "epochs"});
  metrics.push_back({"shard.replay.shard8_cross_shard_events",
                     static_cast<double>(reference.cross_shard_events),
                     "events"});
  metrics.push_back(
      {"shard.host_hardware_concurrency",
       static_cast<double>(std::thread::hardware_concurrency()), "threads"});

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-50s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }
  return 0;
}
