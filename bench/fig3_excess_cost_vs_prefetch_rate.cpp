// Reproduces Figure 3: excess retrieval cost C against n̄(F) ∈ [0, 2] for
// p ∈ {0.1 … 0.9}; panels for h' = 0.0 and 0.3 (s̄=1, λ=30, b=50, Model A).
//
// Expected shape (paper): C ≥ 0, increasing and convex in n̄(F) (load
// impedance), and lower p costs more at equal n̄(F) — the p=0.9 curve is
// the cheapest, p=0.1 the steepest.
#include <iostream>

#include "core/excess_cost.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

namespace {

void panel(double hit_ratio, bool csv) {
  using namespace specpf;
  std::vector<std::string> headers{"nF"};
  for (int p10 = 1; p10 <= 9; ++p10) {
    headers.push_back("p=0." + std::to_string(p10));
  }
  Table table(std::move(headers));
  core::SystemParams params;
  params.bandwidth = 50.0;
  params.request_rate = 30.0;
  params.mean_item_size = 1.0;
  params.hit_ratio = hit_ratio;
  table.set_title("Fig. 3 — C vs n̄(F)   (s=1, lambda=30, b=50, h'=" +
                  std::to_string(hit_ratio).substr(0, 3) + ", Model A)");
  table.set_precision(4);

  for (double nf = 0.0; nf <= 2.0 + 1e-9; nf += 0.2) {
    std::vector<Cell> row{nf};
    for (int p10 = 1; p10 <= 9; ++p10) {
      const double p = p10 / 10.0;
      if (nf == 0.0) {
        row.push_back(0.0);
        continue;
      }
      const auto analysis =
          core::analyze(params, {p, nf}, core::InteractionModel::kModelA);
      if (!analysis.conditions.total_within_capacity ||
          analysis.utilization >= 1.0) {
        row.push_back(std::string("sat"));
      } else {
        row.push_back(core::excess_cost(analysis.utilization,
                                        analysis.baseline.utilization,
                                        params.request_rate));
      }
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    std::cout << table.to_csv() << '\n';
  } else {
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  specpf::ArgParser args("fig3_excess_cost_vs_prefetch_rate",
                         "Reproduces paper Fig. 3 (C vs n̄(F))");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;
  panel(0.0, args.get_bool("csv"));
  panel(0.3, args.get_bool("csv"));
  return 0;
}
