// Predictor calibration: the threshold rule consumes *probabilities*, so a
// predictor that ranks well but is miscalibrated will mis-place the
// threshold. For each predictor this table buckets its predicted
// probabilities and reports the realised next-access frequency per bucket,
// plus aggregate precision/coverage of the top prediction.
//
// Workload: Markov session graph (so the oracle's numbers are the true
// conditionals — its calibration should be exact).
#include <iostream>
#include <map>
#include <memory>

#include "predict/dependency_graph.hpp"
#include "predict/frequency.hpp"
#include "predict/markov.hpp"
#include "predict/oracle.hpp"
#include "predict/ppm.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "workload/session_graph.hpp"

namespace {

using namespace specpf;

struct Calibration {
  // 10 buckets over predicted probability [0, 1).
  std::array<std::uint64_t, 10> predicted{};
  std::array<std::uint64_t, 10> realized{};
  std::uint64_t top1_correct = 0;
  std::uint64_t predictions_made = 0;
  double brier_sum = 0.0;
  std::uint64_t brier_terms = 0;
};

Calibration evaluate(Predictor& predictor, const SessionGraph& graph,
                     std::size_t requests, std::uint64_t seed) {
  Calibration cal;
  Rng rng(seed);
  std::uint64_t page = graph.sample_entry(rng);
  predictor.observe(0, page);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto predictions = predictor.predict(0, 8);
    // Determine the actual next access (new session on exit).
    std::uint64_t next = 0;
    if (!graph.sample_next(page, rng, &next)) {
      next = graph.sample_entry(rng);
    }
    if (!predictions.empty()) {
      ++cal.predictions_made;
      if (predictions.front().item == next) ++cal.top1_correct;
      for (const auto& c : predictions) {
        const auto bucket = std::min<std::size_t>(
            9, static_cast<std::size_t>(c.probability * 10.0));
        ++cal.predicted[bucket];
        const bool hit = c.item == next;
        if (hit) ++cal.realized[bucket];
        const double err = c.probability - (hit ? 1.0 : 0.0);
        cal.brier_sum += err * err;
        ++cal.brier_terms;
      }
    }
    predictor.observe(0, next);
    page = next;
  }
  return cal;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("table_predictor_quality",
                 "Calibration of the access predictors");
  args.add_flag("requests", "40000", "workload length");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;
  const auto requests = static_cast<std::size_t>(args.get_int("requests"));

  SessionGraphConfig gcfg;
  gcfg.num_pages = 100;
  gcfg.out_degree = 4;
  gcfg.exit_probability = 0.2;
  gcfg.link_skew = 1.5;
  const SessionGraph graph(gcfg, 5);

  struct Entry {
    std::string name;
    std::unique_ptr<Predictor> predictor;
  };
  std::vector<Entry> predictors;
  predictors.push_back({"oracle", std::make_unique<OraclePredictor>(graph)});
  predictors.push_back({"markov", std::make_unique<MarkovPredictor>()});
  predictors.push_back({"ppm(3)", std::make_unique<PpmPredictor>(3)});
  predictors.push_back(
      {"depgraph(4)", std::make_unique<DependencyGraphPredictor>(4)});
  predictors.push_back({"frequency", std::make_unique<FrequencyPredictor>()});

  Table table({"predictor", "top-1 acc", "brier", "cal 0.1-0.2", "cal 0.3-0.4",
               "cal 0.5-0.6", "cal 0.7-0.8"});
  table.set_title("Predictor calibration on a Markov session workload "
                  "(realised frequency per predicted-probability bucket; "
                  "well-calibrated ⇒ value ≈ bucket midpoint)");
  table.set_precision(4);

  for (auto& entry : predictors) {
    const Calibration cal = evaluate(*entry.predictor, graph, requests, 99);
    auto bucket_freq = [&](std::size_t b) -> Cell {
      if (cal.predicted[b] < 50) return std::string("n/a");
      return static_cast<double>(cal.realized[b]) /
             static_cast<double>(cal.predicted[b]);
    };
    table.add_row({entry.name,
                   static_cast<double>(cal.top1_correct) /
                       std::max<std::uint64_t>(1, cal.predictions_made),
                   cal.brier_sum / std::max<std::uint64_t>(1, cal.brier_terms),
                   bucket_freq(1), bucket_freq(3), bucket_freq(5),
                   bucket_freq(7)});
  }

  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout
        << "Expected: markov is the best-calibrated after convergence — it "
           "learns the full kernel\nincluding session-exit → entry-page "
           "transitions, which the within-session 'oracle' cannot\nrepresent "
           "(its candidates sum to 1 − exit_probability). frequency is "
           "badly miscalibrated\n(context-free) and thus a poor driver for "
           "the threshold rule despite its low Brier score\n(it only makes "
           "near-zero predictions).\n";
  }
  return 0;
}
