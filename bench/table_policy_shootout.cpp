// End-to-end policy comparison on the full-stack proxy simulator: the
// paper's load-aware threshold rule against the heuristics §1 describes
// ("prefetch if probability exceeds a fixed threshold", top-k) and the
// no-prefetch baseline — at three load levels.
//
// Now runs at 10x the original population/duration by default (the sharded
// runtime and batch-submitting thread pool made long sweeps cheap) with
// independent replications executed in parallel, and reports Student-t 95%
// confidence intervals per cell so "wins or ties" is a statistical
// statement instead of a point estimate.
//
// Expected shape: the threshold rule wins or ties everywhere; fixed
// low thresholds win at light load but collapse at high load (the paper's
// core warning about network-load feedback); top-k sits in between.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "stats/confidence.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace specpf;

std::unique_ptr<PrefetchPolicy> make_policy(std::size_t index) {
  switch (index) {
    case 0: return std::make_unique<NoPrefetchPolicy>();
    case 1:
      return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
    case 2:
      return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelB);
    case 3: return std::make_unique<FixedThresholdPolicy>(0.05);
    case 4: return std::make_unique<FixedThresholdPolicy>(0.5);
    case 5: return std::make_unique<TopKPolicy>(2);
    case 6: return std::make_unique<AdaptiveCostPolicy>(1.5);
    default:
      return std::make_unique<QosThresholdPolicy>(
          core::InteractionModel::kModelA, 0.8);
  }
}
constexpr std::size_t kNumPolicies = 8;

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("table_policy_shootout",
                 "Prefetch policies on the full-stack proxy simulation");
  args.add_flag("users", "60", "client population (seed paper setup was 6)");
  args.add_flag("duration", "15000", "measured seconds per run");
  args.add_flag("replications", "8",
                "independent replications per cell (t-based 95% CIs)");
  args.add_flag("threads", "0",
                "worker threads for replications (0 = hardware)");
  args.add_flag("predictor", "oracle",
                "predictor: oracle|markov|ppm|depgraph|frequency");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  ProxySimConfig base;
  base.num_users = static_cast<std::size_t>(args.get_int("users"));
  base.graph.num_pages = 60;
  base.graph.out_degree = 3;
  base.graph.exit_probability = 0.2;
  base.graph.link_skew = 1.5;
  base.session_rate_per_user = 0.8;
  base.think_time_mean = 0.4;
  base.cache_capacity = 24;
  base.duration = args.get_double("duration");
  base.warmup = base.duration / 10.0;
  base.seed = 42;

  const std::string predictor = args.get_string("predictor");
  if (predictor == "markov") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kMarkov;
  } else if (predictor == "ppm") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kPpm;
  } else if (predictor == "depgraph") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kDependencyGraph;
  } else if (predictor == "frequency") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kFrequency;
  } else {
    base.predictor_kind = ProxySimConfig::PredictorKind::kOracle;
  }

  // The paper's single shared link scales with the population: keep the
  // per-user bandwidth of the original 6-user setup at each load level.
  const double users_scale = static_cast<double>(base.num_users) / 6.0;
  const auto replications =
      static_cast<std::size_t>(args.get_int("replications"));
  if (replications < 2) {
    std::cerr << "--replications must be >= 2 (t-based CIs need at least "
                 "two independent runs)\n";
    return 1;
  }
  ThreadPool pool(static_cast<std::size_t>(args.get_int("threads")));

  for (const auto& [label, bandwidth_per_6] :
       std::vector<std::pair<std::string, double>>{
           {"light load", 60.0},
           {"moderate load", 25.0},
           {"heavy load", 14.0}}) {
    ProxySimConfig cfg = base;
    cfg.bandwidth = bandwidth_per_6 * users_scale;

    // All (policy, replication) cells run concurrently: one batch
    // submission, results keyed by index. Replication r of every policy
    // shares seed substream r, giving paired comparisons across policies.
    std::vector<std::function<ProxySimResult()>> tasks;
    tasks.reserve(kNumPolicies * replications);
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      for (std::size_t r = 0; r < replications; ++r) {
        ProxySimConfig run_cfg = cfg;
        run_cfg.seed = Rng(cfg.seed).substream(r).next_u64();
        tasks.emplace_back([run_cfg, p] {
          auto policy = make_policy(p);
          return run_proxy_sim(run_cfg, *policy);
        });
      }
    }
    auto futures = pool.submit_batch(std::move(tasks));

    std::vector<std::vector<ProxySimResult>> cells(kNumPolicies);
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      for (std::size_t r = 0; r < replications; ++r) {
        cells[p].push_back(futures[p * replications + r].get());
      }
    }

    Table table({"policy", "t_mean", "ci95", "vs none", "p50", "p95", "p99",
                 "hit ratio", "rho", "prefetch/req", "useful frac",
                 "R per req"});
    table.set_title("Policy shootout — " + label + " (b=" +
                    std::to_string(cfg.bandwidth) + "), predictor=" +
                    predictor + ", " + std::to_string(replications) +
                    " replications x " + std::to_string(cfg.duration) + "s");
    table.set_precision(4);

    double baseline_t = 0.0;
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      std::vector<double> t_means, p50s, p95s, p99s, hit_ratios, rhos, ppr,
          useful, rpr;
      for (const auto& r : cells[p]) {
        t_means.push_back(r.mean_access_time);
        p50s.push_back(r.access_time_p50);
        p95s.push_back(r.access_time_p95);
        p99s.push_back(r.access_time_p99);
        hit_ratios.push_back(r.hit_ratio);
        rhos.push_back(r.server_utilization);
        ppr.push_back(static_cast<double>(r.prefetch_jobs) /
                      static_cast<double>(r.requests));
        useful.push_back(r.prefetch_useful_fraction);
        rpr.push_back(r.retrieval_time_per_request);
      }
      const ConfidenceInterval ci = t_interval(t_means);
      if (p == 0) baseline_t = ci.mean;
      const double ratio = baseline_t > 0.0 ? ci.mean / baseline_t : 1.0;
      table.add_row({cells[p].front().policy, ci.mean, ci.half_width, ratio,
                     t_interval(p50s).mean, t_interval(p95s).mean,
                     t_interval(p99s).mean,
                     t_interval(hit_ratios).mean, t_interval(rhos).mean,
                     t_interval(ppr).mean, t_interval(useful).mean,
                     t_interval(rpr).mean});
    }
    if (args.get_bool("csv")) {
      std::cout << table.to_csv() << '\n';
    } else {
      table.print(std::cout);
    }
  }
  std::cout << "Expected: threshold-A/B <= 1.0 of baseline at every load "
               "(CIs separate or overlap the tie); fixed-0.05 wins light "
               "load but blows up at heavy load.\n";
  return 0;
}
