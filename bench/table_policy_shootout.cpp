// End-to-end policy comparison on the full-stack proxy simulator: the
// paper's load-aware threshold rule against the heuristics §1 describes
// ("prefetch if probability exceeds a fixed threshold", top-k) and the
// no-prefetch baseline — at three load levels.
//
// Expected shape: the threshold rule wins or ties everywhere; fixed
// low thresholds win at light load but collapse at high load (the paper's
// core warning about network-load feedback); top-k sits in between.
#include <iostream>
#include <memory>

#include "policy/policies.hpp"
#include "sim/proxy_sim.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_policy_shootout",
                 "Prefetch policies on the full-stack proxy simulation");
  args.add_flag("duration", "1500", "measured seconds per run");
  args.add_flag("predictor", "oracle",
                "predictor: oracle|markov|ppm|depgraph|frequency");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  ProxySimConfig base;
  base.num_users = 6;
  base.graph.num_pages = 60;
  base.graph.out_degree = 3;
  base.graph.exit_probability = 0.2;
  base.graph.link_skew = 1.5;
  base.session_rate_per_user = 0.8;
  base.think_time_mean = 0.4;
  base.cache_capacity = 24;
  base.duration = args.get_double("duration");
  base.warmup = base.duration / 10.0;
  base.seed = 42;

  const std::string predictor = args.get_string("predictor");
  if (predictor == "markov") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kMarkov;
  } else if (predictor == "ppm") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kPpm;
  } else if (predictor == "depgraph") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kDependencyGraph;
  } else if (predictor == "frequency") {
    base.predictor_kind = ProxySimConfig::PredictorKind::kFrequency;
  } else {
    base.predictor_kind = ProxySimConfig::PredictorKind::kOracle;
  }

  auto make_policies = [] {
    std::vector<std::unique_ptr<PrefetchPolicy>> out;
    out.push_back(std::make_unique<NoPrefetchPolicy>());
    out.push_back(
        std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA));
    out.push_back(
        std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelB));
    out.push_back(std::make_unique<FixedThresholdPolicy>(0.05));
    out.push_back(std::make_unique<FixedThresholdPolicy>(0.5));
    out.push_back(std::make_unique<TopKPolicy>(2));
    out.push_back(std::make_unique<AdaptiveCostPolicy>(1.5));
    out.push_back(std::make_unique<QosThresholdPolicy>(
        core::InteractionModel::kModelA, 0.8));
    return out;
  };

  for (const auto& [label, bandwidth] :
       std::vector<std::pair<std::string, double>>{
           {"light load (b=60)", 60.0},
           {"moderate load (b=25)", 25.0},
           {"heavy load (b=14)", 14.0}}) {
    ProxySimConfig cfg = base;
    cfg.bandwidth = bandwidth;

    Table table({"policy", "t_mean", "vs none", "hit ratio", "rho",
                 "prefetch/req", "useful frac", "R per req"});
    table.set_title("Policy shootout — " + label + ", predictor=" + predictor);
    table.set_precision(4);

    double baseline_t = 0.0;
    for (auto& policy : make_policies()) {
      const auto r = run_proxy_sim(cfg, *policy);
      if (policy->name() == "none") baseline_t = r.mean_access_time;
      const double ratio =
          baseline_t > 0.0 ? r.mean_access_time / baseline_t : 1.0;
      table.add_row({r.policy, r.mean_access_time, ratio, r.hit_ratio,
                     r.server_utilization,
                     static_cast<double>(r.prefetch_jobs) /
                         static_cast<double>(r.requests),
                     r.prefetch_useful_fraction,
                     r.retrieval_time_per_request});
    }
    if (args.get_bool("csv")) {
      std::cout << table.to_csv() << '\n';
    } else {
      table.print(std::cout);
    }
  }
  std::cout << "Expected: threshold-A/B ≤ 1.0 of baseline at every load; "
               "fixed-0.05 wins light load but blows up at heavy load.\n";
  return 0;
}
