// Reproduces §6 ("The two models compared"): Model A vs Model B vs the
// interpolating Model AB, as the cache size n̄(C) grows relative to the
// prefetch rate n̄(F).
//
// Expected (paper):
//  * threshold gap p_th(B) − p_th(A) = h'/n̄(C) ≤ 1/n̄(C);
//  * h, ρ, r̄, t̄, G, C of the two models converge when n̄(C) ≫ n̄(F);
//  * Model AB (victim value q = h'/(2 n̄(C)) here) lies between A and B.
#include <iostream>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_model_comparison",
                 "Section 6: Model A vs B vs AB across cache sizes");
  args.add_flag("hprime", "0.3", "no-prefetch hit ratio h'");
  args.add_flag("p", "0.7", "access probability of prefetched items");
  args.add_flag("nf", "1.0", "prefetch rate n̄(F)");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  const double hprime = args.get_double("hprime");
  const core::OperatingPoint op{args.get_double("p"), args.get_double("nf")};

  Table table({"nC", "pth_A", "pth_B", "gap", "h_A", "h_B", "G_A", "G_B",
               "G_AB", "C_A", "C_B", "|G_A-G_B|"});
  table.set_title("§6 — prefetch-cache interaction models vs n̄(C)   (s=1, "
                  "lambda=30, b=50, h'=" + std::to_string(hprime).substr(0, 4) +
                  ", p=" + std::to_string(op.access_probability).substr(0, 4) +
                  ", nF=" + std::to_string(op.prefetch_rate).substr(0, 4) + ")");
  table.set_precision(5);

  for (double nc : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0, 10000.0}) {
    core::SystemParams params;
    params.bandwidth = 50.0;
    params.request_rate = 30.0;
    params.mean_item_size = 1.0;
    params.hit_ratio = hprime;
    params.cache_items = nc;

    const auto a = core::analyze(params, op, core::InteractionModel::kModelA);
    const auto b = core::analyze(params, op, core::InteractionModel::kModelB);
    const auto ab = core::analyze_with_victim_value(
        params, op, core::victim_value(params, core::InteractionModel::kModelB) / 2.0);

    const double ca = core::excess_cost(a.utilization, a.baseline.utilization,
                                        params.request_rate);
    const double cb = core::excess_cost(b.utilization, b.baseline.utilization,
                                        params.request_rate);
    table.add_row({nc, a.threshold, b.threshold, b.threshold - a.threshold,
                   a.hit_ratio, b.hit_ratio, a.gain, b.gain, ab.gain, ca, cb,
                   std::abs(a.gain - b.gain)});
  }
  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
    std::cout << "Check: gap = h'/nC; G_AB between G_A and G_B; all columns "
                 "converge as nC grows.\n";
  }
  return 0;
}
