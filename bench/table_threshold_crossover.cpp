// Empirical threshold location: sweep the access probability p at fixed
// n̄(F) and report the simulated gain next to the closed-form gain. The
// paper's headline claim predicts the sign flip at p_th = ρ' (Model A):
// 0.6 for h'=0 and 0.42 for h'=0.3 at the reference parameters.
#include <iostream>

#include "sim/validation.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace specpf;
  ArgParser args("table_threshold_crossover",
                 "Simulated gain sign-flip at the analytic threshold");
  args.add_flag("replications", "8", "replications per point");
  args.add_flag("duration", "1200", "measured seconds per replication");
  args.add_flag("nf", "0.5", "prefetch rate n̄(F)");
  args.add_flag("csv", "false", "emit CSV instead of markdown");
  if (!args.parse(argc, argv)) return 1;

  ValidationOptions opt;
  opt.replications = static_cast<std::size_t>(args.get_int("replications"));
  opt.duration = args.get_double("duration");
  opt.warmup = opt.duration / 10.0;
  const double nf = args.get_double("nf");

  for (double hprime : {0.0, 0.3}) {
    core::SystemParams params;
    params.bandwidth = 50.0;
    params.request_rate = 30.0;
    params.mean_item_size = 1.0;
    params.hit_ratio = hprime;
    params.cache_items = 100.0;
    const double pth =
        core::threshold(params, core::InteractionModel::kModelA);

    Table table({"p", "G(analytic)", "G(sim)", "sim 95% CI half-width",
                 "sign match"});
    table.set_title("Threshold crossover   (h'=" +
                    std::to_string(hprime).substr(0, 3) +
                    ", nF=" + std::to_string(nf).substr(0, 3) +
                    ", analytic p_th=" + std::to_string(pth).substr(0, 4) + ")");
    table.set_precision(5);

    for (double p = 0.1; p <= 0.95; p += 0.1) {
      if (nf * p > params.fault_ratio()) break;  // eq. (6) consistency
      const auto row = validate_point(params, {p, nf},
                                      core::InteractionModel::kModelA, opt);
      // Gain CI half-width: sum of the two access-time half-widths.
      const double hw = row.sim_prefetch.access_time.half_width +
                        row.sim_baseline.access_time.half_width;
      const bool match =
          (row.analytic_gain > 0) == (row.sim_gain > 0) ||
          std::abs(row.sim_gain) < hw;  // too close to call at p ≈ p_th
      table.add_row({p, row.analytic_gain, row.sim_gain, hw,
                     std::string(match ? "yes" : "NO")});
    }
    if (args.get_bool("csv")) {
      std::cout << table.to_csv() << '\n';
    } else {
      table.print(std::cout);
    }
  }
  std::cout << "Expected: G(sim) sign flips from negative to positive as p "
               "crosses p_th.\n";
  return 0;
}
