// Stack perf-trajectory recorder: isolates the request data plane — the
// in-flight transfer map, the predictor tables, and the full proxy/replay
// stacks — with a plain chrono harness (no google-benchmark dependency) and
// writes BENCH_stack.json alongside BENCH_engine.json, so the perf history
// covers the stack and not just the engine.
//
// The "tree" numbers run the same code with the legacy std::map in-flight
// backend (StackRuntimeConfig::use_tree_inflight), the exact baseline the
// flat-hash data plane replaced. The "legacy" predictor numbers run the
// original virtual Predictor tables (use_legacy_predictors), the baseline
// the slab-backed predictor plane replaced.
//
// Usage: perf_stack [output.json] [--check-plane-speedup]
//   (default output: BENCH_stack.json; --check-plane-speedup exits nonzero
//    if any plane predictor benches slower than its legacy table, with a
//    small noise tolerance — the CI perf-smoke regression gate)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "policy/policies.hpp"
#include "predict/predictor_plane.hpp"
#include "sim/proxy_sim.hpp"
#include "sim/trace_replay.hpp"
#include "util/flat_hash.hpp"
#include "util/rng.hpp"
#include "workload/synthetic_trace.hpp"

namespace {

using namespace specpf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly until ~0.5s elapses; returns best seconds/call.
double best_time(const std::function<void()>& body) {
  double best = 1e30;
  double total = 0.0;
  int calls = 0;
  while (total < 0.5 || calls < 3) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt < best) best = dt;
    total += dt;
    ++calls;
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

// Mirrors StackRuntime::Inflight: a tag plus a usually-empty waiter list.
struct InflightPayload {
  bool is_prefetch = false;
  std::vector<double> waiter_times;
};

/// The in-flight access pattern of the stack, replayed against a map type:
/// submit (insert), a few lookups while the transfer is live, completion
/// (erase), over a rolling live set — the shape handle_request produces.
constexpr std::size_t kChurnOps = 400000;
constexpr std::size_t kChurnLive = 4096;

template <typename MapLike, typename FindFn, typename EraseFn>
std::uint64_t churn(MapLike& map, const FindFn& find_live,
                    const EraseFn& erase_key) {
  Rng rng(42);
  std::vector<std::uint64_t> live(kChurnLive, 0);
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < kChurnOps; ++i) {
    const std::uint64_t user = rng.next_u64() % 64;
    const std::uint64_t item = rng.next_u64() % 100000;
    const std::uint64_t key = (user << 32) | item;
    const std::size_t slot = i % kChurnLive;
    if (live[slot] != 0) {
      checksum += erase_key(map, live[slot]) ? 1 : 0;
    }
    map[key].is_prefetch = (i & 1) != 0;
    live[slot] = key;
    for (int probe = 0; probe < 3; ++probe) {
      const std::uint64_t probe_key = live[rng.next_u64() % kChurnLive];
      if (probe_key != 0 && find_live(map, probe_key)) ++checksum;
    }
  }
  return checksum;
}

double bench_churn_flat(std::uint64_t* checksum) {
  return best_time([&] {
    FlatHashMap<InflightPayload> map;
    *checksum = churn(
        map,
        [](FlatHashMap<InflightPayload>& m, std::uint64_t k) {
          return m.find(k) != nullptr;
        },
        [](FlatHashMap<InflightPayload>& m, std::uint64_t k) {
          return m.erase(k);
        });
  });
}

double bench_churn_tree(std::uint64_t* checksum) {
  return best_time([&] {
    std::map<std::uint64_t, InflightPayload> map;
    *checksum = churn(
        map,
        [](std::map<std::uint64_t, InflightPayload>& m, std::uint64_t k) {
          return m.find(k) != m.end();
        },
        [](std::map<std::uint64_t, InflightPayload>& m, std::uint64_t k) {
          return m.erase(k) > 0;
        });
  });
}

/// Interleaved per-user session walks, so each user's sequence is a real
/// first-order chain (what the predictors' tables see in the stack).
constexpr std::size_t kPredictorUsers = 256;

std::vector<std::pair<UserId, std::uint64_t>> make_predictor_stream(
    const SessionGraph& graph, std::size_t events) {
  std::vector<std::pair<UserId, std::uint64_t>> stream;
  stream.reserve(events);
  Rng rng(9);
  std::vector<std::uint64_t> page(kPredictorUsers);
  for (std::size_t u = 0; u < kPredictorUsers; ++u) {
    page[u] = graph.sample_entry(rng);
  }
  for (std::size_t i = 0; i < events; ++i) {
    const std::size_t u = rng.next_u64() % kPredictorUsers;
    stream.emplace_back(static_cast<UserId>(u), page[u]);
    if (!graph.sample_next(page[u], rng, &page[u])) {
      page[u] = graph.sample_entry(rng);
    }
  }
  return stream;
}

std::unique_ptr<PredictorPlane> make_bench_plane(PredictorKind kind,
                                                 const SessionGraph& graph,
                                                 bool use_legacy) {
  PredictorPlaneConfig config;
  config.num_users = kPredictorUsers;
  config.graph = &graph;
  return make_predictor_plane(kind, config, use_legacy);
}

/// Replays a prefix of the stream through both backends, comparing
/// predictions exactly — a cheap pre-timing guard so the perf gate can
/// never bless a plane that silently diverged from the legacy tables.
bool predictor_backends_agree(
    PredictorKind kind, const SessionGraph& graph,
    const std::vector<std::pair<UserId, std::uint64_t>>& stream) {
  auto plane = make_bench_plane(kind, graph, false);
  auto legacy = make_bench_plane(kind, graph, true);
  std::vector<core::Candidate> got, want;
  const std::size_t prefix = std::min<std::size_t>(stream.size(), 20000);
  for (std::size_t i = 0; i < prefix; ++i) {
    const auto& [user, item] = stream[i];
    plane->observe(user, item);
    legacy->observe(user, item);
    if (i % 16 != 0) continue;
    plane->predict_into(user, 8, got);
    legacy->predict_into(user, 8, want);
    if (got.size() != want.size()) return false;
    for (std::size_t c = 0; c < got.size(); ++c) {
      if (got[c].item != want[c].item ||
          got[c].probability != want[c].probability) {
        return false;
      }
    }
  }
  return true;
}

/// Observe-throughput phase: table construction from a cold start, no
/// prediction — isolates intern/counter-bump cost.
double bench_predictor_observe(
    PredictorKind kind, const SessionGraph& graph, bool use_legacy,
    const std::vector<std::pair<UserId, std::uint64_t>>& stream) {
  return best_time([&] {
    auto predictor = make_bench_plane(kind, graph, use_legacy);
    for (const auto& [user, item] : stream) predictor->observe(user, item);
  });
}

/// Predict-throughput phase: tables pre-built outside the timer, one
/// predict_into(8) per event into a reused scratch buffer — isolates
/// ranking/top-k cost.
double bench_predictor_predict(
    PredictorKind kind, const SessionGraph& graph, bool use_legacy,
    const std::vector<std::pair<UserId, std::uint64_t>>& stream) {
  auto predictor = make_bench_plane(kind, graph, use_legacy);
  for (const auto& [user, item] : stream) predictor->observe(user, item);
  std::vector<core::Candidate> scratch;
  return best_time([&] {
    std::size_t sink = 0;
    for (const auto& [user, item] : stream) {
      predictor->predict_into(user, 8, scratch);
      sink += scratch.size();
    }
    if (sink == 0) std::fprintf(stderr, "predictor produced nothing\n");
  });
}

double bench_proxy_sim(bool use_tree, std::uint64_t* requests_out) {
  ProxySimConfig config;
  config.num_users = 8;
  config.duration = 300.0;
  config.warmup = 30.0;
  config.seed = 11;
  config.predictor_kind = ProxySimConfig::PredictorKind::kMarkov;
  config.use_tree_inflight = use_tree;
  std::uint64_t requests = 0;
  const double secs = best_time([&] {
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto result = run_proxy_sim(config, policy);
    requests = result.requests;
  });
  *requests_out = requests;
  return secs;
}

double bench_trace_replay(bool use_tree, std::uint64_t* requests_out) {
  SyntheticTraceConfig trace_cfg;
  trace_cfg.num_users = 50000;
  trace_cfg.num_requests = 200000;
  trace_cfg.request_rate = 1000.0;
  trace_cfg.graph.num_pages = 400;
  trace_cfg.graph.out_degree = 3;
  trace_cfg.graph.exit_probability = 0.25;
  trace_cfg.seed = 5;
  const Trace trace = generate_synthetic_trace(trace_cfg);

  TraceReplayConfig replay_cfg;
  replay_cfg.bandwidth = 1200.0;
  replay_cfg.cache_capacity = 8;
  replay_cfg.max_prefetch_per_request = 4;
  replay_cfg.use_tree_inflight = use_tree;
  std::uint64_t requests = 0;
  const double secs = best_time([&] {
    ThresholdPolicy policy(core::InteractionModel::kModelA);
    const auto result = run_trace_replay(trace, replay_cfg, policy);
    requests = result.requests;
  });
  *requests_out = requests;
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = "BENCH_stack.json";
  bool check_plane_speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-plane-speedup") == 0) {
      check_plane_speedup = true;
    } else {
      path = argv[i];
    }
  }
  std::vector<Metric> metrics;

  std::uint64_t flat_checksum = 0, tree_checksum = 0;
  const double flat_churn_secs = bench_churn_flat(&flat_checksum);
  const double tree_churn_secs = bench_churn_tree(&tree_checksum);
  if (flat_checksum != tree_checksum) {
    std::fprintf(stderr, "inflight churn diverged: flat=%llu tree=%llu\n",
                 static_cast<unsigned long long>(flat_checksum),
                 static_cast<unsigned long long>(tree_checksum));
    return 1;
  }
  const double ops = static_cast<double>(kChurnOps);
  metrics.push_back(
      {"stack.inflight_churn.flat_ops_per_sec", ops / flat_churn_secs, "ops/s"});
  metrics.push_back(
      {"stack.inflight_churn.tree_ops_per_sec", ops / tree_churn_secs, "ops/s"});
  metrics.push_back({"stack.inflight_churn.flat_vs_tree_speedup",
                     tree_churn_secs / flat_churn_secs, "x"});

  // Predictor plane vs legacy tables: all five kinds, observe and predict
  // phases timed separately over one shared session-structured stream.
  const std::size_t kPredictorEvents = 200000;
  SessionGraphConfig pred_gcfg;
  pred_gcfg.num_pages = 400;
  pred_gcfg.out_degree = 3;
  const SessionGraph pred_graph(pred_gcfg, 7);
  const auto pred_stream = make_predictor_stream(pred_graph, kPredictorEvents);
  const double pred_events = static_cast<double>(kPredictorEvents);
  bool plane_regressed = false;
  for (int k = 0; k < kNumPredictorKinds; ++k) {
    const auto kind = static_cast<PredictorKind>(k);
    const std::string name = predictor_kind_name(kind);
    if (!predictor_backends_agree(kind, pred_graph, pred_stream)) {
      std::fprintf(stderr, "%s plane diverged from legacy tables\n",
                   name.c_str());
      return 1;
    }
    const double op = bench_predictor_observe(kind, pred_graph, false,
                                              pred_stream);
    const double ol = bench_predictor_observe(kind, pred_graph, true,
                                              pred_stream);
    const double pp = bench_predictor_predict(kind, pred_graph, false,
                                              pred_stream);
    const double pl = bench_predictor_predict(kind, pred_graph, true,
                                              pred_stream);
    metrics.push_back({"stack.predictor." + name + ".observe_plane_events_per_sec",
                       pred_events / op, "events/s"});
    metrics.push_back({"stack.predictor." + name + ".observe_legacy_events_per_sec",
                       pred_events / ol, "events/s"});
    metrics.push_back({"stack.predictor." + name + ".predict_plane_events_per_sec",
                       pred_events / pp, "events/s"});
    metrics.push_back({"stack.predictor." + name + ".predict_legacy_events_per_sec",
                       pred_events / pl, "events/s"});
    // Combined observe+predict speedup — what a stack request actually pays.
    const double speedup = (ol + pl) / (op + pp);
    metrics.push_back({"stack.predictor." + name + ".plane_vs_legacy_speedup",
                       speedup, "x"});
    // 5% tolerance absorbs timer noise on the cheap kinds without letting a
    // real regression through.
    if (speedup < 0.95) {
      std::fprintf(stderr, "%s plane slower than legacy: %.3fx\n",
                   name.c_str(), speedup);
      plane_regressed = true;
    }
  }
  if (check_plane_speedup && plane_regressed) return 1;

  std::uint64_t proxy_flat_requests = 0, proxy_tree_requests = 0;
  const double proxy_flat_secs = bench_proxy_sim(false, &proxy_flat_requests);
  const double proxy_tree_secs = bench_proxy_sim(true, &proxy_tree_requests);
  if (proxy_flat_requests != proxy_tree_requests) {
    std::fprintf(stderr, "proxy sim backends diverged: flat=%llu tree=%llu\n",
                 static_cast<unsigned long long>(proxy_flat_requests),
                 static_cast<unsigned long long>(proxy_tree_requests));
    return 1;
  }
  metrics.push_back({"stack.proxy_sim.flat_requests_per_sec",
                     static_cast<double>(proxy_flat_requests) / proxy_flat_secs,
                     "requests/s"});
  metrics.push_back({"stack.proxy_sim.tree_requests_per_sec",
                     static_cast<double>(proxy_tree_requests) / proxy_tree_secs,
                     "requests/s"});
  metrics.push_back({"stack.proxy_sim.flat_vs_tree_speedup",
                     proxy_tree_secs / proxy_flat_secs, "x"});

  std::uint64_t replay_flat_requests = 0, replay_tree_requests = 0;
  const double replay_flat_secs =
      bench_trace_replay(false, &replay_flat_requests);
  const double replay_tree_secs =
      bench_trace_replay(true, &replay_tree_requests);
  if (replay_flat_requests != replay_tree_requests) {
    std::fprintf(stderr, "trace replay backends diverged: flat=%llu tree=%llu\n",
                 static_cast<unsigned long long>(replay_flat_requests),
                 static_cast<unsigned long long>(replay_tree_requests));
    return 1;
  }
  metrics.push_back(
      {"stack.trace_replay.flat_requests_per_sec",
       static_cast<double>(replay_flat_requests) / replay_flat_secs,
       "requests/s"});
  metrics.push_back(
      {"stack.trace_replay.tree_requests_per_sec",
       static_cast<double>(replay_tree_requests) / replay_tree_secs,
       "requests/s"});
  metrics.push_back({"stack.trace_replay.flat_vs_tree_speedup",
                     replay_tree_secs / replay_flat_secs, "x"});

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                 metrics[i].name.c_str(), metrics[i].value,
                 metrics[i].unit.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
  for (const auto& m : metrics) {
    std::printf("  %-45s %14.4g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }
  return 0;
}
