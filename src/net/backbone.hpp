// Shared-origin / backbone link model for the sharded runtime.
//
// In the sharded topology each shard is a region: its users hit the
// regional proxy link (the shard's PsServer), and every retrieval for an
// item whose *home* region is elsewhere additionally loads the backbone —
// the job is replayed onto the home region's origin uplink after the
// cross-region latency. This is the network the paper's question is about
// at datacenter scale: speculative prefetching converts user-perceived
// latency into extra backbone/origin load, and the OriginLink is where that
// conversion becomes measurable (demand vs prefetch split, utilization,
// sojourn under processor sharing).
//
// Origin traffic is accounting-plane: completions update statistics but do
// not gate the user-facing fetch (the regional proxy serves it), so the
// unsharded dynamics are untouched and a 1-shard run stays bit-identical
// to the unsharded stack.
#pragma once

#include <cstdint>
#include <vector>

#include "control/load_sensor.hpp"
#include "net/ps_server.hpp"

namespace specpf {

/// Aggregate backbone measurements (per origin link, or merged across the
/// fleet in canonical shard order).
struct BackboneStats {
  std::uint64_t demand_jobs = 0;    ///< cross-shard demand fetches submitted
  std::uint64_t prefetch_jobs = 0;  ///< cross-shard prefetches submitted
  std::uint64_t completed = 0;      ///< transfers finished by the horizon
  double mean_sojourn = 0.0;        ///< per-transfer time on the uplink
  double utilization = 0.0;         ///< busy fraction (mean across links)
  double total_service_demand = 0.0;  ///< Σ size/bandwidth over completions
  /// Load-sensor peaks (smoothed queue depth / slowdown; 0 when the
  /// uplink's sensor is off). Merged by max across links.
  double peak_queue_depth = 0.0;
  double peak_slowdown = 0.0;

  std::uint64_t jobs() const { return demand_jobs + prefetch_jobs; }
};

/// Merges per-link snapshots: counters add, mean_sojourn is weighted by
/// completions, utilization averages across links (parallel uplinks). A
/// single-element merge returns that element verbatim.
BackboneStats merge_backbone_stats(const std::vector<BackboneStats>& links);

/// One region's origin uplink: a processor-sharing server fed by the
/// cross-shard mailbox deliveries for items homed in this region.
class OriginLink {
 public:
  OriginLink(Simulator& sim, double bandwidth);

  /// Submits a cross-shard transfer (called at delivery time).
  void submit(double size, bool is_prefetch);

  /// Clears accumulators at the warmup boundary (in-flight jobs keep
  /// running, like the proxy link's reset).
  void reset_stats();

  /// Snapshot at the measurement horizon.
  BackboneStats stats() const;

  std::size_t active_jobs() const { return server_.active_jobs(); }

  /// Attaches a load sensor to the uplink (pure observation, like the
  /// proxy-link sensor; the sharded driver enables it whenever the control
  /// plane is on so origin congestion is measurable per region).
  void enable_sensor(const LoadSensorConfig& config);
  const LoadSignals& load_signals() const { return sensor_.signals(); }

 private:
  PsServer server_;
  LinkLoadSensor sensor_;
  bool sense_ = false;
  std::uint64_t demand_jobs_ = 0;
  std::uint64_t prefetch_jobs_ = 0;
};

}  // namespace specpf
