#include "net/server.hpp"

#include "util/contract.hpp"

namespace specpf {

ServerStats merge_server_stats(const std::vector<ServerStats>& links) {
  SPECPF_EXPECTS(!links.empty());
  if (links.size() == 1) return links.front();
  ServerStats out;
  double sojourn_weighted = 0.0;
  double utilization_sum = 0.0;
  for (const ServerStats& link : links) {
    out.completed += link.completed;
    out.mean_jobs_in_system += link.mean_jobs_in_system;
    out.total_service_demand += link.total_service_demand;
    sojourn_weighted += link.mean_sojourn * static_cast<double>(link.completed);
    utilization_sum += link.utilization;
  }
  out.mean_sojourn =
      out.completed ? sojourn_weighted / static_cast<double>(out.completed)
                    : 0.0;
  out.utilization = utilization_sum / static_cast<double>(links.size());
  return out;
}

Server::Server(Simulator& sim, double bandwidth)
    : sim_(sim), bandwidth_(bandwidth) {
  SPECPF_EXPECTS(bandwidth > 0.0);
  jobs_in_system_.start(sim.now(), 0.0);
  busy_.start(sim.now(), 0.0);
}

void Server::reset_stats() {
  sojourns_.reset();
  service_demand_sum_ = 0.0;
  stats_origin_ = sim_.now();
  jobs_in_system_.start(sim_.now(), static_cast<double>(live_jobs_));
  busy_.start(sim_.now(), live_jobs_ > 0 ? 1.0 : 0.0);
}

ServerStats Server::stats() const {
  ServerStats out;
  out.completed = sojourns_.count();
  out.mean_sojourn = sojourns_.mean();
  out.mean_jobs_in_system = jobs_in_system_.average_until(sim_.now());
  out.utilization = busy_.average_until(sim_.now());
  out.total_service_demand = service_demand_sum_;
  return out;
}

void Server::record_arrival() {
  ++live_jobs_;
  jobs_in_system_.update(sim_.now(), static_cast<double>(live_jobs_));
  busy_.update(sim_.now(), 1.0);
}

void Server::record_completion(const TransferResult& result) {
  SPECPF_ASSERT(live_jobs_ > 0);
  --live_jobs_;
  jobs_in_system_.update(sim_.now(), static_cast<double>(live_jobs_));
  busy_.update(sim_.now(), live_jobs_ > 0 ? 1.0 : 0.0);
  // Only count completions whose lifetime lies fully inside the window, so
  // warmup truncation does not bias sojourns downward.
  if (result.submit_time >= stats_origin_) {
    sojourns_.add(result.sojourn());
    service_demand_sum_ += result.size / bandwidth_;
  }
}

}  // namespace specpf
