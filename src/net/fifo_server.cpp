#include "net/fifo_server.hpp"

#include "util/contract.hpp"

namespace specpf {

FifoServer::FifoServer(Simulator& sim, double bandwidth)
    : Server(sim, bandwidth) {}

std::uint64_t FifoServer::submit(double size, Callback on_complete) {
  SPECPF_EXPECTS(size > 0.0);
  const std::uint64_t id = next_job_id_++;
  queue_.push_back(Job{id, size, sim_.now(), std::move(on_complete)});
  record_arrival();
  if (!in_service_) start_next();
  return id;
}

void FifoServer::start_next() {
  SPECPF_ASSERT(!queue_.empty());
  current_ = std::move(queue_.front());
  queue_.pop_front();
  in_service_ = true;
  sim_.schedule_in(current_.size / bandwidth_, [this] { finish_current(); });
}

void FifoServer::finish_current() {
  TransferResult result;
  result.job_id = current_.id;
  result.size = current_.size;
  result.submit_time = current_.submit_time;
  result.finish_time = sim_.now();
  in_service_ = false;
  record_completion(result);
  Callback cb = std::move(current_.on_complete);
  if (!queue_.empty()) start_next();
  if (cb) cb(result);
}

}  // namespace specpf
