// First-come-first-served serve-to-completion server. The ablation contrast
// to PsServer: under FCFS the mean sojourn depends on the service-time
// second moment (Pollaczek–Khinchine), so heavy-tailed item sizes hurt FCFS
// far more than PS — one reason the paper's PS model suits shared links.
#pragma once

#include <cstdint>
#include <deque>

#include "net/server.hpp"

namespace specpf {

class FifoServer final : public Server {
 public:
  FifoServer(Simulator& sim, double bandwidth);

  std::uint64_t submit(double size, Callback on_complete) override;
  std::size_t active_jobs() const override {
    return queue_.size() + (in_service_ ? 1 : 0);
  }

 private:
  // Callbacks are inline (move-only InlineFunction), so queued jobs move
  // through the deque without per-job heap traffic.
  struct Job {
    std::uint64_t id;
    double size;
    double submit_time;
    Callback on_complete;
  };

  void start_next();
  void finish_current();

  std::deque<Job> queue_;
  bool in_service_ = false;
  Job current_{};
  std::uint64_t next_job_id_ = 1;
};

}  // namespace specpf
