#include "net/ps_server.hpp"

#include "util/contract.hpp"

namespace specpf {

PsServer::PsServer(Simulator& sim, double bandwidth)
    : Server(sim, bandwidth), last_sync_(sim.now()) {}

void PsServer::sync_virtual_time(double now) {
  if (!jobs_.empty()) {
    const double rate = bandwidth_ / static_cast<double>(jobs_.size());
    virtual_time_ += rate * (now - last_sync_);
  }
  last_sync_ = now;
}

std::uint64_t PsServer::submit(double size, Callback on_complete) {
  SPECPF_EXPECTS(size > 0.0);
  sync_virtual_time(sim_.now());
  const std::uint64_t id = next_job_id_++;
  jobs_.emplace(virtual_time_ + size,
                Job{id, size, sim_.now(), std::move(on_complete)});
  record_arrival();
  schedule_next_completion();
  return id;
}

void PsServer::schedule_next_completion() {
  // Generation-checked handles make cancel O(1) and idempotent; no need to
  // clear the handle before rescheduling.
  sim_.cancel(completion_event_);
  if (jobs_.empty()) return;
  const double finish_v = jobs_.begin()->first;
  const double remaining_v = finish_v - virtual_time_;
  SPECPF_ASSERT(remaining_v >= -1e-9);
  const double rate = bandwidth_ / static_cast<double>(jobs_.size());
  const double delay = remaining_v > 0.0 ? remaining_v / rate : 0.0;
  completion_event_ = sim_.schedule_in(delay, [this] { complete_front(); });
}

void PsServer::complete_front() {
  SPECPF_ASSERT(!jobs_.empty());
  sync_virtual_time(sim_.now());
  auto it = jobs_.begin();
  Job job = std::move(it->second);
  // Snap the virtual clock to the exact finish value to prevent drift from
  // accumulating across millions of completions.
  virtual_time_ = it->first;
  jobs_.erase(it);

  TransferResult result;
  result.job_id = job.id;
  result.size = job.size;
  result.submit_time = job.submit_time;
  result.finish_time = sim_.now();
  record_completion(result);
  schedule_next_completion();
  if (job.on_complete) job.on_complete(result);
}

}  // namespace specpf
