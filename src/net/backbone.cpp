#include "net/backbone.hpp"

#include "util/contract.hpp"

namespace specpf {

BackboneStats merge_backbone_stats(const std::vector<BackboneStats>& links) {
  SPECPF_EXPECTS(!links.empty());
  // One link: hand the snapshot back untouched — re-deriving means through
  // weighted sums is not bit-exact, and 1-shard runs must be.
  if (links.size() == 1) return links.front();
  BackboneStats out;
  double sojourn_weighted = 0.0;
  double utilization_sum = 0.0;
  for (const BackboneStats& link : links) {
    out.demand_jobs += link.demand_jobs;
    out.prefetch_jobs += link.prefetch_jobs;
    out.completed += link.completed;
    out.total_service_demand += link.total_service_demand;
    sojourn_weighted += link.mean_sojourn * static_cast<double>(link.completed);
    utilization_sum += link.utilization;
    out.peak_queue_depth = std::max(out.peak_queue_depth,
                                    link.peak_queue_depth);
    out.peak_slowdown = std::max(out.peak_slowdown, link.peak_slowdown);
  }
  out.mean_sojourn =
      out.completed ? sojourn_weighted / static_cast<double>(out.completed)
                    : 0.0;
  out.utilization = utilization_sum / static_cast<double>(links.size());
  return out;
}

OriginLink::OriginLink(Simulator& sim, double bandwidth)
    : server_(sim, bandwidth) {}

void OriginLink::submit(double size, bool is_prefetch) {
  if (is_prefetch) {
    ++prefetch_jobs_;
  } else {
    ++demand_jobs_;
  }
  if (!sense_) {
    server_.submit(size, [](const TransferResult&) {});
    return;
  }
  const double nominal = size / server_.bandwidth();
  server_.submit(size, [this, nominal](const TransferResult& r) {
    sensor_.observe_completion(r.finish_time, r.sojourn(), nominal);
    sensor_.observe_queue(r.finish_time, server_.active_jobs());
  });
  sensor_.observe_queue(server_.sim().now(), server_.active_jobs());
}

void OriginLink::enable_sensor(const LoadSensorConfig& config) {
  sensor_ = LinkLoadSensor(config);
  sense_ = true;
}

void OriginLink::reset_stats() {
  server_.reset_stats();
  demand_jobs_ = 0;
  prefetch_jobs_ = 0;
  if (sense_) sensor_.reset_peaks();
}

BackboneStats OriginLink::stats() const {
  const ServerStats s = server_.stats();
  BackboneStats out;
  out.demand_jobs = demand_jobs_;
  out.prefetch_jobs = prefetch_jobs_;
  out.completed = s.completed;
  out.mean_sojourn = s.mean_sojourn;
  out.utilization = s.utilization;
  out.total_service_demand = s.total_service_demand;
  if (sense_) {
    out.peak_queue_depth = sensor_.signals().peak_queue_depth;
    out.peak_slowdown = sensor_.signals().peak_slowdown;
  }
  return out;
}

}  // namespace specpf
