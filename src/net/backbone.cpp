#include "net/backbone.hpp"

#include "util/contract.hpp"

namespace specpf {

BackboneStats merge_backbone_stats(const std::vector<BackboneStats>& links) {
  SPECPF_EXPECTS(!links.empty());
  // One link: hand the snapshot back untouched — re-deriving means through
  // weighted sums is not bit-exact, and 1-shard runs must be.
  if (links.size() == 1) return links.front();
  BackboneStats out;
  double sojourn_weighted = 0.0;
  double utilization_sum = 0.0;
  for (const BackboneStats& link : links) {
    out.demand_jobs += link.demand_jobs;
    out.prefetch_jobs += link.prefetch_jobs;
    out.completed += link.completed;
    out.total_service_demand += link.total_service_demand;
    sojourn_weighted += link.mean_sojourn * static_cast<double>(link.completed);
    utilization_sum += link.utilization;
  }
  out.mean_sojourn =
      out.completed ? sojourn_weighted / static_cast<double>(out.completed)
                    : 0.0;
  out.utilization = utilization_sum / static_cast<double>(links.size());
  return out;
}

OriginLink::OriginLink(Simulator& sim, double bandwidth)
    : server_(sim, bandwidth) {}

void OriginLink::submit(double size, bool is_prefetch) {
  if (is_prefetch) {
    ++prefetch_jobs_;
  } else {
    ++demand_jobs_;
  }
  server_.submit(size, [](const TransferResult&) {});
}

void OriginLink::reset_stats() {
  server_.reset_stats();
  demand_jobs_ = 0;
  prefetch_jobs_ = 0;
}

BackboneStats OriginLink::stats() const {
  const ServerStats s = server_.stats();
  BackboneStats out;
  out.demand_jobs = demand_jobs_;
  out.prefetch_jobs = prefetch_jobs_;
  out.completed = s.completed;
  out.mean_sojourn = s.mean_sojourn;
  out.utilization = s.utilization;
  out.total_service_demand = s.total_service_demand;
  return out;
}

}  // namespace specpf
