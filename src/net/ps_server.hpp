// Egalitarian processor-sharing server (paper §2.1's round-robin queue in
// the quantum→0 limit).
//
// Implementation: virtual-time bookkeeping. Define V(t) as the cumulative
// per-job service delivered since the server became busy; V advances at rate
// bandwidth/n(t) while n(t) jobs are active. A job arriving at virtual time
// V_a with size S completes when V reaches V_a + S. Jobs therefore finish in
// order of (arrival virtual time + size), and only the earliest completion
// needs an event scheduled; arrivals and departures reschedule it. Each
// arrival/departure is O(log n) via an ordered multiset keyed by finish
// virtual time — no O(n) remaining-work rescans.
#pragma once

#include <cstdint>
#include <map>

#include "net/server.hpp"

namespace specpf {

class PsServer final : public Server {
 public:
  PsServer(Simulator& sim, double bandwidth);

  std::uint64_t submit(double size, Callback on_complete) override;
  std::size_t active_jobs() const override { return jobs_.size(); }

 private:
  struct Job {
    std::uint64_t id;
    double size;
    double submit_time;
    Callback on_complete;
  };

  /// Advances the virtual clock to wall-clock time `now`.
  void sync_virtual_time(double now);

  /// (Re)schedules the completion event for the job with least finish
  /// virtual time.
  void schedule_next_completion();

  void complete_front();

  // Jobs keyed by finish virtual time; multimap tolerates exact ties (two
  // equal-size jobs arriving at the same instant), preserving FIFO order
  // among them by insertion. Completion callbacks are stored inline in the
  // Job (Server::Callback is an InlineFunction), so the only per-job
  // allocation left is the map node itself.
  std::multimap<double, Job> jobs_;
  double virtual_time_ = 0.0;
  double last_sync_ = 0.0;
  EventId completion_event_;
  std::uint64_t next_job_id_ = 1;
};

}  // namespace specpf
