// Shared-network abstraction: the "entire network accessed through the
// proxy" of paper §2.1, realised as an event-driven single server through
// which every demand fetch and prefetch must pass.
//
// Two service disciplines:
//   * PsServer   — egalitarian processor sharing (the paper's M/G/1-RR/PS
//                  model): with n jobs active, each transfers at b/n.
//   * FifoServer — serve-to-completion FCFS, the contrast case for the
//                  discipline ablation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "des/inline_function.hpp"
#include "des/simulator.hpp"
#include "stats/running_stats.hpp"
#include "stats/time_weighted.hpp"

namespace specpf {

/// What a completed transfer looked like; passed to the completion callback.
struct TransferResult {
  std::uint64_t job_id = 0;
  double size = 0.0;          ///< units transferred
  double submit_time = 0.0;   ///< when the job entered the server
  double finish_time = 0.0;   ///< when the last byte arrived
  double sojourn() const { return finish_time - submit_time; }
};

/// Aggregate server-side measurements over the observation window.
struct ServerStats {
  std::uint64_t completed = 0;
  double mean_sojourn = 0.0;       ///< average per-job time in system
  double mean_jobs_in_system = 0.0;  ///< time-averaged N
  double utilization = 0.0;        ///< busy-time fraction
  double total_service_demand = 0.0;  ///< Σ size/b over completed jobs
};

/// Merges snapshots of parallel links (one per shard): completions and
/// service demand add, mean_sojourn is completion-weighted, utilization
/// averages across links, mean_jobs_in_system sums (total concurrent jobs
/// fleet-wide). A single-element merge returns that element verbatim so
/// 1-shard results stay bit-identical to the unsharded path.
ServerStats merge_server_stats(const std::vector<ServerStats>& links);

class Server {
 public:
  // Inline (non-allocating) completion callback; captures up to 48 bytes.
  using Callback = InlineFunction<void(const TransferResult&), 48>;

  explicit Server(Simulator& sim, double bandwidth);
  virtual ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits a transfer of `size` units; `on_complete` fires (via the event
  /// queue) when it finishes. Returns the job id.
  virtual std::uint64_t submit(double size, Callback on_complete) = 0;

  /// Jobs currently in the system.
  virtual std::size_t active_jobs() const = 0;

  /// Resets measurement accumulators (warmup truncation) without touching
  /// in-flight jobs.
  void reset_stats();

  /// Snapshot of statistics up to the current simulation time.
  ServerStats stats() const;

  double bandwidth() const noexcept { return bandwidth_; }
  Simulator& sim() noexcept { return sim_; }

 protected:
  void record_arrival();
  void record_completion(const TransferResult& result);

  Simulator& sim_;
  double bandwidth_;

 private:
  RunningStats sojourns_;
  TimeWeighted jobs_in_system_;
  TimeWeighted busy_;
  double stats_origin_ = 0.0;
  double service_demand_sum_ = 0.0;
  std::size_t live_jobs_ = 0;
};

}  // namespace specpf
