// Access predictors: the "access model" component that previous work
// focused on (paper §1.1), supplying the access probabilities p that the
// paper's threshold rule consumes.
//
// A predictor observes the per-user access sequence and, on demand, ranks
// candidate items with estimated probabilities of being requested next.
#pragma once

#include <cstdint>
#include <vector>

#include "core/planner.hpp"

namespace specpf {

using core::Candidate;
using UserId = std::uint32_t;

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Feeds one observed access into the model.
  virtual void observe(UserId user, std::uint64_t item) = 0;

  /// Predicts the next-access distribution for `user` after their latest
  /// observed access. Probabilities are in [0,1]; the vector may be empty
  /// when the model has no basis for prediction. At most `max_candidates`
  /// entries, highest probability first.
  virtual std::vector<Candidate> predict(UserId user,
                                         std::size_t max_candidates) const = 0;

  /// Scratch-buffer variant: replaces the contents of `out` with the same
  /// prediction predict() returns. Callers that reuse one buffer avoid the
  /// per-call vector allocation; the default forwards to predict() (these
  /// legacy tables are the pinned baseline — the allocation-free hot path
  /// is predict/predictor_plane.hpp).
  virtual void predict_into(UserId user, std::size_t max_candidates,
                            std::vector<Candidate>& out) const {
    out = predict(user, max_candidates);
  }
};

}  // namespace specpf
