// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#include "predict/dependency_graph.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace specpf {

DependencyGraphPredictor::DependencyGraphPredictor(std::size_t lookahead)
    : lookahead_(lookahead) {
  SPECPF_EXPECTS(lookahead >= 1);
}

void DependencyGraphPredictor::observe(UserId user, std::uint64_t item) {
  auto& window = window_[user];
  // Credit `item` as a follower of each access still inside the window —
  // at most once per occurrence. The window holds at most `lookahead_`
  // entries (a handful), so de-duplicating by scanning the window prefix
  // beats materializing a per-call hash set.
  for (std::size_t i = 0; i < window.size(); ++i) {
    const std::uint64_t predecessor = window[i];
    if (predecessor == item) continue;
    if (std::find(window.begin(), window.begin() + static_cast<std::ptrdiff_t>(i),
                  predecessor) != window.begin() + static_cast<std::ptrdiff_t>(i)) {
      continue;  // duplicate window slot, already credited this occurrence
    }
    ++graph_[predecessor].followers[item];
  }
  ++graph_[item].occurrences;
  window.push_back(item);
  if (window.size() > lookahead_) window.pop_front();
}

std::vector<Candidate> DependencyGraphPredictor::predict(
    UserId user, std::size_t max_candidates) const {
  const std::deque<std::uint64_t>* window = window_.find(user);
  if (!window || window->empty()) return {};
  const std::uint64_t current = window->back();
  const NodeCounts* node = graph_.find(current);
  if (!node || node->occurrences == 0) return {};

  std::vector<Candidate> out;
  out.reserve(node->followers.size());
  const double occurrences = static_cast<double>(node->occurrences);
  for (const auto& [item, count] : node->followers) {
    // P(B follows A within w) estimated as count / occurrences(A); clip to 1
    // (a follower can be credited once per occurrence, so this stays <= 1).
    out.push_back(
        Candidate{item, std::min(1.0, static_cast<double>(count) / occurrences)});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

double DependencyGraphPredictor::dependency_probability(std::uint64_t a,
                                                        std::uint64_t b) const {
  const NodeCounts* node = graph_.find(a);
  if (!node || node->occurrences == 0) return 0.0;
  const std::uint64_t* count = node->followers.find(b);
  if (!count) return 0.0;
  return static_cast<double>(*count) /
         static_cast<double>(node->occurrences);
}

}  // namespace specpf
