#include "predict/dependency_graph.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace specpf {

DependencyGraphPredictor::DependencyGraphPredictor(std::size_t lookahead)
    : lookahead_(lookahead) {
  SPECPF_EXPECTS(lookahead >= 1);
}

void DependencyGraphPredictor::observe(UserId user, std::uint64_t item) {
  auto& window = window_[user];
  // Credit `item` as a follower of each access still inside the window —
  // at most once per occurrence (count distinct followers per window slot).
  std::unordered_set<std::uint64_t> credited;
  for (std::uint64_t predecessor : window) {
    if (predecessor == item) continue;
    if (!credited.insert(predecessor).second) continue;
    ++graph_[predecessor].followers[item];
  }
  ++graph_[item].occurrences;
  window.push_back(item);
  if (window.size() > lookahead_) window.pop_front();
}

std::vector<Candidate> DependencyGraphPredictor::predict(
    UserId user, std::size_t max_candidates) const {
  auto window_it = window_.find(user);
  if (window_it == window_.end() || window_it->second.empty()) return {};
  const std::uint64_t current = window_it->second.back();
  auto node_it = graph_.find(current);
  if (node_it == graph_.end() || node_it->second.occurrences == 0) return {};

  const NodeCounts& node = node_it->second;
  std::vector<Candidate> out;
  out.reserve(node.followers.size());
  const double occurrences = static_cast<double>(node.occurrences);
  for (const auto& [item, count] : node.followers) {
    // P(B follows A within w) estimated as count / occurrences(A); clip to 1
    // (a follower can be credited once per occurrence, so this stays <= 1).
    out.push_back(
        Candidate{item, std::min(1.0, static_cast<double>(count) / occurrences)});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

double DependencyGraphPredictor::dependency_probability(std::uint64_t a,
                                                        std::uint64_t b) const {
  auto node_it = graph_.find(a);
  if (node_it == graph_.end() || node_it->second.occurrences == 0) return 0.0;
  auto f_it = node_it->second.followers.find(b);
  if (f_it == node_it->second.followers.end()) return 0.0;
  return static_cast<double>(f_it->second) /
         static_cast<double>(node_it->second.occurrences);
}

}  // namespace specpf
