// Padmanabhan–Mogul server-side dependency graph [7]: a link from item A to
// item B is labelled with the probability that B is requested within a
// lookahead window of w accesses after A (by the same user). Unlike the
// Markov model it credits follow-ups that are not immediate successors.
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <deque>

#include "predict/predictor.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

class DependencyGraphPredictor final : public Predictor {
 public:
  /// `lookahead` = window size w in accesses (w=1 degenerates to Markov).
  explicit DependencyGraphPredictor(std::size_t lookahead = 4);

  void observe(UserId user, std::uint64_t item) override;
  std::vector<Candidate> predict(UserId user,
                                 std::size_t max_candidates) const override;

  /// P(B within w of A) estimate; 0 when unseen.
  double dependency_probability(std::uint64_t a, std::uint64_t b) const;

 private:
  struct NodeCounts {
    FlatHashMap<std::uint64_t> followers;
    std::uint64_t occurrences = 0;
  };

  std::size_t lookahead_;
  FlatHashMap<NodeCounts> graph_;
  FlatHashMap<std::deque<std::uint64_t>> window_;
};

}  // namespace specpf
