// The one predictor-kind dispatch point. Every frontend (proxy sim, trace
// replay, sharded driver, benches, CLI flags) names access predictors
// through this enum, and both predictor backends — the legacy virtual
// `Predictor` tables and the slab-backed SoA plane
// (predict/predictor_plane.hpp) — select their model here, mirroring
// cache/factory.hpp's CacheKind.
#pragma once

#include <string_view>

namespace specpf {

/// Access models available to every frontend. Numeric values are part of
/// the CLI/bench surface (0=markov 1=ppm 2=depgraph 3=frequency 4=oracle).
enum class PredictorKind : int {
  kMarkov = 0,
  kPpm = 1,
  kDependencyGraph = 2,
  kFrequency = 3,
  kOracle = 4,
};

inline constexpr int kNumPredictorKinds = 5;

/// Short stable name for reports, CLI flags, and bench JSON keys.
const char* predictor_kind_name(PredictorKind kind);

/// Parses a CLI name (markov | ppm | depgraph | frequency | oracle).
/// Returns false (leaving *out untouched) on an unknown name.
bool parse_predictor_kind(std::string_view name, PredictorKind* out);

}  // namespace specpf
