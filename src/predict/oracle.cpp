#include "predict/oracle.hpp"

#include <algorithm>

namespace specpf {

OraclePredictor::OraclePredictor(const SessionGraph& graph) : graph_(graph) {}

void OraclePredictor::observe(UserId user, std::uint64_t item) {
  current_page_[user] = item;
}

std::vector<Candidate> OraclePredictor::predict(
    UserId user, std::size_t max_candidates) const {
  const std::uint64_t* page = current_page_.find(user);
  if (!page) return {};
  std::vector<Candidate> out;
  for (const auto& link : graph_.next_distribution(*page)) {
    out.push_back(Candidate{link.target, link.probability});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace specpf
