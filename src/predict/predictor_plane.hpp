// PredictorPlane — the slab-backed SoA access-model layer behind
// StackRuntime, built the way cache/cache_plane.hpp rebuilt the caches.
//
// One plane owns a predictor's entire table state in a shared ContextArena
// (predict/context_arena.hpp): contexts interned through FlatIndexMap,
// successor lists threaded through one u32-linked slab, counts quantized to
// saturating u16 counters with periodic halving, and per-user history kept
// as fixed ring buffers in a user-indexed slab. Prediction writes into a
// caller-provided scratch buffer (predict_into) and ranks candidates with a
// partial top-k select instead of a full sort, so the stack's hot path does
// zero allocation per request.
//
// Two backends behind make_predictor_plane, exactly like make_cache_plane:
//
//   * the arena planes (default) — one concrete class per PredictorKind,
//     dispatched once per run;
//   * LegacyPredictorPlane — the original virtual `Predictor` tables
//     (predict/{frequency,markov,ppm,dependency_graph,oracle}.hpp), kept
//     behind use_legacy_predictors (same pattern as use_tree_inflight and
//     use_legacy_caches) as the pinned differential baseline.
//
// Below the counter-saturation point both backends compute identical
// arithmetic; tests/predict_plane_test.cpp fuzzes bit-identical predict
// output and the sim_stack_differential matrix pins the full stack.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/planner.hpp"
#include "predict/factory.hpp"
#include "util/audit.hpp"

namespace specpf {

class SessionGraph;  // workload/session_graph.hpp (oracle backend only)

using UserId = std::uint32_t;

struct PredictorPlaneConfig {
  /// Users are dense ids in [0, num_users); per-user history lives in a
  /// user-indexed slab, so the plane must know the fleet size up front.
  std::size_t num_users = 1;
  std::size_t ppm_order = 3;            ///< PPM: longest context length
  std::size_t depgraph_lookahead = 4;   ///< dependency graph window w
  double markov_laplace = 0.0;          ///< Markov add-α smoothing
  /// Generating graph, required for kOracle (borrowed; must outlive the
  /// plane). Ignored by every other kind.
  const SessionGraph* graph = nullptr;
};

class PredictorPlane {
 public:
  virtual ~PredictorPlane() = default;

  /// Feeds one observed access into the model.
  virtual void observe(UserId user, std::uint64_t item) = 0;

  /// Predicts the next-access distribution for `user` after their latest
  /// observed access, replacing the contents of `out`: at most
  /// `max_candidates` entries, highest probability first (probability ties
  /// broken by ascending item). `out` may be left empty when the model has
  /// no basis for prediction. Reusing one buffer across calls makes the
  /// steady state allocation-free.
  virtual void predict_into(UserId user, std::size_t max_candidates,
                            std::vector<core::Candidate>& out) const = 0;

  /// Convenience wrapper for tests and reports (allocates; the stack's hot
  /// path uses predict_into with a reused scratch buffer).
  std::vector<core::Candidate> predict(UserId user,
                                       std::size_t max_candidates) const {
    std::vector<core::Candidate> out;
    predict_into(user, max_candidates, out);
    return out;
  }

  /// Counter-halving events so far (0 on the legacy backend, which grows
  /// u64 counts instead of quantizing).
  virtual std::uint64_t counter_halvings() const { return 0; }

  /// Distinct contexts interned in the plane's ContextArena (0 for planes
  /// without one) — the occupancy gauge the telemetry plane samples.
  virtual std::uint64_t context_count() const { return 0; }

  /// Deep-invariant sweep (util/audit.hpp): the arena planes walk their
  /// ContextArena (successor-chain conservation, interning round-trips,
  /// index health). The legacy tables and the stateless oracle have nothing
  /// slab-backed to walk — default no-op.
  virtual void audit(AuditReport& /*report*/) const {}
};

/// Builds the predictor plane for `kind`: the arena backend by default, the
/// legacy virtual Predictor tables when `use_legacy` is set. This switch is
/// the once-per-run model dispatch — everything after it is monomorphic
/// (one virtual hop into the plane per observe/predict, total).
std::unique_ptr<PredictorPlane> make_predictor_plane(
    PredictorKind kind, const PredictorPlaneConfig& config, bool use_legacy);

}  // namespace specpf
