#include "predict/markov.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace specpf {

MarkovPredictor::MarkovPredictor(double laplace) : laplace_(laplace) {
  SPECPF_EXPECTS(laplace >= 0.0);
}

void MarkovPredictor::observe(UserId user, std::uint64_t item) {
  ++observations_;
  if (const std::uint64_t* last = last_.find(user)) {
    NodeCounts& node = counts_[*last];
    ++node.successors[item];
    ++node.total;
  }
  last_[user] = item;
}

std::vector<Candidate> MarkovPredictor::predict(
    UserId user, std::size_t max_candidates) const {
  const std::uint64_t* last = last_.find(user);
  if (!last) return {};
  const NodeCounts* node = counts_.find(*last);
  if (!node || node->total == 0) return {};

  const double denom =
      static_cast<double>(node->total) +
      laplace_ * static_cast<double>(node->successors.size());
  std::vector<Candidate> out;
  out.reserve(node->successors.size());
  for (const auto& [item, count] : node->successors) {
    out.push_back(
        Candidate{item, (static_cast<double>(count) + laplace_) / denom});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;  // deterministic tie order
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

double MarkovPredictor::transition_probability(std::uint64_t current,
                                               std::uint64_t next) const {
  const NodeCounts* node = counts_.find(current);
  if (!node || node->total == 0) return 0.0;
  const std::uint64_t* count = node->successors.find(next);
  if (!count) return 0.0;
  return static_cast<double>(*count) / static_cast<double>(node->total);
}

}  // namespace specpf
