#include "predict/markov.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace specpf {

MarkovPredictor::MarkovPredictor(double laplace) : laplace_(laplace) {
  SPECPF_EXPECTS(laplace >= 0.0);
}

void MarkovPredictor::observe(UserId user, std::uint64_t item) {
  ++observations_;
  auto has_it = has_last_.find(user);
  if (has_it != has_last_.end() && has_it->second) {
    NodeCounts& node = counts_[last_item_[user]];
    ++node.successors[item];
    ++node.total;
  }
  last_item_[user] = item;
  has_last_[user] = true;
}

std::vector<Candidate> MarkovPredictor::predict(
    UserId user, std::size_t max_candidates) const {
  auto has_it = has_last_.find(user);
  if (has_it == has_last_.end() || !has_it->second) return {};
  auto node_it = counts_.find(last_item_.at(user));
  if (node_it == counts_.end() || node_it->second.total == 0) return {};

  const NodeCounts& node = node_it->second;
  const double denom = static_cast<double>(node.total) +
                       laplace_ * static_cast<double>(node.successors.size());
  std::vector<Candidate> out;
  out.reserve(node.successors.size());
  for (const auto& [item, count] : node.successors) {
    out.push_back(
        Candidate{item, (static_cast<double>(count) + laplace_) / denom});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;  // deterministic tie order
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

double MarkovPredictor::transition_probability(std::uint64_t current,
                                               std::uint64_t next) const {
  auto node_it = counts_.find(current);
  if (node_it == counts_.end() || node_it->second.total == 0) return 0.0;
  auto succ_it = node_it->second.successors.find(next);
  if (succ_it == node_it->second.successors.end()) return 0.0;
  return static_cast<double>(succ_it->second) /
         static_cast<double>(node_it->second.total);
}

}  // namespace specpf
