// PPM-style higher-order context predictor (prediction by partial match),
// the data-compression approach of Vitter & Krishnan [13]: contexts of
// length k, k-1, ..., 1 are blended, longer contexts weighted by escape
// probabilities (method C: escape mass = distinct successors / (total +
// distinct)).
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <deque>
#include <vector>

#include "predict/predictor.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

class PpmPredictor final : public Predictor {
 public:
  /// `max_order` >= 1: longest context length used.
  explicit PpmPredictor(std::size_t max_order = 3);

  void observe(UserId user, std::uint64_t item) override;
  std::vector<Candidate> predict(UserId user,
                                 std::size_t max_candidates) const override;

  std::size_t max_order() const { return max_order_; }
  std::size_t context_count() const { return contexts_.size(); }

 private:
  struct ContextCounts {
    FlatHashMap<std::uint64_t> successors;
    std::uint64_t total = 0;
  };

  /// Hash of an item sequence (order-dependent).
  static std::uint64_t hash_context(const std::deque<std::uint64_t>& history,
                                    std::size_t length);

  std::size_t max_order_;
  FlatHashMap<ContextCounts> contexts_;
  FlatHashMap<std::deque<std::uint64_t>> history_;
};

}  // namespace specpf
