// Global-frequency predictor: P(item) = global request share, ignoring
// context entirely. The weakest meaningful baseline — exactly the IRM
// stationary distribution when the workload really is IRM.
#pragma once

#include "predict/predictor.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

class FrequencyPredictor final : public Predictor {
 public:
  FrequencyPredictor() = default;

  void observe(UserId user, std::uint64_t item) override;
  std::vector<Candidate> predict(UserId user,
                                 std::size_t max_candidates) const override;

  std::uint64_t total() const { return total_; }

 private:
  FlatHashMap<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace specpf
