// Oracle predictor: reads the *true* conditional next-access distribution
// straight from the generating SessionGraph. Used to reproduce the paper's
// idealised setting — "assume all the prefetched files have the same
// probability p of being accessed" — with zero estimation error, isolating
// policy behaviour from predictor quality.
#pragma once

#include "predict/predictor.hpp"
#include "util/flat_hash.hpp"
#include "workload/session_graph.hpp"

namespace specpf {

class OraclePredictor final : public Predictor {
 public:
  explicit OraclePredictor(const SessionGraph& graph);

  void observe(UserId user, std::uint64_t item) override;
  std::vector<Candidate> predict(UserId user,
                                 std::size_t max_candidates) const override;

 private:
  const SessionGraph& graph_;
  FlatHashMap<std::uint64_t> current_page_;
};

}  // namespace specpf
