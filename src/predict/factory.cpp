#include "predict/factory.hpp"

#include "util/contract.hpp"

namespace specpf {

const char* predictor_kind_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kMarkov:
      return "markov";
    case PredictorKind::kPpm:
      return "ppm";
    case PredictorKind::kDependencyGraph:
      return "depgraph";
    case PredictorKind::kFrequency:
      return "frequency";
    case PredictorKind::kOracle:
      return "oracle";
  }
  SPECPF_ASSERT(false && "unreachable");
  return "?";
}

bool parse_predictor_kind(std::string_view name, PredictorKind* out) {
  for (int i = 0; i < kNumPredictorKinds; ++i) {
    const PredictorKind kind = static_cast<PredictorKind>(i);
    if (name == predictor_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace specpf
