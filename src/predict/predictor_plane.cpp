#include "predict/predictor_plane.hpp"

#include <algorithm>

#include "predict/context_arena.hpp"
#include "predict/dependency_graph.hpp"
#include "predict/frequency.hpp"
#include "predict/markov.hpp"
#include "predict/oracle.hpp"
#include "predict/ppm.hpp"
#include "predict/predictor.hpp"
#include "util/contract.hpp"
#include "workload/session_graph.hpp"

namespace specpf {

namespace {

using core::Candidate;

bool candidate_before(const Candidate& a, const Candidate& b) {
  if (a.probability != b.probability) return a.probability > b.probability;
  return a.item < b.item;  // deterministic tie order
}

/// Batched top-k: partial-select the k best candidates, then sort only
/// those. Items within one prediction are unique and ties break by item,
/// so the comparator is a strict total order — the result is bit-identical
/// to the legacy full sort + truncate, at O(n + k log k) instead of
/// O(n log n).
void select_top_candidates(std::vector<Candidate>& candidates, std::size_t k) {
  if (candidates.size() > k) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(k),
                     candidates.end(), candidate_before);
    candidates.resize(k);
  }
  std::sort(candidates.begin(), candidates.end(), candidate_before);
}

// --- frequency: one global context ----------------------------------------

class FrequencyPlane final : public PredictorPlane {
 public:
  FrequencyPlane() : ctx_(arena_.intern(0)) {}

  void observe(UserId /*user*/, std::uint64_t item) override {
    arena_.add(ctx_, arena_.intern_item(item));
  }

  void predict_into(UserId /*user*/, std::size_t max_candidates,
                    std::vector<Candidate>& out) const override {
    out.clear();
    const std::uint64_t total = arena_.total(ctx_);
    if (total == 0) return;
    const double total_d = static_cast<double>(total);
    arena_.for_each_successor(ctx_, [&](std::uint64_t item, std::uint16_t c) {
      out.push_back(Candidate{item, static_cast<double>(c) / total_d});
    });
    select_top_candidates(out, max_candidates);
  }

  std::uint64_t counter_halvings() const override { return arena_.halvings(); }
  std::uint64_t context_count() const override {
    return arena_.context_count();
  }

  void audit(AuditReport& report) const override { arena_.audit(report); }

 private:
  ContextArena arena_;
  ContextArena::CtxId ctx_;
};

// --- markov: one context per last item -------------------------------------

class MarkovPlane final : public PredictorPlane {
 public:
  MarkovPlane(std::size_t num_users, double laplace)
      : laplace_(laplace), last_(num_users, 0), has_last_(num_users, 0) {
    SPECPF_EXPECTS(laplace >= 0.0);
  }

  void observe(UserId user, std::uint64_t item) override {
    SPECPF_EXPECTS(user < last_.size());
    if (has_last_[user]) {
      arena_.add(arena_.intern(last_[user]), arena_.intern_item(item));
    }
    last_[user] = item;
    has_last_[user] = 1;
  }

  void predict_into(UserId user, std::size_t max_candidates,
                    std::vector<Candidate>& out) const override {
    out.clear();
    if (!has_last_[user]) return;
    const ContextArena::CtxId ctx = arena_.find(last_[user]);
    if (ctx == ContextArena::kNoCtx || arena_.total(ctx) == 0) return;
    const double denom =
        static_cast<double>(arena_.total(ctx)) +
        laplace_ * static_cast<double>(arena_.distinct(ctx));
    arena_.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
      out.push_back(Candidate{item, (static_cast<double>(c) + laplace_) / denom});
    });
    select_top_candidates(out, max_candidates);
  }

  std::uint64_t counter_halvings() const override { return arena_.halvings(); }
  std::uint64_t context_count() const override {
    return arena_.context_count();
  }

  void audit(AuditReport& report) const override { arena_.audit(report); }

 private:
  double laplace_;
  ContextArena arena_;
  std::vector<std::uint64_t> last_;
  std::vector<std::uint8_t> has_last_;
};

// --- ppm: order-k context trie over hashed histories ------------------------

class PpmPlane final : public PredictorPlane {
 public:
  PpmPlane(std::size_t num_users, std::size_t max_order)
      : max_order_(max_order), history_(num_users, max_order) {
    SPECPF_EXPECTS(max_order >= 1);
  }

  void observe(UserId user, std::uint64_t item) override {
    const std::uint32_t item_id = arena_.intern_item(item);
    const std::size_t len = history_.size(user);
    for (std::size_t order = 1; order <= std::min(max_order_, len); ++order) {
      arena_.add(arena_.intern(context_hash(user, order)), item_id);
    }
    history_.push(user, item);
  }

  void predict_into(UserId user, std::size_t max_candidates,
                    std::vector<Candidate>& out) const override {
    out.clear();
    const std::size_t len = history_.size(user);
    if (len == 0) return;

    // PPM-C blending, replicated term-for-term from the legacy table: the
    // longest matching context's predictions carry weight (1 - escape), the
    // escape mass flows to the next shorter context, and so on. Per item
    // the contributions accumulate in descending-order sequence, so the
    // sums are bit-identical regardless of successor iteration order.
    blended_.clear();
    double carry = 1.0;
    for (std::size_t order = std::min(max_order_, len); order >= 1; --order) {
      const ContextArena::CtxId ctx = arena_.find(context_hash(user, order));
      if (ctx == ContextArena::kNoCtx || arena_.total(ctx) == 0) continue;
      const double distinct = static_cast<double>(arena_.distinct(ctx));
      const double total = static_cast<double>(arena_.total(ctx));
      const double escape = distinct / (total + distinct);
      arena_.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
        blended_[item] +=
            carry * (1.0 - escape) * static_cast<double>(c) / total;
      });
      carry *= escape;
      if (carry < 1e-6) break;
    }
    if (blended_.empty()) return;

    out.reserve(blended_.size());
    for (const auto& [item, prob] : blended_) {
      out.push_back(Candidate{item, prob});
    }
    select_top_candidates(out, max_candidates);
  }

  std::uint64_t counter_halvings() const override { return arena_.halvings(); }
  std::uint64_t context_count() const override {
    return arena_.context_count();
  }

  void audit(AuditReport& report) const override { arena_.audit(report); }

 private:
  /// Hash of the user's most recent `length` items — the same FNV-1a mix
  /// (seeded by the length) as PpmPredictor::hash_context, so context
  /// interning groups observations exactly as the legacy table does,
  /// including any 64-bit hash collisions.
  std::uint64_t context_hash(UserId user, std::size_t length) const {
    std::uint64_t h =
        14695981039346656037ULL ^ (length * 0x9E3779B97F4A7C15ULL);
    const std::size_t len = history_.size(user);
    for (std::size_t i = len - length; i < len; ++i) {
      h ^= history_.at(user, i);
      h *= 1099511628211ULL;
      h ^= h >> 29;
    }
    return h;
  }

  std::size_t max_order_;
  ContextArena arena_;
  HistoryRing history_;
  /// Scratch for blending; cleared per call, capacity persists (no steady-
  /// state allocation). The plane is single-threaded like the runtime that
  /// owns it — the sharded driver builds one plane per shard.
  mutable FlatHashMap<double> blended_;
};

// --- dependency graph: lookahead-window follower credits --------------------

class DependencyGraphPlane final : public PredictorPlane {
 public:
  DependencyGraphPlane(std::size_t num_users, std::size_t lookahead)
      : window_(num_users, lookahead) {
    SPECPF_EXPECTS(lookahead >= 1);
  }

  void observe(UserId user, std::uint64_t item) override {
    const std::size_t len = window_.size(user);
    // Credit `item` as a follower of each access still inside the window —
    // at most once per occurrence, deduplicating by prefix scan exactly
    // like the legacy table (the window holds a handful of entries).
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t predecessor = window_.at(user, i);
      if (predecessor == item) continue;
      bool duplicate = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (window_.at(user, j) == predecessor) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      arena_.add(arena_.intern(predecessor), arena_.intern_item(item));
    }
    arena_.bump_aux(arena_.intern(item));
    window_.push(user, item);
  }

  void predict_into(UserId user, std::size_t max_candidates,
                    std::vector<Candidate>& out) const override {
    out.clear();
    if (window_.size(user) == 0) return;
    const ContextArena::CtxId ctx = arena_.find(window_.newest(user));
    if (ctx == ContextArena::kNoCtx || arena_.aux(ctx) == 0) return;
    const double occurrences = static_cast<double>(arena_.aux(ctx));
    arena_.for_each_successor(ctx, [&](std::uint64_t item, std::uint16_t c) {
      // P(B follows A within w) = count / occurrences(A), clipped to 1.
      out.push_back(Candidate{
          item, std::min(1.0, static_cast<double>(c) / occurrences)});
    });
    select_top_candidates(out, max_candidates);
  }

  std::uint64_t counter_halvings() const override { return arena_.halvings(); }
  std::uint64_t context_count() const override {
    return arena_.context_count();
  }

  void audit(AuditReport& report) const override { arena_.audit(report); }

 private:
  ContextArena arena_;
  HistoryRing window_;
};

// --- oracle: true conditionals from the generating graph --------------------

class OraclePlane final : public PredictorPlane {
 public:
  OraclePlane(std::size_t num_users, const SessionGraph& graph)
      : graph_(graph), current_page_(num_users, 0), has_page_(num_users, 0) {}

  void observe(UserId user, std::uint64_t item) override {
    SPECPF_EXPECTS(user < current_page_.size());
    current_page_[user] = item;
    has_page_[user] = 1;
  }

  void predict_into(UserId user, std::size_t max_candidates,
                    std::vector<Candidate>& out) const override {
    out.clear();
    if (!has_page_[user]) return;
    // Same arithmetic as SessionGraph::next_distribution, read straight off
    // the links without materializing the intermediate vector.
    const double stay = 1.0 - graph_.exit_probability();
    for (const auto& link : graph_.links(current_page_[user])) {
      out.push_back(Candidate{link.target, link.probability * stay});
    }
    select_top_candidates(out, max_candidates);
  }

 private:
  const SessionGraph& graph_;
  std::vector<std::uint64_t> current_page_;
  std::vector<std::uint8_t> has_page_;
};

// --- legacy adapter ---------------------------------------------------------

/// The original virtual Predictor tables behind the plane interface — the
/// pinned reference backend for differential tests and the perf baseline.
class LegacyPredictorPlane final : public PredictorPlane {
 public:
  explicit LegacyPredictorPlane(std::unique_ptr<Predictor> predictor)
      : predictor_(std::move(predictor)) {}

  void observe(UserId user, std::uint64_t item) override {
    predictor_->observe(user, item);
  }

  void predict_into(UserId user, std::size_t max_candidates,
                    std::vector<Candidate>& out) const override {
    predictor_->predict_into(user, max_candidates, out);
  }

 private:
  std::unique_ptr<Predictor> predictor_;
};

std::unique_ptr<Predictor> make_legacy_predictor(
    PredictorKind kind, const PredictorPlaneConfig& config) {
  switch (kind) {
    case PredictorKind::kMarkov:
      return std::make_unique<MarkovPredictor>(config.markov_laplace);
    case PredictorKind::kPpm:
      return std::make_unique<PpmPredictor>(config.ppm_order);
    case PredictorKind::kDependencyGraph:
      return std::make_unique<DependencyGraphPredictor>(
          config.depgraph_lookahead);
    case PredictorKind::kFrequency:
      return std::make_unique<FrequencyPredictor>();
    case PredictorKind::kOracle:
      SPECPF_EXPECTS(config.graph != nullptr);
      return std::make_unique<OraclePredictor>(*config.graph);
  }
  SPECPF_ASSERT(false && "unreachable");
  return nullptr;
}

}  // namespace

std::unique_ptr<PredictorPlane> make_predictor_plane(
    PredictorKind kind, const PredictorPlaneConfig& config, bool use_legacy) {
  SPECPF_EXPECTS(config.num_users >= 1);
  if (use_legacy) {
    return std::make_unique<LegacyPredictorPlane>(
        make_legacy_predictor(kind, config));
  }
  switch (kind) {
    case PredictorKind::kMarkov:
      return std::make_unique<MarkovPlane>(config.num_users,
                                           config.markov_laplace);
    case PredictorKind::kPpm:
      return std::make_unique<PpmPlane>(config.num_users, config.ppm_order);
    case PredictorKind::kDependencyGraph:
      return std::make_unique<DependencyGraphPlane>(config.num_users,
                                                    config.depgraph_lookahead);
    case PredictorKind::kFrequency:
      return std::make_unique<FrequencyPlane>();
    case PredictorKind::kOracle:
      SPECPF_EXPECTS(config.graph != nullptr);
      return std::make_unique<OraclePlane>(config.num_users, *config.graph);
  }
  SPECPF_ASSERT(false && "unreachable");
  return nullptr;
}

}  // namespace specpf
