// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#include "predict/ppm.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace specpf {

PpmPredictor::PpmPredictor(std::size_t max_order) : max_order_(max_order) {
  SPECPF_EXPECTS(max_order >= 1);
}

std::uint64_t PpmPredictor::hash_context(
    const std::deque<std::uint64_t>& history, std::size_t length) {
  // FNV-1a over the most recent `length` items plus the length itself, so
  // contexts of different orders never collide by construction.
  std::uint64_t h = 14695981039346656037ULL ^ (length * 0x9E3779B97F4A7C15ULL);
  const std::size_t start = history.size() - length;
  for (std::size_t i = start; i < history.size(); ++i) {
    h ^= history[i];
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return h;
}

void PpmPredictor::observe(UserId user, std::uint64_t item) {
  auto& hist = history_[user];
  // Update every context order ending just before this access.
  for (std::size_t order = 1; order <= std::min(max_order_, hist.size());
       ++order) {
    ContextCounts& ctx = contexts_[hash_context(hist, order)];
    ++ctx.successors[item];
    ++ctx.total;
  }
  hist.push_back(item);
  if (hist.size() > max_order_) hist.pop_front();
}

std::vector<Candidate> PpmPredictor::predict(
    UserId user, std::size_t max_candidates) const {
  const std::deque<std::uint64_t>* hist = history_.find(user);
  if (!hist || hist->empty()) return {};

  // PPM-C blending: start from the longest matching context; its
  // predictions get weight (1 - escape); the escape mass flows to the next
  // shorter context, and so on.
  FlatHashMap<double> blended;
  double carry = 1.0;  // probability mass not yet assigned
  for (std::size_t order = std::min(max_order_, hist->size()); order >= 1;
       --order) {
    const ContextCounts* ctx = contexts_.find(hash_context(*hist, order));
    if (!ctx || ctx->total == 0) continue;
    const double distinct = static_cast<double>(ctx->successors.size());
    const double total = static_cast<double>(ctx->total);
    const double escape = distinct / (total + distinct);
    for (const auto& [item, count] : ctx->successors) {
      blended[item] +=
          carry * (1.0 - escape) * static_cast<double>(count) / total;
    }
    carry *= escape;
    if (carry < 1e-6) break;
  }
  if (blended.empty()) return {};

  std::vector<Candidate> out;
  out.reserve(blended.size());
  for (const auto& [item, prob] : blended) out.push_back(Candidate{item, prob});
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace specpf
