#include "predict/frequency.hpp"

#include <algorithm>

namespace specpf {

void FrequencyPredictor::observe(UserId /*user*/, std::uint64_t item) {
  ++counts_[item];
  ++total_;
}

std::vector<Candidate> FrequencyPredictor::predict(
    UserId /*user*/, std::size_t max_candidates) const {
  if (total_ == 0) return {};
  std::vector<Candidate> out;
  out.reserve(counts_.size());
  for (const auto& [item, count] : counts_) {
    out.push_back(Candidate{
        item, static_cast<double>(count) / static_cast<double>(total_)});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.probability != b.probability) return a.probability > b.probability;
    return a.item < b.item;
  });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace specpf
