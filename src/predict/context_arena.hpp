// ContextArena — the shared slab behind the SoA predictor plane.
//
// Every predictor model reduces to the same data shape: a set of *contexts*
// (the global stream, a last item, an order-k history hash, a
// dependency-graph node), each holding a count per observed *successor*.
// The legacy tables realised that shape as FlatHashMap<FlatHashMap<u64>>
// — one heap-allocated nested table per context, a pointer chase per probe
// and an allocation per new context. The arena flattens the whole fleet of
// tables into four structure-of-arrays slabs:
//
//     ctx_index_ : FlatIndexMap   context key  -> u32 context id
//     item_index_: FlatIndexMap   item value   -> u32 dense item id
//     context slab (SoA)          head / distinct / total / aux  per context
//     successor slab (SoA)        item id / quantized count / next  (u32 links)
//     succ_index_: FlatIndexMap   (ctx id << 32 | item id) -> successor slot
//
// Successor counts are quantized saturating u16 counters: when a counter
// is about to overflow, every counter in that context is halved in place
// (rounding up, so no successor is ever forgotten) and the context total is
// recomputed — the classic aging scheme of adaptive-coding frequency
// tables. Below the saturation point the counts are exactly the legacy
// u64 counts, which is what lets the plane pin bit-identical predictions
// against the legacy tables (tests/predict_plane_test.cpp); past it the
// plane degrades to a bounded-memory approximation instead of growing
// 8-byte counters forever.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/audit.hpp"
#include "util/contract.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

class ContextArena {
 public:
  using CtxId = std::uint32_t;
  static constexpr CtxId kNoCtx = 0xFFFFFFFFu;
  static constexpr std::uint16_t kCounterMax = 0xFFFFu;

  /// Context id for `key`, creating an empty context on first sight.
  CtxId intern(std::uint64_t key) {
    if (const std::uint32_t* id = ctx_index_.find(key)) return *id;
    const CtxId id = static_cast<CtxId>(head_.size());
    head_.push_back(kNoSucc);
    distinct_.push_back(0);
    total_.push_back(0);
    aux_.push_back(0);
    ctx_index_[key] = id;
    return id;
  }

  /// Context id for `key`, or kNoCtx when the context was never observed.
  CtxId find(std::uint64_t key) const {
    const std::uint32_t* id = ctx_index_.find(key);
    return id ? *id : kNoCtx;
  }

  /// Dense id for `item`, interning on first sight. Shared across every
  /// context, so PPM's k orders pay one intern per observe, not k.
  std::uint32_t intern_item(std::uint64_t item) {
    if (const std::uint32_t* id = item_index_.find(item)) return *id;
    const std::uint32_t id = static_cast<std::uint32_t>(item_value_.size());
    item_value_.push_back(item);
    item_index_[item] = id;
    return id;
  }

  /// Records one context -> item observation: bumps the successor's
  /// quantized counter (halving the context first when it would saturate)
  /// and the context total.
  void add(CtxId ctx, std::uint32_t item_id) {
    const std::uint64_t key = succ_key(ctx, item_id);
    if (const std::uint32_t* slot = succ_index_.find(key)) {
      if (succ_count_[*slot] == kCounterMax) halve(ctx);
      ++succ_count_[*slot];
    } else {
      const std::uint32_t fresh = static_cast<std::uint32_t>(succ_item_.size());
      succ_item_.push_back(item_id);
      succ_count_.push_back(1);
      succ_next_.push_back(head_[ctx]);
      head_[ctx] = fresh;
      ++distinct_[ctx];
      succ_index_[key] = fresh;
    }
    ++total_[ctx];
  }

  /// Auxiliary per-context counter (the dependency graph's occurrence
  /// count); not part of the successor-total bookkeeping.
  void bump_aux(CtxId ctx) { ++aux_[ctx]; }

  std::uint64_t total(CtxId ctx) const { return total_[ctx]; }
  std::uint64_t aux(CtxId ctx) const { return aux_[ctx]; }
  std::uint32_t distinct(CtxId ctx) const { return distinct_[ctx]; }

  /// Visits every (item value, count) successor of `ctx`. Order is reverse
  /// insertion order — callers that rank candidates sort, so it never
  /// shows.
  template <typename Fn>
  void for_each_successor(CtxId ctx, Fn&& fn) const {
    for (std::uint32_t s = head_[ctx]; s != kNoSucc; s = succ_next_[s]) {
      fn(item_value_[succ_item_[s]], succ_count_[s]);
    }
  }

  std::size_t context_count() const { return head_.size(); }
  std::size_t successor_count() const { return succ_item_.size(); }
  std::size_t item_count() const { return item_value_.size(); }
  /// Contexts halved so far — the quantization events where the plane's
  /// counts stop mirroring the legacy u64 tables.
  std::uint64_t halvings() const { return halvings_; }

  /// Deep-invariant walker (util/audit.hpp): slab-length agreement across
  /// the SoA columns, successor chains acyclic with every slot owned by
  /// exactly one context, per-context conservation (chain length ==
  /// distinct, sum of counts == total, counts >= 1), successor-index
  /// round-trips ((ctx, item) <-> slot both ways), and interning
  /// round-trips for the context and item indices.
  void audit(AuditReport& report) const {
    const AuditScope scope(report, "ContextArena");
    const std::size_t ctxs = head_.size();
    report.check(distinct_.size() == ctxs && total_.size() == ctxs &&
                     aux_.size() == ctxs,
                 "context SoA columns disagree on length");
    const std::size_t succs = succ_item_.size();
    report.check(succ_count_.size() == succs && succ_next_.size() == succs,
                 "successor SoA columns disagree on length");
    report.check(ctx_index_.size() == ctxs,
                 "context index size != context count");
    report.check(succ_index_.size() == succs,
                 "successor index size != successor count");
    report.check(item_index_.size() == item_value_.size(),
                 "item index size != item count");

    // Successor chains: each slot owned by exactly one context, counts
    // conserve the context totals, and the (ctx, item) index agrees.
    std::vector<std::uint8_t> owned(succs, 0);
    std::uint64_t chained = 0;
    for (CtxId ctx = 0; ctx < ctxs; ++ctx) {
      const std::string who = "ctx " + std::to_string(ctx);
      std::uint64_t sum = 0;
      std::uint32_t walked = 0;
      for (std::uint32_t s = head_[ctx]; s != kNoSucc; s = succ_next_[s]) {
        if (!report.check(s < succs, who + ": successor chain points past "
                                           "the slab")) {
          break;
        }
        if (!report.check(owned[s] == 0,
                          who + ": successor slot " + std::to_string(s) +
                              " owned twice (cycle or cross-context "
                              "share)")) {
          break;
        }
        owned[s] = 1;
        report.check(succ_count_[s] >= 1,
                     who + ": successor slot " + std::to_string(s) +
                         " has a zero count");
        report.check(succ_item_[s] < item_value_.size(),
                     who + ": successor slot " + std::to_string(s) +
                         " names an uninterned item id");
        const std::uint32_t* slot =
            succ_index_.find(succ_key(ctx, succ_item_[s]));
        report.check(slot != nullptr && *slot == s,
                     who + ": successor index round-trip failed for slot " +
                         std::to_string(s));
        sum += succ_count_[s];
        ++walked;
      }
      report.check(walked == distinct_[ctx],
                   who + ": chain walk found " + std::to_string(walked) +
                       " successors, distinct() says " +
                       std::to_string(distinct_[ctx]));
      report.check(sum == total_[ctx],
                   who + ": successor counts sum to " + std::to_string(sum) +
                       " but total() says " + std::to_string(total_[ctx]));
      chained += walked;
    }
    report.check(chained == succs,
                 "successor slab conservation: " + std::to_string(chained) +
                     " slots chained, " + std::to_string(succs) +
                     " allocated (orphaned slots)");

    // Interning round-trips: every index entry points at a slab slot that
    // agrees with it, and (for items) the slab points back into the index.
    ctx_index_.for_each([&](std::uint64_t /*key*/, std::uint32_t id) {
      report.check(id < ctxs, "context index maps to an unallocated id " +
                                  std::to_string(id));
    });
    item_index_.for_each([&](std::uint64_t item, std::uint32_t id) {
      if (report.check(id < item_value_.size(),
                       "item index maps to an unallocated id " +
                           std::to_string(id))) {
        report.check(item_value_[id] == item,
                     "item interning round-trip failed for id " +
                         std::to_string(id));
      }
    });
    ctx_index_.audit(report);
    item_index_.audit(report);
    succ_index_.audit(report);
  }

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  static constexpr std::uint32_t kNoSucc = 0xFFFFFFFFu;

  static std::uint64_t succ_key(CtxId ctx, std::uint32_t item_id) {
    return (static_cast<std::uint64_t>(ctx) << 32) | item_id;
  }

  /// Ages every counter in `ctx`: c -> ceil(c/2), so counts stay >= 1 and
  /// relative frequencies are preserved to within rounding. The total is
  /// recomputed as the exact sum of the aged counts.
  void halve(CtxId ctx) {
    std::uint64_t total = 0;
    for (std::uint32_t s = head_[ctx]; s != kNoSucc; s = succ_next_[s]) {
      succ_count_[s] = static_cast<std::uint16_t>((succ_count_[s] + 1u) >> 1);
      total += succ_count_[s];
    }
    total_[ctx] = total;
    ++halvings_;
  }

  FlatIndexMap ctx_index_;
  FlatIndexMap item_index_;
  FlatIndexMap succ_index_;
  std::vector<std::uint64_t> item_value_;

  // Context slab.
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> distinct_;
  std::vector<std::uint64_t> total_;
  std::vector<std::uint64_t> aux_;

  // Successor slab (u32 links; kNoSucc terminates each chain).
  std::vector<std::uint32_t> succ_item_;
  std::vector<std::uint16_t> succ_count_;
  std::vector<std::uint32_t> succ_next_;

  std::uint64_t halvings_ = 0;
};

/// Fixed-window per-user history, stored as rings in one user-indexed slab
/// (replacing FlatHashMap<std::deque<u64>>): user u's window occupies slots
/// [u*window, (u+1)*window), with a one-byte head/length pair per user.
class HistoryRing {
 public:
  HistoryRing(std::size_t num_users, std::size_t window)
      : window_(window),
        items_(num_users * window),
        head_(num_users, 0),
        len_(num_users, 0) {
    SPECPF_EXPECTS(window >= 1 && window <= 255);
  }

  void push(std::uint32_t user, std::uint64_t item) {
    const std::size_t base = static_cast<std::size_t>(user) * window_;
    if (len_[user] < window_) {
      items_[base + (head_[user] + len_[user]) % window_] = item;
      ++len_[user];
    } else {
      items_[base + head_[user]] = item;
      head_[user] = static_cast<std::uint8_t>((head_[user] + 1) % window_);
    }
  }

  std::size_t size(std::uint32_t user) const { return len_[user]; }

  /// i-th item of the user's window, oldest (i = 0) to newest.
  std::uint64_t at(std::uint32_t user, std::size_t i) const {
    return items_[static_cast<std::size_t>(user) * window_ +
                  (head_[user] + i) % window_];
  }

  std::uint64_t newest(std::uint32_t user) const {
    return at(user, len_[user] - 1);
  }

 private:
  std::size_t window_;
  std::vector<std::uint64_t> items_;
  std::vector<std::uint8_t> head_;  ///< ring index of the oldest entry
  std::vector<std::uint8_t> len_;
};

}  // namespace specpf
