// First-order Markov predictor: P(next=j | current=i) estimated from
// transition counts. The simplest member of the Vitter–Krishnan family of
// Markov access models.
#pragma once

#include <unordered_map>

#include "predict/predictor.hpp"

namespace specpf {

class MarkovPredictor final : public Predictor {
 public:
  /// `laplace` adds-α smoothing mass spread over seen successors; 0 gives
  /// pure maximum-likelihood estimates.
  explicit MarkovPredictor(double laplace = 0.0);

  void observe(UserId user, std::uint64_t item) override;
  std::vector<Candidate> predict(UserId user,
                                 std::size_t max_candidates) const override;

  /// ML estimate of P(next | current); 0 when the pair is unseen.
  double transition_probability(std::uint64_t current,
                                std::uint64_t next) const;

  std::uint64_t observations() const { return observations_; }

 private:
  struct NodeCounts {
    std::unordered_map<std::uint64_t, std::uint64_t> successors;
    std::uint64_t total = 0;
  };

  double laplace_;
  std::unordered_map<std::uint64_t, NodeCounts> counts_;
  std::unordered_map<UserId, std::uint64_t> last_item_;
  std::unordered_map<UserId, bool> has_last_;
  std::uint64_t observations_ = 0;
};

}  // namespace specpf
