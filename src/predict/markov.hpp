// First-order Markov predictor: P(next=j | current=i) estimated from
// transition counts. The simplest member of the Vitter–Krishnan family of
// Markov access models.
#pragma once

#include "predict/predictor.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

class MarkovPredictor final : public Predictor {
 public:
  /// `laplace` adds-α smoothing mass spread over seen successors; 0 gives
  /// pure maximum-likelihood estimates.
  explicit MarkovPredictor(double laplace = 0.0);

  void observe(UserId user, std::uint64_t item) override;
  std::vector<Candidate> predict(UserId user,
                                 std::size_t max_candidates) const override;

  /// ML estimate of P(next | current); 0 when the pair is unseen.
  double transition_probability(std::uint64_t current,
                                std::uint64_t next) const;

  std::uint64_t observations() const { return observations_; }

 private:
  struct NodeCounts {
    FlatHashMap<std::uint64_t> successors;
    std::uint64_t total = 0;
  };

  double laplace_;
  FlatHashMap<NodeCounts> counts_;
  /// Most recent item per user; presence in the table *is* the "has a last
  /// item" bit (one probe where the old parallel last_item_/has_last_
  /// unordered_maps cost two).
  FlatHashMap<std::uint64_t> last_;
  std::uint64_t observations_ = 0;
};

}  // namespace specpf
