#include "obs/trace_export.hpp"

#include <cstdio>
#include <vector>

namespace specpf {

namespace {

constexpr double kMicrosPerSimSecond = 1e6;

/// Formats a double compactly for JSON/CSV (%.9g never emits locale
/// separators and round-trips the values we record).
void print_double(std::FILE* f, double v) { std::fprintf(f, "%.9g", v); }

void print_json_string(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      std::fputc(c, f);
    }  // control characters never occur in registered names; drop them
  }
  std::fputc('"', f);
}

class EventList {
 public:
  explicit EventList(std::FILE* f) : f_(f) {}

  /// Starts the next event object, handling the comma discipline.
  void begin() {
    if (!first_) std::fputs(",\n", f_);
    first_ = false;
    std::fputc('{', f_);
  }

 private:
  std::FILE* f_;
  bool first_ = true;
};

void write_metadata(std::FILE* f, EventList& events, std::uint32_t pid,
                    const char* what, std::uint32_t tid, const char* name) {
  events.begin();
  std::fprintf(f, "\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u", what, pid);
  if (tid != 0) std::fprintf(f, ",\"tid\":%u", tid);
  std::fputs(",\"args\":{\"name\":", f);
  print_json_string(f, name);
  std::fputs("}}", f);
}

struct ColumnIndex {
  std::vector<std::string> names;
  std::vector<std::string> units;

  std::size_t intern(const std::string& name, const std::string& unit) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        // First non-empty unit wins (shards register identical units; a
        // unitless registrant never erases an annotated one).
        if (units[i].empty()) units[i] = unit;
        return i;
      }
    }
    names.push_back(name);
    units.push_back(unit);
    return names.size() - 1;
  }
  std::size_t find(const std::string& name) const {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    return names.size();
  }
};

}  // namespace

bool write_chrome_trace(const std::string& path,
                        const TelemetryPlane* const* planes, std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  EventList events(f);
  for (std::size_t s = 0; s < n; ++s) {
    const TelemetryPlane& plane = *planes[s];
    const std::uint32_t pid = plane.shard();
    write_metadata(f, events, pid, "process_name", 0,
                   ("shard " + std::to_string(pid)).c_str());
    write_metadata(f, events, pid, "thread_name", 1, "link");
    write_metadata(f, events, pid, "thread_name", 2, "waits");

    // Spans: complete ("X") events, one per retained closed span.
    plane.spans().for_each_closed([&](const SpanTracer::SpanRecord& rec) {
      const auto kind = static_cast<SpanTracer::SpanKind>(rec.kind);
      events.begin();
      std::fprintf(f, "\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u",
                   SpanTracer::kind_name(kind), pid,
                   SpanTracer::kind_track(kind));
      std::fputs(",\"ts\":", f);
      print_double(f, rec.t_start * kMicrosPerSimSecond);
      std::fputs(",\"dur\":", f);
      print_double(f, (rec.t_end - rec.t_start) * kMicrosPerSimSecond);
      std::fprintf(f, ",\"args\":{\"user\":%u,\"item\":%llu}}", rec.user,
                   static_cast<unsigned long long>(rec.item));
    });

    // Time series: counter ("C") events — one track per gauge per shard.
    const TelemetryRegistry& reg = plane.registry();
    const TimeSeriesRecorder& series = plane.series();
    for (std::size_t i = 0; i < series.size(); ++i) {
      for (std::size_t g = 0; g < series.num_gauges(); ++g) {
        events.begin();
        std::fputs("\"name\":", f);
        print_json_string(f, reg.gauge_name(g));
        std::fprintf(f, ",\"ph\":\"C\",\"pid\":%u,\"ts\":", pid);
        print_double(f, series.time(i) * kMicrosPerSimSecond);
        std::fputs(",\"args\":{\"value\":", f);
        print_double(f, series.value(i, g));
        std::fputs("}}", f);
      }
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_chrome_trace(const std::string& path, const TelemetryPlane& plane) {
  const TelemetryPlane* one[] = {&plane};
  return write_chrome_trace(path, one, 1);
}

bool write_chrome_trace(const std::string& path, const TelemetryFleet& fleet) {
  std::vector<const TelemetryPlane*> planes;
  planes.reserve(fleet.size());
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    planes.push_back(&fleet.shard(s));
  }
  return write_chrome_trace(path, planes.data(), planes.size());
}

bool write_timeseries_csv(const std::string& path,
                          const TelemetryPlane* const* planes, std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Union of gauge names, first-seen order across canonical shard order.
  ColumnIndex columns;
  for (std::size_t s = 0; s < n; ++s) {
    const TelemetryRegistry& reg = planes[s]->registry();
    for (std::size_t g = 0; g < reg.gauge_count(); ++g) {
      columns.intern(reg.gauge_name(g), reg.gauge_unit(g));
    }
  }

  std::fputs("shard,time", f);
  for (const std::string& name : columns.names) {
    std::fprintf(f, ",%s", name.c_str());
  }
  std::fputc('\n', f);
  // Units metadata row ("#units" in the shard column, "s" for sim time,
  // then each gauge column's registered unit) — consumers no longer guess
  // units from names; tools/check_trace validates the row.
  std::fputs("#units,s", f);
  for (const std::string& unit : columns.units) {
    std::fprintf(f, ",%s", unit.c_str());
  }
  std::fputc('\n', f);

  for (std::size_t s = 0; s < n; ++s) {
    const TelemetryPlane& plane = *planes[s];
    const TelemetryRegistry& reg = plane.registry();
    const TimeSeriesRecorder& series = plane.series();
    // This shard's gauge g lands in global column shard_cols[g].
    std::vector<std::size_t> shard_cols(reg.gauge_count());
    for (std::size_t g = 0; g < reg.gauge_count(); ++g) {
      shard_cols[g] = columns.find(reg.gauge_name(g));
    }
    std::vector<double> row(columns.names.size(), 0.0);
    std::vector<bool> present(columns.names.size(), false);
    for (std::size_t i = 0; i < series.size(); ++i) {
      for (std::size_t c = 0; c < row.size(); ++c) present[c] = false;
      for (std::size_t g = 0; g < reg.gauge_count(); ++g) {
        row[shard_cols[g]] = series.value(i, g);
        present[shard_cols[g]] = true;
      }
      std::fprintf(f, "%u,", plane.shard());
      print_double(f, series.time(i));
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::fputc(',', f);
        if (present[c]) print_double(f, row[c]);
      }
      std::fputc('\n', f);
    }
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_timeseries_csv(const std::string& path,
                          const TelemetryPlane& plane) {
  const TelemetryPlane* one[] = {&plane};
  return write_timeseries_csv(path, one, 1);
}

bool write_timeseries_csv(const std::string& path,
                          const TelemetryFleet& fleet) {
  std::vector<const TelemetryPlane*> planes;
  planes.reserve(fleet.size());
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    planes.push_back(&fleet.shard(s));
  }
  return write_timeseries_csv(path, planes.data(), planes.size());
}

}  // namespace specpf
