// Online divergence detection over the telemetry plane's gauge streams.
//
// The paper's central question — when does speculative prefetching push the
// network past saturation — has a sharp queueing-theoretic counterpart:
// an M/G/1-PS link with offered load ρ ≥ 1 has no stationary regime and its
// queue grows without bound (src/queueing/mg1_ps.hpp, Anselmi & Walton's
// stability regions in PAPERS.md). The DivergenceDetector is the empirical
// side of that statement: it watches the sealed TimeSeriesRecorder rows the
// telemetry plane already samples (link/origin queue depth, slowdown,
// utilization EWMAs) and classifies the run online into
//
//   stable      — load drains; trailing window shows no sustained growth
//   metastable  — elevated plateau that is not draining (ρ ≈ 1 territory:
//                 the queue neither empties nor provably grows)
//   divergent   — sustained growth: positive Theil–Sen trend over the
//                 window, an unbroken non-decreasing run, no drain — the
//                 empirical ρ > 1 signature, with a time-of-onset estimate
//
// Purity contract (same as the rest of src/obs): the detector only *reads*
// recorder rows, draws no randomness, schedules nothing, and allocates
// nothing after configure()/watch() — so a replay with a detector attached
// is bit-identical to one without, unless the caller also enables the
// early-abort hook (sim/trace_replay.hpp, shard/sharded_sim.hpp), which
// terminates provably-divergent sweeps instead of simulating an exploding
// queue to the horizon.
//
// The evaluation entry points run on the driver thread at points the
// runtime already visits (stream-window boundaries unsharded, epoch
// barriers sharded) and are cheap when no new sample rows arrived (one
// integer compare per watched signal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/audit.hpp"

namespace specpf {

/// Run-stability classification, ordered by severity (worst wins when a
/// detector aggregates several signals or a fleet aggregates shards).
enum class StabilityVerdict : std::uint8_t {
  kStable = 0,
  kMetastable = 1,
  kDivergent = 2,
};

const char* verdict_name(StabilityVerdict verdict) noexcept;

/// Trend-test thresholds. The defaults are tuned for the stack's default
/// telemetry cadence (0.25 s samples) and EWMA-smoothed gauges; the
/// stability-map sweep exposes them as flags.
struct DivergenceConfig {
  /// Trailing rows per trend evaluation (the Theil–Sen window).
  std::size_t window = 32;
  /// Rows a signal needs before any verdict other than kStable.
  std::size_t min_samples = 12;
  /// Theil–Sen slope (signal units per sim-second) above which the window
  /// counts as growing.
  double slope_threshold = 0.05;
  /// Consecutive non-decreasing steps (within dip_tolerance) the trailing
  /// run must hold before growth counts as *sustained*.
  std::size_t min_growth_run = 6;
  /// Relative dip that still counts as "non-decreasing" inside a growth
  /// run — EWMA gauges wiggle; a real drain dips harder than this.
  double dip_tolerance = 0.1;
  /// Elevated-plateau threshold for queue-depth signals (jobs).
  double depth_level = 8.0;
  /// Elevated-plateau threshold for slowdown signals (sojourn/service).
  double slowdown_level = 6.0;
  /// Elevated-plateau threshold for utilization signals (busy fraction).
  double utilization_level = 0.98;
  /// A window whose last value is below drain_ratio * window peak counts
  /// as draining (stable) even when it is still elevated.
  double drain_ratio = 0.5;
  /// Rows with time < settle_time are ignored by every trend test — the
  /// cold-start transient (empty caches, untrained predictor) looks like
  /// sustained growth and would latch spurious divergence. Sweeps set this
  /// to the replay's warmup boundary.
  double settle_time = 0.0;

  void validate() const;
};

/// Zero-allocation (after setup) online classifier over one or more
/// recorded gauge streams. Each watched signal is a (recorder, gauge
/// column) pair with its own latch state; the detector's verdict is the
/// worst signal's. A divergent verdict latches (with the onset estimate of
/// the first signal that crossed), since an aborted or later-draining run
/// was still provably unstable while it grew; stable/metastable reflect
/// the trailing window, so a flash crowd that drains ends stable.
class DivergenceDetector {
 public:
  /// Setup only (allocates the window scratch). Call once before watch().
  void configure(const DivergenceConfig& config);
  bool configured() const noexcept { return configured_; }
  const DivergenceConfig& config() const noexcept { return config_; }

  /// Setup only: watches column `gauge` of `series` (borrowed; must
  /// outlive the detector). `level` is the elevated-plateau threshold in
  /// the signal's own units; `name` labels the signal in reports.
  void watch(const TimeSeriesRecorder& series, std::size_t gauge,
             std::string name, double level);

  /// Setup only: watches a sealed plane's divergence-relevant gauges
  /// (link/origin depth EWMAs, slowdown EWMAs, utilization EWMAs) by name,
  /// skipping names the plane did not register. `prefix` namespaces the
  /// signal labels in multi-shard fleets ("shard3/link.depth_ewma").
  void watch_plane(const TelemetryPlane& plane, const std::string& prefix = "");

  std::size_t num_signals() const noexcept { return signals_.size(); }

  /// Re-runs the trend tests for every signal with new sample rows and
  /// returns the detector verdict. Pure observation; no allocation. Cheap
  /// (one compare per signal) when no recorder grew since the last call.
  StabilityVerdict evaluate();

  /// Worst current verdict across signals; kDivergent latches.
  StabilityVerdict verdict() const noexcept;
  /// Estimated sim-time the first divergent signal's sustained growth
  /// began; negative when no signal ever diverged.
  double onset_time() const noexcept { return onset_; }
  /// Label of the first signal that crossed into divergence ("" if none).
  const std::string& onset_signal() const noexcept { return onset_signal_; }
  /// Peak value seen across evaluations of signal `i` (diagnostics).
  double peak(std::size_t i) const { return signals_[i].peak; }
  const std::string& signal_name(std::size_t i) const {
    return signals_[i].name;
  }
  StabilityVerdict signal_verdict(std::size_t i) const {
    return signals_[i].diverged ? StabilityVerdict::kDivergent
                                : signals_[i].current;
  }
  std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// Invariants: scratch sized to the config, signal gauge columns in
  /// range, cursor/latch consistency (diverged implies a non-negative
  /// onset, recorder cursors never ahead of their recorder).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  struct Signal {
    const TimeSeriesRecorder* series = nullptr;
    std::size_t gauge = 0;
    std::string name;
    double level = 0.0;
    /// recorder.recorded() at the last evaluation — the staleness cursor.
    std::uint64_t last_recorded = 0;
    StabilityVerdict current = StabilityVerdict::kStable;
    bool diverged = false;
    double onset = -1.0;
    double peak = 0.0;
  };

  /// Trend tests over the signal's trailing window; updates latch state.
  void evaluate_signal(Signal& signal);
  /// Walks back from the last retained row while steps stay non-decreasing
  /// (within dip tolerance); returns the run's start row.
  std::size_t growth_run_start(const TimeSeriesRecorder& series,
                               std::size_t gauge) const;

  DivergenceConfig config_;
  bool configured_ = false;
  std::vector<Signal> signals_;
  /// Preallocated window scratch: timestamps, values, pairwise slopes.
  std::vector<double> win_t_;
  std::vector<double> win_v_;
  std::vector<double> slopes_;
  double onset_ = -1.0;
  std::string onset_signal_;
  std::uint64_t evaluations_ = 0;
};

}  // namespace specpf
