// Telemetry plane — the observability substrate for the whole stack.
//
// Three preallocated pieces, built in the same style as the slab planes:
//
//   * TelemetryRegistry    — flat counter/gauge slots registered by name at
//                            setup (cache-aligned u64 counters, double
//                            gauges). One registry per shard; registries
//                            merge canonically (by name, shard order) at
//                            the end of a run, like SimMetrics.
//   * TimeSeriesRecorder   — samples every registered gauge into a flat
//                            preallocated ring at fixed sim-time intervals
//                            (and at sharded epoch barriers). When full it
//                            downsamples in place (keep-every-2nd, double
//                            the interval) so million-user runs stay
//                            bounded without reallocating.
//   * SpanTracer           — fixed-size request-lifecycle span records
//                            ({slot, generation} refs, ring storage):
//                            demand/prefetch link transits and the waits
//                            blocked on them, tagged with user/item.
//
// Purity contract (same as LinkLoadSensor): telemetry observes only at
// event instants the runtime already visits. It draws no randomness,
// schedules no events, and allocates nothing after seal() — so simulation
// results are bit-identical with telemetry on or off, and the disabled
// path is a single null-pointer test at each hook site.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "des/inline_function.hpp"
#include "util/audit.hpp"
#include "util/contract.hpp"

namespace specpf {

struct TelemetryConfig {
  /// Sim-seconds between gauge samples (the recorder's *initial* cadence;
  /// downsampling doubles it as the ring fills).
  double sample_interval = 0.25;
  /// Samples retained per shard. When the ring is full, every second
  /// sample is dropped in place and the interval doubles.
  std::size_t series_capacity = 4096;
  /// Span records per shard; 0 disables the span tracer entirely.
  std::size_t span_capacity = 1 << 16;

  void validate() const {
    SPECPF_EXPECTS(sample_interval > 0.0);
    SPECPF_EXPECTS(series_capacity >= 2);
  }
};

/// Flat named counters (monotonic u64) and gauges (instantaneous double).
/// Registration happens once at setup; the hot path touches slots by id
/// only. Counter slots are cache-line sized so two counters never share a
/// line (shards each own a registry, so this is about intra-shard
/// store-forwarding, not false sharing).
class TelemetryRegistry {
 public:
  using CounterId = std::uint32_t;
  using GaugeId = std::uint32_t;

  /// Setup only (allocates). Names must be unique within their kind.
  /// `unit` annotates a gauge for exporters ("jobs", "ratio", "items");
  /// empty is allowed but the stack registers every gauge with one.
  CounterId register_counter(std::string name);
  GaugeId register_gauge(std::string name, std::string unit = {});

  /// Hot path: one indexed add / store into preallocated slots.
  void add(CounterId id, std::uint64_t n = 1) noexcept {
    counters_[id].value += n;
  }
  void set_gauge(GaugeId id, double value) noexcept { gauges_[id] = value; }

  std::uint64_t counter(CounterId id) const { return counters_[id].value; }
  double gauge(GaugeId id) const { return gauges_[id]; }

  std::size_t counter_count() const noexcept { return counters_.size(); }
  std::size_t gauge_count() const noexcept { return gauges_.size(); }
  const std::string& counter_name(std::size_t i) const {
    return counter_names_[i];
  }
  const std::string& gauge_name(std::size_t i) const { return gauge_names_[i]; }
  const std::string& gauge_unit(std::size_t i) const { return gauge_units_[i]; }
  /// Gauge index for `name`, or gauge_count() when unregistered (cold
  /// path: detector attachment, exporters).
  std::size_t find_gauge(const std::string& name) const;
  /// The gauge block the recorder snapshots (index = GaugeId).
  const std::vector<double>& gauge_values() const noexcept { return gauges_; }

  /// Folds another registry in by *name* (cold path, canonical shard
  /// order): counters with the same name sum exactly, gauges take the max,
  /// names unseen so far append in the other registry's order. Merging
  /// per-shard registries in shard order is therefore deterministic even
  /// when shards registered different subsets (e.g. userless shards carry
  /// only origin gauges).
  void merge(const TelemetryRegistry& other);

  /// Invariants: parallel name/slot arrays agree, names unique + nonempty.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  struct alignas(64) CounterSlot {
    std::uint64_t value = 0;
  };

  std::vector<CounterSlot> counters_;
  std::vector<double> gauges_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> gauge_units_;
};

/// Fixed-capacity time series over the registry's gauge block. Storage is
/// two flat vectors sized once by configure(); record() never allocates.
/// When the ring fills, keep-every-2nd downsampling halves the sample
/// count and doubles the cadence, so a run of any length lands in at most
/// `capacity` rows at a self-chosen resolution.
class TimeSeriesRecorder {
 public:
  /// Setup only (allocates). `num_gauges` fixes the row width.
  void configure(std::size_t num_gauges, std::size_t capacity,
                 double interval);

  /// Appends one sample row (hot-ish: runs only at sample instants).
  void record(double now, const std::vector<double>& gauges);

  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t num_gauges() const noexcept { return num_gauges_; }
  double time(std::size_t i) const { return times_[i]; }
  double value(std::size_t i, std::size_t g) const {
    return data_[i * num_gauges_ + g];
  }
  /// Current cadence (initial interval * 2^downsamples).
  double interval() const noexcept { return interval_; }
  std::uint64_t downsamples() const noexcept { return downsamples_; }
  /// Total record() calls (>= size() once downsampling kicked in).
  std::uint64_t recorded() const noexcept { return recorded_; }

  /// Invariants: row accounting, monotone non-decreasing timestamps,
  /// interval consistent with the downsample count.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  void downsample();

  std::vector<double> times_;
  std::vector<double> data_;
  std::size_t num_gauges_ = 0;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
  double base_interval_ = 0.0;
  double interval_ = 0.0;
  std::uint64_t downsamples_ = 0;
  std::uint64_t recorded_ = 0;
};

/// Request-lifecycle spans in a fixed ring of POD records. open() hands
/// back a {slot, generation} ref (the engine's handle idiom): closing a
/// ref whose slot was since recycled is a counted no-op, never a write
/// into someone else's span.
class SpanTracer {
 public:
  enum class SpanKind : std::uint16_t {
    kDemandFetch = 0,   ///< demand transfer on the regional link
    kPrefetchFetch = 1, ///< speculative transfer on the regional link
    kDemandWait = 2,    ///< user blocked on a demand fetch
    kInflightWait = 3,  ///< user blocked on a live prefetch (in-flight hit)
  };
  static const char* kind_name(SpanKind kind) noexcept;
  /// Chrome-trace track a kind renders on (transits vs waits).
  static std::uint32_t kind_track(SpanKind kind) noexcept;

  struct SpanRecord {
    double t_start = 0.0;
    double t_end = -1.0;  ///< < t_start means still open
    std::uint64_t item = 0;
    std::uint32_t user = 0;
    std::uint16_t kind = 0;
    std::uint16_t generation = 0;

    bool closed() const noexcept { return t_end >= t_start; }
  };

  /// Stale-proof handle to an open span. Default-constructed = null.
  struct SpanRef {
    std::uint32_t slot = kNullSlot;
    std::uint16_t generation = 0;

    bool valid() const noexcept { return slot != kNullSlot; }
  };
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  /// Setup only (allocates). Capacity 0 disables the tracer: open()
  /// returns null refs and close() ignores them.
  void configure(std::size_t capacity);

  bool enabled() const noexcept { return capacity_ != 0; }

  /// Hot path: writes one ring record, no allocation.
  SpanRef open(SpanKind kind, double t, std::uint32_t user,
               std::uint64_t item) noexcept;
  /// Hot path: generation-checked close; stale refs are counted no-ops.
  void close(SpanRef ref, double t) noexcept;
  /// Emits an already-finished span (e.g. a wait reconstructed at
  /// completion time from its recorded start instant).
  void complete(SpanKind kind, double t0, double t1, std::uint32_t user,
                std::uint64_t item) noexcept {
    close(open(kind, t0, user, item), t1);
  }

  std::uint64_t opens() const noexcept { return opens_; }
  std::uint64_t closes() const noexcept { return closes_; }
  /// Opens whose slot was recycled before they closed (ring overflow).
  std::uint64_t overwritten() const noexcept { return overwritten_; }
  /// close() calls that arrived after their slot was recycled.
  std::uint64_t stale_closes() const noexcept { return stale_closes_; }

  /// Visits retained *closed* spans oldest-first (cold path: export).
  template <typename Fn>
  void for_each_closed(Fn&& fn) const {
    if (capacity_ == 0) return;
    const std::size_t filled =
        next_ < capacity_ ? static_cast<std::size_t>(next_) : capacity_;
    const std::size_t start =
        next_ < capacity_ ? 0 : static_cast<std::size_t>(next_ % capacity_);
    for (std::size_t i = 0; i < filled; ++i) {
      const SpanRecord& rec = ring_[(start + i) % capacity_];
      if (rec.closed()) fn(rec);
    }
  }

  /// Invariants: span balance (opens = closes + overwrites + still-open
  /// records in the ring), closed spans have non-negative duration.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  std::vector<SpanRecord> ring_;
  std::size_t capacity_ = 0;
  std::uint64_t next_ = 0;  ///< total opens; slot = next_ % capacity
  std::uint64_t opens_ = 0;
  std::uint64_t closes_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t stale_closes_ = 0;
};

/// One shard's telemetry bundle: registry + recorder + tracer plus the
/// sampling cadence. The owner (an example binary or a test) constructs
/// it; the StackRuntime borrows it, registers its counters/gauges, installs
/// a gauge-refresh source, and calls seal(). After seal() the hot path is:
/// maybe_sample() = one double compare; counter add = one indexed add;
/// span open/close = one ring write.
class TelemetryPlane {
 public:
  /// Refreshes gauge slots just before a sample row is taken. Installed by
  /// the runtime (captures only `this`-sized state; never allocates).
  using GaugeSource = InlineFunction<void(TelemetryRegistry&), 48>;

  explicit TelemetryPlane(const TelemetryConfig& config = {},
                          std::uint32_t shard = 0)
      : config_(config), shard_(shard) {
    config_.validate();
    spans_.configure(config_.span_capacity);
  }

  TelemetryRegistry& registry() noexcept { return registry_; }
  const TelemetryRegistry& registry() const noexcept { return registry_; }
  SpanTracer& spans() noexcept { return spans_; }
  const SpanTracer& spans() const noexcept { return spans_; }
  const TimeSeriesRecorder& series() const noexcept { return series_; }

  void set_gauge_source(GaugeSource source) {
    gauge_source_ = std::move(source);
  }

  /// Freezes registration and sizes the recorder for the registered gauge
  /// block. Must be called exactly once, before the first sample.
  void seal();
  bool sealed() const noexcept { return sealed_; }

  /// Hot path: one compare when no sample is due.
  void maybe_sample(double now) {
    if (now < next_sample_) return;
    sample_now(now);
  }
  /// Takes a sample row unconditionally (epoch barriers, final flush).
  void sample_now(double now);

  std::uint32_t shard() const noexcept { return shard_; }
  const TelemetryConfig& config() const noexcept { return config_; }

  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  TelemetryConfig config_;
  std::uint32_t shard_ = 0;
  bool sealed_ = false;
  double next_sample_ = 0.0;
  TelemetryRegistry registry_;
  TimeSeriesRecorder series_;
  SpanTracer spans_;
  GaugeSource gauge_source_;
};

/// One TelemetryPlane per shard, for the sharded driver. The planes are
/// independent between barriers (each shard's thread touches only its
/// own), matching the runtime's shard-isolation contract.
class TelemetryFleet {
 public:
  TelemetryFleet(const TelemetryConfig& config, std::size_t num_shards);

  std::size_t size() const noexcept { return planes_.size(); }
  TelemetryPlane& shard(std::size_t s) { return *planes_[s]; }
  const TelemetryPlane& shard(std::size_t s) const { return *planes_[s]; }

  /// Counters/gauges merged by name in canonical shard order (cold path).
  TelemetryRegistry merged_registry() const;

  void audit(AuditReport& report) const;

 private:
  std::vector<std::unique_ptr<TelemetryPlane>> planes_;
};

}  // namespace specpf
