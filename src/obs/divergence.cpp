#include "obs/divergence.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace specpf {

const char* verdict_name(StabilityVerdict verdict) noexcept {
  switch (verdict) {
    case StabilityVerdict::kStable: return "stable";
    case StabilityVerdict::kMetastable: return "metastable";
    case StabilityVerdict::kDivergent: return "divergent";
  }
  return "stable";
}

void DivergenceConfig::validate() const {
  SPECPF_EXPECTS(window >= 4);
  SPECPF_EXPECTS(min_samples >= 4);
  SPECPF_EXPECTS(slope_threshold > 0.0);
  SPECPF_EXPECTS(min_growth_run >= 2);
  SPECPF_EXPECTS(dip_tolerance >= 0.0 && dip_tolerance < 1.0);
  SPECPF_EXPECTS(depth_level > 0.0);
  SPECPF_EXPECTS(slowdown_level > 0.0);
  SPECPF_EXPECTS(utilization_level > 0.0);
  SPECPF_EXPECTS(drain_ratio > 0.0 && drain_ratio <= 1.0);
  SPECPF_EXPECTS(settle_time >= 0.0);
}

void DivergenceDetector::configure(const DivergenceConfig& config) {
  SPECPF_EXPECTS(!configured_);
  config.validate();
  config_ = config;
  win_t_.assign(config_.window, 0.0);
  win_v_.assign(config_.window, 0.0);
  // Pairwise-slope scratch for the Theil–Sen median; sized once here so
  // evaluate() never allocates (clear() keeps the capacity).
  slopes_.reserve(config_.window * (config_.window - 1) / 2);
  configured_ = true;
}

void DivergenceDetector::watch(const TimeSeriesRecorder& series,
                               std::size_t gauge, std::string name,
                               double level) {
  SPECPF_EXPECTS(configured_);
  SPECPF_EXPECTS(gauge < series.num_gauges());
  SPECPF_EXPECTS(level > 0.0);
  Signal signal;
  signal.series = &series;
  signal.gauge = gauge;
  signal.name = std::move(name);
  signal.level = level;
  signals_.push_back(std::move(signal));
}

void DivergenceDetector::watch_plane(const TelemetryPlane& plane,
                                     const std::string& prefix) {
  SPECPF_EXPECTS(plane.sealed());
  // The EWMA gauges, not the raw instantaneous ones: trend tests want the
  // smoothed signal the sensors already maintain. Planes register subsets
  // (userless shards carry only origin gauges), so absent names are fine.
  struct Candidate {
    const char* name;
    double DivergenceConfig::* level;
  };
  static constexpr Candidate kCandidates[] = {
      {"link.depth_ewma", &DivergenceConfig::depth_level},
      {"link.slowdown_ewma", &DivergenceConfig::slowdown_level},
      {"link.util_ewma", &DivergenceConfig::utilization_level},
      {"origin.depth_ewma", &DivergenceConfig::depth_level},
      {"origin.slowdown_ewma", &DivergenceConfig::slowdown_level},
      {"origin.util_ewma", &DivergenceConfig::utilization_level},
  };
  const TelemetryRegistry& reg = plane.registry();
  for (const Candidate& c : kCandidates) {
    const std::size_t g = reg.find_gauge(c.name);
    if (g == reg.gauge_count()) continue;
    watch(plane.series(), g, prefix + c.name, config_.*(c.level));
  }
}

std::size_t DivergenceDetector::growth_run_start(
    const TimeSeriesRecorder& series, std::size_t gauge) const {
  // Walk back from the newest row while each step stays non-decreasing
  // within the dip tolerance — the start of the current sustained-growth
  // run, which is the onset estimate once the run proves divergent.
  std::size_t k = series.size() - 1;
  while (k > 0) {
    if (series.time(k - 1) < config_.settle_time) break;  // pre-settle row
    const double prev = series.value(k - 1, gauge);
    const double cur = series.value(k, gauge);
    if (cur < prev - (config_.dip_tolerance * std::abs(prev) + 1e-9)) break;
    --k;
  }
  return k;
}

void DivergenceDetector::evaluate_signal(Signal& signal) {
  const TimeSeriesRecorder& series = *signal.series;
  if (series.recorded() == signal.last_recorded) return;  // no new rows
  signal.last_recorded = series.recorded();
  // Rows inside the settle window don't count: the cold-start transient is
  // growth by construction, not divergence. Retained rows are time-ordered,
  // so the settled suffix is contiguous at the tail.
  std::size_t n = series.size();
  std::size_t settled_first = 0;
  if (config_.settle_time > 0.0) {
    while (settled_first < n &&
           series.time(settled_first) < config_.settle_time) {
      ++settled_first;
    }
    n -= settled_first;
  }
  if (n < config_.min_samples) {
    signal.current = StabilityVerdict::kStable;
    return;
  }

  // Trailing window copy (preallocated scratch; downsampling mutates rows
  // in place, so values are snapshotted per evaluation).
  const std::size_t w = std::min(config_.window, n);
  const std::size_t first = settled_first + (n - w);
  double window_peak = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    win_t_[i] = series.time(first + i);
    win_v_[i] = series.value(first + i, signal.gauge);
    window_peak = std::max(window_peak, win_v_[i]);
  }
  const double last = win_v_[w - 1];
  signal.peak = std::max(signal.peak, window_peak);

  // Theil–Sen slope: median of pairwise slopes over the window — robust to
  // the occasional sampling spike a least-squares fit would chase.
  slopes_.clear();
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      const double dt = win_t_[j] - win_t_[i];
      if (dt > 0.0) slopes_.push_back((win_v_[j] - win_v_[i]) / dt);
    }
  }
  double slope = 0.0;
  if (!slopes_.empty()) {
    const std::size_t mid = (slopes_.size() - 1) / 2;
    std::nth_element(slopes_.begin(),
                     slopes_.begin() + static_cast<std::ptrdiff_t>(mid),
                     slopes_.end());
    slope = slopes_[mid];
  }

  // Sustained-growth run: consecutive non-decreasing trailing steps (dip
  // tolerance absorbs EWMA wiggle). Walk only far enough to decide — the
  // full-series walk happens once, at divergence latch, for the onset.
  std::size_t run_steps = 0;
  double run_floor = last;
  for (std::size_t k = w - 1; k > 0; --k) {
    const double prev = win_v_[k - 1];
    const double cur = win_v_[k];
    if (cur < prev - (config_.dip_tolerance * std::abs(prev) + 1e-9)) break;
    ++run_steps;
    run_floor = prev;
    if (run_steps >= config_.min_growth_run) break;
  }
  const bool sustained =
      run_steps >= config_.min_growth_run && last > run_floor;

  const bool elevated = last >= signal.level;
  const bool draining =
      window_peak > 0.0 && last <= config_.drain_ratio * window_peak;
  const bool growing = slope > config_.slope_threshold && sustained;

  if (elevated && growing && !draining) {
    signal.current = StabilityVerdict::kDivergent;
    signal.diverged = true;
    signal.onset = series.time(growth_run_start(series, signal.gauge));
    if (onset_ < 0.0 || signal.onset < onset_) {
      onset_ = signal.onset;
      onset_signal_ = signal.name;
    }
  } else if (elevated && !draining) {
    signal.current = StabilityVerdict::kMetastable;
  } else {
    signal.current = StabilityVerdict::kStable;
  }
}

StabilityVerdict DivergenceDetector::evaluate() {
  SPECPF_EXPECTS(configured_);
  ++evaluations_;
  for (Signal& signal : signals_) {
    // A divergent latch is final — skip the trend tests (and their
    // window walk) for signals that already proved unstable.
    if (!signal.diverged) evaluate_signal(signal);
  }
  return verdict();
}

StabilityVerdict DivergenceDetector::verdict() const noexcept {
  StabilityVerdict worst = StabilityVerdict::kStable;
  for (const Signal& signal : signals_) {
    const StabilityVerdict v = signal.diverged ? StabilityVerdict::kDivergent
                                               : signal.current;
    if (static_cast<int>(v) > static_cast<int>(worst)) worst = v;
  }
  return worst;
}

void DivergenceDetector::audit(AuditReport& report) const {
  const AuditScope scope(report, "DivergenceDetector");
  if (!configured_) {
    report.check(signals_.empty(), "signals watched before configure()");
    return;
  }
  report.check(win_t_.size() == config_.window &&
                   win_v_.size() == config_.window,
               "window scratch not sized to config.window");
  report.check(slopes_.capacity() >=
                   config_.window * (config_.window - 1) / 2,
               "slope scratch capacity below the pairwise-slope count");
  bool any_diverged = false;
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const Signal& s = signals_[i];
    const std::string tag = "signal " + std::to_string(i);
    if (!report.check(s.series != nullptr, tag + " has no recorder")) continue;
    report.check(s.gauge < s.series->num_gauges(),
                 tag + " gauge column " + std::to_string(s.gauge) +
                     " out of range");
    report.check(s.last_recorded <= s.series->recorded(),
                 tag + " staleness cursor ahead of its recorder");
    report.check(!s.name.empty(), tag + " has an empty label");
    report.check(s.level > 0.0, tag + " has a non-positive level");
    report.check(!s.diverged || s.onset >= 0.0,
                 tag + " diverged without an onset estimate");
    any_diverged = any_diverged || s.diverged;
  }
  report.check((onset_ >= 0.0) == any_diverged,
               "detector onset latch desynced from signal latches");
  report.check(onset_ < 0.0 || !onset_signal_.empty(),
               "onset recorded without a triggering signal label");
}

}  // namespace specpf
