#include "obs/telemetry.hpp"

#include <algorithm>
#include <string>

namespace specpf {

// --- TelemetryRegistry ------------------------------------------------------

namespace {

/// Linear name lookup; registries hold a few dozen entries and every call
/// site is setup or end-of-run merge.
std::size_t find_name(const std::vector<std::string>& names,
                      const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return names.size();
}

}  // namespace

TelemetryRegistry::CounterId TelemetryRegistry::register_counter(
    std::string name) {
  SPECPF_EXPECTS(!name.empty());
  SPECPF_EXPECTS(find_name(counter_names_, name) == counter_names_.size());
  counter_names_.push_back(std::move(name));
  counters_.emplace_back();
  return static_cast<CounterId>(counters_.size() - 1);
}

TelemetryRegistry::GaugeId TelemetryRegistry::register_gauge(
    std::string name, std::string unit) {
  SPECPF_EXPECTS(!name.empty());
  SPECPF_EXPECTS(find_name(gauge_names_, name) == gauge_names_.size());
  gauge_names_.push_back(std::move(name));
  gauge_units_.push_back(std::move(unit));
  gauges_.push_back(0.0);
  return static_cast<GaugeId>(gauges_.size() - 1);
}

std::size_t TelemetryRegistry::find_gauge(const std::string& name) const {
  return find_name(gauge_names_, name);
}

void TelemetryRegistry::merge(const TelemetryRegistry& other) {
  for (std::size_t i = 0; i < other.counters_.size(); ++i) {
    const std::size_t at = find_name(counter_names_, other.counter_names_[i]);
    if (at == counter_names_.size()) {
      register_counter(other.counter_names_[i]);
    }
    counters_[at].value += other.counters_[i].value;
  }
  for (std::size_t i = 0; i < other.gauges_.size(); ++i) {
    const std::size_t at = find_name(gauge_names_, other.gauge_names_[i]);
    if (at == gauge_names_.size()) {
      register_gauge(other.gauge_names_[i], other.gauge_units_[i]);
    }
    gauges_[at] = std::max(gauges_[at], other.gauges_[i]);
  }
}

void TelemetryRegistry::audit(AuditReport& report) const {
  const AuditScope scope(report, "TelemetryRegistry");
  report.check(counters_.size() == counter_names_.size(),
               "counter slots (" + std::to_string(counters_.size()) +
                   ") and names (" + std::to_string(counter_names_.size()) +
                   ") desynced");
  report.check(gauges_.size() == gauge_names_.size(),
               "gauge slots (" + std::to_string(gauges_.size()) +
                   ") and names (" + std::to_string(gauge_names_.size()) +
                   ") desynced");
  report.check(gauge_units_.size() == gauge_names_.size(),
               "gauge units (" + std::to_string(gauge_units_.size()) +
                   ") and names (" + std::to_string(gauge_names_.size()) +
                   ") desynced");
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    report.check(!counter_names_[i].empty(),
                 "counter " + std::to_string(i) + " has an empty name");
    report.check(find_name(counter_names_, counter_names_[i]) == i,
                 "duplicate counter name '" + counter_names_[i] + "'");
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    report.check(!gauge_names_[i].empty(),
                 "gauge " + std::to_string(i) + " has an empty name");
    report.check(find_name(gauge_names_, gauge_names_[i]) == i,
                 "duplicate gauge name '" + gauge_names_[i] + "'");
  }
}

// --- TimeSeriesRecorder -----------------------------------------------------

void TimeSeriesRecorder::configure(std::size_t num_gauges,
                                   std::size_t capacity, double interval) {
  SPECPF_EXPECTS(capacity >= 2);
  SPECPF_EXPECTS(interval > 0.0);
  num_gauges_ = num_gauges;
  capacity_ = capacity;
  count_ = 0;
  base_interval_ = interval;
  interval_ = interval;
  downsamples_ = 0;
  recorded_ = 0;
  times_.assign(capacity, 0.0);
  data_.assign(capacity * num_gauges, 0.0);
}

void TimeSeriesRecorder::downsample() {
  // Keep even-indexed rows in place: sample 0 stays the series anchor and
  // the retained rows keep their original timestamps, so the series stays
  // monotone and exactly reproducible from the record() call sequence.
  const std::size_t kept = (count_ + 1) / 2;
  for (std::size_t i = 1; i < kept; ++i) {
    times_[i] = times_[2 * i];
    for (std::size_t g = 0; g < num_gauges_; ++g) {
      data_[i * num_gauges_ + g] = data_[2 * i * num_gauges_ + g];
    }
  }
  count_ = kept;
  interval_ *= 2.0;
  ++downsamples_;
}

void TimeSeriesRecorder::record(double now, const std::vector<double>& gauges) {
  SPECPF_EXPECTS(capacity_ != 0);  // configure() first
  SPECPF_EXPECTS(gauges.size() == num_gauges_);
  if (count_ == capacity_) downsample();
  times_[count_] = now;
  for (std::size_t g = 0; g < num_gauges_; ++g) {
    data_[count_ * num_gauges_ + g] = gauges[g];
  }
  ++count_;
  ++recorded_;
}

void TimeSeriesRecorder::audit(AuditReport& report) const {
  const AuditScope scope(report, "TimeSeriesRecorder");
  report.check(count_ <= capacity_,
               "row count " + std::to_string(count_) + " exceeds capacity " +
                   std::to_string(capacity_));
  report.check(times_.size() == capacity_ &&
                   data_.size() == capacity_ * num_gauges_,
               "storage not sized to capacity");
  report.check(recorded_ >= count_,
               "recorded total " + std::to_string(recorded_) +
                   " below retained row count " + std::to_string(count_));
  for (std::size_t i = 1; i < count_; ++i) {
    if (!report.check(times_[i - 1] <= times_[i],
                      "sample timestamps not monotone at row " +
                          std::to_string(i))) {
      break;
    }
  }
  // interval_ must be base * 2^downsamples (exact: doubling is exact in
  // floating point until far past any plausible downsample count).
  double expect = base_interval_;
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(downsamples_, 64);
       ++i) {
    expect *= 2.0;
  }
  report.check(downsamples_ > 64 || interval_ == expect,
               "cadence drifted from base_interval * 2^downsamples");
}

// --- SpanTracer -------------------------------------------------------------

const char* SpanTracer::kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kDemandFetch: return "demand_fetch";
    case SpanKind::kPrefetchFetch: return "prefetch_fetch";
    case SpanKind::kDemandWait: return "demand_wait";
    case SpanKind::kInflightWait: return "inflight_wait";
  }
  return "span";
}

std::uint32_t SpanTracer::kind_track(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kDemandFetch:
    case SpanKind::kPrefetchFetch:
      return 1;  // "link" track: transits on the regional link
    case SpanKind::kDemandWait:
    case SpanKind::kInflightWait:
      return 2;  // "waits" track: user-perceived blocking
  }
  return 0;
}

void SpanTracer::configure(std::size_t capacity) {
  capacity_ = capacity;
  ring_.assign(capacity, SpanRecord{});
  next_ = opens_ = closes_ = overwritten_ = stale_closes_ = 0;
}

SpanTracer::SpanRef SpanTracer::open(SpanKind kind, double t,
                                     std::uint32_t user,
                                     std::uint64_t item) noexcept {
  if (capacity_ == 0) return SpanRef{};
  const std::uint32_t slot = static_cast<std::uint32_t>(next_ % capacity_);
  SpanRecord& rec = ring_[slot];
  if (next_ >= capacity_ && !rec.closed()) ++overwritten_;
  rec.t_start = t;
  rec.t_end = t - 1.0;  // open marker: strictly before t_start
  rec.user = user;
  rec.item = item;
  rec.kind = static_cast<std::uint16_t>(kind);
  rec.generation = static_cast<std::uint16_t>(next_ / capacity_);
  ++next_;
  ++opens_;
  return SpanRef{slot, rec.generation};
}

void SpanTracer::close(SpanRef ref, double t) noexcept {
  if (!ref.valid() || capacity_ == 0) return;
  SpanRecord& rec = ring_[ref.slot];
  if (rec.generation != ref.generation || rec.closed()) {
    ++stale_closes_;
    return;
  }
  rec.t_end = t;
  ++closes_;
}

void SpanTracer::audit(AuditReport& report) const {
  const AuditScope scope(report, "SpanTracer");
  if (capacity_ == 0) {
    report.check(opens_ == 0 && closes_ == 0, "disabled tracer saw spans");
    return;
  }
  report.check(ring_.size() == capacity_, "ring not sized to capacity");
  std::uint64_t live_open = 0;
  const std::size_t filled =
      next_ < capacity_ ? static_cast<std::size_t>(next_) : capacity_;
  for (std::size_t i = 0; i < filled; ++i) {
    const SpanRecord& rec = ring_[i];
    if (!rec.closed()) {
      ++live_open;
    } else {
      report.check(rec.t_end >= rec.t_start,
                   "closed span at slot " + std::to_string(i) +
                       " has negative duration");
    }
  }
  report.check(opens_ == next_, "open total desynced from ring cursor");
  report.check(opens_ == closes_ + overwritten_ + live_open,
               "span balance broken: " + std::to_string(opens_) +
                   " opens vs " + std::to_string(closes_) + " closes + " +
                   std::to_string(overwritten_) + " overwritten + " +
                   std::to_string(live_open) + " live");
}

// --- TelemetryPlane ---------------------------------------------------------

void TelemetryPlane::seal() {
  SPECPF_EXPECTS(!sealed_);
  series_.configure(registry_.gauge_count(), config_.series_capacity,
                    config_.sample_interval);
  sealed_ = true;
}

void TelemetryPlane::sample_now(double now) {
  SPECPF_EXPECTS(sealed_);
  if (gauge_source_) gauge_source_(registry_);
  series_.record(now, registry_.gauge_values());
  next_sample_ = now + series_.interval();
}

void TelemetryPlane::audit(AuditReport& report) const {
  const AuditScope scope(report, "TelemetryPlane shard " +
                                     std::to_string(shard_));
  registry_.audit(report);
  spans_.audit(report);
  if (sealed_) {
    report.check(series_.num_gauges() == registry_.gauge_count(),
                 "recorder row width desynced from registered gauges");
    series_.audit(report);
  }
}

// --- TelemetryFleet ---------------------------------------------------------

TelemetryFleet::TelemetryFleet(const TelemetryConfig& config,
                               std::size_t num_shards) {
  SPECPF_EXPECTS(num_shards >= 1);
  planes_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    planes_.push_back(
        std::make_unique<TelemetryPlane>(config, static_cast<std::uint32_t>(s)));
  }
}

TelemetryRegistry TelemetryFleet::merged_registry() const {
  TelemetryRegistry merged;
  for (const auto& plane : planes_) merged.merge(plane->registry());
  return merged;
}

void TelemetryFleet::audit(AuditReport& report) const {
  for (const auto& plane : planes_) plane->audit(report);
}

}  // namespace specpf
