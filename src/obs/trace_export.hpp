// Export of the telemetry plane's recordings:
//
//   * write_chrome_trace    — Chrome trace-event JSON (loads directly in
//                             Perfetto or chrome://tracing). One process
//                             per shard; spans render on a "link" track
//                             (demand/prefetch transits) and a "waits"
//                             track (user-perceived blocking), each gauge
//                             becomes a counter track. Timestamps are
//                             sim-seconds scaled to microseconds.
//   * write_timeseries_csv  — flat CSV of every shard's sampled gauge
//                             rows (shard, time, <gauge columns>), for
//                             plotting outside a trace viewer. A "#units"
//                             metadata row after the header carries each
//                             column's registered unit.
//
// Both are cold-path, end-of-run writers; they never run inside the
// simulation and hold no state.
#pragma once

#include <cstddef>
#include <string>

#include "obs/telemetry.hpp"

namespace specpf {

/// Writes `n` shard planes as one Chrome trace-event JSON file. Returns
/// false (and writes nothing useful) when the file cannot be opened.
bool write_chrome_trace(const std::string& path,
                        const TelemetryPlane* const* planes, std::size_t n);
bool write_chrome_trace(const std::string& path, const TelemetryPlane& plane);
bool write_chrome_trace(const std::string& path, const TelemetryFleet& fleet);

/// Writes every shard's sampled time series as CSV. Columns are the union
/// of all shards' gauge names in first-seen (canonical shard) order; a
/// shard without some gauge leaves that cell empty. The second line is a
/// "#units" metadata row giving each column's registered unit.
bool write_timeseries_csv(const std::string& path,
                          const TelemetryPlane* const* planes, std::size_t n);
bool write_timeseries_csv(const std::string& path,
                          const TelemetryPlane& plane);
bool write_timeseries_csv(const std::string& path,
                          const TelemetryFleet& fleet);

}  // namespace specpf
