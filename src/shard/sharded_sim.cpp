#include "shard/sharded_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "control/governor.hpp"
#include "des/simulator.hpp"
#include "obs/divergence.hpp"
#include "shard/mailbox.hpp"
#include "sim/stack_runtime.hpp"
#include "util/contract.hpp"
#include "util/flat_hash.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace specpf {

void ShardedReplayConfig::validate() const {
  stack.validate();
  SPECPF_EXPECTS(num_shards >= 1);
  SPECPF_EXPECTS(backbone_latency > 0.0);
  SPECPF_EXPECTS(backbone_bandwidth > 0.0);
  // Sharded telemetry goes through the fleet, one plane per shard; the
  // detector likewise attaches fleet-wide through this config.
  SPECPF_EXPECTS(stack.telemetry == nullptr);
  SPECPF_EXPECTS(stack.divergence == nullptr);
  SPECPF_EXPECTS(telemetry == nullptr || telemetry->size() == num_shards);
  SPECPF_EXPECTS(divergence == nullptr || telemetry != nullptr);
  SPECPF_EXPECTS(!abort_on_divergence || divergence != nullptr);
}

// One region: an independent engine plus its data plane. `runtime` is null
// for shards that own no trace records (they can still receive backbone
// traffic for items homed there, so the engine and origin link exist
// regardless).
struct ShardedSim::Shard {
  explicit Shard(std::size_t num_shards) : outbox(num_shards) {}

  std::uint32_t id = 0;
  Simulator sim;
  /// Raw→dense user ids, first-appearance order within the shard (built in
  /// the metadata scan; the feeder looks ids up as it schedules).
  FlatHashMap<UserId> user_index;
  /// Metadata-scan accumulators for this shard's slice of the trace.
  std::uint64_t scan_count = 0;
  double scan_first = 0.0;
  double scan_last = 0.0;
  std::unique_ptr<PredictorPlane> predictor;
  std::unique_ptr<PrefetchPolicy> policy;
  std::unique_ptr<OriginLink> origin;
  /// Shard-local prefetch governor (null when the run is ungoverned).
  /// Only this shard's thread touches it between barriers; the driver
  /// thread pushes the fleet setpoint in at the barrier.
  std::unique_ptr<PrefetchGovernor> governor;
  std::unique_ptr<StackRuntime> runtime;
  ShardMailbox outbox;
  ServerStats horizon;
  BackboneStats backbone_horizon;

  /// This shard's telemetry plane (null when the run carries none) and the
  /// origin-uplink gauge ids the driver refreshes at barriers.
  TelemetryPlane* telemetry = nullptr;
  TelemetryRegistry::GaugeId g_origin_queue = 0;
  TelemetryRegistry::GaugeId g_origin_util = 0;
  TelemetryRegistry::GaugeId g_origin_depth = 0;
  TelemetryRegistry::GaugeId g_origin_slowdown = 0;

  /// Mailbox traffic totals for the per-shard breakdown.
  std::uint64_t mailbox_sent = 0;
  std::uint64_t mailbox_received = 0;
};

namespace {

/// Shard s > 0 draws a counter-based stream off the root seed; shard 0
/// inherits the root itself so a 1-shard run is bit-identical to the
/// unsharded run_trace_replay with the same config.
std::uint64_t shard_seed(std::uint64_t root_seed, std::uint32_t shard) {
  if (shard == 0) return root_seed;
  return Rng(root_seed).substream(shard).next_u64();
}

}  // namespace

ShardedSim::ShardedSim(const Trace& trace, const ShardedReplayConfig& config,
                       const PolicyFactory& make_policy)
    : config_(config) {
  SPECPF_EXPECTS(!trace.empty());
  SPECPF_EXPECTS(trace.is_time_ordered());
  owned_source_ = std::make_unique<TraceVectorSource>(trace);
  init(*owned_source_, make_policy);
}

ShardedSim::ShardedSim(TraceSource& source, const ShardedReplayConfig& config,
                       const PolicyFactory& make_policy)
    : config_(config) {
  init(source, make_policy);
}

void ShardedSim::init(TraceSource& source, const PolicyFactory& make_policy) {
  config_.validate();
  SPECPF_EXPECTS(static_cast<bool>(make_policy));
  source_ = &source;
  const std::size_t S = config_.num_shards;

  shards_.reserve(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    shards_.push_back(std::make_unique<Shard>(S));
    shards_.back()->id = s;
  }

  // Metadata scan (one sequential pass): global count/time span, and per
  // shard the record count, time span, and densified user ids
  // (first-appearance order within the shard — the same order iterating
  // the shard's partition_by_user sub-trace would produce). Warmup and
  // horizon instants come from the *global* trace so every shard switches
  // measurement on at the same simulated time, exactly where the unsharded
  // replay would.
  source.reset();
  {
    TraceRecord r;
    double prev = 0.0;
    double last = 0.0;
    while (source.next(&r)) {
      SPECPF_EXPECTS(total_records_ == 0 || r.time >= prev);  // time-ordered
      prev = r.time;
      if (total_records_ == 0) t0_ = r.time;
      last = r.time;
      Shard& shard = *shards_[shard_of_user(r.user, S)];
      if (shard.scan_count == 0) shard.scan_first = r.time;
      shard.scan_last = r.time;
      ++shard.scan_count;
      bool inserted = false;
      UserId& dense = shard.user_index.get_or_insert(r.user, &inserted);
      if (inserted) dense = static_cast<UserId>(shard.user_index.size() - 1);
      ++total_records_;
    }
    SPECPF_EXPECTS(total_records_ > 0);
    end_time_ = last - t0_;
  }
  warmup_records_ = static_cast<std::size_t>(
      config_.stack.warmup_fraction * static_cast<double>(total_records_));

  const bool control_plane_on =
      !config_.stack.governor.empty() || config_.stack.enable_load_sensor;

  for (std::uint32_t s = 0; s < S; ++s) {
    Shard* shard = shards_[s].get();
    shard->origin =
        std::make_unique<OriginLink>(shard->sim, config_.backbone_bandwidth);
    if (control_plane_on) shard->origin->enable_sensor(config_.stack.sensor);
    if (config_.telemetry != nullptr) {
      // Origin-uplink gauges register *before* the runtime builds (the
      // runtime seals the plane); the driver refreshes them at barriers.
      shard->telemetry = &config_.telemetry->shard(s);
      TelemetryRegistry& reg = shard->telemetry->registry();
      shard->g_origin_queue = reg.register_gauge("origin.queue_depth", "jobs");
      shard->g_origin_util = reg.register_gauge("origin.util_ewma", "ratio");
      shard->g_origin_depth = reg.register_gauge("origin.depth_ewma", "jobs");
      shard->g_origin_slowdown =
          reg.register_gauge("origin.slowdown_ewma", "ratio");
    }

    if (shard->scan_count == 0) {
      // No users here; the origin link still serves remote-homed items.
      // Its telemetry plane seals with just the origin gauges (no runtime
      // registers anything further); barrier sampling still records rows.
      // Warmup reset / horizon snapshot are scheduled by the feeder at the
      // same boundary records as everyone else's.
      if (shard->telemetry != nullptr) shard->telemetry->seal();
      continue;
    }

    shard->predictor = make_replay_predictor(config_.stack.predictor_kind,
                                             shard->user_index.size(),
                                             config_.stack.use_legacy_predictors);
    shard->policy = make_policy();
    if (policy_name_.empty()) policy_name_ = shard->policy->name();

    StackRuntimeConfig rt;
    rt.bandwidth = config_.stack.bandwidth;
    rt.item_size = config_.stack.item_size;
    rt.num_users = shard->user_index.size();
    rt.cache_capacity = config_.stack.cache_capacity;
    rt.cache_kind = config_.stack.cache_kind;
    rt.estimator_model = config_.stack.estimator_model;
    rt.max_prefetch_per_request = config_.stack.max_prefetch_per_request;
    rt.seed = shard_seed(config_.stack.seed, s);
    // Matches the partitioned sub-trace's mean_request_rate bit-for-bit
    // (duration = last − first on the same doubles, rate 0 if degenerate).
    const double duration =
        shard->scan_count >= 2 ? shard->scan_last - shard->scan_first : 0.0;
    rt.lambda_prior = std::max(
        1e-9,
        safe_div(static_cast<double>(shard->scan_count), duration, 0.0));
    rt.use_tree_inflight = config_.stack.use_tree_inflight;
    rt.use_legacy_caches = config_.stack.use_legacy_caches;
    rt.enable_load_sensor = config_.stack.enable_load_sensor;
    rt.sensor = config_.stack.sensor;
    rt.telemetry = shard->telemetry;  // runtime registers its set and seals
    if (!config_.stack.governor.empty()) {
      // One governor per shard: governors carry control state, so shards
      // cannot share an instance (same reason policies are per-shard).
      shard->governor = make_governor_by_name(config_.stack.governor,
                                              config_.stack.governor_config);
      SPECPF_EXPECTS(shard->governor != nullptr);
      rt.governor = shard->governor.get();
    }
    if (S > 1) {
      // Cross-shard traffic capture. Thread-local by construction: the
      // observer only appends to this shard's own outbox.
      Shard* raw = shard;
      rt.retrieval_observer = [raw, S](UserId, ItemId item, bool is_prefetch) {
        const std::uint32_t dst = home_shard(item, S);
        if (dst == raw->id) return;
        raw->outbox.push(dst, {raw->sim.now(), item, is_prefetch});
      };
    }
    shard->runtime = std::make_unique<StackRuntime>(
        shard->sim, *shard->predictor, *shard->policy, std::move(rt));

    // With no warmup prefix, measurement must be live before the feeder
    // delivers the first request.
    if (warmup_records_ == 0) shard->runtime->begin_measurement();
  }

  // Attach the fleet detector now that every shard's plane is sealed. One
  // detector watching all planes under per-shard name prefixes makes the
  // fleet verdict the worst shard's with no extra merge step.
  if (config_.divergence != nullptr) {
    DivergenceDetector& det = *config_.divergence;
    if (!det.configured()) det.configure(DivergenceConfig{});
    if (det.num_signals() == 0) {
      for (std::uint32_t s = 0; s < S; ++s) {
        det.watch_plane(*shards_[s]->telemetry,
                        "shard" + std::to_string(s) + "/");
      }
    }
  }

  // Prime the feeder; records flow into the engines epoch-by-epoch during
  // run(). A whole-trace epoch still lands each batch in the engine's
  // O(1)-pop sorted tier because feeding happens before that epoch's pops.
  source.reset();
  have_pending_ = source.next(&pending_record_);
  SPECPF_ENSURES(have_pending_);
}

ShardedSim::~ShardedSim() = default;

void ShardedSim::schedule_warmup_events() {
  // The feeder calls this exactly when the warmup-boundary record (global
  // index warmup_records_) is the next to be scheduled, so shard s has
  // exactly its slice of the global warmup prefix in its engine — the
  // begin-measurement event takes the same insertion position it did when
  // the whole partitioned sub-trace was scheduled up front. Every shard
  // has only run to the previous epoch barrier, which is before this
  // record's arrival time, so the schedule is legal fleet-wide.
  const double warmup_time = pending_record_.time - t0_;
  for (auto& shard : shards_) {
    OriginLink* origin = shard->origin.get();
    if (shard->runtime) {
      StackRuntime* runtime = shard->runtime.get();
      shard->sim.schedule_at(warmup_time, [runtime, origin] {
        runtime->begin_measurement();
        origin->reset_stats();
      });
    } else {
      shard->sim.schedule_at(warmup_time, [origin] { origin->reset_stats(); });
    }
  }
}

void ShardedSim::schedule_horizons() {
  for (auto& shard : shards_) {
    if (shard->runtime) {
      shard->sim.schedule_at(end_time_, [raw = shard.get()] {
        raw->horizon = raw->runtime->snapshot_server();
        raw->backbone_horizon = raw->origin->stats();
      });
    } else {
      shard->sim.schedule_at(end_time_, [raw = shard.get()] {
        raw->backbone_horizon = raw->origin->stats();
      });
    }
  }
}

void ShardedSim::feed_records(double epoch_end) {
  const std::size_t S = shards_.size();
  while (have_pending_) {
    const double when = pending_record_.time - t0_;
    if (when > epoch_end) return;
    SPECPF_EXPECTS(when >= 0.0);
    if (warmup_records_ > 0 && fed_index_ == warmup_records_) {
      schedule_warmup_events();
    }
    Shard& shard = *shards_[shard_of_user(pending_record_.user, S)];
    const UserId user = *shard.user_index.find(pending_record_.user);
    StackRuntime* runtime = shard.runtime.get();
    shard.sim.schedule_at(when, [runtime, user, item = pending_record_.item] {
      runtime->handle_request(user, item);
    });
    ++fed_index_;
    have_pending_ = source_->next(&pending_record_);
    if (!have_pending_) schedule_horizons();
  }
}

double ShardedSim::fleet_next_event_time() {
  double t_min = std::numeric_limits<double>::infinity();
  for (auto& shard : shards_) {
    t_min = std::min(t_min, shard->sim.next_event_time());
  }
  return t_min;
}

void ShardedSim::run_epoch(double epoch_end) {
  if (!pool_) {
    for (auto& shard : shards_) shard->sim.run_until(epoch_end);
    return;
  }
  // One task vector per epoch barrier (S entries), not per-request.
  std::vector<std::function<void()>> tasks;  // lint:allow(std::function)
  tasks.reserve(shards_.size());
  for (auto& shard : shards_) {
    tasks.emplace_back(
        [raw = shard.get(), epoch_end] { raw->sim.run_until(epoch_end); });
  }
  auto futures = pool_->submit_batch(std::move(tasks));
  for (auto& f : futures) f.get();
}

void ShardedSim::exchange_mailboxes() {
  const std::size_t S = shards_.size();
  if (S == 1) return;
  const double latency = config_.backbone_latency;
  const double size = config_.stack.item_size;
  // Destination-major, source 0..S-1: the canonical order that pins the
  // destination engine's insertion sequence numbers (and hence the whole
  // run) independent of worker thread count.
  for (std::size_t dst = 0; dst < S; ++dst) {
    Shard& d = *shards_[dst];
    OriginLink* origin = d.origin.get();
    for (std::size_t src = 0; src < S; ++src) {
      std::vector<RemoteFetch>& row = shards_[src]->outbox.row(dst);
      shards_[src]->mailbox_sent += row.size();
      d.mailbox_received += row.size();
      for (const RemoteFetch& f : row) {
        ++cross_shard_events_;
        d.sim.schedule_at(f.send_time + latency,
                          [origin, size, pf = f.is_prefetch] {
                            origin->submit(size, pf);
                          });
      }
      row.clear();
    }
  }
}

void ShardedSim::exchange_setpoints() {
  if (shards_.size() == 1) return;
  double sum = 0.0;
  std::size_t governed = 0;
  for (const auto& shard : shards_) {
    if (!shard->governor || !shard->runtime) continue;
    sum += shard->governor->epoch_signal(shard->runtime->load_signals());
    ++governed;
  }
  if (governed == 0) return;
  const double fleet = sum / static_cast<double>(governed);
  for (const auto& shard : shards_) {
    if (shard->governor) shard->governor->set_fleet_signal(fleet);
  }
}

void ShardedSim::sample_telemetry(double now) {
  if (config_.telemetry == nullptr) return;
  // Driver thread, canonical shard order. Every event a shard executed
  // this epoch is <= now, and mailbox deliveries land >= now, so the
  // forced barrier row keeps each recorder's timestamps monotone.
  for (auto& shard : shards_) {
    TelemetryRegistry& reg = shard->telemetry->registry();
    reg.set_gauge(shard->g_origin_queue,
                  static_cast<double>(shard->origin->active_jobs()));
    const LoadSignals& sig = shard->origin->load_signals();
    reg.set_gauge(shard->g_origin_util, sig.utilization);
    reg.set_gauge(shard->g_origin_depth, sig.queue_depth);
    reg.set_gauge(shard->g_origin_slowdown, sig.slowdown);
    shard->telemetry->sample_now(now);
  }
}

ShardedReplayResult ShardedSim::run() {
  SPECPF_EXPECTS(!ran_);
  ran_ = true;

  const std::size_t threads = config_.num_threads == 0
                                  ? std::max<std::size_t>(
                                        1, std::thread::hardware_concurrency())
                                  : config_.num_threads;
  if (threads > 1 && shards_.size() > 1) {
    pool_ = std::make_unique<ThreadPool>(
        std::min(threads, shards_.size()));
  }

  // Conservative epoch loop. Lookahead = backbone latency: every event a
  // shard emits during [t_min, t_min + L) is delivered at send + L >=
  // t_min + L, i.e. never inside a window anyone already executed. Epochs
  // are anchored at the fleet-wide earliest pending event — engine events
  // and the feeder's next unscheduled trace record alike, so the epoch
  // sequence is identical to the historical whole-trace-prescheduled
  // driver's — which also fast-forwards through idle stretches instead of
  // spinning fixed-width windows over them.
  const double lookahead = config_.backbone_latency;
  bool aborted = false;
  for (;;) {
    double t_min = fleet_next_event_time();
    if (have_pending_) {
      t_min = std::min(t_min, pending_record_.time - t0_);
    }
    if (!std::isfinite(t_min)) break;
    // Feed this window's records before its pops: each batch lands in the
    // destination engine's O(1)-pop sorted tier, and occupancy stays at
    // ~one epoch's worth of arrivals instead of the whole trace.
    feed_records(t_min + lookahead);
    run_epoch(t_min + lookahead);
    ++epochs_;
    exchange_mailboxes();
    exchange_setpoints();
    sample_telemetry(t_min + lookahead);
    // Epoch barriers are the fleet detector's evaluation instants: the
    // forced sample above just refreshed every shard's gauge rows, and the
    // driver thread owns all state here. Pure observation unless abort is
    // armed.
    if (config_.divergence != nullptr &&
        config_.divergence->evaluate() == StabilityVerdict::kDivergent &&
        config_.abort_on_divergence) {
      aborted = true;
      break;
    }
    if constexpr (kAuditBuild) {
      // Epoch-barrier sweep, sampled at power-of-two epochs so the audit
      // cost stays logarithmic in run length; every shard's whole slice
      // (engine slab, cache arenas, predictor arena, in-flight accounting)
      // is re-derived from scratch. The barrier is the earliest point the
      // corruption is observable fleet-wide, so a failure here names the
      // epoch that introduced it.
      if ((epochs_ & (epochs_ - 1)) == 0) audit_fleet();
    }
  }
  if constexpr (kAuditBuild) audit_fleet();  // final sweep before merging
  // Post-drain verdict refresh (no-op after an abort: evaluate() skips
  // signals with no rows newer than their cursor).
  if (config_.divergence != nullptr) config_.divergence->evaluate();

  if (aborted) {
    // The scheduled end_time_ horizon snapshots never ran: snapshot every
    // shard at the abort barrier instead, driver thread, canonical order,
    // so the merge below covers the simulated prefix.
    for (auto& shard : shards_) {
      if (shard->runtime) shard->horizon = shard->runtime->snapshot_server();
      shard->backbone_horizon = shard->origin->stats();
    }
  }

  // Merge in canonical shard order (0..S-1), on this thread.
  ShardedReplayResult out;
  out.num_shards = shards_.size();
  out.epochs = epochs_;
  out.cross_shard_events = cross_shard_events_;
  SimMetrics merged_metrics;
  StackAggregates merged_agg;
  std::vector<ServerStats> horizons;
  std::vector<BackboneStats> backbones;
  horizons.reserve(shards_.size());
  backbones.reserve(shards_.size());
  out.per_shard.reserve(shards_.size());
  out.shard_load.reserve(shards_.size());
  for (const auto& shard : shards_) {
    backbones.push_back(shard->backbone_horizon);
    out.shard_load.push_back({shard->sim.events_executed(),
                              shard->mailbox_sent, shard->mailbox_received});
    if (!shard->runtime) {  // userless shard: origin accounting only
      out.per_shard.emplace_back();
      out.per_shard.back().policy = policy_name_;
      continue;
    }
    merged_metrics.merge(shard->runtime->metrics());
    merged_agg.merge(shard->runtime->aggregates());
    horizons.push_back(shard->horizon);
    out.per_shard.push_back(shard->runtime->finalize(shard->horizon,
                                                     policy_name_));
  }
  out.merged = assemble_stack_result(merged_metrics,
                                     merge_server_stats(horizons), merged_agg,
                                     policy_name_);
  out.backbone = merge_backbone_stats(backbones);
  return out;
}

void ShardedSim::audit_fleet() const {
  AuditReport report;
  for (const auto& shard : shards_) {
    const AuditScope scope(report, "shard " + std::to_string(shard->id));
    if (shard->runtime) {
      shard->runtime->audit(report);  // includes engine slab + telemetry
    } else {
      shard->sim.audit(report);  // userless shard: engine only
      if (shard->telemetry != nullptr) shard->telemetry->audit(report);
    }
  }
  report.require();
}

ShardedReplayResult run_sharded_replay(const Trace& trace,
                                       const ShardedReplayConfig& config,
                                       const PolicyFactory& make_policy) {
  ShardedSim sim(trace, config, make_policy);
  return sim.run();
}

ShardedReplayResult run_sharded_replay(TraceSource& source,
                                       const ShardedReplayConfig& config,
                                       const PolicyFactory& make_policy) {
  ShardedSim sim(source, config, make_policy);
  return sim.run();
}

}  // namespace specpf
