// Cross-shard mailboxes for the conservative epoch protocol.
//
// During an epoch each shard appends outbound records to its own outbox
// rows — strictly thread-local writes, so shards never contend. At the
// barrier the driver drains every (source, destination) row in canonical
// order (destination-major, then source 0..S-1), which fixes the insertion
// sequence numbers the destination engine assigns and makes the whole run
// bit-deterministic regardless of how many worker threads executed the
// epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"  // ItemId

namespace specpf {

/// One cross-shard event: a retrieval observed at `send_time` on the source
/// shard for an item homed elsewhere. Delivered to the home shard at
/// send_time + backbone latency (>= the next epoch boundary, by the
/// lookahead argument).
struct RemoteFetch {
  double send_time = 0.0;
  ItemId item = 0;
  bool is_prefetch = false;
};

/// Per-source-shard outbox: one row per destination shard.
class ShardMailbox {
 public:
  explicit ShardMailbox(std::size_t num_shards) : rows_(num_shards) {}

  void push(std::size_t destination, RemoteFetch fetch) {
    rows_[destination].push_back(fetch);
  }

  std::vector<RemoteFetch>& row(std::size_t destination) {
    return rows_[destination];
  }
  const std::vector<RemoteFetch>& row(std::size_t destination) const {
    return rows_[destination];
  }

  bool empty() const {
    for (const auto& row : rows_) {
      if (!row.empty()) return false;
    }
    return true;
  }

 private:
  std::vector<std::vector<RemoteFetch>> rows_;
};

}  // namespace specpf
