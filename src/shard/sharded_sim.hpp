// Sharded multi-server simulation: S regions, each owning an independent
// slab Simulator + StackRuntime data plane, synchronized with conservative
// epoch barriers and exchanging cross-shard traffic through mailboxes.
//
// Topology. Users are partitioned across shards (shard of user u is
// u % S); items have a home shard (item % S). Every user request is served
// by the regional proxy stack exactly as in the unsharded runtime; any
// retrieval whose item is homed elsewhere additionally contributes a
// backbone job on the home region's origin uplink (net/backbone.hpp),
// delivered after the cross-region latency.
//
// Synchronization. Conservative epochs with lookahead L = backbone_latency,
// the minimum cross-shard delay: every epoch runs each shard to
// t_min + L, where t_min is the earliest pending event fleet-wide, so no
// shard can receive a cross-shard event timestamped inside the window it
// already executed. Mailboxes are drained at the barrier in canonical
// order (destination-major, source 0..S-1) and bulk-scheduled into the
// destination engine.
//
// Determinism. Results are bit-identical regardless of worker thread
// count: each shard's RNG stream is counter-derived from the root seed,
// shards only touch their own state between barriers, and every merge
// (mailboxes, SimMetrics via RunningStats::merge, ServerStats, backbone
// stats) happens in canonical shard order on the driver thread. A 1-shard
// run is bit-identical to the unsharded run_trace_replay path: shard 0
// inherits the root seed, mailboxes stay empty, and result assembly goes
// through the same assemble_stack_result arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "net/backbone.hpp"
#include "sim/trace_replay.hpp"

namespace specpf {

class ThreadPool;

struct ShardedReplayConfig {
  /// Per-shard stack configuration (bandwidth is per regional link; the
  /// seed is the root seed shard streams derive from).
  TraceReplayConfig stack;
  std::size_t num_shards = 1;
  /// Worker threads driving shards between barriers; 0 means
  /// hardware_concurrency, 1 runs the epoch loop serially.
  std::size_t num_threads = 1;
  /// Minimum cross-shard delivery latency — also the epoch lookahead.
  double backbone_latency = 0.05;
  /// Bandwidth of each region's origin uplink.
  double backbone_bandwidth = 1000.0;
  /// Per-shard telemetry (borrowed; must outlive the run; size must equal
  /// num_shards). Shard s records into plane s between barriers; the
  /// driver adds origin-uplink gauges and forces a sample row at every
  /// epoch barrier. Pure observation — results are bit-identical with
  /// this null or installed. `stack.telemetry` must stay null here: one
  /// plane cannot serve S independent engines.
  class TelemetryFleet* telemetry = nullptr;

  /// Fleet divergence detector (borrowed; must outlive the run). Requires
  /// `telemetry`: init() attaches it to every shard's sealed plane under a
  /// "shard<s>/" signal-name prefix, so the fleet verdict is naturally the
  /// worst shard's. Evaluated on the driver thread at every epoch barrier
  /// right after the forced telemetry sample, plus once after the loop
  /// drains. Pure observation — bit-identical results with this null or
  /// installed — unless `abort_on_divergence` is also set.
  /// `stack.divergence` must stay null here, same as `stack.telemetry`.
  class DivergenceDetector* divergence = nullptr;
  /// Stop the epoch loop as soon as the fleet verdict turns divergent:
  /// horizon stats are snapshotted at the abort barrier on the driver
  /// thread (canonical shard order) instead of simulating every shard's
  /// exploding queue out to the trace horizon.
  bool abort_on_divergence = false;

  void validate() const;
};

/// Per-shard load/traffic breakdown (whole run, not just the measurement
/// window): where the events ran and which shards the mailbox traffic
/// actually moved between — the skew view `--per-shard-stats` prints.
struct ShardLoadStats {
  std::uint64_t events_executed = 0;  ///< engine events this shard ran
  std::uint64_t mailbox_sent = 0;     ///< remote fetches this shard emitted
  std::uint64_t mailbox_received = 0; ///< remote fetches homed here
};

struct ShardedReplayResult {
  /// Fleet-wide result, merged in canonical shard order.
  ProxySimResult merged;
  /// Cross-shard traffic at the measurement horizon (all zero when S = 1).
  BackboneStats backbone;
  /// Per-shard results, index = shard id.
  std::vector<ProxySimResult> per_shard;
  /// Per-shard event counts and mailbox volumes, index = shard id.
  std::vector<ShardLoadStats> shard_load;
  std::size_t num_shards = 1;
  std::uint64_t epochs = 0;
  std::uint64_t cross_shard_events = 0;
};

/// Creates one fresh policy instance per shard (policies may carry state,
/// so shards cannot share one).
using PolicyFactory =  // invoked once per shard at setup
    std::function<std::unique_ptr<PrefetchPolicy>()>;  // lint:allow(std::function)

class ShardedSim {
 public:
  /// Builds the per-shard engines over an in-RAM trace (time-ordered,
  /// borrowed for the lifetime of the object). Wraps the trace in a
  /// TraceVectorSource and streams it like any other source.
  ShardedSim(const Trace& trace, const ShardedReplayConfig& config,
             const PolicyFactory& make_policy);

  /// Streaming form: `source` (time-ordered, borrowed for the lifetime of
  /// the object) is scanned once up front for per-shard metadata (record
  /// counts, time spans, user densification), then records are fed to the
  /// shard engines epoch-by-epoch during run() — engine occupancy tracks
  /// the epoch window, not the trace length, so billion-request sources
  /// replay at bounded RSS.
  ShardedSim(TraceSource& source, const ShardedReplayConfig& config,
             const PolicyFactory& make_policy);

  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  /// Runs the epoch loop to completion and merges results. Call once.
  ShardedReplayResult run();

  static std::uint32_t shard_of_user(std::uint32_t user, std::size_t shards) {
    return static_cast<std::uint32_t>(user % shards);
  }
  static std::uint32_t home_shard(ItemId item, std::size_t shards) {
    return static_cast<std::uint32_t>(item % shards);
  }

 private:
  struct Shard;

  /// Shared constructor body: metadata scan + per-shard engine build.
  void init(TraceSource& source, const PolicyFactory& make_policy);
  /// Feeds pending records with arrival time ≤ epoch_end into their shard
  /// engines (global trace order), interleaving the fleet-wide warmup
  /// events at the warmup boundary record and the horizon snapshots after
  /// the last record — the same engine insertion sequence per shard that
  /// scheduling the whole partitioned trace up front produced.
  void feed_records(double epoch_end);
  /// Schedules begin_measurement / origin stat resets on every shard at
  /// the global warmup instant (canonical shard order).
  void schedule_warmup_events();
  /// Schedules the per-shard measurement-horizon snapshots at end_time_.
  void schedule_horizons();
  /// Runs every shard to `epoch_end` (serially or on the pool).
  void run_epoch(double epoch_end);
  /// Drains all mailboxes into destination engines, canonical order.
  void exchange_mailboxes();
  /// Control-plane barrier step: averages the per-shard governors'
  /// congestion signals (canonical shard order, driver thread) and pushes
  /// the fleet mean back into every governor. No-op when S = 1 or the run
  /// is ungoverned, so those paths stay bit-identical to the unsharded /
  /// pre-control-plane runtime.
  void exchange_setpoints();
  /// Earliest pending event across the fleet (+inf when drained).
  double fleet_next_event_time();
  /// Telemetry barrier step: refreshes every shard's origin-uplink gauges
  /// and forces a sample row at the epoch boundary (driver thread,
  /// canonical order). No-op when the run carries no telemetry fleet.
  void sample_telemetry(double now);
  /// SPECPF_AUDIT epoch-barrier sweep: audits every shard's engine slab and
  /// stack slice on the driver thread, throwing ContractViolation (with the
  /// failing shard named) on the first corrupt structure. Sampled at
  /// power-of-two epochs plus once after the loop drains.
  void audit_fleet() const;

  ShardedReplayConfig config_;
  std::string policy_name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  std::uint64_t epochs_ = 0;
  std::uint64_t cross_shard_events_ = 0;
  bool ran_ = false;

  /// Record supply (borrowed; the Trace ctor routes through owned_source_).
  TraceSource* source_ = nullptr;
  std::unique_ptr<TraceVectorSource> owned_source_;
  std::uint64_t total_records_ = 0;
  std::size_t warmup_records_ = 0;
  double t0_ = 0.0;        ///< raw time of the first record
  double end_time_ = 0.0;  ///< measurement horizon (shifted)
  /// Feeder cursor: the next unscheduled record and its global index.
  TraceRecord pending_record_;
  std::uint64_t fed_index_ = 0;
  bool have_pending_ = false;
};

/// Convenience wrapper: construct, run, return.
ShardedReplayResult run_sharded_replay(const Trace& trace,
                                       const ShardedReplayConfig& config,
                                       const PolicyFactory& make_policy);

/// Streaming form of the wrapper (see ShardedSim's TraceSource ctor).
ShardedReplayResult run_sharded_replay(TraceSource& source,
                                       const ShardedReplayConfig& config,
                                       const PolicyFactory& make_policy);

}  // namespace specpf
