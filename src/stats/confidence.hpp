// Confidence intervals for simulation output analysis: Student-t intervals
// over independent replications and the batch-means method for single long
// runs. Implemented from scratch (incomplete-beta based t quantiles).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/running_stats.hpp"

namespace specpf {

/// Two-sided confidence interval [lo, hi] around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;
  std::size_t samples = 0;

  /// True when `value` lies inside [lo, hi].
  bool contains(double value) const { return value >= lo && value <= hi; }

  /// half_width / |mean| — the usual stopping criterion for replications.
  double relative_half_width() const;
};

/// Quantile of the Student-t distribution with `dof` degrees of freedom at
/// two-sided confidence `confidence` (e.g. 0.95). dof >= 1.
double student_t_quantile(std::size_t dof, double confidence);

/// t-interval from raw replication means.
ConfidenceInterval t_interval(const std::vector<double>& samples,
                              double confidence = 0.95);

/// t-interval from a pre-accumulated RunningStats.
ConfidenceInterval t_interval(const RunningStats& stats,
                              double confidence = 0.95);

/// Batch-means estimator: splits `observations` (one long autocorrelated
/// series) into `batches` equal batches and forms a t-interval over batch
/// means. Standard method for steady-state DES output.
ConfidenceInterval batch_means(const std::vector<double>& observations,
                               std::size_t batches = 16,
                               double confidence = 0.95);

}  // namespace specpf
