// Fixed-bin and logarithmic histograms for latency distributions. Quantile
// queries interpolate within bins, which is accurate enough for reporting
// p50/p95/p99 of simulated access times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace specpf {

/// Linear-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin and counted as underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Combines another histogram with identical binning (same lo/hi/bins —
  /// checked). Bin counts add exactly, so merging per-shard histograms in
  /// any fixed order reproduces the single-accumulator result bit-for-bit.
  void merge(const Histogram& other);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Quantile in [0,1] via linear interpolation within the containing bin.
  double quantile(double q) const;

  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }
  std::size_t bin_count_size() const { return bins_.size(); }

  /// Sparse text rendering for logs: one `lo..hi: count` line per non-empty bin.
  std::string to_string(std::size_t max_lines = 16) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Log2-spaced histogram for heavy-tailed positive values (sizes, sojourns).
class LogHistogram {
 public:
  /// Buckets are [2^k, 2^(k+1)) for k in [min_exp, max_exp].
  LogHistogram(int min_exp = -20, int max_exp = 40);

  void add(double x) noexcept;

  /// Combines another histogram with an identical exponent range (checked).
  void merge(const LogHistogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double quantile(double q) const;

 private:
  int min_exp_, max_exp_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
};

}  // namespace specpf
