// Time-weighted averaging of piecewise-constant signals (queue length,
// instantaneous utilisation, cache occupancy). The standard DES estimator
// for E[X(t)] over an observation window.
#pragma once

#include "util/math.hpp"

namespace specpf {

class TimeWeighted {
 public:
  /// Starts observation at `time` with initial signal `value`.
  void start(double time, double value) noexcept {
    last_time_ = time;
    value_ = value;
    started_ = true;
    integral_.reset();
    origin_ = time;
  }

  /// Records that the signal changed to `value` at `time` (>= last update).
  void update(double time, double value) noexcept {
    if (!started_) {
      start(time, value);
      return;
    }
    integral_.add(value_ * (time - last_time_));
    last_time_ = time;
    value_ = value;
  }

  /// Closes the window at `time` and returns the time-averaged value.
  double average_until(double time) const noexcept {
    if (!started_ || time <= origin_) return 0.0;
    KahanSum total = integral_;
    total.add(value_ * (time - last_time_));
    return total.value() / (time - origin_);
  }

  double current() const noexcept { return value_; }
  bool started() const noexcept { return started_; }

 private:
  KahanSum integral_;
  double origin_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  bool started_ = false;
};

}  // namespace specpf
