// Exponentially-weighted moving averages for online load sensing.
//
// Two flavours, matching the two kinds of signal a DES produces:
//
//   * HoldEwma  — continuous-time smoothing of a *piecewise-constant*
//     signal (queue length, busy indicator). Solves dv/dt = (x(t) - v)/τ
//     exactly between observations, where x(t) is the last observed (held)
//     value. Because the integration is exact, the smoothed value depends
//     only on the signal path, not on how often it was sampled — a step
//     from v₀ to X at t₀ reads X + (v₀ - X)·exp(-(t - t₀)/τ) at any later
//     t, regardless of how many observations happened in between. That
//     property is what makes event-driven sampling (no periodic probe
//     events cluttering the engine) safe.
//
//   * EventEwma — fixed-weight smoothing of a *per-event* measurement
//     stream (completion slowdowns, prefetch-precision outcomes), where
//     each event is one observation: v ← v + α·(x - v).
//
// Both are a handful of doubles; updating never allocates.
#pragma once

#include <cmath>

namespace specpf {

class HoldEwma {
 public:
  /// `tau` is the time constant in simulated seconds (must be > 0).
  explicit HoldEwma(double tau = 1.0) noexcept : tau_(tau) {}

  /// Records that the signal changed to `value` at `time` (>= the previous
  /// observation time). The smoothed value first decays toward the signal
  /// held since the last observation, then `value` becomes the held signal.
  void observe(double time, double value) noexcept {
    if (!started_) {
      started_ = true;
      last_time_ = time;
      held_ = value;
      value_ = value;
      return;
    }
    const double dt = time - last_time_;
    if (dt > 0.0) {
      value_ = held_ + (value_ - held_) * std::exp(-dt / tau_);
      last_time_ = time;
    }
    held_ = value;
  }

  /// Smoothed value as of the last observation.
  double value() const noexcept { return value_; }

  /// Smoothed value decayed forward to `time` (no mutation); answers "what
  /// does the sensor read now" between observations.
  double value_at(double time) const noexcept {
    if (!started_ || time <= last_time_) return value_;
    return held_ + (value_ - held_) * std::exp(-(time - last_time_) / tau_);
  }

  bool started() const noexcept { return started_; }
  double tau() const noexcept { return tau_; }

 private:
  double tau_;
  double last_time_ = 0.0;
  double held_ = 0.0;
  double value_ = 0.0;
  bool started_ = false;
};

class EventEwma {
 public:
  /// `alpha` is the per-event weight in (0, 1]. `initial` pre-seeds the
  /// average (useful for optimistic starts, e.g. predictor precision).
  explicit EventEwma(double alpha = 0.05) noexcept : alpha_(alpha) {}
  EventEwma(double alpha, double initial) noexcept
      : alpha_(alpha), value_(initial), started_(true) {}

  void add(double x) noexcept {
    if (!started_) {
      started_ = true;
      value_ = x;
      return;
    }
    value_ += alpha_ * (x - value_);
  }

  double value() const noexcept { return value_; }
  bool started() const noexcept { return started_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool started_ = false;
};

}  // namespace specpf
