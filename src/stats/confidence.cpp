#include "stats/confidence.hpp"

#include <cmath>

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {

double ConfidenceInterval::relative_half_width() const {
  return safe_div(half_width, std::abs(mean), 0.0);
}

namespace {

// Regularised incomplete beta via Lentz continued fraction (Numerical
// Recipes 6.4 structure, written from the standard formulas).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

// CDF of Student-t with v dof at t >= 0.
double student_t_cdf(double t, double v) {
  const double x = v / (v + t * t);
  const double tail = 0.5 * incomplete_beta(v / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

}  // namespace

double student_t_quantile(std::size_t dof, double confidence) {
  SPECPF_EXPECTS(dof >= 1);
  SPECPF_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double target = 1.0 - (1.0 - confidence) / 2.0;  // upper tail point
  // Bisection on the CDF: monotone, and [0, 1000] covers any practical case.
  double lo = 0.0, hi = 1000.0;
  const double v = static_cast<double>(dof);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, v) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval t_interval(const std::vector<double>& samples,
                              double confidence) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return t_interval(stats, confidence);
}

ConfidenceInterval t_interval(const RunningStats& stats, double confidence) {
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.samples = stats.count();
  if (stats.count() < 2) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  const double t = student_t_quantile(stats.count() - 1, confidence);
  ci.half_width = t * stats.std_error();
  ci.lo = ci.mean - ci.half_width;
  ci.hi = ci.mean + ci.half_width;
  return ci;
}

ConfidenceInterval batch_means(const std::vector<double>& observations,
                               std::size_t batches, double confidence) {
  SPECPF_EXPECTS(batches >= 2);
  if (observations.size() < batches) {
    return t_interval(observations, confidence);
  }
  const std::size_t per_batch = observations.size() / batches;
  std::vector<double> means;
  means.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    KahanSum sum;
    for (std::size_t i = b * per_batch; i < (b + 1) * per_batch; ++i) {
      sum.add(observations[i]);
    }
    means.push_back(sum.value() / static_cast<double>(per_batch));
  }
  return t_interval(means, confidence);
}

}  // namespace specpf
