// Streaming moment accumulation (Welford) — numerically stable mean and
// variance without storing samples; merge() supports parallel reduction of
// per-replication accumulators.
#pragma once

#include <cstdint>

namespace specpf {

class RunningStats {
 public:
  void add(double x) noexcept;

  /// Combines two accumulators (Chan et al. parallel update).
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 while n < 2).
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Standard error of the mean (0 while n < 2).
  double std_error() const noexcept;

  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace specpf
