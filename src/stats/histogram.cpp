#include "stats/histogram.hpp"

#include <cmath>
#include <sstream>

#include "util/contract.hpp"

namespace specpf {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  SPECPF_EXPECTS(hi > lo);
  SPECPF_EXPECTS(bins >= 1);
}

void Histogram::add(double x) noexcept {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    ++bins_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++bins_.back();
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= bins_.size()) idx = bins_.size() - 1;  // x == hi - epsilon edge
  ++bins_[idx];
}

void Histogram::merge(const Histogram& other) {
  SPECPF_EXPECTS(lo_ == other.lo_ && hi_ == other.hi_ &&
                 bins_.size() == other.bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::quantile(double q) const {
  SPECPF_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return lo_;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double frac =
          bins_[i] == 0 ? 0.0
                        : (target - cumulative) / static_cast<double>(bins_[i]);
      return bin_lo(i) + frac * width_;
    }
    cumulative = next;
  }
  return hi_;
}

double Histogram::bin_lo(std::size_t i) const {
  SPECPF_EXPECTS(i < bins_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

std::string Histogram::to_string(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t lines = 0;
  for (std::size_t i = 0; i < bins_.size() && lines < max_lines; ++i) {
    if (bins_[i] == 0) continue;
    os << bin_lo(i) << ".." << bin_hi(i) << ": " << bins_[i] << '\n';
    ++lines;
  }
  return os.str();
}

LogHistogram::LogHistogram(int min_exp, int max_exp)
    : min_exp_(min_exp), max_exp_(max_exp),
      bins_(static_cast<std::size_t>(max_exp - min_exp + 1), 0) {
  SPECPF_EXPECTS(max_exp > min_exp);
}

void LogHistogram::add(double x) noexcept {
  ++count_;
  int exp = min_exp_;
  if (x > 0.0 && std::isfinite(x)) {
    exp = static_cast<int>(std::floor(std::log2(x)));
  }
  if (exp < min_exp_) exp = min_exp_;
  if (exp > max_exp_) exp = max_exp_;
  ++bins_[static_cast<std::size_t>(exp - min_exp_)];
}

void LogHistogram::merge(const LogHistogram& other) {
  SPECPF_EXPECTS(min_exp_ == other.min_exp_ && max_exp_ == other.max_exp_);
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
}

double LogHistogram::quantile(double q) const {
  SPECPF_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double lo = std::exp2(min_exp_ + static_cast<int>(i));
      const double hi = lo * 2.0;
      const double frac =
          bins_[i] == 0 ? 0.0
                        : (target - cumulative) / static_cast<double>(bins_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return std::exp2(max_exp_ + 1);
}

}  // namespace specpf
