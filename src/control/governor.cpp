#include "control/governor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contract.hpp"

namespace specpf {

// --- token bucket -----------------------------------------------------------

TokenBucketGovernor::TokenBucketGovernor(const GovernorConfig& config)
    : rate_(config.token_rate),
      burst_(config.token_rate * config.token_burst_seconds),
      buckets_(config.token_groups) {
  SPECPF_EXPECTS(config.token_rate > 0.0);
  SPECPF_EXPECTS(config.token_burst_seconds > 0.0);
  SPECPF_EXPECTS(config.token_groups >= 1);
  for (Bucket& b : buckets_) b.tokens = burst_;
}

std::string TokenBucketGovernor::name() const {
  std::ostringstream os;
  os << "token-" << rate_;
  return os.str();
}

bool TokenBucketGovernor::admit(double now, UserId user, const core::Candidate&,
                                double size, const LoadSignals&) {
  Bucket& b = buckets_[user % buckets_.size()];
  if (now > b.last_refill) {
    b.tokens = std::min(burst_, b.tokens + rate_ * (now - b.last_refill));
    b.last_refill = now;
  }
  if (b.tokens < size) return false;
  b.tokens -= size;
  return true;
}

// --- AIMD threshold scaling -------------------------------------------------

AimdGovernor::AimdGovernor(const GovernorConfig& config) : config_(config) {
  SPECPF_EXPECTS(config.aimd_setpoint > 0.0);
  SPECPF_EXPECTS(config.aimd_interval > 0.0);
  SPECPF_EXPECTS(config.aimd_mult > 1.0);
  SPECPF_EXPECTS(config.aimd_decrease > 0.0);
  SPECPF_EXPECTS(config.aimd_kick > 0.0 && config.aimd_kick <= 1.0);
  SPECPF_EXPECTS(config.aimd_ceiling > 0.0 && config.aimd_ceiling <= 1.0);
}

std::string AimdGovernor::name() const {
  std::ostringstream os;
  os << "aimd-" << config_.aimd_setpoint;
  return os.str();
}

void AimdGovernor::maybe_adjust(double now, double slowdown) {
  if (!have_last_) {
    have_last_ = true;
    last_adjust_ = now;
    return;
  }
  if (now - last_adjust_ < config_.aimd_interval) return;
  last_adjust_ = now;
  if (slowdown > config_.aimd_setpoint) {
    // Congested: multiplicative step up (θ_g = 0 kicks to aimd_kick first —
    // multiplying zero would never move).
    theta_ = std::min(config_.aimd_ceiling,
                      std::max(config_.aimd_kick, theta_ * config_.aimd_mult));
  } else {
    // Calm: additive decay back toward admitting what the policy chose.
    theta_ = std::max(0.0, theta_ - config_.aimd_decrease);
  }
}

bool AimdGovernor::admit(double now, UserId, const core::Candidate& candidate,
                         double, const LoadSignals& load) {
  // React to the worse of the local link and the fleet-wide signal the
  // epoch barrier pushed in (0 until the first exchange — inert).
  maybe_adjust(now, std::max(load.slowdown, fleet_signal_));
  return candidate.probability > theta_;
}

// --- confidence-gated depth -------------------------------------------------

ConfidenceGovernor::ConfidenceGovernor(const GovernorConfig& config)
    : config_(config), precision_(config.conf_alpha, 1.0) {
  SPECPF_EXPECTS(config.conf_alpha > 0.0 && config.conf_alpha <= 1.0);
  SPECPF_EXPECTS(config.conf_low >= 0.0);
  SPECPF_EXPECTS(config.conf_high > config.conf_low);
}

std::string ConfidenceGovernor::name() const {
  std::ostringstream os;
  os << "conf-" << config_.conf_high;
  return os.str();
}

std::size_t ConfidenceGovernor::depth_limit(std::size_t configured) const {
  const double p = precision_.value();
  if (p >= config_.conf_high) return configured;
  const double fraction = std::max(
      0.0, (p - config_.conf_low) / (config_.conf_high - config_.conf_low));
  return static_cast<std::size_t>(
      std::floor(static_cast<double>(configured) * fraction));
}

// --- factory ----------------------------------------------------------------

namespace {

/// Parses `<prefix><number>` strictly: the whole suffix must be consumed,
/// so typos like "token-200x" are rejected instead of silently running
/// with a partially-parsed rate.
bool suffix_value(const std::string& name, const char* prefix, double* out) {
  const std::size_t len = std::string(prefix).size();
  if (name.rfind(prefix, 0) != 0 || name.size() <= len) return false;
  const std::string suffix = name.substr(len);
  try {
    std::size_t consumed = 0;
    const double v = std::stod(suffix, &consumed);
    if (consumed != suffix.size()) return false;
    *out = v;
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

bool is_governor_name(const std::string& name) {
  if (name == "noop") return true;
  double v = 0.0;
  return suffix_value(name, "token-", &v) || suffix_value(name, "aimd-", &v) ||
         suffix_value(name, "conf-", &v);
}

std::unique_ptr<PrefetchGovernor> make_governor_by_name(
    const std::string& name, const GovernorConfig& config) {
  if (name == "noop") return std::make_unique<NoopGovernor>();
  double v = 0.0;
  if (suffix_value(name, "token-", &v)) {
    GovernorConfig c = config;
    c.token_rate = v;
    return std::make_unique<TokenBucketGovernor>(c);
  }
  if (suffix_value(name, "aimd-", &v)) {
    GovernorConfig c = config;
    c.aimd_setpoint = v;
    return std::make_unique<AimdGovernor>(c);
  }
  if (suffix_value(name, "conf-", &v)) {
    GovernorConfig c = config;
    c.conf_high = v;
    return std::make_unique<ConfidenceGovernor>(c);
  }
  return nullptr;
}

}  // namespace specpf
