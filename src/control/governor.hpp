// Prefetch governors — the decision half of the congestion-aware control
// plane. A PrefetchGovernor sits between the prefetch policy and the link:
// after the policy has selected candidates, the runtime consults the
// governor once per candidate before admitting the transfer, and feeds
// usefulness/waste signals back as prefetches land, get claimed, or are
// evicted untouched.
//
// Every open-loop policy in the repo computes its threshold from per-user
// ĥ' estimates and never looks at the link. The governors close that loop
// against what the LinkLoadSensor measures — the feedback-directed
// throttling that keeps speculative traffic from destabilizing the network
// once load turns nonstationary (flash crowds, diurnal peaks):
//
//   * NoopGovernor        — admits everything; installing it is
//                           bit-identical to running ungoverned (the
//                           control-plane differential baseline).
//   * TokenBucketGovernor — a prefetch byte budget per user-group: tokens
//                           refill at a configured bytes/sec rate and each
//                           admitted prefetch spends its size. Demand
//                           traffic is never gated, so the worst case a
//                           misbehaving predictor can add to the link is
//                           the configured budget.
//   * AimdGovernor        — multiplicative threshold scaling: keeps its own
//                           admission threshold θ_g on the candidate
//                           probability, multiplying it up whenever the
//                           measured slowdown crosses the setpoint and
//                           letting it decay additively when the link is
//                           calm (AIMD, throttle-direction).
//   * ConfidenceGovernor  — confidence-gated depth: tracks predictor
//                           precision (useful vs wasted prefetches, EWMA)
//                           and cuts the per-request prefetch depth as
//                           precision drops.
//
// Governors are engine-local state machines: they draw no randomness and
// are mutated only by their own shard between epoch barriers, so governed
// sharded runs stay bit-deterministic across worker-thread counts. Fleet
// coordination happens exclusively through set_fleet_signal(), which the
// sharded driver calls on its own thread at the barrier.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "control/load_sensor.hpp"
#include "core/planner.hpp"
#include "predict/predictor.hpp"

namespace specpf {

/// Tuning knobs shared by the name-constructed governors; the name suffix
/// (token-<rate>, aimd-<setpoint>, conf-<precision>) overrides the primary
/// parameter, everything else comes from here.
struct GovernorConfig {
  // Token bucket: bytes (item-size units) per second, per user group.
  double token_rate = 1000.0;
  /// Burst capacity = token_rate * token_burst_seconds.
  double token_burst_seconds = 1.0;
  /// Users are folded into user % token_groups buckets.
  std::size_t token_groups = 64;

  // AIMD threshold scaling.
  double aimd_setpoint = 2.0;    ///< target measured slowdown
  double aimd_interval = 0.5;    ///< seconds between adjustments
  double aimd_mult = 1.5;        ///< multiplicative step when congested
  double aimd_decrease = 0.02;   ///< additive decay when calm
  double aimd_kick = 0.05;       ///< first step up from θ_g = 0
  double aimd_ceiling = 0.98;    ///< θ_g never exceeds this

  // Confidence-gated depth.
  double conf_alpha = 0.05;  ///< per-outcome EWMA weight on precision
  double conf_high = 0.5;    ///< precision at/above which depth is full
  double conf_low = 0.1;     ///< precision at/below which depth is zero
};

class PrefetchGovernor {
 public:
  virtual ~PrefetchGovernor() = default;

  virtual std::string name() const = 0;

  /// Admission decision for one policy-selected prefetch candidate.
  /// `size` is the transfer size in the same units as the sensed link's
  /// bandwidth numerator; `load` is the proxy-link sensor snapshot.
  virtual bool admit(double now, UserId user, const core::Candidate& candidate,
                     double size, const LoadSignals& load) = 0;

  /// Cap on prefetches admitted for a single request (consulted once per
  /// request before the admission loop). Default: the configured depth.
  virtual std::size_t depth_limit(std::size_t configured) const {
    return configured;
  }

  /// Feedback: a prefetched item was claimed by a real request (first
  /// touch after landing, or a demand miss attaching in flight).
  virtual void on_prefetch_useful() {}
  /// Feedback: a prefetched item was evicted without ever being touched.
  virtual void on_prefetch_wasted() {}

  /// The scalar this governor contributes to the fleet-wide congestion
  /// exchange at epoch barriers (default: measured slowdown).
  virtual double epoch_signal(const LoadSignals& load) const {
    return load.slowdown;
  }

  /// Internal control state as one telemetry gauge (token mean level /
  /// AIMD θ_g / confidence precision). Pure read, sampled by the telemetry
  /// plane at its own cadence; never consulted on the admission path.
  virtual double state_gauge() const { return 0.0; }

  /// The configured primary knob — the governor's "aggressiveness" axis in
  /// stability sweeps (token → refill rate, aimd → slowdown setpoint,
  /// conf → full-depth precision bound). Noop (and the default) reports
  /// +inf: fully permissive, no configured ceiling. Pure read of
  /// construction-time config; never changes over a run.
  virtual double aggressiveness() const {
    return std::numeric_limits<double>::infinity();
  }

  /// Fleet aggregate pushed back by the sharded driver at the barrier
  /// (canonical order, driver thread — the only cross-shard mutation).
  void set_fleet_signal(double signal) noexcept { fleet_signal_ = signal; }
  double fleet_signal() const noexcept { return fleet_signal_; }

 protected:
  double fleet_signal_ = 0.0;
};

/// Admits everything. Wiring it in must be bit-identical to no governor.
class NoopGovernor final : public PrefetchGovernor {
 public:
  std::string name() const override { return "noop"; }
  bool admit(double, UserId, const core::Candidate&, double,
             const LoadSignals&) override {
    return true;
  }
};

class TokenBucketGovernor final : public PrefetchGovernor {
 public:
  explicit TokenBucketGovernor(const GovernorConfig& config);

  std::string name() const override;
  bool admit(double now, UserId user, const core::Candidate& candidate,
             double size, const LoadSignals& load) override;

  double tokens(std::size_t group) const { return buckets_[group].tokens; }
  double aggressiveness() const override { return rate_; }

  /// Mean token level across groups, as of each bucket's last refill (no
  /// clock access, so sampling cannot perturb refill arithmetic).
  double state_gauge() const override {
    double sum = 0.0;
    for (const Bucket& b : buckets_) sum += b.tokens;
    return sum / static_cast<double>(buckets_.size());
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
  };
  double rate_;
  double burst_;
  std::vector<Bucket> buckets_;
};

class AimdGovernor final : public PrefetchGovernor {
 public:
  explicit AimdGovernor(const GovernorConfig& config);

  std::string name() const override;
  bool admit(double now, UserId user, const core::Candidate& candidate,
             double size, const LoadSignals& load) override;

  double theta() const noexcept { return theta_; }
  double state_gauge() const override { return theta_; }
  double aggressiveness() const override { return config_.aimd_setpoint; }

 private:
  void maybe_adjust(double now, double slowdown);

  GovernorConfig config_;
  double theta_ = 0.0;
  double last_adjust_ = 0.0;
  bool have_last_ = false;
};

class ConfidenceGovernor final : public PrefetchGovernor {
 public:
  explicit ConfidenceGovernor(const GovernorConfig& config);

  std::string name() const override;
  bool admit(double, UserId, const core::Candidate&, double,
             const LoadSignals&) override {
    return true;
  }
  std::size_t depth_limit(std::size_t configured) const override;
  void on_prefetch_useful() override { precision_.add(1.0); }
  void on_prefetch_wasted() override { precision_.add(0.0); }

  double precision() const noexcept { return precision_.value(); }
  double state_gauge() const override { return precision_.value(); }
  double aggressiveness() const override { return config_.conf_high; }

 private:
  GovernorConfig config_;
  EventEwma precision_;  ///< starts optimistic at 1.0
};

/// Fresh governor by CLI-friendly name: noop, token-<rate>,
/// aimd-<setpoint>, conf-<precision>. Returns nullptr for unknown names
/// (and for the empty string — "ungoverned" is spelled by not installing a
/// governor at all). Numeric suffixes are parsed strictly (trailing
/// garbage rejects the name). Shared by the examples, the replay
/// frontends, and the sharded driver's per-shard construction so
/// name→governor mappings cannot drift.
std::unique_ptr<PrefetchGovernor> make_governor_by_name(
    const std::string& name, const GovernorConfig& config = {});

/// Cheap name check (no construction): true iff make_governor_by_name
/// would recognize `name`. Config validation uses this; parameter-domain
/// errors still surface at construction.
bool is_governor_name(const std::string& name);

}  // namespace specpf
