// Link load sensing for the prefetch control plane.
//
// A LinkLoadSensor watches one shared link (the regional proxy's PsServer,
// or a shard's origin uplink) and maintains cheap EWMA estimates of what
// the link is actually doing:
//
//   * utilization  — HoldEwma of the busy indicator (active_jobs > 0)
//   * queue_depth  — HoldEwma of the jobs-in-system count
//   * slowdown     — EventEwma of sojourn / unloaded service time per
//                    completion (1.0 on an idle PS link; n when n jobs
//                    share it)
//
// Observations happen at event instants the runtime already visits
// (submissions and completions), so sensing adds no events to the engine,
// draws no randomness, and allocates nothing — installing a sensor can
// never perturb the simulation it is watching. Peaks of the smoothed depth
// and slowdown are tracked per measurement window (reset_peaks at the
// warmup boundary); they are the "peak network load" the congestion
// benchmarks compare governed vs ungoverned runs on.
#pragma once

#include <algorithm>
#include <cstddef>

#include "stats/ewma.hpp"

namespace specpf {

struct LoadSensorConfig {
  /// Time constant of the continuous (utilization / queue depth) EWMAs, in
  /// simulated seconds.
  double tau = 1.0;
  /// Per-completion weight of the slowdown EWMA.
  double slowdown_alpha = 0.05;
};

/// Snapshot of what the sensor currently reads.
struct LoadSignals {
  double utilization = 0.0;     ///< smoothed busy fraction
  double queue_depth = 0.0;     ///< smoothed jobs-in-system
  double slowdown = 1.0;        ///< smoothed sojourn / unloaded service time
  double peak_queue_depth = 0.0;  ///< max smoothed depth this window
  double peak_slowdown = 0.0;     ///< max smoothed slowdown this window
};

class LinkLoadSensor {
 public:
  explicit LinkLoadSensor(const LoadSensorConfig& config = {})
      : busy_(config.tau),
        depth_(config.tau),
        slowdown_(config.slowdown_alpha, 1.0) {}

  /// Observes the instantaneous jobs-in-system count at `now` (call on
  /// every submission and completion).
  void observe_queue(double now, std::size_t active_jobs) noexcept {
    busy_.observe(now, active_jobs > 0 ? 1.0 : 0.0);
    depth_.observe(now, static_cast<double>(active_jobs));
    signals_.utilization = busy_.value();
    signals_.queue_depth = depth_.value();
    signals_.peak_queue_depth =
        std::max(signals_.peak_queue_depth, signals_.queue_depth);
  }

  /// Observes one completed transfer: `sojourn` seconds in system against
  /// `nominal_service` = size / bandwidth on an unloaded link.
  void observe_completion(double now, double sojourn,
                          double nominal_service) noexcept {
    (void)now;
    const double x =
        nominal_service > 0.0 ? sojourn / nominal_service : 1.0;
    slowdown_.add(x);
    signals_.slowdown = slowdown_.value();
    signals_.peak_slowdown =
        std::max(signals_.peak_slowdown, signals_.slowdown);
  }

  /// Clears the per-window peak trackers (warmup boundary); the smoothed
  /// estimates themselves keep their state — the controller should not
  /// forget the load it has learned just because measurement started.
  void reset_peaks() noexcept {
    signals_.peak_queue_depth = signals_.queue_depth;
    signals_.peak_slowdown = signals_.slowdown;
  }

  const LoadSignals& signals() const noexcept { return signals_; }

 private:
  HoldEwma busy_;
  HoldEwma depth_;
  EventEwma slowdown_;
  LoadSignals signals_;
};

}  // namespace specpf
