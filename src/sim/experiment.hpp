// Replication and sweep harness: runs independent replications (substream
// seeds) of a simulation in parallel and aggregates Student-t confidence
// intervals — the standard terminating-simulation methodology.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/abstract_sim.hpp"
#include "stats/confidence.hpp"

namespace specpf {

/// Aggregated replications of the abstract validation simulator.
struct AbstractBatchResult {
  ConfidenceInterval access_time;
  ConfidenceInterval hit_ratio;
  ConfidenceInterval utilization;
  ConfidenceInterval retrieval_per_request;
  ConfidenceInterval demand_sojourn;
  std::size_t replications = 0;
  std::uint64_t total_requests = 0;
};

/// Runs `replications` independent copies of `config` (seeds derived from
/// config.seed via substreams), optionally on the process thread pool.
AbstractBatchResult run_abstract_replications(const AbstractSimConfig& config,
                                              std::size_t replications,
                                              bool parallel = true,
                                              double confidence = 0.95);

}  // namespace specpf
