// StackRuntime — the shared machinery of the full-stack simulators: per-user
// tagged caches, the shared PS server, in-flight transfer bookkeeping,
// prefetch deferral ("prefetch when the connection is idle", paper §1),
// online parameter estimation for the policy, and metrics.
//
// Frontends drive it with handle_request(user, item) per arrival:
//   * sim/proxy_sim   — generative session workload
//   * sim/trace_replay — recorded traces
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_plane.hpp"
#include "control/load_sensor.hpp"
#include "des/inline_function.hpp"
#include "des/simulator.hpp"
#include "net/ps_server.hpp"
#include "obs/telemetry.hpp"
#include "policy/policy.hpp"
#include "predict/predictor_plane.hpp"
#include "sim/metrics.hpp"
#include "util/flat_hash.hpp"

namespace specpf {

struct ProxySimResult;  // defined in sim/proxy_sim.hpp
class PrefetchGovernor;  // defined in control/governor.hpp

struct StackRuntimeConfig {
  double bandwidth = 50.0;
  double item_size = 1.0;
  std::size_t num_users = 1;
  std::size_t cache_capacity = 64;
  CacheKind cache_kind = CacheKind::kLru;
  core::InteractionModel estimator_model = core::InteractionModel::kModelA;
  std::size_t max_prefetch_per_request = 8;
  std::uint64_t seed = 1;
  /// Request-rate estimate used until ≥100 requests are observed.
  double lambda_prior = 1.0;
  /// Keep in-flight bookkeeping in the legacy std::map instead of the flat
  /// hash — the byte-identical reference backend for differential tests and
  /// the perf_stack baseline.
  bool use_tree_inflight = false;
  /// Run the per-user caches as the legacy TaggedCache fleet instead of the
  /// slab-backed arena plane — the byte-identical reference backend for
  /// differential tests and the memory/throughput baseline.
  bool use_legacy_caches = false;
  /// Observer fired on every retrieval submission (demand and prefetch),
  /// at submission time, after the job entered the local link. Pure
  /// observation: installing it never changes runtime behaviour. The
  /// sharded driver uses it to record cross-shard traffic into mailboxes;
  /// leave empty (the default) everywhere else. Inline storage (the
  /// repo-wide SBO-callable convention): installing it never allocates,
  /// and the config is consequently move-only.
  using RetrievalObserver = InlineFunction<void(UserId, ItemId, bool), 32>;
  RetrievalObserver retrieval_observer;
  /// Prefetch governor consulted before every prefetch admission (borrowed;
  /// must outlive the runtime). Null = ungoverned, today's open-loop
  /// behaviour. Installing a NoopGovernor is bit-identical to null.
  PrefetchGovernor* governor = nullptr;
  /// Run the proxy-link load sensor even without a governor (pure
  /// observation — lets ungoverned baselines report the same peak-load
  /// metrics governed runs do). Always on when a governor is installed.
  bool enable_load_sensor = false;
  LoadSensorConfig sensor;
  /// Telemetry plane to record into (borrowed; must outlive the runtime).
  /// The runtime registers its counters/gauges, installs the gauge-refresh
  /// source, and seals the plane at construction — so register any extra
  /// gauges (e.g. the sharded driver's origin-link set) *before* building
  /// the runtime. Same purity contract as the load sensor: hooks observe
  /// at event instants the runtime already visits, draw no randomness, and
  /// schedule nothing, so results are bit-identical with this null or
  /// installed. Null = telemetry off (one dead branch per hook site).
  TelemetryPlane* telemetry = nullptr;
};

/// Cache-derived aggregates a frontend needs to assemble a ProxySimResult.
/// Mergeable across shards: counters are exact sums and the sensor peaks
/// merge by max (both commutative and exact), so merging in canonical shard
/// order is bit-deterministic, and merging a single shard into a
/// zero-initialized struct is the identity (peaks are non-negative).
struct StackAggregates {
  double hprime_sum = 0.0;  ///< Σ per-user ĥ' estimates
  std::uint64_t prefetch_inserts = 0;
  std::uint64_t prefetch_first_uses = 0;
  std::uint64_t wasted_evictions = 0;
  std::uint64_t num_users = 0;
  /// Prefetches the policy selected but the governor refused (admission or
  /// depth cut) inside the measurement window.
  std::uint64_t throttled_prefetches = 0;
  /// Proxy-link sensor peaks over the measurement window (0 when the
  /// sensor is off).
  double peak_queue_depth = 0.0;
  double peak_slowdown = 0.0;

  void merge(const StackAggregates& other) {
    hprime_sum += other.hprime_sum;
    prefetch_inserts += other.prefetch_inserts;
    prefetch_first_uses += other.prefetch_first_uses;
    wasted_evictions += other.wasted_evictions;
    num_users += other.num_users;
    throttled_prefetches += other.throttled_prefetches;
    peak_queue_depth = std::max(peak_queue_depth, other.peak_queue_depth);
    peak_slowdown = std::max(peak_slowdown, other.peak_slowdown);
  }
};

/// Assembles the user-facing result from measured pieces. Shared by
/// StackRuntime::finalize (one runtime) and the sharded driver (metrics and
/// aggregates merged across shards) so both paths compute every derived
/// quantity with identical arithmetic.
ProxySimResult assemble_stack_result(const SimMetrics& metrics,
                                     const ServerStats& horizon_stats,
                                     const StackAggregates& aggregates,
                                     std::string policy_name);

class StackRuntime {
 public:
  /// `predictor` and `policy` are borrowed; they must outlive the runtime.
  /// The config is taken by value (it is move-only: the retrieval observer
  /// and any installed governor travel with it).
  StackRuntime(Simulator& sim, PredictorPlane& predictor,
               PrefetchPolicy& policy, StackRuntimeConfig config);

  /// Full per-request pipeline: cache access, demand fetch on miss (or
  /// attach to an in-flight transfer), predictor update, policy decision,
  /// prefetch dispatch/deferral. Items must fit in 32 bits (in-flight keys
  /// are packed as (user << 32) | item).
  void handle_request(UserId user, ItemId item);

  /// Ends the warmup: clears metrics and server statistics.
  void begin_measurement();

  /// Snapshot server stats (call at the measurement horizon, before
  /// draining in-flight transfers).
  ServerStats snapshot_server() const { return server_.stats(); }

  /// Assembles the result after the simulator has drained.
  ProxySimResult finalize(const ServerStats& horizon_stats,
                          std::string policy_name) const;

  PsServer& server() { return server_; }
  const SimMetrics& metrics() const { return metrics_; }

  /// Proxy-link sensor snapshot (all zeros / idle defaults when the sensor
  /// is off). The sharded driver reads this at epoch barriers for the
  /// fleet-wide setpoint exchange.
  const LoadSignals& load_signals() const { return sensor_.signals(); }

  /// Cache-derived sums for result assembly and cross-shard merging.
  StackAggregates aggregates() const;

  /// Deep-invariant sweep (util/audit.hpp) across the whole stack slice:
  /// the cache plane's arenas, the predictor plane's ContextArena, the
  /// in-flight index (every entry has a waiter unless it is an untouched
  /// prefetch, demand counts conserve, deferred prefetches imply a blocked
  /// demand), and the cached ĥ' estimates against fresh recomputation.
  /// Runs automatically at begin_measurement/finalize in SPECPF_AUDIT
  /// builds (throwing ContractViolation on failure); callable from tests in
  /// any build.
  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  struct Inflight {
    bool is_prefetch = false;
    /// A demand miss attached to this prefetch while it was in flight: the
    /// user is blocked on it, so it holds the link like a demand fetch and
    /// defers further prefetch dispatch until it lands.
    bool demand_promoted = false;
    /// Link-transit span opened at submission (null when telemetry is off
    /// or the span ring is disabled); closed at completion.
    SpanTracer::SpanRef span;
    std::vector<double> waiter_times;
  };

  /// In-flight transfers keyed by (user << 32) | item. The flat backend is
  /// the data plane; the tree backend preserves the original std::map
  /// behaviour as a differential baseline.
  class InflightIndex {
   public:
    explicit InflightIndex(bool use_tree) : use_tree_(use_tree) {}

    Inflight* find(std::uint64_t key) {
      if (!use_tree_) return flat_.find(key);
      auto it = tree_.find(key);
      return it == tree_.end() ? nullptr : &it->second;
    }
    Inflight& get_or_insert(std::uint64_t key) {
      return use_tree_ ? tree_[key] : flat_[key];
    }
    bool contains(std::uint64_t key) const {
      return use_tree_ ? tree_.count(key) != 0 : flat_.contains(key);
    }
    Inflight take(std::uint64_t key) {
      if (!use_tree_) return flat_.take(key);
      auto node = tree_.extract(key);
      SPECPF_ASSERT(!node.empty());
      return std::move(node.mapped());
    }

    std::size_t size() const {
      return use_tree_ ? tree_.size() : flat_.size();
    }
    /// Visits every (key, const Inflight&) entry; cold path (audit sweeps).
    template <typename Fn>
    void for_each(Fn&& fn) const {
      if (use_tree_) {
        for (const auto& [key, value] : tree_) fn(key, value);
      } else {
        flat_.for_each(fn);
      }
    }
    void audit(AuditReport& report) const {
      if (!use_tree_) flat_.audit(report);
    }

   private:
    bool use_tree_;
    FlatHashMap<Inflight> flat_;
    // Differential baseline for FlatHashMap, selected only by the
    // inflight_index=tree debug config.
    std::map<std::uint64_t, Inflight> tree_;  // lint:allow(std::map)
  };

  static std::uint64_t inflight_key(UserId user, ItemId item) {
    // Single choke point for the packing contract: every path that touches
    // in-flight state (demand misses, predictor candidates, deferred
    // flushes) builds its key here, so an oversized item can never alias
    // another user's entry.
    SPECPF_EXPECTS((item >> 32) == 0);
    return (static_cast<std::uint64_t>(user) << 32) | item;
  }

  PolicyContext current_context() const;
  void submit_retrieval(UserId user, ItemId item, bool is_prefetch);
  void flush_pending_prefetches(UserId user);
  /// Registers this runtime's counters/gauges on the telemetry plane,
  /// installs the gauge source, and seals it (constructor only).
  void setup_telemetry();
  /// Refreshes the cached ĥ' contribution of `user` after a cache mutation.
  /// Keeps current_context() O(1) instead of O(num_users) per request —
  /// the difference between a million-user sweep finishing and not.
  void refresh_estimate(UserId user);

  Simulator& sim_;
  PredictorPlane& predictor_;
  PrefetchPolicy& policy_;
  StackRuntimeConfig config_;

  PsServer server_;
  SimMetrics metrics_;
  /// The whole client-cache fleet (entries, policies, §4 estimator state).
  std::unique_ptr<CachePlane> caches_;
  /// Per-user ĥ' estimates and their running sum; updated on mutation.
  std::vector<double> estimate_cache_;
  double estimate_sum_ = 0.0;
  InflightIndex inflight_;
  std::vector<int> demand_inflight_;
  std::vector<std::vector<ItemId>> pending_prefetches_;
  /// Reused per-request scratch for the predictor plane's predict_into and
  /// the policy's viable-candidate filter: the predict hot path allocates
  /// nothing once the buffers reach steady-state capacity.
  std::vector<core::Candidate> prediction_scratch_;
  std::vector<core::Candidate> viable_scratch_;
  /// Proxy-link load sensor; observes at event instants the runtime
  /// already visits, so enabling it never perturbs the simulation.
  LinkLoadSensor sensor_;
  bool sense_ = false;
  std::uint64_t total_requests_ = 0;
  std::uint64_t wasted_evictions_ = 0;
  std::uint64_t throttled_prefetches_ = 0;
  bool measuring_ = true;

  /// Borrowed telemetry plane (null = off); cached from config_ so every
  /// hook is one pointer test.
  TelemetryPlane* telemetry_ = nullptr;
  /// Incrementally maintained occupancy the telemetry gauges read in O(1)
  /// (kept unconditionally — three integer adds per retrieval — and
  /// cross-checked against a from-scratch rederivation in audit()).
  std::uint64_t cache_residents_ = 0;
  std::uint64_t inflight_demand_total_ = 0;
  std::uint64_t inflight_prefetch_total_ = 0;
  /// Telemetry slot ids (valid only when telemetry_ != nullptr).
  struct TelemetryIds {
    TelemetryRegistry::CounterId requests = 0;
    TelemetryRegistry::CounterId hits = 0;
    TelemetryRegistry::CounterId misses = 0;
    TelemetryRegistry::CounterId inflight_attaches = 0;
    TelemetryRegistry::CounterId demand_fetches = 0;
    TelemetryRegistry::CounterId prefetch_fetches = 0;
    TelemetryRegistry::CounterId prefetch_deferred = 0;
    TelemetryRegistry::CounterId prefetch_throttled = 0;
    TelemetryRegistry::CounterId wasted_evictions = 0;
    TelemetryRegistry::GaugeId link_queue = 0;
    TelemetryRegistry::GaugeId link_util = 0;
    TelemetryRegistry::GaugeId link_depth_ewma = 0;
    TelemetryRegistry::GaugeId link_slowdown = 0;
    TelemetryRegistry::GaugeId gov_state = 0;
    TelemetryRegistry::GaugeId gov_depth_limit = 0;
    TelemetryRegistry::GaugeId inflight_demand = 0;
    TelemetryRegistry::GaugeId inflight_prefetch = 0;
    TelemetryRegistry::GaugeId cache_residents = 0;
    TelemetryRegistry::GaugeId pred_contexts = 0;
    TelemetryRegistry::GaugeId pred_halvings = 0;
  };
  TelemetryIds tele_;
};

}  // namespace specpf
