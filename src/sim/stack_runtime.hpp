// StackRuntime — the shared machinery of the full-stack simulators: per-user
// tagged caches, the shared PS server, in-flight transfer bookkeeping,
// prefetch deferral ("prefetch when the connection is idle", paper §1),
// online parameter estimation for the policy, and metrics.
//
// Frontends drive it with handle_request(user, item) per arrival:
//   * sim/proxy_sim   — generative session workload
//   * sim/trace_replay — recorded traces
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/tagged_cache.hpp"
#include "des/simulator.hpp"
#include "net/ps_server.hpp"
#include "policy/policy.hpp"
#include "predict/predictor.hpp"
#include "sim/metrics.hpp"

namespace specpf {

struct ProxySimResult;  // defined in sim/proxy_sim.hpp

struct StackRuntimeConfig {
  double bandwidth = 50.0;
  double item_size = 1.0;
  std::size_t num_users = 1;
  std::size_t cache_capacity = 64;
  /// 0=LRU 1=LFU 2=FIFO 3=CLOCK 4=random (matches ProxySimConfig::CacheKind).
  int cache_kind = 0;
  core::InteractionModel estimator_model = core::InteractionModel::kModelA;
  std::size_t max_prefetch_per_request = 8;
  std::uint64_t seed = 1;
  /// Request-rate estimate used until ≥100 requests are observed.
  double lambda_prior = 1.0;
};

class StackRuntime {
 public:
  /// `predictor` and `policy` are borrowed; they must outlive the runtime.
  StackRuntime(Simulator& sim, Predictor& predictor, PrefetchPolicy& policy,
               const StackRuntimeConfig& config);

  /// Full per-request pipeline: cache access, demand fetch on miss (or
  /// attach to an in-flight transfer), predictor update, policy decision,
  /// prefetch dispatch/deferral.
  void handle_request(UserId user, ItemId item);

  /// Ends the warmup: clears metrics and server statistics.
  void begin_measurement();

  /// Snapshot server stats (call at the measurement horizon, before
  /// draining in-flight transfers).
  ServerStats snapshot_server() const { return server_.stats(); }

  /// Assembles the result after the simulator has drained.
  ProxySimResult finalize(const ServerStats& horizon_stats,
                          std::string policy_name) const;

  PsServer& server() { return server_; }
  const SimMetrics& metrics() const { return metrics_; }

 private:
  struct Inflight {
    bool is_prefetch = false;
    std::vector<double> waiter_times;
  };

  PolicyContext current_context() const;
  void submit_retrieval(UserId user, ItemId item, bool is_prefetch);
  void flush_pending_prefetches(UserId user);

  Simulator& sim_;
  Predictor& predictor_;
  PrefetchPolicy& policy_;
  StackRuntimeConfig config_;

  PsServer server_;
  SimMetrics metrics_;
  std::vector<std::unique_ptr<TaggedCache>> caches_;
  std::map<std::pair<UserId, ItemId>, Inflight> inflight_;
  std::vector<int> demand_inflight_;
  std::vector<std::vector<ItemId>> pending_prefetches_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t wasted_evictions_ = 0;
  bool measuring_ = true;
};

}  // namespace specpf
