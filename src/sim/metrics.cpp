#include "sim/metrics.hpp"

#include "util/math.hpp"

namespace specpf {

void SimMetrics::record_access(double access_time, bool hit) {
  ++requests_;
  if (hit) ++hits_;
  access_times_.add(access_time);
  access_hist_.add(access_time);
}

void SimMetrics::record_demand_retrieval(double sojourn) {
  demand_sojourns_.add(sojourn);
}

void SimMetrics::record_prefetch_retrieval(double sojourn) {
  prefetch_sojourns_.add(sojourn);
}

double SimMetrics::hit_ratio() const {
  return safe_div(static_cast<double>(hits_), static_cast<double>(requests_),
                  0.0);
}

double SimMetrics::retrieval_time_per_request() const {
  const double total = demand_sojourns_.sum() + prefetch_sojourns_.sum();
  return safe_div(total, static_cast<double>(requests_), 0.0);
}

double SimMetrics::retrievals_per_request() const {
  const double total = static_cast<double>(demand_sojourns_.count() +
                                           prefetch_sojourns_.count());
  return safe_div(total, static_cast<double>(requests_), 0.0);
}

void SimMetrics::merge(const SimMetrics& other) {
  access_times_.merge(other.access_times_);
  access_hist_.merge(other.access_hist_);
  demand_sojourns_.merge(other.demand_sojourns_);
  prefetch_sojourns_.merge(other.prefetch_sojourns_);
  inflight_waits_.merge(other.inflight_waits_);
  requests_ += other.requests_;
  hits_ += other.hits_;
  wasted_prefetches_ += other.wasted_prefetches_;
}

void SimMetrics::reset() {
  access_times_.reset();
  access_hist_ = LogHistogram(-30, 20);
  demand_sojourns_.reset();
  prefetch_sojourns_.reset();
  inflight_waits_.reset();
  requests_ = 0;
  hits_ = 0;
  wasted_prefetches_ = 0;
}

}  // namespace specpf
