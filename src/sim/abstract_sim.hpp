// Abstract validation simulator — a discrete-event realisation of *exactly*
// the stochastic model the paper analyses (§2–§3), used to check the closed
// forms:
//
//   * aggregate Poisson requests at rate λ;
//   * each request independently lands in one of three classes:
//       base hit        w.p. h'·(1 − n̄(F)·q/h')  [survives eviction]
//       prefetched hit  w.p. n̄(F)·p
//       miss            otherwise
//     where q is the interaction model's victim value (0 for Model A,
//     h'/n̄(C) for Model B) — this reproduces h = h' + n̄(F)(p−q) exactly;
//   * misses submit a demand job to the shared PS server; the access time
//     is the job's sojourn;
//   * every request additionally triggers n̄(F) prefetch jobs (fractional
//     rates via floor + Bernoulli remainder) on the same server;
//   * hits cost zero — except optionally (`inflight_wait`) a prefetched hit
//     whose transfer is still in progress makes the user wait for the
//     remainder, probing the closed forms' "prefetch completes in time"
//     idealisation.
//
// Everything the closed forms predict — h, ρ, r̄, t̄, R — is measured and
// can be compared against core::analyze().
#pragma once

#include <cstdint>

#include "core/interaction.hpp"
#include "sim/metrics.hpp"

namespace specpf {

struct AbstractSimConfig {
  core::SystemParams params;  ///< b, λ, s̄, h', n̄(C)
  core::OperatingPoint op;    ///< p and n̄(F)
  core::InteractionModel model = core::InteractionModel::kModelA;

  /// Service-time shape (M/G/1-PS means are insensitive to it; the sim can
  /// demonstrate that insensitivity).
  enum class SizeDist { kFixed, kExponential } size_dist = SizeDist::kExponential;

  double duration = 2000.0;  ///< observation window (after warmup)
  double warmup = 200.0;     ///< transient truncated from statistics
  std::uint64_t seed = 1;

  /// When true, a prefetched-class hit whose prefetch job is still in
  /// flight waits for the remaining transfer time instead of being free.
  bool inflight_wait = false;

  /// How prefetch jobs enter the server. The paper's eq. (8) treats the
  /// demand+prefetch superposition as a single Poisson stream of rate
  /// (1−h)λ + n̄(F)λ — i.e. the prefetch stream is Poisson and independent
  /// of demand epochs. kIndependentPoisson realises exactly that (the
  /// validation default). The per-request modes are realism ablations: a
  /// deployed prefetcher fires on each user request, which *correlates*
  /// prefetch and demand arrivals; kPerRequestBatch (zero delay) creates
  /// batch arrivals that inflate PS sojourns ~15–25% at ρ≈0.7, and
  /// kPerRequestDelayed spreads each prefetch by an i.i.d. exponential
  /// delay, which removes batching but keeps short-lag correlation.
  enum class PrefetchDispatch {
    kIndependentPoisson,
    kPerRequestDelayed,
    kPerRequestBatch,
  } prefetch_dispatch = PrefetchDispatch::kIndependentPoisson;

  /// Mean dispatch delay for kPerRequestDelayed; -1 ⇒ use 1/λ.
  double prefetch_dispatch_delay_mean = -1.0;

  void validate() const;
};

struct AbstractSimResult {
  double hit_ratio = 0.0;                 ///< measured h
  double mean_access_time = 0.0;          ///< measured t̄
  double access_time_std_error = 0.0;
  double server_utilization = 0.0;        ///< measured ρ (busy fraction)
  double retrieval_time_per_request = 0.0;  ///< measured R
  double retrievals_per_request = 0.0;    ///< measured n̄(R)
  double mean_demand_sojourn = 0.0;       ///< measured r̄ (demand jobs)
  std::uint64_t requests = 0;
  std::uint64_t demand_jobs = 0;
  std::uint64_t prefetch_jobs = 0;
};

/// Runs one replication.
AbstractSimResult run_abstract_sim(const AbstractSimConfig& config);

}  // namespace specpf
