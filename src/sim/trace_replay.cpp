#include "sim/trace_replay.hpp"

#include <algorithm>

#include "des/simulator.hpp"
#include "obs/divergence.hpp"
#include "sim/stack_runtime.hpp"
#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {

void TraceReplayConfig::validate() const {
  SPECPF_EXPECTS(bandwidth > 0.0);
  SPECPF_EXPECTS(item_size > 0.0);
  SPECPF_EXPECTS(cache_capacity >= 1);
  SPECPF_EXPECTS(max_prefetch_per_request >= 1);
  SPECPF_EXPECTS(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
  SPECPF_EXPECTS(governor.empty() || is_governor_name(governor));
  SPECPF_EXPECTS(stream_window >= 1);
  // The detector reads gauge streams; without a plane there is nothing to
  // watch, and aborting needs a verdict to abort on.
  SPECPF_EXPECTS(divergence == nullptr || telemetry != nullptr);
  SPECPF_EXPECTS(!abort_on_divergence || divergence != nullptr);
  // Replay has no generating graph for the oracle to read.
  SPECPF_EXPECTS(predictor_kind != PredictorKind::kOracle);
}

std::unique_ptr<PredictorPlane> make_replay_predictor(
    TraceReplayConfig::PredictorKind kind, std::size_t num_users,
    bool use_legacy) {
  SPECPF_EXPECTS(kind != PredictorKind::kOracle);
  PredictorPlaneConfig plane_config;
  plane_config.num_users = num_users;
  return make_predictor_plane(kind, plane_config, use_legacy);
}

ProxySimResult run_trace_replay(TraceSource& source,
                                const TraceReplayConfig& config,
                                PrefetchPolicy& policy) {
  config.validate();

  // Pass 1 (metadata): record count, time span, and user densification
  // (first-appearance order — the runtime indexes users contiguously).
  // Sources are cheap to rewind, so two sequential scans beat holding the
  // trace in RAM.
  FlatHashMap<UserId> user_index;
  std::uint64_t record_count = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  source.reset();
  {
    TraceRecord r;
    double prev = 0.0;
    while (source.next(&r)) {
      SPECPF_EXPECTS(record_count == 0 || r.time >= prev);  // time-ordered
      prev = r.time;
      if (record_count == 0) first_time = r.time;
      last_time = r.time;
      bool inserted = false;
      UserId& dense = user_index.get_or_insert(r.user, &inserted);
      if (inserted) dense = static_cast<UserId>(user_index.size() - 1);
      ++record_count;
    }
  }
  SPECPF_EXPECTS(record_count > 0);

  auto predictor = make_replay_predictor(config.predictor_kind,
                                         user_index.size(),
                                         config.use_legacy_predictors);

  StackRuntimeConfig runtime_config;
  runtime_config.bandwidth = config.bandwidth;
  runtime_config.item_size = config.item_size;
  runtime_config.num_users = user_index.size();
  runtime_config.cache_capacity = config.cache_capacity;
  runtime_config.cache_kind = config.cache_kind;
  runtime_config.estimator_model = config.estimator_model;
  runtime_config.max_prefetch_per_request = config.max_prefetch_per_request;
  runtime_config.seed = config.seed;
  // Matches Trace::mean_request_rate bit-for-bit on an ordered trace
  // (duration = last − first, rate 0 if degenerate).
  const double duration = record_count >= 2 ? last_time - first_time : 0.0;
  runtime_config.lambda_prior = std::max(
      1e-9, safe_div(static_cast<double>(record_count), duration, 0.0));
  runtime_config.use_tree_inflight = config.use_tree_inflight;
  runtime_config.use_legacy_caches = config.use_legacy_caches;
  runtime_config.enable_load_sensor = config.enable_load_sensor;
  runtime_config.sensor = config.sensor;
  runtime_config.telemetry = config.telemetry;
  std::unique_ptr<PrefetchGovernor> governor;
  if (!config.governor.empty()) {
    governor = make_governor_by_name(config.governor, config.governor_config);
    SPECPF_EXPECTS(governor != nullptr);
    runtime_config.governor = governor.get();
  }

  Simulator sim;
  StackRuntime runtime(sim, *predictor, policy, std::move(runtime_config));

  // Attach the divergence detector to the (now sealed) plane. Callers may
  // pre-configure thresholds and hand-pick signals; a bare detector gets
  // defaults and the standard gauge set.
  DivergenceDetector* detector = config.divergence;
  if (detector != nullptr) {
    if (!detector->configured()) detector->configure(DivergenceConfig{});
    if (detector->num_signals() == 0) detector->watch_plane(*config.telemetry);
  }

  // Shift the trace so the first request fires at t = 0.
  const double t0 = first_time;
  const std::size_t warmup_records = static_cast<std::size_t>(
      config.warmup_fraction * static_cast<double>(record_count));
  // Measurement must be live before the first request executes, and
  // windows below execute requests mid-pass — so unlike the historical
  // bulk path this cannot wait until after the scheduling loop.
  if (warmup_records == 0) runtime.begin_measurement();

  // Pass 2 (schedule): feed stream_window records, run the engine up to
  // the window's last arrival, repeat. Scheduling each batch before the
  // first pop of its window lands it in the engine's sorted O(1)-pop tier
  // rather than paying a heap sift per record, and occupancy stays at
  // ~window size instead of the whole trace. A whole-trace window (trace
  // shorter than stream_window) degenerates to the original bulk
  // schedule-everything-then-run replay, event for event.
  source.reset();
  bool aborted = false;
  {
    TraceRecord r;
    std::size_t index = 0;
    while (source.next(&r)) {
      const double when = r.time - t0;
      SPECPF_EXPECTS(when >= 0.0);
      if (index > 0 && index % config.stream_window == 0) {
        // run_until leaves sim.now() at `when`'s predecessor window edge;
        // arrivals are non-decreasing, so scheduling stays legal.
        sim.run_until(when);
        // Window boundaries are the detector's evaluation instants: the
        // engine has just caught up to real arrivals, so the gauge streams
        // are current. Pure observation unless abort is armed.
        if (detector != nullptr &&
            detector->evaluate() == StabilityVerdict::kDivergent &&
            config.abort_on_divergence) {
          aborted = true;
          break;
        }
      }
      if (warmup_records > 0 && index == warmup_records) {
        sim.schedule_at(when, [&runtime] { runtime.begin_measurement(); });
      }
      const UserId user = *user_index.find(r.user);
      sim.schedule_at(when, [&runtime, user, item = r.item] {
        runtime.handle_request(user, item);
      });
      ++index;
    }
  }

  ServerStats horizon_stats;
  if (aborted) {
    // The verdict latched mid-trace: stop feeding records and snapshot the
    // server at the abort instant instead of simulating the exploding
    // queue out to the horizon. Already-scheduled work still drains below
    // so the result's completion metrics are well-formed for the prefix.
    horizon_stats = runtime.snapshot_server();
  } else {
    const double end_time = last_time - t0;
    sim.schedule_at(end_time,
                    [&] { horizon_stats = runtime.snapshot_server(); });
  }

  sim.run();  // replay the tail window and drain
  if (detector != nullptr) detector->evaluate();  // final post-drain verdict
  return runtime.finalize(horizon_stats, policy.name());
}

ProxySimResult run_trace_replay(const Trace& trace,
                                const TraceReplayConfig& config,
                                PrefetchPolicy& policy) {
  SPECPF_EXPECTS(!trace.empty());
  SPECPF_EXPECTS(trace.is_time_ordered());
  TraceVectorSource source(trace);
  return run_trace_replay(source, config, policy);
}

}  // namespace specpf
