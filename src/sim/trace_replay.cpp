#include "sim/trace_replay.hpp"

#include "des/simulator.hpp"
#include "sim/stack_runtime.hpp"
#include "util/contract.hpp"

namespace specpf {

void TraceReplayConfig::validate() const {
  SPECPF_EXPECTS(bandwidth > 0.0);
  SPECPF_EXPECTS(item_size > 0.0);
  SPECPF_EXPECTS(cache_capacity >= 1);
  SPECPF_EXPECTS(max_prefetch_per_request >= 1);
  SPECPF_EXPECTS(warmup_fraction >= 0.0 && warmup_fraction < 1.0);
  SPECPF_EXPECTS(governor.empty() || is_governor_name(governor));
  // Replay has no generating graph for the oracle to read.
  SPECPF_EXPECTS(predictor_kind != PredictorKind::kOracle);
}

std::unique_ptr<PredictorPlane> make_replay_predictor(
    TraceReplayConfig::PredictorKind kind, std::size_t num_users,
    bool use_legacy) {
  SPECPF_EXPECTS(kind != PredictorKind::kOracle);
  PredictorPlaneConfig plane_config;
  plane_config.num_users = num_users;
  return make_predictor_plane(kind, plane_config, use_legacy);
}

ProxySimResult run_trace_replay(const Trace& trace,
                                const TraceReplayConfig& config,
                                PrefetchPolicy& policy) {
  config.validate();
  SPECPF_EXPECTS(!trace.empty());
  SPECPF_EXPECTS(trace.is_time_ordered());

  // Densify user ids (first-appearance order): the runtime indexes users
  // contiguously.
  FlatHashMap<UserId> user_index;
  for (const auto& r : trace.records()) {
    bool inserted = false;
    UserId& dense = user_index.get_or_insert(r.user, &inserted);
    if (inserted) dense = static_cast<UserId>(user_index.size() - 1);
  }

  auto predictor = make_replay_predictor(config.predictor_kind,
                                         user_index.size(),
                                         config.use_legacy_predictors);

  StackRuntimeConfig runtime_config;
  runtime_config.bandwidth = config.bandwidth;
  runtime_config.item_size = config.item_size;
  runtime_config.num_users = user_index.size();
  runtime_config.cache_capacity = config.cache_capacity;
  runtime_config.cache_kind = config.cache_kind;
  runtime_config.estimator_model = config.estimator_model;
  runtime_config.max_prefetch_per_request = config.max_prefetch_per_request;
  runtime_config.seed = config.seed;
  runtime_config.lambda_prior = std::max(1e-9, trace.mean_request_rate());
  runtime_config.use_tree_inflight = config.use_tree_inflight;
  runtime_config.use_legacy_caches = config.use_legacy_caches;
  runtime_config.enable_load_sensor = config.enable_load_sensor;
  runtime_config.sensor = config.sensor;
  runtime_config.telemetry = config.telemetry;
  std::unique_ptr<PrefetchGovernor> governor;
  if (!config.governor.empty()) {
    governor = make_governor_by_name(config.governor, config.governor_config);
    SPECPF_EXPECTS(governor != nullptr);
    runtime_config.governor = governor.get();
  }

  Simulator sim;
  StackRuntime runtime(sim, *predictor, policy, std::move(runtime_config));

  // Shift the trace so the first request fires at t = 0. The whole trace is
  // bulk-scheduled before the first pop, which lands it in the engine's
  // sorted O(1)-pop tier rather than paying a heap sift per record.
  const double t0 = trace.records().front().time;
  const std::size_t warmup_records = static_cast<std::size_t>(
      config.warmup_fraction * static_cast<double>(trace.size()));

  std::size_t index = 0;
  for (const auto& r : trace.records()) {
    const UserId user = *user_index.find(r.user);
    const double when = r.time - t0;
    SPECPF_EXPECTS(when >= 0.0);
    if (warmup_records > 0 && index == warmup_records) {
      sim.schedule_at(when, [&runtime] { runtime.begin_measurement(); });
    }
    sim.schedule_at(when, [&runtime, user, item = r.item] {
      runtime.handle_request(user, item);
    });
    ++index;
  }
  if (warmup_records == 0) runtime.begin_measurement();

  const double end_time = trace.records().back().time - t0;
  ServerStats horizon_stats;
  sim.schedule_at(end_time, [&] { horizon_stats = runtime.snapshot_server(); });

  sim.run();  // replay everything and drain
  return runtime.finalize(horizon_stats, policy.name());
}

}  // namespace specpf
