// Analytic-vs-simulated comparison: the machinery behind the
// table_sim_vs_analytic bench and the integration test suite. For one
// operating point it evaluates the paper's closed forms and runs replicated
// DES, reporting both plus relative errors.
#pragma once

#include <cstdint>

#include "core/excess_cost.hpp"
#include "core/interaction.hpp"
#include "sim/experiment.hpp"

namespace specpf {

struct ValidationRow {
  // Inputs.
  core::SystemParams params;
  core::OperatingPoint op;
  core::InteractionModel model = core::InteractionModel::kModelA;

  // Closed forms.
  double analytic_hit_ratio = 0.0;
  double analytic_utilization = 0.0;
  double analytic_access_time = 0.0;
  double analytic_gain = 0.0;
  double analytic_excess_cost = 0.0;
  double analytic_access_time_no_prefetch = 0.0;

  // Simulation (means over replications).
  AbstractBatchResult sim_prefetch;
  AbstractBatchResult sim_baseline;  ///< same system with n̄(F) = 0 semantics
  double sim_gain = 0.0;             ///< baseline t̄' − prefetch t̄
  double sim_excess_cost = 0.0;      ///< R − R'

  // Relative errors (|sim − analytic| / |analytic|).
  double err_hit_ratio = 0.0;
  double err_utilization = 0.0;
  double err_access_time = 0.0;
};

struct ValidationOptions {
  std::size_t replications = 8;
  double duration = 2000.0;
  double warmup = 200.0;
  std::uint64_t seed = 42;
  bool parallel = true;
  AbstractSimConfig::SizeDist size_dist =
      AbstractSimConfig::SizeDist::kExponential;
  bool inflight_wait = false;
};

/// Runs the paired (prefetch vs no-prefetch) validation at one point.
ValidationRow validate_point(const core::SystemParams& params,
                             const core::OperatingPoint& op,
                             core::InteractionModel model,
                             const ValidationOptions& options = {});

}  // namespace specpf
