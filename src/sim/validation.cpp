#include "sim/validation.hpp"

#include "util/math.hpp"

namespace specpf {

ValidationRow validate_point(const core::SystemParams& params,
                             const core::OperatingPoint& op,
                             core::InteractionModel model,
                             const ValidationOptions& options) {
  ValidationRow row;
  row.params = params;
  row.op = op;
  row.model = model;

  const core::PrefetchAnalysis analysis = core::analyze(params, op, model);
  row.analytic_hit_ratio = analysis.hit_ratio;
  row.analytic_utilization = analysis.utilization;
  row.analytic_access_time = analysis.access_time;
  row.analytic_gain = analysis.gain;
  row.analytic_access_time_no_prefetch = analysis.baseline.access_time;
  row.analytic_excess_cost = core::excess_cost(
      analysis.utilization, analysis.baseline.utilization,
      params.request_rate);

  AbstractSimConfig cfg;
  cfg.params = params;
  cfg.op = op;
  cfg.model = model;
  cfg.duration = options.duration;
  cfg.warmup = options.warmup;
  cfg.seed = options.seed;
  cfg.size_dist = options.size_dist;
  cfg.inflight_wait = options.inflight_wait;
  row.sim_prefetch =
      run_abstract_replications(cfg, options.replications, options.parallel);

  AbstractSimConfig base = cfg;
  base.op.prefetch_rate = 0.0;
  base.seed = cfg.seed ^ 0x5DEECE66DULL;  // independent baseline streams
  row.sim_baseline =
      run_abstract_replications(base, options.replications, options.parallel);

  row.sim_gain =
      row.sim_baseline.access_time.mean - row.sim_prefetch.access_time.mean;
  row.sim_excess_cost = row.sim_prefetch.retrieval_per_request.mean -
                        row.sim_baseline.retrieval_per_request.mean;

  row.err_hit_ratio =
      relative_error(row.sim_prefetch.hit_ratio.mean, row.analytic_hit_ratio);
  row.err_utilization = relative_error(row.sim_prefetch.utilization.mean,
                                       row.analytic_utilization);
  row.err_access_time = relative_error(row.sim_prefetch.access_time.mean,
                                       row.analytic_access_time);
  return row;
}

}  // namespace specpf
