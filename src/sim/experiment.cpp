#include "sim/experiment.hpp"

#include "util/contract.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace specpf {

AbstractBatchResult run_abstract_replications(const AbstractSimConfig& config,
                                              std::size_t replications,
                                              bool parallel,
                                              double confidence) {
  SPECPF_EXPECTS(replications >= 1);
  std::vector<AbstractSimResult> results(replications);
  Rng seeder(config.seed);

  std::vector<std::uint64_t> seeds(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    seeds[i] = seeder.substream(i).next_u64();
  }

  auto run_one = [&](std::size_t i) {
    AbstractSimConfig rep = config;
    rep.seed = seeds[i];
    results[i] = run_abstract_sim(rep);
  };

  if (parallel && replications > 1) {
    parallel_for(default_pool(), replications, run_one);
  } else {
    for (std::size_t i = 0; i < replications; ++i) run_one(i);
  }

  std::vector<double> access, hit, util, rpr, sojourn;
  AbstractBatchResult out;
  for (const auto& r : results) {
    access.push_back(r.mean_access_time);
    hit.push_back(r.hit_ratio);
    util.push_back(r.server_utilization);
    rpr.push_back(r.retrieval_time_per_request);
    sojourn.push_back(r.mean_demand_sojourn);
    out.total_requests += r.requests;
  }
  out.access_time = t_interval(access, confidence);
  out.hit_ratio = t_interval(hit, confidence);
  out.utilization = t_interval(util, confidence);
  out.retrieval_per_request = t_interval(rpr, confidence);
  out.demand_sojourn = t_interval(sojourn, confidence);
  out.replications = replications;
  return out;
}

}  // namespace specpf
