// Trace-driven replay: runs the full prefetching stack (per-user tagged
// caches, predictor, policy, shared PS server) against a *recorded* request
// trace instead of a generative workload.
//
// Replay gives paired comparisons — every policy sees byte-identical
// request sequences — and lets users evaluate the threshold rule on their
// own logs (Trace::load_csv_file). Timing semantics are open-loop: requests
// fire at their recorded instants regardless of fetch completions, matching
// the paper's fixed-λ assumption.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "control/governor.hpp"
#include "policy/policy.hpp"
#include "predict/predictor_plane.hpp"
#include "sim/proxy_sim.hpp"
#include "workload/trace.hpp"
#include "workload/trace_stream.hpp"

namespace specpf {

struct TraceReplayConfig {
  double bandwidth = 50.0;
  double item_size = 1.0;
  std::size_t cache_capacity = 64;
  ProxySimConfig::CacheKind cache_kind = ProxySimConfig::CacheKind::kLru;

  /// Access model (the fleet-wide enum from predict/factory.hpp). Replay
  /// has no generating graph, so kOracle is rejected by validate().
  using PredictorKind = specpf::PredictorKind;
  PredictorKind predictor_kind = PredictorKind::kMarkov;

  core::InteractionModel estimator_model = core::InteractionModel::kModelA;
  std::size_t max_prefetch_per_request = 8;

  /// Fraction of the trace treated as warmup (metrics reset after it).
  double warmup_fraction = 0.1;
  std::uint64_t seed = 1;  ///< only used by the random cache kind

  /// Use the legacy std::map in-flight backend (reference for differential
  /// tests and the perf_stack baseline; the flat hash is the default).
  bool use_tree_inflight = false;

  /// Use the legacy per-user TaggedCache fleet instead of the slab-backed
  /// arena cache plane (reference for differential tests; the arena is the
  /// default).
  bool use_legacy_caches = false;

  /// Use the legacy virtual Predictor tables instead of the slab-backed
  /// SoA predictor plane (reference for differential tests and the
  /// perf_stack baseline; the plane is the default).
  bool use_legacy_predictors = false;

  /// Prefetch governor by name (control/governor.hpp): noop, token-<rate>,
  /// aimd-<setpoint>, conf-<precision>. Empty = ungoverned (today's
  /// open-loop behaviour). The sharded driver builds one instance per
  /// shard from the same name.
  std::string governor;
  /// Tuning knobs behind the name's primary parameter.
  GovernorConfig governor_config;
  /// Run the proxy-link load sensor even when ungoverned, so baselines
  /// report the same peak-load metrics governed runs do (pure
  /// observation: results stay bit-identical to a sensor-less run apart
  /// from the peak_* fields themselves).
  bool enable_load_sensor = false;
  LoadSensorConfig sensor;

  /// Telemetry plane to record into (borrowed; must outlive the run).
  /// Pure observation: results are bit-identical with this null or
  /// installed. The *sharded* driver takes a TelemetryFleet through its
  /// own config instead and requires this to stay null (one plane cannot
  /// serve S independent engines).
  class TelemetryPlane* telemetry = nullptr;

  /// Online divergence detector (obs/divergence.hpp; borrowed, must
  /// outlive the run). Requires `telemetry`: the replay attaches it to the
  /// sealed plane (configuring it with defaults and watching the standard
  /// gauge set if the caller did neither) and evaluates it on the driver
  /// thread at every stream-window boundary plus once after the drain.
  /// Pure observation — results are bit-identical with this null or
  /// installed — unless `abort_on_divergence` is also set. The sharded
  /// driver takes its detector through its own config and requires this to
  /// stay null.
  class DivergenceDetector* divergence = nullptr;
  /// Terminate the replay as soon as the detector's verdict turns
  /// divergent: stop scheduling records and snapshot server stats at the
  /// abort instant instead of simulating an exploding queue to the
  /// horizon. The result then covers only the simulated prefix; callers
  /// read the detector for the verdict and onset.
  bool abort_on_divergence = false;

  /// Streaming granularity: how many trace records to schedule into the
  /// engine before running it forward. Bounds engine occupancy at
  /// ~stream_window events (plus in-flight fetches) regardless of trace
  /// length — the knob that keeps billion-request replays at bounded RSS.
  /// Traces shorter than one window replay exactly like the old
  /// bulk-schedule-everything path.
  std::size_t stream_window = 65536;

  void validate() const;
};

/// Replays `trace` (must be time-ordered) under `policy`.
ProxySimResult run_trace_replay(const Trace& trace,
                                const TraceReplayConfig& config,
                                PrefetchPolicy& policy);

/// Streaming form: pulls requests from `source` (time-ordered) in
/// stream_window batches instead of materializing a Trace. Two sequential
/// passes over the source (metadata, then schedule); results are
/// bit-identical to the in-RAM overload fed the same record sequence.
ProxySimResult run_trace_replay(TraceSource& source,
                                const TraceReplayConfig& config,
                                PrefetchPolicy& policy);

/// Fresh predictor plane for a replay kind — shared with the sharded
/// driver, which needs one independent plane per shard (`num_users` sizes
/// the plane's user-indexed history slab). kOracle is not replayable.
std::unique_ptr<PredictorPlane> make_replay_predictor(
    TraceReplayConfig::PredictorKind kind, std::size_t num_users,
    bool use_legacy);

}  // namespace specpf
