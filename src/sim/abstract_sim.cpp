#include "sim/abstract_sim.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "des/simulator.hpp"
#include "net/ps_server.hpp"
#include "util/contract.hpp"
#include "util/distributions.hpp"
#include "util/flat_hash.hpp"
#include "util/rng.hpp"

namespace specpf {

void AbstractSimConfig::validate() const {
  params.validate();
  SPECPF_EXPECTS(op.access_probability > 0.0 && op.access_probability <= 1.0);
  SPECPF_EXPECTS(op.prefetch_rate >= 0.0);
  SPECPF_EXPECTS(duration > 0.0);
  SPECPF_EXPECTS(warmup >= 0.0);
  SPECPF_EXPECTS(params.request_rate > 0.0);
  // Probability-consistency constraints of §3: n̄(F)·p ≤ f' (eq. 6) and the
  // eviction loss cannot exceed the existing hit mass.
  const double q = core::victim_value(params, model);
  SPECPF_EXPECTS(op.prefetch_rate * op.access_probability <=
                 params.fault_ratio() + 1e-12);
  SPECPF_EXPECTS(op.prefetch_rate * q <= params.hit_ratio + 1e-12);
}

AbstractSimResult run_abstract_sim(const AbstractSimConfig& config) {
  config.validate();

  Simulator sim;
  PsServer server(sim, config.params.bandwidth);
  Rng rng(config.seed);
  SimMetrics metrics;

  std::unique_ptr<Distribution> size_dist;
  switch (config.size_dist) {
    case AbstractSimConfig::SizeDist::kFixed:
      size_dist =
          std::make_unique<DeterministicDist>(config.params.mean_item_size);
      break;
    case AbstractSimConfig::SizeDist::kExponential:
      size_dist =
          std::make_unique<ExponentialDist>(config.params.mean_item_size);
      break;
  }

  const double q = core::victim_value(config.params, config.model);
  // Request classes (see header): surviving base hits, prefetched hits, miss.
  const double p_base =
      config.params.hit_ratio - config.op.prefetch_rate * q;
  const double p_pref =
      config.op.prefetch_rate * config.op.access_probability;
  SPECPF_ASSERT(p_base >= -1e-12);
  SPECPF_ASSERT(p_base + p_pref <= 1.0 + 1e-12);

  const double lambda = config.params.request_rate;
  const double dispatch_delay_mean = config.prefetch_dispatch_delay_mean < 0.0
                                         ? 1.0 / lambda
                                         : config.prefetch_dispatch_delay_mean;
  const double end_time = config.warmup + config.duration;
  const std::size_t whole_prefetches =
      static_cast<std::size_t>(std::floor(config.op.prefetch_rate));
  const double frac_prefetch =
      config.op.prefetch_rate - static_cast<double>(whole_prefetches);

  bool measuring = config.warmup == 0.0;
  // Ordered: inflight_wait attaches to the *oldest* outstanding prefetch.
  std::set<std::uint64_t> outstanding_prefetches;
  FlatHashMap<std::vector<double>> prefetch_waiters;
  ServerStats horizon_stats;

  ExponentialDist interarrival(1.0 / lambda);

  auto submit_prefetch = [&](double size) {
    const bool count = measuring;
    const std::uint64_t id =
        server.submit(size, [&, count](const TransferResult& r) {
          if (count) metrics.record_prefetch_retrieval(r.sojourn());
          outstanding_prefetches.erase(r.job_id);
          if (const auto* waiters = prefetch_waiters.find(r.job_id)) {
            for (double request_time : *waiters) {
              metrics.record_inflight_hit(sim.now() - request_time);
            }
            prefetch_waiters.erase(r.job_id);
          }
        });
    outstanding_prefetches.insert(id);
  };

  // Independent Poisson prefetch stream of rate n̄(F)·λ (the paper's model;
  // see PrefetchDispatch). Uses its own RNG so the demand classification
  // sequence is identical across dispatch modes with the same seed.
  Rng prefetch_rng = Rng(config.seed).substream(0x9F);
  const double prefetch_rate = config.op.prefetch_rate * lambda;
  // One closure per run, invoked by reference.
  std::function<void()> prefetch_arrival;  // lint:allow(std::function)
  if (config.prefetch_dispatch ==
          AbstractSimConfig::PrefetchDispatch::kIndependentPoisson &&
      prefetch_rate > 0.0) {
    // Self-reschedule by reference: copying the std::function into the
    // engine would heap-allocate per arrival; the closure outlives the run.
    prefetch_arrival = [&] {
      submit_prefetch(size_dist->sample(prefetch_rng));
      const double dt =
          -std::log1p(-prefetch_rng.next_double()) / prefetch_rate;
      if (sim.now() + dt <= end_time) {
        sim.schedule_in(dt, [&prefetch_arrival] { prefetch_arrival(); });
      }
    };
    const double first =
        -std::log1p(-prefetch_rng.next_double()) / prefetch_rate;
    if (first <= end_time) {
      sim.schedule_in(first, [&prefetch_arrival] { prefetch_arrival(); });
    }
  }

  // One closure per run, invoked by reference.
  std::function<void()> arrival = [&] {  // lint:allow(std::function)
    // --- classify this request ---
    const double u = rng.next_double();
    if (u < p_base) {
      if (measuring) metrics.record_hit();
    } else if (u < p_base + p_pref) {
      if (config.inflight_wait && !outstanding_prefetches.empty()) {
        // Attach to the oldest outstanding prefetch; the user waits for its
        // remaining transfer time.
        const std::uint64_t job = *outstanding_prefetches.begin();
        if (measuring) prefetch_waiters[job].push_back(sim.now());
      } else if (measuring) {
        metrics.record_hit();
      }
    } else {
      const bool count = measuring;
      server.submit(size_dist->sample(rng),
                    [&metrics, count](const TransferResult& r) {
                      if (count) {
                        metrics.record_miss(r.sojourn());
                        metrics.record_demand_retrieval(r.sojourn());
                      }
                    });
    }

    // --- issue prefetches for this request (per-request modes only) ---
    if (config.prefetch_dispatch !=
        AbstractSimConfig::PrefetchDispatch::kIndependentPoisson) {
      std::size_t prefetches = whole_prefetches;
      if (frac_prefetch > 0.0 && rng.bernoulli(frac_prefetch)) ++prefetches;
      for (std::size_t i = 0; i < prefetches; ++i) {
        const double dispatch_delay =
            config.prefetch_dispatch ==
                    AbstractSimConfig::PrefetchDispatch::kPerRequestDelayed
                ? -dispatch_delay_mean * std::log1p(-rng.next_double())
                : 0.0;
        const double size = size_dist->sample(rng);
        sim.schedule_in(dispatch_delay,
                        [&, size] { submit_prefetch(size); });
      }
    }

    // --- next arrival ---
    const double dt = interarrival.sample(rng);
    if (sim.now() + dt <= end_time) {
      sim.schedule_in(dt, [&arrival] { arrival(); });
    }
  };

  sim.schedule_in(interarrival.sample(rng), [&arrival] { arrival(); });
  if (config.warmup > 0.0) {
    sim.schedule_at(config.warmup, [&] {
      measuring = true;
      metrics.reset();
      server.reset_stats();
    });
  }
  // Snapshot utilisation at the horizon, *before* the drain tail.
  sim.schedule_at(end_time, [&] { horizon_stats = server.stats(); });

  sim.run_until(end_time);
  // Drain in-flight jobs so every issued request gets its access recorded.
  sim.run();

  AbstractSimResult out;
  out.hit_ratio = metrics.hit_ratio();
  out.mean_access_time = metrics.mean_access_time();
  out.access_time_std_error = metrics.access_time_stats().std_error();
  out.server_utilization = horizon_stats.utilization;
  out.retrieval_time_per_request = metrics.retrieval_time_per_request();
  out.retrievals_per_request = metrics.retrievals_per_request();
  out.mean_demand_sojourn = metrics.mean_demand_sojourn();
  out.requests = metrics.requests();
  out.demand_jobs = metrics.demand_retrievals();
  out.prefetch_jobs = metrics.prefetch_retrievals();
  return out;
}

}  // namespace specpf
