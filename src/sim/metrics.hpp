// Client-side measurement of the quantities the paper's closed forms
// predict: access time t̄, hit ratio h, retrieval time per request R, and
// the demand/prefetch traffic split.
#pragma once

#include <cstdint>

#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"

namespace specpf {

class SimMetrics {
 public:
  /// Access outcomes. `access_time` is the user-perceived latency.
  void record_hit() { record_access(0.0, /*hit=*/true); }
  void record_miss(double access_time) { record_access(access_time, false); }

  /// Hit whose item was still being prefetched: user waits the remainder.
  void record_inflight_hit(double wait) {
    inflight_waits_.add(wait);
    record_access(wait, true);
  }

  std::uint64_t inflight_hits() const { return inflight_waits_.count(); }
  double mean_inflight_wait() const { return inflight_waits_.mean(); }

  /// Retrieval completions (demand + prefetch), with server sojourn.
  void record_demand_retrieval(double sojourn);
  void record_prefetch_retrieval(double sojourn);

  /// A prefetched item was evicted (or the run ended) without ever being
  /// accessed — wasted bandwidth.
  void record_wasted_prefetch() { ++wasted_prefetches_; }

  std::uint64_t requests() const { return requests_; }
  std::uint64_t hits() const { return hits_; }
  double hit_ratio() const;

  /// Mean user-perceived access time t̄ (hits contribute their wait, 0 when
  /// served instantly from cache).
  double mean_access_time() const { return access_times_.mean(); }
  const RunningStats& access_time_stats() const { return access_times_; }

  /// Access-time quantile (p in [0,1]) from a log2-binned histogram of the
  /// same samples the mean sees. Instant cache hits land in the lowest bin,
  /// so p50 of a mostly-hit run reads as ~1e-9 s — effectively zero.
  double access_time_quantile(double p) const {
    return access_hist_.quantile(p);
  }
  const LogHistogram& access_time_histogram() const { return access_hist_; }

  /// Mean retrieval time per *user request*: (Σ all sojourns)/requests —
  /// the R of paper eq. (25).
  double retrieval_time_per_request() const;

  std::uint64_t demand_retrievals() const { return demand_sojourns_.count(); }
  std::uint64_t prefetch_retrievals() const {
    return prefetch_sojourns_.count();
  }
  double mean_demand_sojourn() const { return demand_sojourns_.mean(); }
  double mean_prefetch_sojourn() const { return prefetch_sojourns_.mean(); }
  std::uint64_t wasted_prefetches() const { return wasted_prefetches_; }

  /// Retrievals (demand + prefetch) per user request, n̄(R) of eq. (24).
  double retrievals_per_request() const;

  void reset();

  /// Folds another accumulator in (Chan merge on the RunningStats members,
  /// exact sums on the counters). Merging shard metrics in canonical shard
  /// order keeps results bit-deterministic regardless of how many threads
  /// produced them; merging into a default-constructed SimMetrics copies
  /// `other` verbatim, so a 1-shard merge is bit-identical to no merge.
  void merge(const SimMetrics& other);

 private:
  void record_access(double access_time, bool hit);

  RunningStats access_times_;
  /// Log2 bins from ~1 ns to ~12 days: covers instant hits (lowest bin)
  /// through any plausible congested sojourn. Bin counts merge exactly, so
  /// quantiles of merged shard metrics are bit-deterministic like the rest.
  LogHistogram access_hist_{-30, 20};
  RunningStats demand_sojourns_;
  RunningStats prefetch_sojourns_;
  RunningStats inflight_waits_;
  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t wasted_prefetches_ = 0;
};

}  // namespace specpf
