#include "sim/stack_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "control/governor.hpp"
#include "sim/proxy_sim.hpp"
#include "util/contract.hpp"

namespace specpf {

StackRuntime::StackRuntime(Simulator& sim, PredictorPlane& predictor,
                           PrefetchPolicy& policy, StackRuntimeConfig config)
    : sim_(sim),
      predictor_(predictor),
      policy_(policy),
      config_(std::move(config)),
      server_(sim, config_.bandwidth),
      estimate_cache_(config_.num_users, 0.0),
      inflight_(config_.use_tree_inflight),
      demand_inflight_(config_.num_users, 0),
      pending_prefetches_(config_.num_users),
      sensor_(config_.sensor),
      sense_(config_.enable_load_sensor || config_.governor != nullptr),
      measuring_(false),
      telemetry_(config_.telemetry) {
  SPECPF_EXPECTS(config_.num_users >= 1);
  SPECPF_EXPECTS(config_.item_size > 0.0);
  SPECPF_EXPECTS(config_.cache_capacity >= 1);
  CachePlaneConfig plane_config;
  plane_config.num_users = config_.num_users;
  plane_config.capacity = config_.cache_capacity;
  plane_config.seed = config_.seed;
  caches_ = make_cache_plane(config_.cache_kind, plane_config,
                             config_.use_legacy_caches);
  caches_->set_eviction_observer([this](UserId, ItemId, EntryTag tag) {
    --cache_residents_;
    if (tag == EntryTag::kUntagged) {
      ++wasted_evictions_;
      if (measuring_) metrics_.record_wasted_prefetch();
      if (telemetry_) telemetry_->registry().add(tele_.wasted_evictions);
      // Waste feedback is dynamics, not just metrics: the governor learns
      // from warmup evictions too.
      if (config_.governor) config_.governor->on_prefetch_wasted();
    }
  });
  for (std::size_t u = 0; u < config_.num_users; ++u) {
    refresh_estimate(static_cast<UserId>(u));
  }
  if (telemetry_) setup_telemetry();
}

void StackRuntime::setup_telemetry() {
  TelemetryRegistry& reg = telemetry_->registry();
  tele_.requests = reg.register_counter("req.count");
  tele_.hits = reg.register_counter("req.hit");
  tele_.misses = reg.register_counter("req.miss");
  tele_.inflight_attaches = reg.register_counter("req.inflight_attach");
  tele_.demand_fetches = reg.register_counter("fetch.demand");
  tele_.prefetch_fetches = reg.register_counter("fetch.prefetch");
  tele_.prefetch_deferred = reg.register_counter("pf.deferred");
  tele_.prefetch_throttled = reg.register_counter("pf.throttled");
  tele_.wasted_evictions = reg.register_counter("cache.wasted_evictions");
  tele_.link_queue = reg.register_gauge("link.queue_depth", "jobs");
  tele_.link_util = reg.register_gauge("link.util_ewma", "ratio");
  tele_.link_depth_ewma = reg.register_gauge("link.depth_ewma", "jobs");
  tele_.link_slowdown = reg.register_gauge("link.slowdown_ewma", "ratio");
  tele_.gov_state = reg.register_gauge("gov.state", "state");
  tele_.gov_depth_limit = reg.register_gauge("gov.depth_limit", "items");
  tele_.inflight_demand = reg.register_gauge("inflight.demand", "transfers");
  tele_.inflight_prefetch =
      reg.register_gauge("inflight.prefetch", "transfers");
  tele_.cache_residents = reg.register_gauge("cache.residents", "items");
  tele_.pred_contexts = reg.register_gauge("pred.contexts", "contexts");
  tele_.pred_halvings = reg.register_gauge("pred.halvings", "count");
  // Gauge refresh runs only at sample instants (cold relative to the
  // request path) and reads state the runtime already maintains — no
  // fleet-wide walks, no mutation, no allocation.
  telemetry_->set_gauge_source([this](TelemetryRegistry& r) {
    r.set_gauge(tele_.link_queue,
                static_cast<double>(server_.active_jobs()));
    const LoadSignals& s = sensor_.signals();
    r.set_gauge(tele_.link_util, s.utilization);
    r.set_gauge(tele_.link_depth_ewma, s.queue_depth);
    r.set_gauge(tele_.link_slowdown, s.slowdown);
    if (config_.governor != nullptr) {
      r.set_gauge(tele_.gov_state, config_.governor->state_gauge());
      r.set_gauge(tele_.gov_depth_limit,
                  static_cast<double>(config_.governor->depth_limit(
                      config_.max_prefetch_per_request)));
    }
    r.set_gauge(tele_.inflight_demand,
                static_cast<double>(inflight_demand_total_));
    r.set_gauge(tele_.inflight_prefetch,
                static_cast<double>(inflight_prefetch_total_));
    r.set_gauge(tele_.cache_residents,
                static_cast<double>(cache_residents_));
    r.set_gauge(tele_.pred_contexts,
                static_cast<double>(predictor_.context_count()));
    r.set_gauge(tele_.pred_halvings,
                static_cast<double>(predictor_.counter_halvings()));
  });
  telemetry_->seal();
}

void StackRuntime::refresh_estimate(UserId user) {
  const double e = caches_->estimate(user, config_.estimator_model);
  estimate_sum_ += e - estimate_cache_[user];
  estimate_cache_[user] = e;
}

void StackRuntime::begin_measurement() {
  if constexpr (kAuditBuild) {
    AuditReport report;
    audit(report);
    report.require();
  }
  measuring_ = true;
  metrics_.reset();
  server_.reset_stats();
  // Warmup evictions belong to the warmup, like every other metric.
  wasted_evictions_ = 0;
  throttled_prefetches_ = 0;
  // Peaks are per-window metrics; the sensor's smoothed estimates keep
  // their learned state across the boundary (they are dynamics).
  if (sense_) sensor_.reset_peaks();
}

PolicyContext StackRuntime::current_context() const {
  PolicyContext ctx;
  ctx.params.bandwidth = config_.bandwidth;
  ctx.params.mean_item_size = config_.item_size;
  ctx.params.cache_items = static_cast<double>(config_.cache_capacity);
  ctx.params.request_rate =
      (total_requests_ >= 100 && sim_.now() > 1.0)
          ? static_cast<double>(total_requests_) / sim_.now()
          : config_.lambda_prior;
  ctx.params.hit_ratio = std::clamp(
      estimate_sum_ / static_cast<double>(config_.num_users), 0.0, 0.999);
  return ctx;
}

void StackRuntime::flush_pending_prefetches(UserId user) {
  std::vector<ItemId> batch = std::move(pending_prefetches_[user]);
  pending_prefetches_[user].clear();
  for (ItemId item : batch) {
    if (caches_->contains(user, item)) continue;
    if (inflight_.contains(inflight_key(user, item))) continue;
    submit_retrieval(user, item, /*is_prefetch=*/true);
  }
}

void StackRuntime::submit_retrieval(UserId user, ItemId item,
                                    bool is_prefetch) {
  if (config_.retrieval_observer) {
    config_.retrieval_observer(user, item, is_prefetch);
  }
  Inflight& entry = inflight_.get_or_insert(inflight_key(user, item));
  entry.is_prefetch = is_prefetch;
  if (!is_prefetch) ++demand_inflight_[user];
  if (is_prefetch) {
    ++inflight_prefetch_total_;
  } else {
    ++inflight_demand_total_;
  }
  if (telemetry_) {
    telemetry_->registry().add(is_prefetch ? tele_.prefetch_fetches
                                           : tele_.demand_fetches);
    entry.span = telemetry_->spans().open(
        is_prefetch ? SpanTracer::SpanKind::kPrefetchFetch
                    : SpanTracer::SpanKind::kDemandFetch,
        sim_.now(), user, item);
  }
  server_.submit(config_.item_size, [this, user, item,
                                     is_prefetch](const TransferResult& r) {
    if (sense_) {
      sensor_.observe_completion(sim_.now(), r.sojourn(),
                                 config_.item_size / config_.bandwidth);
      sensor_.observe_queue(sim_.now(), server_.active_jobs());
    }
    // Re-read measuring_ at completion: a retrieval submitted during warmup
    // that lands inside the measurement window counts toward retrieval
    // metrics, matching the server stats (which are reset at the warmup
    // boundary and see the same completion).
    if (measuring_) {
      if (is_prefetch) {
        metrics_.record_prefetch_retrieval(r.sojourn());
      } else {
        metrics_.record_demand_retrieval(r.sojourn());
      }
    }
    const Inflight info = inflight_.take(inflight_key(user, item));
    if (is_prefetch) {
      --inflight_prefetch_total_;
    } else {
      --inflight_demand_total_;
    }
    if (is_prefetch) {
      if (info.waiter_times.empty() && !info.demand_promoted) {
        caches_->admit_prefetch(user, item);
      } else {
        caches_->admit_prefetch_accessed(user, item);
      }
    } else {
      caches_->admit_demand(user, item);
    }
    ++cache_residents_;
    refresh_estimate(user);
    if (measuring_) {
      for (double t0 : info.waiter_times) {
        if (is_prefetch) {
          metrics_.record_inflight_hit(sim_.now() - t0);
        } else {
          metrics_.record_miss(sim_.now() - t0);
        }
      }
    }
    if (telemetry_) {
      SpanTracer& spans = telemetry_->spans();
      spans.close(info.span, sim_.now());
      // Waits are reconstructed here from their recorded start instants
      // (waiter_times only accumulates inside the measurement window, so
      // wait spans cover the measured run, like the wait metrics).
      for (double t0 : info.waiter_times) {
        spans.complete(is_prefetch ? SpanTracer::SpanKind::kInflightWait
                                   : SpanTracer::SpanKind::kDemandWait,
                       t0, sim_.now(), user, item);
      }
      // Completions also advance the sampling clock: the drain tail after
      // the last request still produces queue-depth samples.
      telemetry_->maybe_sample(sim_.now());
    }
    // A prefetch that a demand miss attached to holds the link like a
    // demand fetch (the user is blocked on it).
    const bool held_link = !is_prefetch || info.demand_promoted;
    if (held_link && --demand_inflight_[user] == 0) {
      flush_pending_prefetches(user);
    }
  });
  // Observe the arrival after the job entered the link (busy for sure).
  if (sense_) sensor_.observe_queue(sim_.now(), server_.active_jobs());
}

void StackRuntime::handle_request(UserId user, ItemId item) {
  SPECPF_EXPECTS(user < config_.num_users);
  ++total_requests_;
  if (telemetry_) {
    telemetry_->registry().add(tele_.requests);
    // The sampling clock piggybacks on instants the runtime already
    // visits — never its own events — so the cadence is "the first
    // arrival/completion at-or-after each interval boundary".
    telemetry_->maybe_sample(sim_.now());
  }
  switch (caches_->access(user, item)) {
    case AccessOutcome::kHitTagged:
      if (measuring_) metrics_.record_hit();
      if (telemetry_) telemetry_->registry().add(tele_.hits);
      break;
    case AccessOutcome::kHitUntagged:
      // First touch of a landed prefetch — the precision signal the
      // confidence governor learns from.
      if (config_.governor) config_.governor->on_prefetch_useful();
      if (measuring_) metrics_.record_hit();
      if (telemetry_) telemetry_->registry().add(tele_.hits);
      break;
    case AccessOutcome::kMiss: {
      if (telemetry_) telemetry_->registry().add(tele_.misses);
      if (Inflight* fl = inflight_.find(inflight_key(user, item))) {
        if (measuring_) fl->waiter_times.push_back(sim_.now());
        if (telemetry_) telemetry_->registry().add(tele_.inflight_attaches);
        if (fl->is_prefetch && !fl->demand_promoted &&
            config_.governor) {
          // The demand stream caught up with a live prefetch: useful.
          config_.governor->on_prefetch_useful();
        }
        if (fl->is_prefetch && !fl->demand_promoted) {
          // Promote: the user now waits on this transfer, so it must defer
          // prefetch dispatch exactly like a demand fetch (paper §1's
          // idle-link rule). Promotion is independent of measuring_ — it
          // changes dynamics, not just metrics.
          fl->demand_promoted = true;
          ++demand_inflight_[user];
        }
      } else {
        submit_retrieval(user, item, /*is_prefetch=*/false);
        if (measuring_) {
          inflight_.get_or_insert(inflight_key(user, item))
              .waiter_times.push_back(sim_.now());
        }
      }
      break;
    }
  }
  refresh_estimate(user);

  predictor_.observe(user, item);
  predictor_.predict_into(user, config_.max_prefetch_per_request,
                          prediction_scratch_);
  if (prediction_scratch_.empty()) return;
  viable_scratch_.clear();
  for (const auto& c : prediction_scratch_) {
    if (c.item == item) continue;
    if (caches_->contains(user, c.item)) continue;
    if (inflight_.contains(inflight_key(user, c.item))) continue;
    viable_scratch_.push_back(c);
  }
  if (viable_scratch_.empty()) return;
  const auto selected = policy_.select(viable_scratch_, current_context());
  PrefetchGovernor* governor = config_.governor;
  std::size_t depth_budget = selected.size();
  if (governor) {
    // Gate each policy-selected candidate through the governor. Admission
    // happens at selection time even for deferred prefetches (the token
    // spend / AIMD decision belongs to the moment the decision is made,
    // not the idle instant the transfer dispatches at). The sensor is as
    // fresh as the last submission/completion — jobs only change at those
    // events, and deliberately no extra observation happens here: the
    // governed and ungoverned runs must make the *same* observation
    // sequence, so the noop governor stays bit-identical to ungoverned
    // including the sensor peaks (EWMA composition is not bit-invariant
    // under resampling).
    depth_budget = std::min(
        depth_budget, governor->depth_limit(config_.max_prefetch_per_request));
  }
  std::size_t admitted = 0;
  for (const auto& c : selected) {
    if (governor) {
      if (admitted >= depth_budget ||
          !governor->admit(sim_.now(), user, c, config_.item_size,
                           sensor_.signals())) {
        ++throttled_prefetches_;
        if (telemetry_) telemetry_->registry().add(tele_.prefetch_throttled);
        continue;
      }
    }
    ++admitted;
    if (demand_inflight_[user] > 0) {
      pending_prefetches_[user].push_back(c.item);
      if (telemetry_) telemetry_->registry().add(tele_.prefetch_deferred);
    } else {
      submit_retrieval(user, c.item, /*is_prefetch=*/true);
    }
  }
}

StackAggregates StackRuntime::aggregates() const {
  const CachePlaneTotals totals = caches_->totals(config_.estimator_model);
  StackAggregates agg;
  agg.hprime_sum = totals.hprime_sum;
  agg.prefetch_inserts = totals.prefetch_inserts;
  agg.prefetch_first_uses = totals.prefetch_first_uses;
  agg.wasted_evictions = wasted_evictions_;
  agg.num_users = config_.num_users;
  agg.throttled_prefetches = throttled_prefetches_;
  if (sense_) {
    agg.peak_queue_depth = sensor_.signals().peak_queue_depth;
    agg.peak_slowdown = sensor_.signals().peak_slowdown;
  }
  return agg;
}

ProxySimResult assemble_stack_result(const SimMetrics& metrics,
                                     const ServerStats& horizon_stats,
                                     const StackAggregates& aggregates,
                                     std::string policy_name) {
  ProxySimResult out;
  out.policy = std::move(policy_name);
  out.mean_access_time = metrics.mean_access_time();
  out.access_time_std_error = metrics.access_time_stats().std_error();
  out.access_time_p50 = metrics.access_time_quantile(0.50);
  out.access_time_p95 = metrics.access_time_quantile(0.95);
  out.access_time_p99 = metrics.access_time_quantile(0.99);
  out.hit_ratio = metrics.hit_ratio();
  out.server_utilization = horizon_stats.utilization;
  out.retrieval_time_per_request = metrics.retrieval_time_per_request();
  out.retrievals_per_request = metrics.retrievals_per_request();
  out.requests = metrics.requests();
  out.demand_jobs = metrics.demand_retrievals();
  out.prefetch_jobs = metrics.prefetch_retrievals();
  out.wasted_prefetch_evictions = aggregates.wasted_evictions;
  out.inflight_hits = metrics.inflight_hits();
  out.mean_inflight_wait = metrics.mean_inflight_wait();
  out.mean_demand_sojourn = metrics.mean_demand_sojourn();
  out.hprime_estimate =
      aggregates.hprime_sum / static_cast<double>(aggregates.num_users);
  out.prefetch_useful_fraction =
      aggregates.prefetch_inserts
          ? static_cast<double>(aggregates.prefetch_first_uses) /
                static_cast<double>(aggregates.prefetch_inserts)
          : 0.0;
  out.throttled_prefetches = aggregates.throttled_prefetches;
  out.peak_queue_depth = aggregates.peak_queue_depth;
  out.peak_slowdown = aggregates.peak_slowdown;
  return out;
}

ProxySimResult StackRuntime::finalize(const ServerStats& horizon_stats,
                                      std::string policy_name) const {
  if constexpr (kAuditBuild) {
    AuditReport report;
    audit(report);
    report.require();
  }
  return assemble_stack_result(metrics_, horizon_stats, aggregates(),
                               std::move(policy_name));
}

void StackRuntime::audit(AuditReport& report) const {
  const AuditScope scope(report, "StackRuntime");
  // In-flight bookkeeping: keys well-formed, promotion flags consistent,
  // and per-user demand counts re-derived from scratch.
  std::vector<int> derived_demand(config_.num_users, 0);
  inflight_.for_each([&](std::uint64_t key, const Inflight& fl) {
    const auto user = static_cast<std::uint32_t>(key >> 32);
    if (!report.check(user < config_.num_users,
                      "in-flight key names user " + std::to_string(user) +
                          " outside the fleet")) {
      return;
    }
    report.check(fl.is_prefetch || !fl.demand_promoted,
                 "demand transfer marked demand_promoted (user " +
                     std::to_string(user) + ")");
    report.check(!fl.is_prefetch || fl.waiter_times.empty() ||
                     fl.demand_promoted,
                 "prefetch with waiters was never promoted (user " +
                     std::to_string(user) + ")");
    if (!fl.is_prefetch || fl.demand_promoted) ++derived_demand[user];
  });
  for (std::uint32_t u = 0; u < config_.num_users; ++u) {
    report.check(demand_inflight_[u] == derived_demand[u],
                 "user " + std::to_string(u) + ": demand_inflight_ says " +
                     std::to_string(demand_inflight_[u]) +
                     " but the in-flight index holds " +
                     std::to_string(derived_demand[u]) +
                     " link-holding transfers");
    report.check(pending_prefetches_[u].empty() || demand_inflight_[u] > 0,
                 "user " + std::to_string(u) +
                     " defers prefetches with no blocking demand fetch");
  }
  // Cached ĥ' estimates: each user's cache must be bit-equal to a fresh
  // recomputation (refresh_estimate runs after every mutation), and the
  // incrementally-maintained sum within accumulation tolerance of the
  // exact one.
  double exact_sum = 0.0;
  for (std::uint32_t u = 0; u < config_.num_users; ++u) {
    const double fresh = caches_->estimate(u, config_.estimator_model);
    report.check(estimate_cache_[u] == fresh,
                 "user " + std::to_string(u) +
                     ": cached h' estimate is stale");
    exact_sum += estimate_cache_[u];
  }
  const double tolerance =
      1e-7 * (1.0 + static_cast<double>(config_.num_users));
  report.check(std::abs(estimate_sum_ - exact_sum) <= tolerance,
               "running h' sum drifted " +
                   std::to_string(std::abs(estimate_sum_ - exact_sum)) +
                   " from the exact sum");
  // Telemetry occupancy counters: rederive the maintained O(1) gauges from
  // the structures they summarize.
  std::uint64_t derived_prefetch = 0;
  std::uint64_t derived_demand_total = 0;
  inflight_.for_each([&](std::uint64_t, const Inflight& fl) {
    if (fl.is_prefetch) {
      ++derived_prefetch;
    } else {
      ++derived_demand_total;
    }
  });
  report.check(inflight_demand_total_ == derived_demand_total,
               "inflight_demand_total_ says " +
                   std::to_string(inflight_demand_total_) + " but the index holds " +
                   std::to_string(derived_demand_total));
  report.check(inflight_prefetch_total_ == derived_prefetch,
               "inflight_prefetch_total_ says " +
                   std::to_string(inflight_prefetch_total_) +
                   " but the index holds " + std::to_string(derived_prefetch));
  std::uint64_t derived_residents = 0;
  for (std::uint32_t u = 0; u < config_.num_users; ++u) {
    derived_residents += caches_->size(u);
  }
  report.check(cache_residents_ == derived_residents,
               "cache_residents_ says " + std::to_string(cache_residents_) +
                   " but the fleet holds " +
                   std::to_string(derived_residents) + " entries");
  // Structural sweeps of the planes and the engine this slice runs on.
  inflight_.audit(report);
  caches_->audit(report);
  predictor_.audit(report);
  sim_.audit(report);
  if (telemetry_ != nullptr) telemetry_->audit(report);
}

}  // namespace specpf
