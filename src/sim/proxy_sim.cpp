#include "sim/proxy_sim.hpp"

#include <functional>

#include "des/simulator.hpp"
#include "predict/predictor_plane.hpp"
#include "sim/stack_runtime.hpp"
#include "util/contract.hpp"
#include "workload/request_stream.hpp"

namespace specpf {

void ProxySimConfig::validate() const {
  SPECPF_EXPECTS(num_users >= 1);
  SPECPF_EXPECTS(bandwidth > 0.0);
  SPECPF_EXPECTS(session_rate_per_user > 0.0);
  SPECPF_EXPECTS(think_time_mean > 0.0);
  SPECPF_EXPECTS(item_size > 0.0);
  SPECPF_EXPECTS(cache_capacity >= 1);
  SPECPF_EXPECTS(max_prefetch_per_request >= 1);
  SPECPF_EXPECTS(duration > 0.0);
  SPECPF_EXPECTS(warmup >= 0.0);
}

namespace {

std::unique_ptr<PredictorPlane> make_predictor(const ProxySimConfig& config,
                                               const SessionGraph& graph) {
  PredictorPlaneConfig plane_config;
  plane_config.num_users = config.num_users;
  plane_config.graph = &graph;
  return make_predictor_plane(config.predictor_kind, plane_config,
                              config.use_legacy_predictors);
}

}  // namespace

ProxySimResult run_proxy_sim(const ProxySimConfig& config,
                             PrefetchPolicy& policy) {
  config.validate();

  Rng root(config.seed);
  SessionGraph graph(config.graph, root.substream(0).next_u64());
  auto predictor = make_predictor(config, graph);

  // Analytic fallback request-rate estimate until enough data accumulates:
  // mean session length L = 1/exit_p; cycle = gap + (L-1)·think.
  const double session_len = 1.0 / config.graph.exit_probability;
  const double cycle = 1.0 / config.session_rate_per_user +
                       (session_len - 1.0) * config.think_time_mean;

  StackRuntimeConfig runtime_config;
  runtime_config.bandwidth = config.bandwidth;
  runtime_config.item_size = config.item_size;
  runtime_config.num_users = config.num_users;
  runtime_config.cache_capacity = config.cache_capacity;
  runtime_config.cache_kind = config.cache_kind;
  runtime_config.estimator_model = config.estimator_model;
  runtime_config.max_prefetch_per_request = config.max_prefetch_per_request;
  runtime_config.seed = config.seed;
  runtime_config.lambda_prior =
      static_cast<double>(config.num_users) * session_len / cycle;
  runtime_config.use_tree_inflight = config.use_tree_inflight;
  runtime_config.use_legacy_caches = config.use_legacy_caches;
  runtime_config.telemetry = config.telemetry;

  Simulator sim;
  StackRuntime runtime(sim, *predictor, policy, std::move(runtime_config));
  const double end_time = config.warmup + config.duration;

  std::vector<std::unique_ptr<SessionStream>> streams;
  streams.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    streams.push_back(std::make_unique<SessionStream>(
        graph, config.session_rate_per_user, config.think_time_mean,
        root.substream(200 + u)));
  }

  // One recursive closure per run, captured by reference in the inline
  // engine callbacks.
  std::function<void(UserId)> schedule_next_request =  // lint:allow(std::function)
      [&](UserId user) {
    const Request req = streams[user]->next();
    if (req.time > end_time) return;
    sim.schedule_at(req.time, [&, user, req] {
      runtime.handle_request(user, req.item);
      schedule_next_request(user);
    });
  };
  for (std::size_t u = 0; u < config.num_users; ++u) {
    schedule_next_request(static_cast<UserId>(u));
  }

  if (config.warmup > 0.0) {
    sim.schedule_at(config.warmup, [&] { runtime.begin_measurement(); });
  } else {
    runtime.begin_measurement();
  }
  ServerStats horizon_stats;
  sim.schedule_at(end_time, [&] { horizon_stats = runtime.snapshot_server(); });

  sim.run_until(end_time);
  sim.run();  // drain in-flight transfers

  return runtime.finalize(horizon_stats, policy.name());
}

}  // namespace specpf
