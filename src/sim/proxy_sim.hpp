// Full-stack multi-user proxy simulation: the downstream system a user of
// this library would actually deploy the threshold rule in.
//
// N clients issue session-structured (Markov graph) requests. Each client
// owns a TaggedCache. Misses and prefetches contend on one shared
// processor-sharing server (the paper's network model). A Predictor learns
// the access process online and a PrefetchPolicy decides, per request, what
// to prefetch. System parameters for the policy (λ̂, ĥ', …) are estimated
// online: ĥ' comes from the §4 tagged-entry protocol, λ̂ from the observed
// request count.
//
// Unlike the abstract validation simulator, nothing here is wired to the
// closed forms — hit ratios emerge from real cache contents, eviction
// victims are chosen by the configured replacement policy, and prediction
// errors propagate. This is the testbed for the policy-shootout experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/factory.hpp"
#include "policy/policy.hpp"
#include "predict/factory.hpp"
#include "sim/metrics.hpp"
#include "workload/session_graph.hpp"

namespace specpf {

struct ProxySimConfig {
  std::size_t num_users = 8;
  double bandwidth = 50.0;

  SessionGraphConfig graph;
  double session_rate_per_user = 1.0;  ///< session starts per second
  double think_time_mean = 0.5;        ///< gap between in-session requests
  double item_size = 1.0;              ///< size of every page (units)

  std::size_t cache_capacity = 64;
  /// Eviction policy (the fleet-wide enum from cache/factory.hpp).
  using CacheKind = specpf::CacheKind;
  CacheKind cache_kind = CacheKind::kLru;

  /// Access model (the fleet-wide enum from predict/factory.hpp).
  using PredictorKind = specpf::PredictorKind;
  PredictorKind predictor_kind = PredictorKind::kOracle;

  /// Which interaction model the online ĥ' estimate assumes.
  core::InteractionModel estimator_model = core::InteractionModel::kModelA;

  std::size_t max_prefetch_per_request = 8;

  double duration = 2000.0;
  double warmup = 200.0;
  std::uint64_t seed = 1;

  /// Use the legacy std::map in-flight backend (reference for differential
  /// tests and the perf_stack baseline; the flat hash is the default).
  bool use_tree_inflight = false;

  /// Use the legacy per-user TaggedCache fleet instead of the slab-backed
  /// arena cache plane (reference for differential tests; the arena is the
  /// default).
  bool use_legacy_caches = false;

  /// Use the legacy virtual Predictor tables instead of the slab-backed
  /// SoA predictor plane (reference for differential tests and the
  /// perf_stack baseline; the plane is the default).
  bool use_legacy_predictors = false;

  /// Telemetry plane to record into (borrowed; must outlive the run). Pure
  /// observation under the LinkLoadSensor contract: results are
  /// bit-identical with this null or installed. Null = telemetry off.
  class TelemetryPlane* telemetry = nullptr;

  void validate() const;
};

struct ProxySimResult {
  std::string policy;
  double mean_access_time = 0.0;
  double access_time_std_error = 0.0;
  /// Access-time distribution tails (log2-bin interpolated; ~1e-9 means
  /// "instant cache hit" — see SimMetrics::access_time_quantile).
  double access_time_p50 = 0.0;
  double access_time_p95 = 0.0;
  double access_time_p99 = 0.0;
  double hit_ratio = 0.0;
  double server_utilization = 0.0;
  double retrieval_time_per_request = 0.0;
  double retrievals_per_request = 0.0;
  double hprime_estimate = 0.0;        ///< final online ĥ' (per model)
  double prefetch_useful_fraction = 0.0;  ///< prefetches touched before evict
  std::uint64_t requests = 0;
  std::uint64_t demand_jobs = 0;
  std::uint64_t prefetch_jobs = 0;
  std::uint64_t wasted_prefetch_evictions = 0;
  std::uint64_t inflight_hits = 0;    ///< hits that waited on a live prefetch
  double mean_inflight_wait = 0.0;
  double mean_demand_sojourn = 0.0;
  /// Prefetches the policy selected but the control plane refused (0 when
  /// ungoverned).
  std::uint64_t throttled_prefetches = 0;
  /// Proxy-link load-sensor peaks over the measurement window — smoothed
  /// jobs-in-system and sojourn/unloaded-service-time (0 when the sensor
  /// is off; see control/load_sensor.hpp).
  double peak_queue_depth = 0.0;
  double peak_slowdown = 0.0;
};

/// Runs one replication with the given policy (policy state persists across
/// the run; pass a fresh instance per run).
ProxySimResult run_proxy_sim(const ProxySimConfig& config,
                             PrefetchPolicy& policy);

}  // namespace specpf
