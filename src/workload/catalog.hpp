// Item catalog: the universe of remotely stored items with sizes and a
// popularity law. Models the 2001-era web/file-server populations the paper
// targets (Zipf popularity, optionally heavy-tailed sizes).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf {

struct CatalogConfig {
  std::size_t num_items = 1000;
  double zipf_alpha = 0.8;  ///< popularity skew; 0.6–0.9 typical for web

  /// Item size model. kFixed matches the paper's single s̄; the others model
  /// realistic web object sizes for the full-stack experiments.
  enum class SizeModel { kFixed, kExponential, kBoundedPareto } size_model =
      SizeModel::kFixed;
  double mean_size = 1.0;
  double pareto_shape = 1.2;   ///< used by kBoundedPareto
  double pareto_max_ratio = 1000.0;  ///< hi/lo for bounded Pareto
};

class Catalog {
 public:
  /// Materialises per-item sizes (seeded) and the popularity sampler.
  Catalog(const CatalogConfig& config, std::uint64_t seed);

  std::size_t size() const { return sizes_.size(); }
  double item_size(std::uint64_t item) const;

  /// Stationary access probability of `item` under the IRM.
  double popularity(std::uint64_t item) const;

  /// Samples one item according to popularity.
  std::uint64_t sample(Rng& rng) const;

  /// Mean item size weighted by popularity — the s̄ the closed forms see
  /// when requests follow the IRM.
  double popularity_weighted_mean_size() const;

  /// Unweighted mean size.
  double mean_size() const;

  /// Number of most-popular items whose popularity sums to >= mass.
  std::size_t items_covering(double mass) const;

 private:
  std::vector<double> sizes_;
  ZipfDist popularity_;
};

}  // namespace specpf
