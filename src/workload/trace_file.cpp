#include "workload/trace_file.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/contract.hpp"
#include "util/math.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SPECPF_TRACE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SPECPF_TRACE_MMAP 0
#include <fstream>
#endif

namespace specpf {
namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw std::runtime_error("trace file " + path + ": " + why);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint from [p, end). Returns the advanced pointer, or
/// nullptr on truncation / an encoding wider than 64 bits.
const std::uint8_t* get_varint(const std::uint8_t* p, const std::uint8_t* end,
                               std::uint64_t* out) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (p != end) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      *out = v;
      return p;
    }
    shift += 7;
    if (shift >= 64) return nullptr;
  }
  return nullptr;
}

}  // namespace

std::uint64_t trace_time_to_micros(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) {
    throw std::runtime_error(
        "trace time must be finite and non-negative, got " +
        std::to_string(seconds));
  }
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

// ---------------------------------------------------------------------------
// TraceFileWriter

TraceFileWriter::TraceFileWriter(const std::string& path, Options options)
    : path_(path), chunk_records_(options.chunk_records) {
  SPECPF_EXPECTS(chunk_records_ >= 1);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  // Placeholder header; finish() seeks back and rewrites it with the real
  // counts once they are known.
  TraceFileHeader blank{};
  std::memcpy(blank.magic, kTraceFileMagic, sizeof(blank.magic));
  if (std::fwrite(&blank, sizeof(blank), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("write failed: " + path);
  }
  // Worst-case record is 3 maximal varints (10 B each).
  chunk_buf_.reserve(chunk_records_ * 30);
}

TraceFileWriter::~TraceFileWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor cleanup: swallow, the file is already suspect.
    if (file_ != nullptr) std::fclose(file_);
    file_ = nullptr;
  }
}

void TraceFileWriter::append(const TraceRecord& record) {
  SPECPF_EXPECTS(!finished_);
  const std::uint64_t us = trace_time_to_micros(record.time);
  if (record_count_ > 0 && us < prev_us_) {
    throw std::runtime_error(
        "trace write: time goes backwards at record " +
        std::to_string(record_count_) + " (" + std::to_string(us) +
        "us after " + std::to_string(prev_us_) + "us)");
  }
  if (chunk_count_ == 0) chunk_base_us_ = us;
  if (record_count_ == 0) first_us_ = us;
  // Within a chunk the first delta is against the chunk's own base time,
  // so chunks decode independently.
  const std::uint64_t delta = chunk_count_ == 0 ? us - chunk_base_us_
                                                : us - prev_us_;
  put_varint(chunk_buf_, delta);
  put_varint(chunk_buf_, record.user);
  put_varint(chunk_buf_, record.item);
  users_.insert(record.user);
  items_.insert(record.item);
  prev_us_ = us;
  ++record_count_;
  if (++chunk_count_ == chunk_records_) flush_chunk();
}

void TraceFileWriter::flush_chunk() {
  if (chunk_count_ == 0) return;
  SPECPF_ASSERT(chunk_buf_.size() <=
                std::numeric_limits<std::uint32_t>::max());
  TraceChunkInfo info{};
  info.offset = write_offset_;
  info.bytes = static_cast<std::uint32_t>(chunk_buf_.size());
  info.records = chunk_count_;
  info.base_time_us = chunk_base_us_;
  info.last_time_us = prev_us_;
  if (std::fwrite(chunk_buf_.data(), 1, chunk_buf_.size(), file_) !=
      chunk_buf_.size()) {
    throw std::runtime_error("write failed: " + path_);
  }
  index_.push_back(info);
  write_offset_ += chunk_buf_.size();
  chunk_buf_.clear();
  chunk_count_ = 0;
}

void TraceFileWriter::finish() {
  if (finished_) return;
  SPECPF_ASSERT(file_ != nullptr);
  flush_chunk();
  TraceFileHeader header{};
  std::memcpy(header.magic, kTraceFileMagic, sizeof(header.magic));
  header.version = kTraceFileVersion;
  header.header_bytes = sizeof(TraceFileHeader);
  header.record_count = record_count_;
  header.chunk_count = index_.size();
  header.chunk_index_offset = write_offset_;
  header.payload_bytes = write_offset_ - sizeof(TraceFileHeader);
  header.first_time_us = record_count_ > 0 ? first_us_ : 0;
  header.last_time_us = record_count_ > 0 ? prev_us_ : 0;
  header.unique_users = users_.size();
  header.unique_items = items_.size();
  header.chunk_target_records = chunk_records_;
  const bool ok =
      (index_.empty() ||
       std::fwrite(index_.data(), sizeof(TraceChunkInfo), index_.size(),
                   file_) == index_.size()) &&
      std::fseek(file_, 0, SEEK_SET) == 0 &&
      std::fwrite(&header, sizeof(header), 1, file_) == 1;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  finished_ = true;
  if (!ok || !closed) throw std::runtime_error("write failed: " + path_);
}

std::uint64_t write_trace_file(const std::string& path, TraceSource& source,
                               TraceFileWriter::Options options) {
  TraceFileWriter writer(path, options);
  source.reset();
  TraceRecord record;
  while (source.next(&record)) writer.append(record);
  writer.finish();
  return writer.records_written();
}

// ---------------------------------------------------------------------------
// TraceFile

TraceFile::TraceFile(const std::string& path) : path_(path) {
#if SPECPF_TRACE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open for read: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("mmap failed: " + path);
    }
    map_ = map;
    data_ = static_cast<const std::uint8_t*>(map);
    // Cursors scan chunk payloads front to back; tell the kernel so
    // readahead stays aggressive and evicted pages are not re-fetched.
    ::madvise(map_, size_, MADV_SEQUENTIAL);
  }
  ::close(fd);
#else
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  fallback_.assign(std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>());
  data_ = fallback_.data();
  size_ = fallback_.size();
#endif

  if (size_ < sizeof(TraceFileHeader)) {
    corrupt(path_, "too small for header (" + std::to_string(size_) + " bytes)");
  }
  std::memcpy(&header_, data_, sizeof(header_));
  if (std::memcmp(header_.magic, kTraceFileMagic, sizeof(kTraceFileMagic)) !=
      0) {
    corrupt(path_, "bad magic (not an .spt trace)");
  }
  if (header_.version != kTraceFileVersion) {
    corrupt(path_, "unsupported version " + std::to_string(header_.version));
  }
  if (header_.header_bytes != sizeof(TraceFileHeader)) {
    corrupt(path_, "bad header_bytes " + std::to_string(header_.header_bytes));
  }
  if (header_.chunk_count >
      (size_ - sizeof(TraceFileHeader)) / sizeof(TraceChunkInfo)) {
    corrupt(path_, "chunk count overflows file size");
  }
  const std::uint64_t index_bytes =
      header_.chunk_count * sizeof(TraceChunkInfo);
  if (header_.chunk_index_offset < sizeof(TraceFileHeader) ||
      header_.chunk_index_offset + index_bytes != size_) {
    corrupt(path_, "chunk index does not end at end of file (truncated?)");
  }
  if (header_.payload_bytes !=
      header_.chunk_index_offset - sizeof(TraceFileHeader)) {
    corrupt(path_, "payload_bytes disagrees with chunk index offset");
  }
  if (header_.record_count == 0 &&
      (header_.chunk_count != 0 || header_.first_time_us != 0 ||
       header_.last_time_us != 0)) {
    corrupt(path_, "empty trace with non-empty metadata");
  }
  if (header_.record_count > 0 && header_.chunk_count == 0) {
    corrupt(path_, "records but no chunks");
  }

  // The index lands at an arbitrary (payload-dependent) offset, so copy it
  // out rather than aliasing a possibly misaligned mapping.
  chunks_.resize(header_.chunk_count);
  if (!chunks_.empty()) {
    std::memcpy(chunks_.data(), data_ + header_.chunk_index_offset,
                index_bytes);
  }
  std::uint64_t expected_offset = sizeof(TraceFileHeader);
  std::uint64_t total_records = 0;
  std::uint64_t prev_last_us = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const TraceChunkInfo& c = chunks_[i];
    const std::string at = "chunk " + std::to_string(i);
    if (c.records == 0) corrupt(path_, at + ": zero records");
    if (c.offset != expected_offset) {
      corrupt(path_, at + ": payload not contiguous");
    }
    if (c.base_time_us > c.last_time_us) {
      corrupt(path_, at + ": base time after last time");
    }
    if (i > 0 && c.base_time_us < prev_last_us) {
      corrupt(path_, at + ": base time before previous chunk's last");
    }
    expected_offset += c.bytes;
    total_records += c.records;
    prev_last_us = c.last_time_us;
  }
  if (expected_offset != header_.chunk_index_offset) {
    corrupt(path_, "chunk payloads do not end at chunk index");
  }
  if (total_records != header_.record_count) {
    corrupt(path_, "chunk record counts disagree with header");
  }
  if (header_.record_count > 0) {
    if (chunks_.front().base_time_us != header_.first_time_us ||
        chunks_.back().last_time_us != header_.last_time_us) {
      corrupt(path_, "header time span disagrees with chunk index");
    }
  }
}

TraceFile::~TraceFile() {
#if SPECPF_TRACE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

double TraceFile::duration() const {
  if (header_.record_count < 2) return 0.0;
  return trace_micros_to_seconds(header_.last_time_us) -
         trace_micros_to_seconds(header_.first_time_us);
}

double TraceFile::mean_request_rate() const {
  return safe_div(static_cast<double>(header_.record_count), duration(), 0.0);
}

double TraceFile::bytes_per_record() const {
  return safe_div(static_cast<double>(header_.payload_bytes),
                  static_cast<double>(header_.record_count), 0.0);
}

Trace TraceFile::read_all() const {
  std::vector<TraceRecord> records;
  records.reserve(header_.record_count);
  TraceCursor cursor(*this);
  TraceRecord r;
  while (cursor.next(&r)) records.push_back(r);
  return Trace{std::move(records)};
}

// ---------------------------------------------------------------------------
// TraceCursor

TraceCursor::TraceCursor(const TraceFile& file) : file_(&file) {}

TraceCursor::TraceCursor(const TraceFile& file, std::uint32_t shard,
                         std::uint32_t num_shards)
    : file_(&file), shard_(shard), num_shards_(num_shards) {
  SPECPF_EXPECTS(num_shards >= 1);
  SPECPF_EXPECTS(shard < num_shards);
}

void TraceCursor::reset() {
  pos_ = nullptr;
  end_ = nullptr;
  next_chunk_ = 0;
  prev_us_ = 0;
  decoded_ = 0;
  remaining_ = 0;
}

bool TraceCursor::next_raw(TraceRecord* out) {
  while (remaining_ == 0) {
    if (next_chunk_ == file_->num_chunks()) return false;
    const TraceChunkInfo& c = file_->chunk(next_chunk_);
    pos_ = file_->data() + c.offset;
    end_ = pos_ + c.bytes;
    prev_us_ = c.base_time_us;
    remaining_ = c.records;
    ++next_chunk_;
  }
  std::uint64_t delta = 0;
  std::uint64_t user = 0;
  std::uint64_t item = 0;
  const std::uint8_t* p = get_varint(pos_, end_, &delta);
  if (p != nullptr) p = get_varint(p, end_, &user);
  if (p != nullptr) p = get_varint(p, end_, &item);
  if (p == nullptr) {
    corrupt(file_->path(), "chunk " + std::to_string(next_chunk_ - 1) +
                               ": truncated or overlong varint");
  }
  if (user > std::numeric_limits<std::uint32_t>::max()) {
    corrupt(file_->path(), "chunk " + std::to_string(next_chunk_ - 1) +
                               ": user id exceeds 32 bits");
  }
  pos_ = p;
  prev_us_ += delta;
  --remaining_;
  if (remaining_ == 0) {
    const TraceChunkInfo& c = file_->chunk(next_chunk_ - 1);
    if (pos_ != end_) {
      corrupt(file_->path(), "chunk " + std::to_string(next_chunk_ - 1) +
                                 ": payload length disagrees with index");
    }
    if (prev_us_ != c.last_time_us) {
      corrupt(file_->path(), "chunk " + std::to_string(next_chunk_ - 1) +
                                 ": decoded end time disagrees with index");
    }
  }
  out->time = trace_micros_to_seconds(prev_us_);
  out->user = static_cast<std::uint32_t>(user);
  out->item = item;
  ++decoded_;
  return true;
}

bool TraceCursor::next(TraceRecord* out) {
  if (num_shards_ == 0) return next_raw(out);
  while (next_raw(out)) {
    if (out->user % num_shards_ == shard_) return true;
  }
  return false;
}

}  // namespace specpf
