#include "workload/trace_stream.hpp"

namespace specpf {

// Out-of-line vtable anchor so every translation unit shares one vtable.
TraceSource::~TraceSource() = default;

}  // namespace specpf
