// ProgressTraceSource — a pass-through TraceSource decorator that prints a
// wall-clock heartbeat to stderr while a long replay streams its records:
// pass number, records fed this pass, feed rate, and peak RSS. The replay
// frontends make two sequential passes over a source (metadata, then
// schedule), so a heartbeat on the source is the one place that sees every
// record both passes touch — no hooks inside the engines needed.
//
// The decorator is wall-clock-only instrumentation: it forwards records
// unchanged, draws no randomness, and touches no simulation state, so
// results are bit-identical with or without it (the same source-decorator
// purity argument the telemetry plane makes for gauges). The steady_clock
// read is amortized: the clock is consulted every `check_every` records,
// not per record.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "util/mem.hpp"
#include "workload/trace_stream.hpp"

namespace specpf {

class ProgressTraceSource final : public TraceSource {
 public:
  /// `inner` is borrowed and must outlive the decorator. `label` names the
  /// stream in the heartbeat lines (e.g. "replay"); `interval_seconds` is
  /// the minimum wall-clock spacing between lines.
  ProgressTraceSource(TraceSource& inner, const char* label,
                      double interval_seconds = 2.0)
      : inner_(&inner), label_(label), interval_(interval_seconds) {}

  bool next(TraceRecord* out) override {
    if (!inner_->next(out)) return false;
    ++records_;
    if (records_ % kCheckEvery == 0) maybe_report();
    return true;
  }

  void reset() override {
    inner_->reset();
    ++pass_;
    records_ = 0;
    // Restart the rate window so the first heartbeat of the new pass does
    // not average in the previous pass's feed rate.
    have_mark_ = false;
  }

  std::uint64_t records_this_pass() const noexcept { return records_; }
  /// 1-based once the consumer has reset() for its first scan (both replay
  /// frontends reset before every pass, including the first).
  std::uint64_t pass() const noexcept { return pass_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Clock-check stride: cheap relative to even the fastest record decode,
  /// while still giving sub-second heartbeat granularity at realistic feed
  /// rates (millions of records/sec → several checks per second).
  static constexpr std::uint64_t kCheckEvery = 65536;

  void maybe_report() {
    const Clock::time_point now = Clock::now();
    if (!have_mark_) {
      have_mark_ = true;
      mark_ = now;
      mark_records_ = records_;
      return;
    }
    const double elapsed =
        std::chrono::duration<double>(now - mark_).count();
    if (elapsed < interval_) return;
    const double rate =
        static_cast<double>(records_ - mark_records_) / elapsed;
    const MemoryUsage mem = read_memory_usage();
    std::fprintf(stderr,
                 "[%s] pass %llu: %llu records fed, %.3g rec/s, "
                 "peak rss %.1f MiB\n",
                 label_, static_cast<unsigned long long>(pass_),
                 static_cast<unsigned long long>(records_), rate,
                 static_cast<double>(mem.peak_resident_bytes) /
                     (1024.0 * 1024.0));
    mark_ = now;
    mark_records_ = records_;
  }

  TraceSource* inner_;
  const char* label_;
  double interval_;
  std::uint64_t records_ = 0;
  std::uint64_t pass_ = 0;
  bool have_mark_ = false;
  Clock::time_point mark_{};
  std::uint64_t mark_records_ = 0;
};

}  // namespace specpf
