// Markov session graph: link-structured browsing in the style the paper's
// related work models (Padmanabhan–Mogul dependency graphs, the ETEL
// newspaper's patterned access paths).
//
// Pages are nodes; each node has out-links with transition probabilities
// plus an exit probability. A session starts at an entry page drawn from an
// entry distribution and follows links until exit. Because the generator is
// an explicit first-order Markov chain, the *true* conditional access
// probabilities are known — the oracle predictor reads them directly, which
// lets experiments separate policy quality from predictor quality.
#pragma once

#include <cstdint>
#include <vector>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf {

struct SessionGraphConfig {
  std::size_t num_pages = 200;
  std::size_t out_degree = 4;       ///< links per page
  double link_skew = 1.0;           ///< Zipf skew across a page's links
  double exit_probability = 0.15;   ///< chance each step ends the session
  double entry_skew = 0.8;          ///< Zipf skew of the entry distribution
};

class SessionGraph {
 public:
  SessionGraph(const SessionGraphConfig& config, std::uint64_t seed);

  struct Link {
    std::uint64_t target;
    double probability;  ///< conditional on following *some* link
  };

  std::size_t num_pages() const { return links_.size(); }
  double exit_probability() const { return exit_probability_; }

  /// Out-links of `page`, probabilities summing to 1.
  const std::vector<Link>& links(std::uint64_t page) const;

  /// True next-access distribution given the user is at `page`:
  /// P(next = target) = (1 - exit) * link probability. Does not include the
  /// exit event (probabilities sum to 1 - exit_probability).
  std::vector<Link> next_distribution(std::uint64_t page) const;

  /// Draws an entry page for a new session.
  std::uint64_t sample_entry(Rng& rng) const;

  /// Draws the next page from `page`; returns false when the session exits.
  bool sample_next(std::uint64_t page, Rng& rng, std::uint64_t* next) const;

  /// Generates one full session (entry + follow-ups).
  std::vector<std::uint64_t> sample_session(Rng& rng,
                                            std::size_t max_length = 256) const;

  /// Stationary-ish popularity: empirical visit frequency from `samples`
  /// simulated sessions (used to size caches in experiments).
  std::vector<double> estimate_popularity(std::uint64_t seed,
                                          std::size_t samples = 20000) const;

 private:
  std::vector<std::vector<Link>> links_;
  double exit_probability_;
  ZipfDist entry_dist_;
};

}  // namespace specpf
