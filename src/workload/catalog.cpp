#include "workload/catalog.hpp"

#include <cmath>

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {

namespace {
std::vector<double> make_sizes(const CatalogConfig& config,
                               std::uint64_t seed) {
  SPECPF_EXPECTS(config.num_items >= 1);
  SPECPF_EXPECTS(config.mean_size > 0.0);
  std::vector<double> sizes(config.num_items, config.mean_size);
  Rng rng(seed);
  switch (config.size_model) {
    case CatalogConfig::SizeModel::kFixed:
      break;
    case CatalogConfig::SizeModel::kExponential: {
      ExponentialDist dist(config.mean_size);
      for (auto& s : sizes) s = dist.sample(rng);
      break;
    }
    case CatalogConfig::SizeModel::kBoundedPareto: {
      // Choose lo so that the bounded-Pareto mean equals mean_size: solve by
      // scaling (mean scales linearly with lo for fixed hi/lo ratio).
      BoundedParetoDist probe(config.pareto_shape, 1.0,
                              config.pareto_max_ratio);
      const double scale = config.mean_size / probe.mean();
      BoundedParetoDist dist(config.pareto_shape, scale,
                             scale * config.pareto_max_ratio);
      for (auto& s : sizes) s = dist.sample(rng);
      break;
    }
  }
  return sizes;
}
}  // namespace

Catalog::Catalog(const CatalogConfig& config, std::uint64_t seed)
    : sizes_(make_sizes(config, seed)),
      popularity_(config.num_items, config.zipf_alpha) {}

double Catalog::item_size(std::uint64_t item) const {
  SPECPF_EXPECTS(item < sizes_.size());
  return sizes_[item];
}

double Catalog::popularity(std::uint64_t item) const {
  SPECPF_EXPECTS(item < sizes_.size());
  return popularity_.pmf(item);
}

std::uint64_t Catalog::sample(Rng& rng) const { return popularity_.sample(rng); }

double Catalog::popularity_weighted_mean_size() const {
  KahanSum sum;
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    sum.add(popularity_.pmf(i) * sizes_[i]);
  }
  return sum.value();
}

double Catalog::mean_size() const {
  KahanSum sum;
  for (double s : sizes_) sum.add(s);
  return sum.value() / static_cast<double>(sizes_.size());
}

std::size_t Catalog::items_covering(double mass) const {
  SPECPF_EXPECTS(mass >= 0.0 && mass <= 1.0);
  double cum = 0.0;
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    cum += popularity_.pmf(i);
    if (cum >= mass) return i + 1;
  }
  return sizes_.size();
}

}  // namespace specpf
