#include "workload/session_graph.hpp"

#include <algorithm>

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {

SessionGraph::SessionGraph(const SessionGraphConfig& config,
                           std::uint64_t seed)
    : exit_probability_(config.exit_probability),
      entry_dist_(config.num_pages, config.entry_skew) {
  SPECPF_EXPECTS(config.num_pages >= 2);
  SPECPF_EXPECTS(config.out_degree >= 1);
  SPECPF_EXPECTS(config.exit_probability > 0.0 &&
                 config.exit_probability <= 1.0);

  Rng rng(seed);
  const std::size_t degree =
      std::min(config.out_degree, config.num_pages - 1);
  // Zipf weights across a page's link slots: first link most likely.
  const double harmonic = generalized_harmonic(degree, config.link_skew);

  links_.resize(config.num_pages);
  for (std::uint64_t page = 0; page < config.num_pages; ++page) {
    auto& out = links_[page];
    out.reserve(degree);
    // Distinct random targets != page.
    while (out.size() < degree) {
      const std::uint64_t target = rng.next_below(config.num_pages);
      if (target == page) continue;
      const bool dup = std::any_of(out.begin(), out.end(), [&](const Link& l) {
        return l.target == target;
      });
      if (dup) continue;
      const double rank = static_cast<double>(out.size() + 1);
      out.push_back(
          Link{target, std::pow(rank, -config.link_skew) / harmonic});
    }
  }
}

const std::vector<SessionGraph::Link>& SessionGraph::links(
    std::uint64_t page) const {
  SPECPF_EXPECTS(page < links_.size());
  return links_[page];
}

std::vector<SessionGraph::Link> SessionGraph::next_distribution(
    std::uint64_t page) const {
  std::vector<Link> out = links(page);
  for (auto& link : out) link.probability *= (1.0 - exit_probability_);
  return out;
}

std::uint64_t SessionGraph::sample_entry(Rng& rng) const {
  return entry_dist_.sample(rng);
}

bool SessionGraph::sample_next(std::uint64_t page, Rng& rng,
                               std::uint64_t* next) const {
  SPECPF_EXPECTS(next != nullptr);
  if (rng.bernoulli(exit_probability_)) return false;
  const auto& out = links(page);
  double u = rng.next_double();
  for (const Link& link : out) {
    if (u < link.probability) {
      *next = link.target;
      return true;
    }
    u -= link.probability;
  }
  *next = out.back().target;  // numerical remainder
  return true;
}

std::vector<std::uint64_t> SessionGraph::sample_session(
    Rng& rng, std::size_t max_length) const {
  std::vector<std::uint64_t> session;
  std::uint64_t page = sample_entry(rng);
  session.push_back(page);
  while (session.size() < max_length) {
    std::uint64_t next = 0;
    if (!sample_next(page, rng, &next)) break;
    session.push_back(next);
    page = next;
  }
  return session;
}

std::vector<double> SessionGraph::estimate_popularity(
    std::uint64_t seed, std::size_t samples) const {
  std::vector<double> counts(num_pages(), 0.0);
  Rng rng(seed);
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::uint64_t page : sample_session(rng)) {
      counts[page] += 1.0;
      total += 1.0;
    }
  }
  if (total > 0.0) {
    for (auto& c : counts) c /= total;
  }
  return counts;
}

}  // namespace specpf
