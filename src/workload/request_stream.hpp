// Request arrival processes. A RequestStream produces the next (time, item)
// pair for one client; the integrated simulator merges streams from multiple
// clients onto the shared server.
#pragma once

#include <cstdint>
#include <memory>

#include "workload/catalog.hpp"
#include "workload/session_graph.hpp"
#include "util/rng.hpp"

namespace specpf {

struct Request {
  double time = 0.0;
  std::uint64_t item = 0;
};

class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Produces the next request; times are strictly non-decreasing.
  virtual Request next() = 0;
};

/// Independent reference model: Poisson arrivals at `rate`, item drawn iid
/// from the catalog popularity on every request. Matches the paper's
/// memoryless multi-user aggregate.
class IrmStream final : public RequestStream {
 public:
  IrmStream(const Catalog& catalog, double rate, Rng rng);
  Request next() override;

 private:
  const Catalog& catalog_;
  ExponentialDist interarrival_;
  Rng rng_;
  double now_ = 0.0;
};

/// Session stream: Poisson *session* arrivals; within a session, pages follow
/// the SessionGraph with a fixed per-page think time. Produces correlated,
/// predictable request sequences (what prefetch predictors exploit).
class SessionStream final : public RequestStream {
 public:
  SessionStream(const SessionGraph& graph, double session_rate,
                double think_time_mean, Rng rng);
  Request next() override;

 private:
  const SessionGraph& graph_;
  ExponentialDist session_gap_;
  ExponentialDist think_;
  Rng rng_;
  double now_ = 0.0;
  bool in_session_ = false;
  std::uint64_t page_ = 0;
};

}  // namespace specpf
