// Compact binary trace format (".spt" — speculative-prefetch trace) and its
// out-of-core reader. This is the on-disk half of the streaming trace
// pipeline: billion-request traces live in a file at ~5-7 bytes/record
// (vs 24 B/record for the in-RAM std::vector<TraceRecord>) and are replayed
// through an mmap'd zero-copy cursor instead of being materialized.
//
// File layout (all integers little-endian, the only byte order the targets
// in CI and the container run):
//
//   ┌────────────────────────────────────────────────────────────┐
//   │ TraceFileHeader (96 B)                                     │
//   │   magic "SPTRACE1", version, record/chunk counts,          │
//   │   chunk-index offset, time span (µs), unique users/items   │
//   ├────────────────────────────────────────────────────────────┤
//   │ chunk 0 payload │ chunk 1 payload │ ... (contiguous)       │
//   │   per record: varint Δtime_µs, varint user, varint item    │
//   ├────────────────────────────────────────────────────────────┤
//   │ chunk index: TraceChunkInfo[chunk_count] (32 B each)       │
//   │   {payload offset, bytes, records, first/last time µs}     │
//   └────────────────────────────────────────────────────────────┘
//
// Timestamps are quantized to integer microseconds (≤ 0.5 µs error) and
// delta-encoded within a chunk: the first record's delta is taken against
// the chunk's own base_time_us, so every chunk decodes independently —
// that is what makes the index "per-shard partitionable": a cursor can
// skip straight to any chunk without decoding its predecessors. Decoding
// is canonical: decode(encode(decode(x))) == decode(x) exactly, which the
// replay differential tests lean on for bit-identity.
//
// Validation philosophy: the writer enforces its invariants with
// SPECPF_EXPECTS (caller bugs), while TraceFile/TraceCursor treat the file
// as untrusted input and throw std::runtime_error with the offending
// offset/chunk on any structural violation — a truncated or bit-flipped
// trace fails loudly at open or at the first corrupt chunk, never by
// feeding garbage records into a simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/flat_hash.hpp"
#include "workload/trace.hpp"
#include "workload/trace_stream.hpp"

namespace specpf {

inline constexpr char kTraceFileMagic[8] = {'S', 'P', 'T', 'R',
                                            'A', 'C', 'E', '1'};
inline constexpr std::uint32_t kTraceFileVersion = 1;
inline constexpr std::size_t kTraceDefaultChunkRecords = 1u << 16;

/// Converts a trace timestamp to the file's microsecond grid (llround —
/// ties away from zero, error ≤ 0.5 µs). Times must be finite and ≥ 0.
std::uint64_t trace_time_to_micros(double seconds);

/// Inverse grid mapping. micros * 1e-6 is a single rounding, so the value
/// is deterministic and decode is idempotent under re-encode.
inline double trace_micros_to_seconds(std::uint64_t micros) {
  return static_cast<double>(micros) * 1e-6;
}

struct TraceFileHeader {
  char magic[8];                     ///< "SPTRACE1"
  std::uint32_t version;             ///< kTraceFileVersion
  std::uint32_t header_bytes;        ///< sizeof(TraceFileHeader)
  std::uint64_t record_count;        ///< total records across all chunks
  std::uint64_t chunk_count;         ///< entries in the chunk index
  std::uint64_t chunk_index_offset;  ///< file offset of the chunk index
  std::uint64_t payload_bytes;       ///< sum of chunk payload bytes
  std::uint64_t first_time_us;       ///< first record time (0 if empty)
  std::uint64_t last_time_us;        ///< last record time (0 if empty)
  std::uint64_t unique_users;
  std::uint64_t unique_items;
  std::uint64_t chunk_target_records;  ///< writer's records-per-chunk target
  std::uint64_t reserved;              ///< zero
};
static_assert(sizeof(TraceFileHeader) == 96, "header layout is part of the format");

struct TraceChunkInfo {
  std::uint64_t offset;        ///< file offset of the chunk payload
  std::uint32_t bytes;         ///< payload length
  std::uint32_t records;       ///< records encoded in the payload (> 0)
  std::uint64_t base_time_us;  ///< time of the chunk's first record
  std::uint64_t last_time_us;  ///< time of the chunk's last record
};
static_assert(sizeof(TraceChunkInfo) == 32, "chunk-index layout is part of the format");

/// Streaming writer: append records in non-decreasing time order, then
/// finish() (writes the chunk index and rewrites the header in place).
/// Appends never buffer more than one chunk, so converting a
/// billion-request stream runs at bounded RSS (plus the unique-user/item
/// tracking sets, which scale with the catalog, not the trace length).
struct TraceWriteOptions {
  std::size_t chunk_records = kTraceDefaultChunkRecords;  ///< ≥ 1
};

class TraceFileWriter {
 public:
  using Options = TraceWriteOptions;

  explicit TraceFileWriter(const std::string& path, Options options = {});
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  /// Appends one record. Throws std::runtime_error if its time regresses
  /// (the format stores non-negative deltas) or is not a finite value ≥ 0.
  void append(const TraceRecord& record);

  /// Flushes the tail chunk, writes the index, rewrites the header, and
  /// closes the file. Idempotent; also invoked by the destructor.
  void finish();

  std::uint64_t records_written() const { return record_count_; }

 private:
  void flush_chunk();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t chunk_records_;
  std::vector<std::uint8_t> chunk_buf_;
  std::vector<TraceChunkInfo> index_;
  FlatHashSet users_;
  FlatHashSet items_;
  std::uint64_t record_count_ = 0;
  std::uint64_t write_offset_ = sizeof(TraceFileHeader);
  std::uint64_t first_us_ = 0;
  std::uint64_t prev_us_ = 0;        ///< last appended time (delta base)
  std::uint64_t chunk_base_us_ = 0;  ///< first time of the open chunk
  std::uint32_t chunk_count_ = 0;    ///< records in the open chunk
  bool finished_ = false;
};

/// Drains `source` (after reset()) into a new trace file; returns the
/// record count. The streaming counterpart of "save_csv then convert".
std::uint64_t write_trace_file(const std::string& path, TraceSource& source,
                               TraceFileWriter::Options options = {});

/// An opened, structurally validated trace file. The payload is mmap'd
/// read-only with MADV_SEQUENTIAL (falling back to a heap read where mmap
/// is unavailable); cursors decode straight out of the mapping.
class TraceFile {
 public:
  explicit TraceFile(const std::string& path);
  ~TraceFile();

  TraceFile(const TraceFile&) = delete;
  TraceFile& operator=(const TraceFile&) = delete;

  const TraceFileHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  std::uint64_t record_count() const { return header_.record_count; }
  std::size_t num_chunks() const { return chunks_.size(); }
  const TraceChunkInfo& chunk(std::size_t i) const { return chunks_[i]; }
  const std::uint8_t* data() const { return data_; }
  std::uint64_t file_bytes() const { return size_; }

  double first_time() const { return trace_micros_to_seconds(header_.first_time_us); }
  double last_time() const { return trace_micros_to_seconds(header_.last_time_us); }
  /// last − first on the decoded double grid (0 if < 2 records), matching
  /// Trace::duration() of the decoded trace bit-for-bit.
  double duration() const;
  double mean_request_rate() const;  ///< record_count / duration (0 if degenerate)
  double bytes_per_record() const;

  /// Decodes the whole file into an in-RAM Trace (the comparison path).
  Trace read_all() const;

 private:
  std::string path_;
  const std::uint8_t* data_ = nullptr;  ///< full file contents
  std::size_t size_ = 0;
  void* map_ = nullptr;  ///< mmap base when mapped, else nullptr
  std::vector<std::uint8_t> fallback_;
  TraceFileHeader header_{};
  std::vector<TraceChunkInfo> chunks_;
};

/// Zero-copy streaming decoder over a TraceFile (which must outlive the
/// cursor). No allocation after construction; next() is a few varint loads
/// out of the mapping. An optional shard filter yields only records with
/// user % num_shards == shard — the per-shard cursor of the sharded
/// runtime. Cross-checks every chunk boundary (payload length and end
/// time) against the index and throws std::runtime_error on corruption.
class TraceCursor final : public TraceSource {
 public:
  explicit TraceCursor(const TraceFile& file);
  TraceCursor(const TraceFile& file, std::uint32_t shard,
              std::uint32_t num_shards);

  bool next(TraceRecord* out) override;
  void reset() override;

  std::uint64_t records_decoded() const { return decoded_; }

 private:
  bool next_raw(TraceRecord* out);

  const TraceFile* file_;
  const std::uint8_t* pos_ = nullptr;
  const std::uint8_t* end_ = nullptr;
  std::size_t next_chunk_ = 0;
  std::uint64_t prev_us_ = 0;
  std::uint64_t decoded_ = 0;
  std::uint32_t remaining_ = 0;  ///< records left in the open chunk
  std::uint32_t shard_ = 0;
  std::uint32_t num_shards_ = 0;  ///< 0 = unfiltered
};

}  // namespace specpf
