// TraceSource — the streaming request-supply abstraction behind the
// out-of-core trace pipeline. A source yields time-ordered TraceRecords one
// at a time and can be rewound; nothing about the interface requires the
// whole trace to exist in memory, which is what lets the replay frontends
// (sim/trace_replay, shard/sharded_sim) run billion-request traces at
// bounded RSS.
//
// Implementations:
//   * TraceVectorSource      — borrows an in-RAM Trace (the legacy path);
//   * TraceCursor            — zero-copy decoder over an mmap'd binary
//                              trace file (workload/trace_file.hpp);
//   * SyntheticTraceStream   — the generator itself, emitting records
//                              without materializing them
//                              (workload/synthetic_trace.hpp).
//
// Replay consumers make two passes over a source (reset() between them):
// a metadata pass (record count, time span, per-shard user densification)
// and the schedule pass. Both are sequential scans, so every
// implementation is cheap to rewind: the vector source resets an index,
// the cursor re-enters chunk 0, and the generator re-seeds its RNG.
#pragma once

#include <cstddef>

#include "workload/trace.hpp"

namespace specpf {

class TraceSource {
 public:
  virtual ~TraceSource();

  /// Yields the next record, in non-decreasing time order. Returns false
  /// when the stream is exhausted (and leaves *out untouched).
  virtual bool next(TraceRecord* out) = 0;

  /// Rewinds the stream to the first record. A reset source must replay
  /// the exact same record sequence (streams are deterministic).
  virtual void reset() = 0;
};

/// Borrowing adapter over an in-RAM Trace (which must outlive the source).
class TraceVectorSource final : public TraceSource {
 public:
  explicit TraceVectorSource(const Trace& trace) : trace_(&trace) {}

  bool next(TraceRecord* out) override {
    if (index_ == trace_->size()) return false;
    *out = trace_->records()[index_++];
    return true;
  }

  void reset() override { index_ = 0; }

 private:
  const Trace* trace_;
  std::size_t index_ = 0;
};

}  // namespace specpf
