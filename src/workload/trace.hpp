// Access traces: recording, replay, CSV round-trip, and summary statistics.
// Lets experiments be re-run on identical request sequences (paired
// comparisons between policies) and lets users feed real traces in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace specpf {

struct TraceRecord {
  double time = 0.0;        ///< request arrival time (s)
  std::uint32_t user = 0;   ///< issuing client
  std::uint64_t item = 0;   ///< requested item
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records);

  void append(TraceRecord record);
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// True when records are sorted by time (required for replay).
  bool is_time_ordered() const;

  /// Stable-sorts records by time.
  void sort_by_time();

  /// Summary statistics.
  std::size_t unique_items() const;
  std::size_t unique_users() const;
  double duration() const;  ///< last time − first time (0 if < 2 records)
  double mean_request_rate() const;  ///< size / duration

  /// Per-item request counts, indexed sparsely.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> item_counts() const;

  /// Splits the trace into `num_shards` sub-traces by user (shard of user u
  /// is u % num_shards), preserving record order within each shard — the
  /// user→shard partitioning of the sharded runtime. Shard 0 of a 1-way
  /// partition is the whole trace.
  std::vector<Trace> partition_by_user(std::size_t num_shards) const;

  /// CSV with header "time,user,item".
  void save_csv(std::ostream& os) const;
  static Trace load_csv(std::istream& is);

  void save_csv_file(const std::string& path) const;
  static Trace load_csv_file(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace specpf
