// Access traces: recording, replay, CSV round-trip, and summary statistics.
// Lets experiments be re-run on identical request sequences (paired
// comparisons between policies) and lets users feed real traces in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace specpf {

struct TraceRecord {
  double time = 0.0;        ///< request arrival time (s)
  std::uint32_t user = 0;   ///< issuing client
  std::uint64_t item = 0;   ///< requested item
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records);

  void append(TraceRecord record);
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// True when records are sorted by time (required for replay).
  bool is_time_ordered() const;

  /// Stable-sorts records by time.
  void sort_by_time();

  /// Summary statistics.
  std::size_t unique_items() const;
  std::size_t unique_users() const;
  double duration() const;  ///< last time − first time (0 if < 2 records)
  double mean_request_rate() const;  ///< size / duration

  /// Per-item request counts, indexed sparsely.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> item_counts() const;

  /// Splits the trace into `num_shards` sub-traces by user (shard of user u
  /// is u % num_shards), preserving record order within each shard — the
  /// user→shard partitioning of the sharded runtime. Shard 0 of a 1-way
  /// partition is the whole trace. Copies every record; callers that only
  /// need to *walk* one shard's records should use TraceShardView instead.
  std::vector<Trace> partition_by_user(std::size_t num_shards) const;

  /// CSV with header "time,user,item". Timestamps are written with
  /// max_digits10 precision so a save/load round trip reproduces the
  /// doubles exactly.
  void save_csv(std::ostream& os) const;

  /// Parses the CSV written by save_csv. Throws std::runtime_error with
  /// the offending line number on a malformed record, a negative id, a
  /// non-finite timestamp, trailing garbage after the item column, or a
  /// timestamp that moves backwards (replay requires time order; sort
  /// externally before loading if the source is unordered).
  static Trace load_csv(std::istream& is);

  void save_csv_file(const std::string& path) const;
  static Trace load_csv_file(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

/// Non-copying per-shard view over a Trace: iterates the records whose user
/// maps to `shard` (user % num_shards == shard) in trace order, skipping the
/// rest in place. The allocation-free counterpart of partition_by_user for
/// callers that only need one sequential walk — O(1) space instead of a
/// 24 B/record copy. The viewed trace must outlive the view.
class TraceShardView {
 public:
  TraceShardView(const Trace& trace, std::uint32_t shard,
                 std::size_t num_shards);

  class iterator {
   public:
    using value_type = TraceRecord;
    using reference = const TraceRecord&;

    reference operator*() const { return (*records_)[index_]; }
    const TraceRecord* operator->() const { return &(*records_)[index_]; }
    iterator& operator++() {
      ++index_;
      skip_to_match();
      return *this;
    }
    bool operator==(const iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const iterator& other) const { return !(*this == other); }

   private:
    friend class TraceShardView;
    iterator(const std::vector<TraceRecord>* records, std::size_t index,
             std::uint32_t shard, std::size_t num_shards)
        : records_(records), index_(index), shard_(shard),
          num_shards_(num_shards) {
      skip_to_match();
    }
    void skip_to_match() {
      while (index_ < records_->size() &&
             (*records_)[index_].user % num_shards_ != shard_) {
        ++index_;
      }
    }

    const std::vector<TraceRecord>* records_;
    std::size_t index_;
    std::uint32_t shard_;
    std::size_t num_shards_;
  };

  iterator begin() const {
    return iterator(&trace_->records(), 0, shard_, num_shards_);
  }
  iterator end() const {
    return iterator(&trace_->records(), trace_->size(), shard_, num_shards_);
  }

  /// Number of records in the shard (one O(n) counting pass).
  std::size_t count() const;

 private:
  const Trace* trace_;
  std::uint32_t shard_;
  std::size_t num_shards_;
};

}  // namespace specpf
