#include "workload/request_stream.hpp"

#include "util/contract.hpp"

namespace specpf {

IrmStream::IrmStream(const Catalog& catalog, double rate, Rng rng)
    : catalog_(catalog), interarrival_(1.0 / rate), rng_(rng) {
  SPECPF_EXPECTS(rate > 0.0);
}

Request IrmStream::next() {
  now_ += interarrival_.sample(rng_);
  return Request{now_, catalog_.sample(rng_)};
}

SessionStream::SessionStream(const SessionGraph& graph, double session_rate,
                             double think_time_mean, Rng rng)
    : graph_(graph),
      session_gap_(1.0 / session_rate),
      think_(think_time_mean),
      rng_(rng) {
  SPECPF_EXPECTS(session_rate > 0.0);
  SPECPF_EXPECTS(think_time_mean > 0.0);
}

Request SessionStream::next() {
  if (!in_session_) {
    now_ += session_gap_.sample(rng_);
    page_ = graph_.sample_entry(rng_);
    in_session_ = true;
    return Request{now_, page_};
  }
  now_ += think_.sample(rng_);
  std::uint64_t next_page = 0;
  if (graph_.sample_next(page_, rng_, &next_page)) {
    page_ = next_page;
    return Request{now_, page_};
  }
  // Session over; emit the first page of the next session after a gap.
  in_session_ = false;
  return next();
}

}  // namespace specpf
