#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/contract.hpp"
#include "util/flat_hash.hpp"
#include "util/math.hpp"

namespace specpf {

Trace::Trace(std::vector<TraceRecord> records) : records_(std::move(records)) {}

void Trace::append(TraceRecord record) { records_.push_back(record); }

bool Trace::is_time_ordered() const {
  return std::is_sorted(records_.begin(), records_.end(),
                        [](const TraceRecord& a, const TraceRecord& b) {
                          return a.time < b.time;
                        });
}

void Trace::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
}

std::size_t Trace::unique_items() const {
  FlatHashSet items;
  for (const auto& r : records_) items.insert(r.item);
  return items.size();
}

std::size_t Trace::unique_users() const {
  FlatHashSet users;
  for (const auto& r : records_) users.insert(r.user);
  return users.size();
}

double Trace::duration() const {
  if (records_.size() < 2) return 0.0;
  auto [lo, hi] = std::minmax_element(
      records_.begin(), records_.end(),
      [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  return hi->time - lo->time;
}

double Trace::mean_request_rate() const {
  return safe_div(static_cast<double>(records_.size()), duration(), 0.0);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Trace::item_counts()
    const {
  FlatHashMap<std::uint64_t> counts;
  for (const auto& r : records_) ++counts[r.item];
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(counts.size());
  for (const auto& [item, count] : counts) out.emplace_back(item, count);
  std::sort(out.begin(), out.end());  // keep the item-sorted contract
  return out;
}

std::vector<Trace> Trace::partition_by_user(std::size_t num_shards) const {
  SPECPF_EXPECTS(num_shards >= 1);
  std::vector<std::vector<TraceRecord>> parts(num_shards);
  // Pre-size each shard: a second pass over headers is far cheaper than
  // push_back growth on million-record traces.
  std::vector<std::size_t> counts(num_shards, 0);
  for (const auto& r : records_) ++counts[r.user % num_shards];
  for (std::size_t s = 0; s < num_shards; ++s) parts[s].reserve(counts[s]);
  for (const auto& r : records_) parts[r.user % num_shards].push_back(r);
  std::vector<Trace> out;
  out.reserve(num_shards);
  for (auto& part : parts) out.emplace_back(std::move(part));
  return out;
}

void Trace::save_csv(std::ostream& os) const {
  // max_digits10 keeps the save/load round trip exact; shorter defaults
  // would quantize timestamps to 6 significant digits.
  const auto precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "time,user,item\n";
  for (const auto& r : records_) {
    os << r.time << ',' << r.user << ',' << r.item << '\n';
  }
  os.precision(precision);
}

namespace {

[[noreturn]] void bad_csv(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("trace CSV: " + why + " at line " +
                           std::to_string(line_no));
}

/// istream happily parses "-1" into an unsigned field (modular wrap), so
/// sign-check each id column explicitly.
void reject_negative(std::istringstream& ls, std::size_t line_no,
                     const char* column) {
  ls >> std::ws;
  if (ls.peek() == '-') {
    bad_csv(line_no, std::string("negative ") + column);
  }
}

}  // namespace

Trace Trace::load_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return Trace{};
  if (line != "time,user,item") {
    throw std::runtime_error("trace CSV: bad header: " + line);
  }
  std::vector<TraceRecord> records;
  std::size_t line_no = 1;
  double prev_time = 0.0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceRecord r;
    char c1 = 0, c2 = 0;
    if (!(ls >> r.time >> c1) || c1 != ',') {
      bad_csv(line_no, "bad record");
    }
    reject_negative(ls, line_no, "user id");
    if (!(ls >> r.user >> c2) || c2 != ',') {
      bad_csv(line_no, "bad record");
    }
    reject_negative(ls, line_no, "item id");
    if (!(ls >> r.item)) {
      bad_csv(line_no, "bad record");
    }
    char extra = 0;
    if (ls >> extra) {
      bad_csv(line_no, "trailing garbage after item column");
    }
    if (!std::isfinite(r.time)) {
      bad_csv(line_no, "non-finite time");
    }
    if (!records.empty() && r.time < prev_time) {
      bad_csv(line_no, "time goes backwards (" + std::to_string(r.time) +
                           " after " + std::to_string(prev_time) + ")");
    }
    prev_time = r.time;
    records.push_back(r);
  }
  return Trace{std::move(records)};
}

void Trace::save_csv_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_csv(os);
}

Trace Trace::load_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_csv(is);
}

TraceShardView::TraceShardView(const Trace& trace, std::uint32_t shard,
                               std::size_t num_shards)
    : trace_(&trace), shard_(shard), num_shards_(num_shards) {
  SPECPF_EXPECTS(num_shards >= 1);
  SPECPF_EXPECTS(shard < num_shards);
}

std::size_t TraceShardView::count() const {
  std::size_t n = 0;
  for (const auto& r : trace_->records()) {
    if (r.user % num_shards_ == shard_) ++n;
  }
  return n;
}

}  // namespace specpf
