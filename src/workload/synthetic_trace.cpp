#include "workload/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contract.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

double ArrivalModulation::rate_factor(double t) const {
  switch (kind) {
    case Kind::kStationary:
      return 1.0;
    case Kind::kDiurnal:
      return 1.0 + amplitude * std::sin(kTwoPi * t / period);
    case Kind::kFlashCrowd:
    case Kind::kHotspot: {
      if (t < start || t > start + rise + hold + fall) return 1.0;
      const double into = t - start;
      if (into < rise) {
        return 1.0 + (peak_factor - 1.0) * (rise > 0.0 ? into / rise : 1.0);
      }
      if (into <= rise + hold) return peak_factor;
      const double out = into - rise - hold;
      return peak_factor -
             (peak_factor - 1.0) * (fall > 0.0 ? out / fall : 1.0);
    }
  }
  SPECPF_ASSERT(false && "unreachable");
  return 1.0;
}

double ArrivalModulation::max_rate_factor() const {
  switch (kind) {
    case Kind::kStationary:
      return 1.0;
    case Kind::kDiurnal:
      return 1.0 + amplitude;
    case Kind::kFlashCrowd:
    case Kind::kHotspot:
      return peak_factor;
  }
  SPECPF_ASSERT(false && "unreachable");
  return 1.0;
}

bool ArrivalModulation::window_active(double t) const {
  return t >= start && t <= start + rise + hold + fall;
}

void ArrivalModulation::validate() const {
  switch (kind) {
    case Kind::kStationary:
      break;
    case Kind::kDiurnal:
      SPECPF_EXPECTS(amplitude >= 0.0 && amplitude < 1.0);
      SPECPF_EXPECTS(period > 0.0);
      break;
    case Kind::kFlashCrowd:
    case Kind::kHotspot:
      SPECPF_EXPECTS(start >= 0.0);
      SPECPF_EXPECTS(rise >= 0.0 && hold >= 0.0 && fall >= 0.0);
      SPECPF_EXPECTS(peak_factor >= 1.0);
      if (kind == Kind::kHotspot) {
        SPECPF_EXPECTS(hot_modulus >= 1);
        SPECPF_EXPECTS(hot_residue < hot_modulus);
        SPECPF_EXPECTS(hot_weight >= 0.0 && hot_weight <= 1.0);
      }
      break;
  }
}

void SyntheticTraceConfig::validate() const {
  SPECPF_EXPECTS(num_users >= 1);
  SPECPF_EXPECTS(num_requests >= 1);
  SPECPF_EXPECTS(request_rate > 0.0);
  modulation.validate();
  if (modulation.kind == ArrivalModulation::Kind::kHotspot) {
    SPECPF_EXPECTS(modulation.hot_residue < num_users);
  }
}

namespace {
const SyntheticTraceConfig& validated(const SyntheticTraceConfig& config) {
  config.validate();
  return config;
}
}  // namespace

SyntheticTraceStream::SyntheticTraceStream(const SyntheticTraceConfig& config)
    : config_(validated(config)),
      graph_(config_.graph, Rng(config_.seed).substream(1).next_u64()),
      gap_(1.0 /
           (config_.request_rate * config_.modulation.max_rate_factor())),
      rng_(config_.seed),
      // Per-user session position (8 bytes/user) — the stream's only
      // trace-length-independent state besides the RNG.
      page_(config_.num_users, kIdle) {
  const ArrivalModulation& mod = config_.modulation;
  hotspot_ = mod.kind == ArrivalModulation::Kind::kHotspot;
  envelope_ = mod.max_rate_factor();
  // Candidate arrivals run at the envelope rate; thinning keeps each with
  // probability rate(t)/envelope — an exact nonhomogeneous Poisson process.
  // The stationary path takes no thinning draws at all, so it reproduces
  // the pre-modulation generator's RNG sequence byte-for-byte.
  thinning_ = mod.kind != ArrivalModulation::Kind::kStationary &&
              envelope_ > 1.0;
  // Hot-group size for the hotspot scenario: users with
  // user % hot_modulus == hot_residue.
  hot_count_ = hotspot_ && config_.num_users > mod.hot_residue
                   ? (config_.num_users - 1 - mod.hot_residue) /
                             mod.hot_modulus +
                         1
                   : 0;
}

bool SyntheticTraceStream::next(TraceRecord* out) {
  if (emitted_ == config_.num_requests) return false;
  const ArrivalModulation& mod = config_.modulation;
  for (;;) {
    t_ += gap_.sample(rng_);
    if (thinning_ && !rng_.bernoulli(mod.rate_factor(t_) / envelope_)) {
      continue;
    }
    std::uint32_t user;
    if (hotspot_ && hot_count_ > 0 && mod.window_active(t_) &&
        rng_.bernoulli(mod.hot_weight)) {
      user = static_cast<std::uint32_t>(
          mod.hot_residue + mod.hot_modulus * (rng_.next_u64() % hot_count_));
    } else {
      user = static_cast<std::uint32_t>(rng_.next_u64() % config_.num_users);
    }
    std::uint64_t item;
    if (page_[user] == kIdle || !graph_.sample_next(page_[user], rng_, &item)) {
      item = graph_.sample_entry(rng_);  // new session (or the previous ended)
    }
    page_[user] = item;
    *out = {t_, user, item};
    ++emitted_;
    return true;
  }
}

void SyntheticTraceStream::reset() {
  rng_ = Rng(config_.seed);
  std::fill(page_.begin(), page_.end(), kIdle);
  t_ = 0.0;
  emitted_ = 0;
}

Trace generate_synthetic_trace(const SyntheticTraceConfig& config) {
  SyntheticTraceStream stream(config);
  std::vector<TraceRecord> records;
  records.reserve(config.num_requests);
  TraceRecord record;
  while (stream.next(&record)) records.push_back(record);
  return Trace{std::move(records)};
}

bool make_scenario_modulation(const std::string& name, double span,
                              std::size_t shards, ArrivalModulation* out) {
  SPECPF_EXPECTS(span > 0.0);
  SPECPF_EXPECTS(out != nullptr);
  ArrivalModulation mod;
  if (name == "stationary") {
    *out = mod;
    return true;
  }
  if (name == "diurnal") {
    mod.kind = ArrivalModulation::Kind::kDiurnal;
    mod.amplitude = 0.6;
    mod.period = span / 2.0;
    *out = mod;
    return true;
  }
  if (name == "flash" || name == "hotspot") {
    // The trace has a fixed *request* budget, and the surge spends it
    // faster: the whole trapezoid plus a recovery tail must fit within
    // span·rate accepted arrivals. The surge's extra requests are
    // (peak−1)·(rise/2 + hold + fall/2); both presets size the window so
    // that extra ≈ 0.2·span, which ends the surge by ~0.5·span and leaves
    // the trace running to ~0.8·span — the backlog-drain/recovery phase
    // is simulated, not cut off mid-peak.
    mod.kind = name == "flash" ? ArrivalModulation::Kind::kFlashCrowd
                               : ArrivalModulation::Kind::kHotspot;
    mod.start = 0.4 * span;
    if (name == "flash") {
      mod.peak_factor = 4.0;  // extra = 3·(0.01+0.047+0.01)·span ≈ 0.2·span
      mod.rise = 0.02 * span;
      mod.hold = 0.047 * span;
      mod.fall = 0.02 * span;
    } else {
      mod.peak_factor = 2.5;  // extra = 1.5·(0.015+0.1+0.015)·span ≈ 0.2·span
      mod.rise = 0.03 * span;
      mod.hold = 0.1 * span;
      mod.fall = 0.03 * span;
    }
    mod.hot_modulus = static_cast<std::uint32_t>(std::max<std::size_t>(
        2, shards));
    mod.hot_residue = 0;
    mod.hot_weight = 0.7;
    *out = mod;
    return true;
  }
  return false;
}

}  // namespace specpf
