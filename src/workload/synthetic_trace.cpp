#include "workload/synthetic_trace.hpp"

#include <vector>

#include "util/contract.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf {

void SyntheticTraceConfig::validate() const {
  SPECPF_EXPECTS(num_users >= 1);
  SPECPF_EXPECTS(num_requests >= 1);
  SPECPF_EXPECTS(request_rate > 0.0);
}

Trace generate_synthetic_trace(const SyntheticTraceConfig& config) {
  config.validate();
  SessionGraph graph(config.graph, Rng(config.seed).substream(1).next_u64());
  Rng rng(config.seed);
  ExponentialDist gap(1.0 / config.request_rate);

  // Per-user session position; kIdle = between sessions. A flat vector (8
  // bytes/user) keeps the generator itself out of the hash-map business.
  constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  std::vector<std::uint64_t> page(config.num_users, kIdle);

  std::vector<TraceRecord> records;
  records.reserve(config.num_requests);
  double t = 0.0;
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    t += gap.sample(rng);
    const auto user =
        static_cast<std::uint32_t>(rng.next_u64() % config.num_users);
    std::uint64_t item;
    if (page[user] == kIdle || !graph.sample_next(page[user], rng, &item)) {
      item = graph.sample_entry(rng);  // new session (or the previous ended)
    }
    page[user] = item;
    records.push_back({t, user, item});
  }
  return Trace{std::move(records)};
}

}  // namespace specpf
