#include "workload/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contract.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace specpf {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

double ArrivalModulation::rate_factor(double t) const {
  switch (kind) {
    case Kind::kStationary:
      return 1.0;
    case Kind::kDiurnal:
      return 1.0 + amplitude * std::sin(kTwoPi * t / period);
    case Kind::kFlashCrowd:
    case Kind::kHotspot: {
      if (t < start || t > start + rise + hold + fall) return 1.0;
      const double into = t - start;
      if (into < rise) {
        return 1.0 + (peak_factor - 1.0) * (rise > 0.0 ? into / rise : 1.0);
      }
      if (into <= rise + hold) return peak_factor;
      const double out = into - rise - hold;
      return peak_factor -
             (peak_factor - 1.0) * (fall > 0.0 ? out / fall : 1.0);
    }
  }
  SPECPF_ASSERT(false && "unreachable");
  return 1.0;
}

double ArrivalModulation::max_rate_factor() const {
  switch (kind) {
    case Kind::kStationary:
      return 1.0;
    case Kind::kDiurnal:
      return 1.0 + amplitude;
    case Kind::kFlashCrowd:
    case Kind::kHotspot:
      return peak_factor;
  }
  SPECPF_ASSERT(false && "unreachable");
  return 1.0;
}

bool ArrivalModulation::window_active(double t) const {
  return t >= start && t <= start + rise + hold + fall;
}

void ArrivalModulation::validate() const {
  switch (kind) {
    case Kind::kStationary:
      break;
    case Kind::kDiurnal:
      SPECPF_EXPECTS(amplitude >= 0.0 && amplitude < 1.0);
      SPECPF_EXPECTS(period > 0.0);
      break;
    case Kind::kFlashCrowd:
    case Kind::kHotspot:
      SPECPF_EXPECTS(start >= 0.0);
      SPECPF_EXPECTS(rise >= 0.0 && hold >= 0.0 && fall >= 0.0);
      SPECPF_EXPECTS(peak_factor >= 1.0);
      if (kind == Kind::kHotspot) {
        SPECPF_EXPECTS(hot_modulus >= 1);
        SPECPF_EXPECTS(hot_residue < hot_modulus);
        SPECPF_EXPECTS(hot_weight >= 0.0 && hot_weight <= 1.0);
      }
      break;
  }
}

void SyntheticTraceConfig::validate() const {
  SPECPF_EXPECTS(num_users >= 1);
  SPECPF_EXPECTS(num_requests >= 1);
  SPECPF_EXPECTS(request_rate > 0.0);
  modulation.validate();
  if (modulation.kind == ArrivalModulation::Kind::kHotspot) {
    SPECPF_EXPECTS(modulation.hot_residue < num_users);
  }
}

Trace generate_synthetic_trace(const SyntheticTraceConfig& config) {
  config.validate();
  SessionGraph graph(config.graph, Rng(config.seed).substream(1).next_u64());
  Rng rng(config.seed);

  const ArrivalModulation& mod = config.modulation;
  const bool stationary = mod.kind == ArrivalModulation::Kind::kStationary;
  const bool hotspot = mod.kind == ArrivalModulation::Kind::kHotspot;
  const double envelope = mod.max_rate_factor();
  // Candidate arrivals run at the envelope rate; thinning keeps each with
  // probability rate(t)/envelope — an exact nonhomogeneous Poisson process.
  // The stationary path takes no thinning draws at all, so it reproduces
  // the pre-modulation generator's RNG sequence byte-for-byte.
  const bool thinning = !stationary && envelope > 1.0;
  ExponentialDist gap(1.0 / (config.request_rate * envelope));
  // Hot-group size for the hotspot scenario: users with
  // user % hot_modulus == hot_residue.
  const std::uint64_t hot_count =
      hotspot && config.num_users > mod.hot_residue
          ? (config.num_users - 1 - mod.hot_residue) / mod.hot_modulus + 1
          : 0;

  // Per-user session position; kIdle = between sessions. A flat vector (8
  // bytes/user) keeps the generator itself out of the hash-map business.
  constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  std::vector<std::uint64_t> page(config.num_users, kIdle);

  std::vector<TraceRecord> records;
  records.reserve(config.num_requests);
  double t = 0.0;
  while (records.size() < config.num_requests) {
    t += gap.sample(rng);
    if (thinning && !rng.bernoulli(mod.rate_factor(t) / envelope)) continue;
    std::uint32_t user;
    if (hotspot && hot_count > 0 && mod.window_active(t) &&
        rng.bernoulli(mod.hot_weight)) {
      user = static_cast<std::uint32_t>(
          mod.hot_residue + mod.hot_modulus * (rng.next_u64() % hot_count));
    } else {
      user = static_cast<std::uint32_t>(rng.next_u64() % config.num_users);
    }
    std::uint64_t item;
    if (page[user] == kIdle || !graph.sample_next(page[user], rng, &item)) {
      item = graph.sample_entry(rng);  // new session (or the previous ended)
    }
    page[user] = item;
    records.push_back({t, user, item});
  }
  return Trace{std::move(records)};
}

bool make_scenario_modulation(const std::string& name, double span,
                              std::size_t shards, ArrivalModulation* out) {
  SPECPF_EXPECTS(span > 0.0);
  SPECPF_EXPECTS(out != nullptr);
  ArrivalModulation mod;
  if (name == "stationary") {
    *out = mod;
    return true;
  }
  if (name == "diurnal") {
    mod.kind = ArrivalModulation::Kind::kDiurnal;
    mod.amplitude = 0.6;
    mod.period = span / 2.0;
    *out = mod;
    return true;
  }
  if (name == "flash" || name == "hotspot") {
    // The trace has a fixed *request* budget, and the surge spends it
    // faster: the whole trapezoid plus a recovery tail must fit within
    // span·rate accepted arrivals. The surge's extra requests are
    // (peak−1)·(rise/2 + hold + fall/2); both presets size the window so
    // that extra ≈ 0.2·span, which ends the surge by ~0.5·span and leaves
    // the trace running to ~0.8·span — the backlog-drain/recovery phase
    // is simulated, not cut off mid-peak.
    mod.kind = name == "flash" ? ArrivalModulation::Kind::kFlashCrowd
                               : ArrivalModulation::Kind::kHotspot;
    mod.start = 0.4 * span;
    if (name == "flash") {
      mod.peak_factor = 4.0;  // extra = 3·(0.01+0.047+0.01)·span ≈ 0.2·span
      mod.rise = 0.02 * span;
      mod.hold = 0.047 * span;
      mod.fall = 0.02 * span;
    } else {
      mod.peak_factor = 2.5;  // extra = 1.5·(0.015+0.1+0.015)·span ≈ 0.2·span
      mod.rise = 0.03 * span;
      mod.hold = 0.1 * span;
      mod.fall = 0.03 * span;
    }
    mod.hot_modulus = static_cast<std::uint32_t>(std::max<std::size_t>(
        2, shards));
    mod.hot_residue = 0;
    mod.hot_weight = 0.7;
    *out = mod;
    return true;
  }
  return false;
}

}  // namespace specpf
