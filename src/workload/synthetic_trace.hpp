// Synthetic large-population traces for the million-user sweep: a global
// Poisson request process over a configurable user population, where each
// user walks a shared Markov SessionGraph (sessions end with the graph's
// exit probability and restart at a fresh entry page).
//
// The output is time-ordered by construction, so run_trace_replay can
// bulk-schedule the whole trace into the engine's O(1)-pop sorted tier, and
// per-user sequences stay first-order predictable — what the stack's
// predictors exploit.
#pragma once

#include <cstdint>

#include "workload/session_graph.hpp"
#include "workload/trace.hpp"

namespace specpf {

struct SyntheticTraceConfig {
  std::size_t num_users = 1'000'000;
  std::size_t num_requests = 4'000'000;
  /// Aggregate request rate across the whole population (requests/s).
  double request_rate = 10'000.0;
  SessionGraphConfig graph;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Generates a time-ordered trace; every user id in [0, num_users) is
/// equally likely per request, so for num_requests >> num_users nearly the
/// whole population appears.
Trace generate_synthetic_trace(const SyntheticTraceConfig& config);

}  // namespace specpf
