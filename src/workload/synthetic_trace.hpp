// Synthetic large-population traces for the million-user sweep: a global
// Poisson request process over a configurable user population, where each
// user walks a shared Markov SessionGraph (sessions end with the graph's
// exit probability and restart at a fresh entry page).
//
// The arrival process can be modulated to produce the nonstationary
// scenarios the prefetch control plane exists for — a diurnal sine, a
// flash-crowd trapezoid, or a per-shard hotspot that concentrates traffic
// on one region's users. Nonhomogeneous rates are realised by thinning
// (rejection against the peak rate), which is exact and fully determined
// by the seed; the stationary path draws the exact RNG sequence the
// pre-modulation generator drew, so existing seeds reproduce their traces
// byte-for-byte.
//
// The output is time-ordered by construction, so run_trace_replay can
// bulk-schedule the whole trace into the engine's O(1)-pop sorted tier, and
// per-user sequences stay first-order predictable — what the stack's
// predictors exploit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/session_graph.hpp"
#include "workload/trace.hpp"
#include "workload/trace_stream.hpp"

namespace specpf {

/// Time-varying modulation of the aggregate arrival process.
struct ArrivalModulation {
  enum class Kind {
    kStationary,  ///< constant rate (the default; byte-identical generator)
    kDiurnal,     ///< rate(t) = base · (1 + amplitude · sin(2πt/period))
    kFlashCrowd,  ///< trapezoidal surge: ramp to peak_factor·base and back
    kHotspot,     ///< flash crowd concentrated on one shard's users
  };
  Kind kind = Kind::kStationary;

  // kDiurnal
  double amplitude = 0.5;  ///< in [0, 1)
  double period = 3600.0;  ///< seconds per cycle

  // kFlashCrowd / kHotspot window: factor 1 outside, linear ramp over
  // [start, start+rise), peak_factor over [start+rise, start+rise+hold],
  // linear ramp down over (start+rise+hold, start+rise+hold+fall].
  double start = 0.0;
  double rise = 10.0;
  double hold = 60.0;
  double fall = 30.0;
  double peak_factor = 4.0;  ///< >= 1

  // kHotspot: while the window is active, a `hot_weight` fraction of
  // arrivals is drawn from the users with user % hot_modulus ==
  // hot_residue — exactly the population of shard `hot_residue` when the
  // trace is replayed on hot_modulus shards.
  std::uint32_t hot_modulus = 8;
  std::uint32_t hot_residue = 0;
  double hot_weight = 0.8;  ///< in [0, 1]

  /// Rate multiplier at time t (1.0 for kStationary).
  double rate_factor(double t) const;
  /// Supremum of rate_factor over all t — the thinning envelope.
  double max_rate_factor() const;
  /// True while the flash-crowd / hotspot window is active.
  bool window_active(double t) const;

  void validate() const;
};

struct SyntheticTraceConfig {
  std::size_t num_users = 1'000'000;
  std::size_t num_requests = 4'000'000;
  /// Aggregate request rate across the whole population (requests/s); the
  /// base rate that `modulation` scales.
  double request_rate = 10'000.0;
  SessionGraphConfig graph;
  ArrivalModulation modulation;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Generates a time-ordered trace; every user id in [0, num_users) is
/// equally likely per request (modulo the hotspot window), so for
/// num_requests >> num_users nearly the whole population appears.
/// Materializing wrapper over SyntheticTraceStream.
Trace generate_synthetic_trace(const SyntheticTraceConfig& config);

/// The generator as a resumable TraceSource: emits the exact record
/// sequence generate_synthetic_trace would produce for the same config —
/// identical RNG draw order, full-precision double timestamps — one record
/// per next() call, so a billion-request run never materializes the trace.
/// Memory is O(num_users) (the per-user session-position vector), not
/// O(num_requests). reset() re-seeds the RNG and clears the session state;
/// the (immutable) SessionGraph is built once.
class SyntheticTraceStream final : public TraceSource {
 public:
  explicit SyntheticTraceStream(const SyntheticTraceConfig& config);

  bool next(TraceRecord* out) override;
  void reset() override;

  const SyntheticTraceConfig& config() const { return config_; }
  std::uint64_t emitted() const { return emitted_; }

 private:
  /// Between sessions; matches the flat per-user vector of the original
  /// generator so the graph-walk draws line up exactly.
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  SyntheticTraceConfig config_;
  SessionGraph graph_;
  ExponentialDist gap_;
  Rng rng_;
  std::vector<std::uint64_t> page_;
  double t_ = 0.0;
  std::uint64_t emitted_ = 0;
  bool thinning_ = false;
  bool hotspot_ = false;
  double envelope_ = 1.0;
  std::uint64_t hot_count_ = 0;
};

/// Named scenario presets, shared by examples/congestion_sweep and
/// bench/perf_control so scenario shapes cannot drift between them:
/// "stationary", "diurnal" (0.6 amplitude, two cycles), "flash" (4x surge
/// over the middle fifth), "hotspot" (2.5x surge aimed at shard 0 of
/// `shards`). `span` is the expected unmodulated trace duration
/// (num_requests / request_rate). Returns false for unknown names.
bool make_scenario_modulation(const std::string& name, double span,
                              std::size_t shards, ArrivalModulation* out);

}  // namespace specpf
