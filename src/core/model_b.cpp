#include "core/model_b.hpp"

#include "util/contract.hpp"

namespace specpf::core::model_b {

namespace {
void check(const SystemParams& params, double p, double nf) {
  params.validate();
  SPECPF_EXPECTS(p > 0.0 && p <= 1.0);
  SPECPF_EXPECTS(nf >= 0.0);
}
}  // namespace

double hit_ratio(const SystemParams& params, double p, double nf) {
  check(params, p, nf);
  return params.hit_ratio - nf * params.hit_ratio / params.cache_items +
         nf * p;
}

double utilization(const SystemParams& params, double p, double nf) {
  const double h = hit_ratio(params, p, nf);
  return (1.0 - h + nf) * params.request_rate * params.mean_item_size /
         params.bandwidth;
}

double retrieval_time(const SystemParams& params, double p, double nf) {
  const double h = hit_ratio(params, p, nf);
  return params.mean_item_size /
         (params.bandwidth -
          (1.0 - h + nf) * params.request_rate * params.mean_item_size);
}

double access_time(const SystemParams& params, double p, double nf) {
  check(params, p, nf);
  const double b = params.bandwidth;
  const double lambda = params.request_rate;
  const double s = params.mean_item_size;
  const double f = params.fault_ratio();
  const double hp = params.hit_ratio;
  const double nc = params.cache_items;
  return (f + nf / nc * hp - nf * p) * s /
         (b - f * lambda * s - nf / nc * hp * s * lambda -
          nf * (1.0 - p) * lambda * s);
}

double gain(const SystemParams& params, double p, double nf) {
  check(params, p, nf);
  const double b = params.bandwidth;
  const double lambda = params.request_rate;
  const double s = params.mean_item_size;
  const double f = params.fault_ratio();
  const double hp = params.hit_ratio;
  const double nc = params.cache_items;
  return nf * s * (p * b - f * lambda * s - b * hp / nc) /
         ((b - f * lambda * s) *
          (b - f * lambda * s - nf / nc * hp * s * lambda -
           nf * (1.0 - p) * lambda * s));
}

double threshold(const SystemParams& params) {
  params.validate();
  return params.utilization_no_prefetch() +
         params.hit_ratio / params.cache_items;
}

double prefetch_limit_min_bandwidth(const SystemParams& params, double p) {
  check(params, p, 0.0);
  const double q = params.hit_ratio / params.cache_items;
  SPECPF_EXPECTS(p > q);
  return params.fault_ratio() / (p - q);
}

}  // namespace specpf::core::model_b
