#include "core/interaction.hpp"

#include <limits>

#include "util/contract.hpp"

namespace specpf::core {

double victim_value(const SystemParams& params, InteractionModel model) {
  switch (model) {
    case InteractionModel::kModelA:
      return 0.0;
    case InteractionModel::kModelB:
      return params.hit_ratio / params.cache_items;
  }
  SPECPF_ASSERT(false && "unreachable");
  return 0.0;
}

PrefetchAnalysis analyze_with_victim_value(const SystemParams& params,
                                           const OperatingPoint& op,
                                           double q) {
  params.validate();
  SPECPF_EXPECTS(op.access_probability > 0.0 && op.access_probability <= 1.0);
  SPECPF_EXPECTS(op.prefetch_rate >= 0.0);
  SPECPF_EXPECTS(q >= 0.0 && q <= 1.0);

  PrefetchAnalysis out;
  out.victim_value = q;
  out.baseline = analyze_no_prefetch(params);

  const double b = params.bandwidth;
  const double lambda = params.request_rate;
  const double s = params.mean_item_size;
  const double f = params.fault_ratio();
  const double p = op.access_probability;
  const double nf = op.prefetch_rate;

  // h = h' + n̄(F)(p − q); eq. (7) when q=0, eq. (15) when q=h'/n̄(C).
  out.hit_ratio = params.hit_ratio + nf * (p - q);

  // ρ = (1 − h + n̄(F))·λ·s̄/b; eqs. (8)/(16).
  out.utilization = (1.0 - out.hit_ratio + nf) * lambda * s / b;

  // Threshold p_th = ρ' + q; eqs. (13)/(21).
  out.threshold = out.baseline.utilization + q;

  // Positivity conditions, eqs. (12)/(20).
  const double demand_margin = b - f * lambda * s;
  const double denom = demand_margin - nf * (1.0 - p + q) * lambda * s;
  out.conditions.prob_above_threshold = p * b - f * lambda * s - q * b > 0.0;
  out.conditions.demand_within_capacity = demand_margin > 0.0;
  out.conditions.total_within_capacity = denom > 0.0;

  // r̄ = s̄ / (b − (1 − h + n̄(F))λs̄); eqs. (9)/(17). Algebraically the
  // denominator equals `denom` above.
  out.retrieval_time = s / denom;

  // t̄ = (1 − h)·r̄; eqs. (10)/(18).
  out.access_time = (1.0 - out.hit_ratio) * out.retrieval_time;

  // G = t̄' − t̄, in the factored form of eqs. (11)/(19).
  out.gain = nf * s * (p * b - f * lambda * s - q * b) /
             (demand_margin * denom);
  return out;
}

PrefetchAnalysis analyze(const SystemParams& params, const OperatingPoint& op,
                         InteractionModel model) {
  return analyze_with_victim_value(params, op, victim_value(params, model));
}

double threshold(const SystemParams& params, InteractionModel model) {
  params.validate();
  return params.utilization_no_prefetch() + victim_value(params, model);
}

double prefetch_rate_limit_at_min_bandwidth(const SystemParams& params,
                                            double p, InteractionModel model) {
  params.validate();
  SPECPF_EXPECTS(p > 0.0 && p <= 1.0);
  const double q = victim_value(params, model);
  SPECPF_EXPECTS(p > q);
  // Eq. (14) for Model A (f'/p) and eq. (22) for Model B (f'/(p − h'/n̄(C))).
  return params.fault_ratio() / (p - q);
}

double prefetch_rate_capacity_limit(const SystemParams& params, double p,
                                    InteractionModel model) {
  params.validate();
  SPECPF_EXPECTS(p > 0.0 && p <= 1.0);
  const double q = victim_value(params, model);
  const double demand_margin =
      params.bandwidth - params.fault_ratio() * params.request_rate *
                             params.mean_item_size;
  SPECPF_EXPECTS(demand_margin > 0.0);
  const double coeff =
      (1.0 - p + q) * params.request_rate * params.mean_item_size;
  if (coeff <= 0.0) return std::numeric_limits<double>::infinity();
  return demand_margin / coeff;
}

}  // namespace specpf::core
