// PrefetchPlanner — turns the paper's headline result into a decision
// procedure: given a set of candidate items with estimated access
// probabilities, *prefetch exclusively all items with p > p_th*.
//
// The paper's closed forms assume every prefetched item shares one
// probability p. The planner generalises the prediction to heterogeneous
// candidates by replacing n̄(F)·p with Σᵢ pᵢ (each selected item contributes
// its own probability to the hit ratio and its own unit of prefetch load),
// which reduces to the paper's forms when all pᵢ are equal.
#pragma once

#include <cstdint>
#include <vector>

#include "core/interaction.hpp"
#include "core/params.hpp"

namespace specpf::core {

/// A prefetch candidate: an item id and its estimated access probability.
struct Candidate {
  std::uint64_t item = 0;
  double probability = 0.0;
};

/// Outcome of planning one request's prefetches.
struct PrefetchPlan {
  std::vector<Candidate> selected;  ///< all candidates with p > p_th
  double threshold = 0.0;           ///< p_th used for the decision
  double probability_mass = 0.0;    ///< Σ p over selected items
  /// Closed-form prediction of the post-prefetch operating point, with
  /// n̄(F) = selected.size() and Σp in place of n̄(F)·p.
  double predicted_hit_ratio = 0.0;
  double predicted_utilization = 0.0;
  double predicted_access_time = 0.0;
  double predicted_gain = 0.0;
  double predicted_excess_cost = 0.0;
  bool feasible = false;  ///< predicted system stays stable (condition 3)
};

class PrefetchPlanner {
 public:
  PrefetchPlanner(SystemParams params, InteractionModel model);

  /// Selects every candidate whose probability strictly exceeds p_th
  /// (the paper's exclusive-threshold rule) and evaluates the closed-form
  /// prediction for the resulting batch.
  PrefetchPlan plan(const std::vector<Candidate>& candidates) const;

  /// Same rule but with the number of selections capped (for ablations that
  /// compare against budgeted policies). Highest-probability items win.
  PrefetchPlan plan_with_budget(const std::vector<Candidate>& candidates,
                                std::size_t max_items) const;

  /// The decision threshold p_th for the configured model.
  double threshold() const;

  /// Updates the system parameters (e.g. as the online h' estimate or the
  /// measured load changes).
  void set_params(SystemParams params);
  const SystemParams& params() const { return params_; }
  InteractionModel model() const { return model_; }

 private:
  PrefetchPlan evaluate(std::vector<Candidate> selected) const;

  SystemParams params_;
  InteractionModel model_;
};

}  // namespace specpf::core
