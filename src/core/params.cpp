#include "core/params.hpp"

#include "util/contract.hpp"

namespace specpf::core {

void SystemParams::validate() const {
  SPECPF_EXPECTS(bandwidth > 0.0);
  SPECPF_EXPECTS(request_rate >= 0.0);
  SPECPF_EXPECTS(mean_item_size > 0.0);
  SPECPF_EXPECTS(hit_ratio >= 0.0 && hit_ratio <= 1.0);
  SPECPF_EXPECTS(cache_items > 0.0);
}

double max_candidates(const SystemParams& params, double access_probability) {
  SPECPF_EXPECTS(access_probability > 0.0 && access_probability <= 1.0);
  return params.fault_ratio() / access_probability;
}

}  // namespace specpf::core
