#include "core/no_prefetch.hpp"

#include "util/contract.hpp"

namespace specpf::core {

NoPrefetchResult analyze_no_prefetch(const SystemParams& params) {
  params.validate();
  SPECPF_EXPECTS(params.stable_without_prefetch());

  NoPrefetchResult out;
  out.utilization = params.utilization_no_prefetch();
  // Eq. (4): r̄' = s̄ / (b(1-ρ')).
  out.retrieval_time =
      params.mean_item_size / (params.bandwidth * (1.0 - out.utilization));
  // Eq. (5): t̄' = (1-h')·r̄' = f's̄ / (b - f'λs̄).
  out.access_time = params.fault_ratio() * out.retrieval_time;
  return out;
}

}  // namespace specpf::core
