#include "core/hit_ratio_estimator.hpp"

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf::core {

EntryTag HitRatioEstimator::on_cache_hit(EntryTag tag) {
  ++naccess_;
  if (tag == EntryTag::kTagged) {
    ++nhit_;
    return EntryTag::kTagged;
  }
  // First touch of a prefetched entry: not counted as a would-have-hit, but
  // subsequent touches are (the item would by then be cached even without
  // prefetching, having been demand-fetched at this access).
  return EntryTag::kTagged;
}

void HitRatioEstimator::on_cache_miss() { ++naccess_; }

double HitRatioEstimator::estimate_model_a() const {
  return safe_div(static_cast<double>(nhit_), static_cast<double>(naccess_),
                  0.0);
}

double HitRatioEstimator::estimate_model_b(double cache_items,
                                           double prefetched_per_request) const {
  SPECPF_EXPECTS(prefetched_per_request >= 0.0);
  SPECPF_EXPECTS(cache_items > prefetched_per_request);
  return estimate_model_a() * cache_items /
         (cache_items - prefetched_per_request);
}

void HitRatioEstimator::reset() {
  naccess_ = 0;
  nhit_ = 0;
}

}  // namespace specpf::core
