// Unified prefetch–cache interaction analysis (paper §2.2, §3, §6).
//
// The paper analyses two eviction models:
//   Model A — prefetched items evict zero-value cache entries;
//             h = h' + n̄(F)·p                       (eq. 7)
//   Model B — every cache entry contributes h'/n̄(C) to the hit ratio, so an
//             eviction costs that much;
//             h = h' − n̄(F)·h'/n̄(C) + n̄(F)·p        (eq. 15)
// and §6 sketches the interpolating "Model AB" in which the evicted victim
// has some per-item value q ∈ [0, h'/n̄(C)].
//
// All three are special cases of a single family parameterised by the
// *victim value* q (expected hit-ratio contribution of each evicted entry):
//   h   = h' + n̄(F)(p − q)
//   ρ   = (1 − h + n̄(F))·λ·s̄/b
//   t̄   = (1 − h)·r̄
//   G   = t̄' − t̄
//        = n̄(F)·s̄·(p·b − f'λs̄ − q·b)
//          / ((b − f'λs̄)(b − f'λs̄ − n̄(F)(1 − p + q)λs̄))
//   p_th = ρ' + q
// Setting q = 0 recovers Model A's eqs. (7)–(13); q = h'/n̄(C) recovers
// Model B's eqs. (15)–(21). Tests verify these identities against the
// independently coded per-model formulas in model_a.hpp / model_b.hpp.
#pragma once

#include "core/no_prefetch.hpp"
#include "core/params.hpp"

namespace specpf::core {

/// Which prefetch–cache interaction assumption to analyse.
enum class InteractionModel {
  kModelA,  ///< evict zero-value items (q = 0)
  kModelB,  ///< evict average-value items (q = h'/n̄(C))
};

/// Victim value q for the chosen model.
double victim_value(const SystemParams& params, InteractionModel model);

/// A prefetching operating point: every prefetched item is assumed to have
/// the same access probability p (paper §3), and n̄(F) items are prefetched
/// per user request.
struct OperatingPoint {
  double access_probability = 0.5;  ///< p in (0, 1]
  double prefetch_rate = 0.0;       ///< n̄(F) >= 0
};

/// Positivity conditions (12)/(20) for the gain G.
struct GainConditions {
  bool prob_above_threshold = false;  ///< condition 1: p·b − f'λs̄ − q·b > 0
  bool demand_within_capacity = false;  ///< condition 2: b − f'λs̄ > 0
  bool total_within_capacity = false;   ///< condition 3: denominator > 0
  bool all() const {
    return prob_above_threshold && demand_within_capacity &&
           total_within_capacity;
  }
};

/// Full closed-form evaluation of one operating point.
struct PrefetchAnalysis {
  double victim_value = 0.0;    ///< q
  double hit_ratio = 0.0;       ///< h
  double utilization = 0.0;     ///< ρ
  double retrieval_time = 0.0;  ///< r̄
  double access_time = 0.0;     ///< t̄
  double gain = 0.0;            ///< G = t̄' − t̄
  double threshold = 0.0;       ///< p_th = ρ' + q
  GainConditions conditions;
  NoPrefetchResult baseline;    ///< ρ', r̄', t̄'
};

/// Generalised interaction analysis with explicit victim value q.
/// Requires params valid, ρ' < 1, p in (0,1], n̄(F) >= 0, q in [0, p_max].
/// The resulting system must be stable (condition 3) for the sojourn-time
/// forms to be meaningful; `analyze` still returns the algebraic values when
/// unstable but marks conditions.total_within_capacity = false.
PrefetchAnalysis analyze_with_victim_value(const SystemParams& params,
                                           const OperatingPoint& op,
                                           double victim_value);

/// Analysis under Model A or Model B.
PrefetchAnalysis analyze(const SystemParams& params, const OperatingPoint& op,
                         InteractionModel model);

/// Access-probability threshold p_th for the chosen model:
/// Model A: p_th = ρ' (eq. 13);  Model B: p_th = ρ' + h'/n̄(C) (eq. 21).
double threshold(const SystemParams& params, InteractionModel model);

/// Bound on n̄(F) implied by condition 3 at the *strictest useful bandwidth*
/// (b just above the threshold-satisfying minimum): equals f'/(p − q),
/// which is ≥ max(np) = f'/p — the paper's argument that condition 3 is
/// redundant (eq. 14 / eq. 22).
double prefetch_rate_limit_at_min_bandwidth(const SystemParams& params,
                                            double access_probability,
                                            InteractionModel model);

/// Largest n̄(F) keeping the prefetching system stable (condition 3) at the
/// *actual* bandwidth, i.e. the root of the t̄ denominator. Infinite when
/// p = 1 and q = 0 makes the coefficient vanish.
double prefetch_rate_capacity_limit(const SystemParams& params,
                                    double access_probability,
                                    InteractionModel model);

}  // namespace specpf::core
