// System parameters of the paper's multi-user network access model (§2).
//
// Symbols follow the paper's appendix:
//   b      bandwidth (units/s)
//   λ      aggregate user request rate (requests/s)
//   s̄      average item size (units)
//   h'     cache hit ratio with no prefetching
//   n̄(C)   average number of items in a user's cache
#pragma once

namespace specpf::core {

struct SystemParams {
  double bandwidth = 50.0;        ///< b > 0
  double request_rate = 30.0;     ///< λ >= 0
  double mean_item_size = 1.0;    ///< s̄ > 0
  double hit_ratio = 0.0;         ///< h' in [0, 1]
  double cache_items = 100.0;     ///< n̄(C) > 0 (only Model B / AB use it)

  /// Cache fault ratio f' = 1 - h'.
  double fault_ratio() const noexcept { return 1.0 - hit_ratio; }

  /// Mean service time of one retrieval, x = s̄/b. Paper eq. (3).
  double service_time() const noexcept { return mean_item_size / bandwidth; }

  /// No-prefetch server utilisation ρ' = f'·λ·s̄/b.
  double utilization_no_prefetch() const noexcept {
    return fault_ratio() * request_rate * service_time();
  }

  /// True when demand traffic alone is within capacity (ρ' < 1) —
  /// condition 2 of (12)/(20).
  bool stable_without_prefetch() const noexcept {
    return utilization_no_prefetch() < 1.0;
  }

  /// Throws ContractViolation when any field is out of domain.
  void validate() const;
};

/// Upper bound max(np) = f'/p on how many items can simultaneously have
/// access probability >= p. Paper eq. (6). Requires p in (0, 1].
double max_candidates(const SystemParams& params, double access_probability);

}  // namespace specpf::core
