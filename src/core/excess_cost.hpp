// Excess retrieval cost (paper §5, eqs. (23)–(27)).
//
// C = R − R' measures how much extra network time per user request
// prefetching consumes, *including* the slowdown that the added load inflicts
// on every transfer. The key phenomenon is "load impedance": prefetching the
// same item costs more when the system is already busy, because
// C = (ρ − ρ') / (λ(1−ρ)(1−ρ')) is convex in ρ.
#pragma once

#include "core/interaction.hpp"
#include "core/params.hpp"

namespace specpf::core {

/// Retrieval time per user request, R = n̄(R)·r̄ = ρ/(λ(1−ρ)). Eq. (25).
/// Requires 0 <= ρ < 1 and λ > 0.
double retrieval_time_per_request(double utilization, double request_rate);

/// Eq. (27): C = (ρ − ρ') / (λ(1−ρ)(1−ρ')). Generic in the prefetch-cache
/// interaction: any model's ρ may be supplied.
double excess_cost(double utilization_prefetch, double utilization_no_prefetch,
                   double request_rate);

/// Excess cost at an operating point under the given interaction model
/// (computes ρ from the model, ρ' from the params, then applies eq. (27)).
double excess_cost(const SystemParams& params, const OperatingPoint& op,
                   InteractionModel model);

}  // namespace specpf::core
