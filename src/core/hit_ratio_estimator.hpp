// Online estimation of h' — the hit ratio the cache *would* have had without
// prefetching — while prefetching is actually running (paper §4).
//
// Protocol (verbatim from the paper):
//   * prefetched items enter the cache UNTAGGED;
//   * an access to a TAGGED entry:   naccess++, nhit++;
//   * an access to an UNTAGGED one:  naccess++, entry becomes TAGGED;
//   * an access to a remote item:    naccess++, and if the item is admitted
//     to the cache it enters TAGGED.
// Then  ĥ' = nhit/naccess  under Model A, and
//       ĥ' = nhit/naccess · n̄(C)/(n̄(C) − n̄(F))  under Model B.
//
// The intuition: an untagged hit is a hit *caused by* prefetching; only hits
// on tagged entries (demand-admitted, or prefetched items already accessed
// once) would have been hits in the prefetch-free cache.
#pragma once

#include <cstdint>

namespace specpf::core {

enum class EntryTag : std::uint8_t { kUntagged = 0, kTagged = 1 };

class HitRatioEstimator {
 public:
  /// Tag for a freshly prefetched cache insertion.
  static constexpr EntryTag prefetch_insert_tag() {
    return EntryTag::kUntagged;
  }

  /// Tag for an item admitted to the cache on a demand fetch.
  static constexpr EntryTag demand_insert_tag() { return EntryTag::kTagged; }

  /// Records an access that hit a cache entry carrying `tag`. Returns the
  /// tag the entry must carry afterwards (untagged entries become tagged).
  EntryTag on_cache_hit(EntryTag tag);

  /// Records an access that missed the cache (remote retrieval).
  void on_cache_miss();

  /// ĥ' under Model A: nhit / naccess. Zero before any access.
  double estimate_model_a() const;

  /// ĥ' under Model B: Model A estimate × n̄(C)/(n̄(C) − n̄(F)).
  /// Requires cache_items > prefetched_per_request >= 0.
  double estimate_model_b(double cache_items,
                          double prefetched_per_request) const;

  std::uint64_t accesses() const { return naccess_; }
  std::uint64_t tagged_hits() const { return nhit_; }

  void reset();

 private:
  std::uint64_t naccess_ = 0;
  std::uint64_t nhit_ = 0;
};

}  // namespace specpf::core
