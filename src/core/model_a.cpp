#include "core/model_a.hpp"

#include "util/contract.hpp"

namespace specpf::core::model_a {

namespace {
void check(const SystemParams& params, double p, double nf) {
  params.validate();
  SPECPF_EXPECTS(p > 0.0 && p <= 1.0);
  SPECPF_EXPECTS(nf >= 0.0);
}
}  // namespace

double hit_ratio(const SystemParams& params, double p, double nf) {
  check(params, p, nf);
  return params.hit_ratio + nf * p;
}

double utilization(const SystemParams& params, double p, double nf) {
  const double h = hit_ratio(params, p, nf);
  return (1.0 - h + nf) * params.request_rate * params.mean_item_size /
         params.bandwidth;
}

double retrieval_time(const SystemParams& params, double p, double nf) {
  const double h = hit_ratio(params, p, nf);
  return params.mean_item_size /
         (params.bandwidth -
          (1.0 - h + nf) * params.request_rate * params.mean_item_size);
}

double access_time(const SystemParams& params, double p, double nf) {
  check(params, p, nf);
  const double b = params.bandwidth;
  const double lambda = params.request_rate;
  const double s = params.mean_item_size;
  const double f = params.fault_ratio();
  return (f - nf * p) * s /
         (b - f * lambda * s - nf * (1.0 - p) * lambda * s);
}

double gain(const SystemParams& params, double p, double nf) {
  check(params, p, nf);
  const double b = params.bandwidth;
  const double lambda = params.request_rate;
  const double s = params.mean_item_size;
  const double f = params.fault_ratio();
  return nf * s * (p * b - f * lambda * s) /
         ((b - f * lambda * s) *
          (b - f * lambda * s - nf * (1.0 - p) * lambda * s));
}

double threshold(const SystemParams& params) {
  params.validate();
  return params.utilization_no_prefetch();
}

double prefetch_limit_min_bandwidth(const SystemParams& params, double p) {
  check(params, p, 0.0);
  return params.fault_ratio() / p;
}

}  // namespace specpf::core::model_a
