// Model A — "evict zero-value items" (paper §3.1, eqs. (7)–(14)).
//
// These are the paper's formulas transcribed literally, independent of the
// generalised implementation in interaction.hpp; the test suite checks that
// the two agree to machine precision, which guards both transcriptions.
#pragma once

#include "core/params.hpp"

namespace specpf::core::model_a {

/// Eq. (7): h = h' + n̄(F)·p.
double hit_ratio(const SystemParams& params, double p, double nf);

/// Eq. (8): ρ = (1 − h + n̄(F))·λ·s̄/b.
double utilization(const SystemParams& params, double p, double nf);

/// Eq. (9): r̄ = s̄ / (b − (1 − h + n̄(F))·λ·s̄).
double retrieval_time(const SystemParams& params, double p, double nf);

/// Eq. (10): t̄ = (f' − n̄(F)p)·s̄ / (b − f'λs̄ − n̄(F)(1−p)λs̄).
double access_time(const SystemParams& params, double p, double nf);

/// Eq. (11): G = n̄(F)s̄(pb − f'λs̄) /
///               ((b − f'λs̄)(b − f'λs̄ − n̄(F)(1−p)λs̄)).
double gain(const SystemParams& params, double p, double nf);

/// Eq. (13): p_th = f'λs̄/b = ρ'.
double threshold(const SystemParams& params);

/// Eq. (14) bound at the least useful bandwidth: n̄(F) < f'/p.
double prefetch_limit_min_bandwidth(const SystemParams& params, double p);

}  // namespace specpf::core::model_a
