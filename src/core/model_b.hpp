// Model B — "evict average-value items" (paper §3.2, eqs. (15)–(22)).
//
// Literal transcription of the paper's Model B formulas; the generalised
// interaction.hpp implementation must agree (tested).
#pragma once

#include "core/params.hpp"

namespace specpf::core::model_b {

/// Eq. (15): h = h' − n̄(F)·h'/n̄(C) + n̄(F)·p.
double hit_ratio(const SystemParams& params, double p, double nf);

/// Eq. (16): ρ = (1 − h + n̄(F))·λ·s̄/b.
double utilization(const SystemParams& params, double p, double nf);

/// Eq. (17): r̄ = s̄ / (b − (1 − h + n̄(F))·λ·s̄).
double retrieval_time(const SystemParams& params, double p, double nf);

/// Eq. (18): t̄ = (f' + (n̄(F)/n̄(C))h' − n̄(F)p)·s̄ /
///               (b − f'λs̄ − (n̄(F)/n̄(C))h's̄λ − n̄(F)(1−p)λs̄).
double access_time(const SystemParams& params, double p, double nf);

/// Eq. (19): G = n̄(F)s̄(pb − f'λs̄ − bh'/n̄(C)) /
///               ((b − f'λs̄)(b − f'λs̄ − (n̄(F)/n̄(C))h's̄λ − n̄(F)(1−p)λs̄)).
double gain(const SystemParams& params, double p, double nf);

/// Eq. (21): p_th = f'λs̄/b + h'/n̄(C) = ρ' + h'/n̄(C).
double threshold(const SystemParams& params);

/// Eq. (22) bound at the least useful bandwidth: n̄(F) < f'/(p − h'/n̄(C)).
double prefetch_limit_min_bandwidth(const SystemParams& params, double p);

}  // namespace specpf::core::model_b
