#include "core/inverse.hpp"

#include <algorithm>
#include <limits>

#include "util/contract.hpp"

namespace specpf::core {

double min_bandwidth_for_access_time(const SystemParams& params,
                                     double target) {
  params.validate();
  SPECPF_EXPECTS(target > 0.0);
  const double f = params.fault_ratio();
  // From eq. (5): b = f's̄/T + f'λs̄. f' = 0 ⇒ any bandwidth (returns 0).
  return f * params.mean_item_size / target +
         f * params.request_rate * params.mean_item_size;
}

double min_bandwidth_for_access_time(const SystemParams& params,
                                     const OperatingPoint& op,
                                     InteractionModel model, double target) {
  params.validate();
  SPECPF_EXPECTS(target > 0.0);
  const double q = victim_value(params, model);
  const double h =
      params.hit_ratio + op.prefetch_rate * (op.access_probability - q);
  SPECPF_EXPECTS(h <= 1.0 + 1e-12);
  const double miss = std::max(0.0, 1.0 - h);
  // From eqs. (10)/(18): b = (1−h)s̄/T + (1−h+n̄(F))λs̄.
  return miss * params.mean_item_size / target +
         (miss + op.prefetch_rate) * params.request_rate *
             params.mean_item_size;
}

double max_prefetch_rate_for_access_time(const SystemParams& params,
                                         double p, InteractionModel model,
                                         double target) {
  params.validate();
  SPECPF_EXPECTS(p > 0.0 && p <= 1.0);
  SPECPF_EXPECTS(target > 0.0);
  SPECPF_EXPECTS(params.stable_without_prefetch());

  const double q = victim_value(params, model);
  SPECPF_EXPECTS(p > q);
  const double s = params.mean_item_size;
  const double lambda = params.request_rate;
  const double f = params.fault_ratio();
  const double demand_margin = params.bandwidth - f * lambda * s;  // D0 > 0
  const double extra_load_coeff = (1.0 - p + q) * lambda * s;      // E ≥ 0

  // Admissible range: eq. (6) cap and the stability boundary.
  const double max_np = f / p;
  double nf_hi = max_np;
  if (extra_load_coeff > 0.0) {
    nf_hi = std::min(nf_hi, demand_margin / extra_load_coeff * (1.0 - 1e-12));
  }

  auto access_time = [&](double nf) {
    return (f - nf * (p - q)) * s /
           (demand_margin - nf * extra_load_coeff);
  };
  const double t0 = access_time(0.0);
  const double t_hi = access_time(nf_hi);
  // t̄ is monotone in n̄(F) on the stable interval.
  if (t0 <= target && t_hi <= target) return nf_hi;
  if (t0 > target && t_hi > target) return 0.0;

  // Solve (f' − n̄F(p−q))s̄ = T(D0 − n̄F·E) for n̄F.
  const double numerator = target * demand_margin - f * s;
  const double denominator = target * extra_load_coeff - (p - q) * s;
  if (denominator == 0.0) return 0.0;  // parallel: no crossing inside
  return std::clamp(numerator / denominator, 0.0, nf_hi);
}

double max_prefetch_rate_for_utilization(const SystemParams& params, double p,
                                         InteractionModel model,
                                         double max_utilization) {
  params.validate();
  SPECPF_EXPECTS(p > 0.0 && p <= 1.0);
  SPECPF_EXPECTS(max_utilization > 0.0 && max_utilization < 1.0);
  const double q = victim_value(params, model);
  SPECPF_EXPECTS(p > q);
  const double rho_prime = params.utilization_no_prefetch();
  const double max_np = params.fault_ratio() / p;
  if (rho_prime >= max_utilization) return 0.0;
  const double load_per_prefetch = (1.0 - p + q) * params.request_rate *
                                   params.mean_item_size / params.bandwidth;
  if (load_per_prefetch <= 0.0) return max_np;  // p=1, q=0: free capacity
  return std::min(max_np, (max_utilization - rho_prime) / load_per_prefetch);
}

double min_probability_for_gain(const SystemParams& params,
                                double prefetch_rate, InteractionModel model,
                                double target_gain) {
  params.validate();
  SPECPF_EXPECTS(prefetch_rate > 0.0);
  SPECPF_EXPECTS(target_gain >= 0.0);
  SPECPF_EXPECTS(params.stable_without_prefetch());

  const double q = victim_value(params, model);
  const double s = params.mean_item_size;
  const double b = params.bandwidth;
  const double lambda = params.request_rate;
  const double f = params.fault_ratio();
  const double demand_margin = b - f * lambda * s;  // D0
  // M0: the t̄ denominator at p = 0 (all prefetches wasted).
  const double m0 =
      demand_margin - prefetch_rate * (1.0 + q) * lambda * s;

  const double denominator =
      prefetch_rate * s * (b - target_gain * demand_margin * lambda);
  if (denominator <= 0.0) {
    return 2.0;  // no probability (even 1) can deliver that much gain
  }
  const double numerator =
      target_gain * demand_margin * m0 +
      prefetch_rate * s * (f * lambda * s + q * b);
  return numerator / denominator;
}

double demand_growth_headroom(const SystemParams& params, double target) {
  params.validate();
  SPECPF_EXPECTS(target > 0.0);
  const double f = params.fault_ratio();
  const double s = params.mean_item_size;
  if (f == 0.0 || params.request_rate == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Solve f's̄/(b − f'κλs̄) = T for the rate multiplier κ.
  return (params.bandwidth - f * s / target) /
         (f * params.request_rate * s);
}

}  // namespace specpf::core
