#include "core/planner.hpp"

#include <algorithm>

#include "core/excess_cost.hpp"
#include "util/contract.hpp"

namespace specpf::core {

PrefetchPlanner::PrefetchPlanner(SystemParams params, InteractionModel model)
    : params_(params), model_(model) {
  params_.validate();
}

double PrefetchPlanner::threshold() const {
  return core::threshold(params_, model_);
}

void PrefetchPlanner::set_params(SystemParams params) {
  params.validate();
  params_ = params;
}

PrefetchPlan PrefetchPlanner::plan(
    const std::vector<Candidate>& candidates) const {
  const double pth = threshold();
  std::vector<Candidate> selected;
  for (const Candidate& c : candidates) {
    SPECPF_EXPECTS(c.probability >= 0.0 && c.probability <= 1.0);
    if (c.probability > pth) selected.push_back(c);
  }
  return evaluate(std::move(selected));
}

PrefetchPlan PrefetchPlanner::plan_with_budget(
    const std::vector<Candidate>& candidates, std::size_t max_items) const {
  const double pth = threshold();
  std::vector<Candidate> selected;
  for (const Candidate& c : candidates) {
    SPECPF_EXPECTS(c.probability >= 0.0 && c.probability <= 1.0);
    if (c.probability > pth) selected.push_back(c);
  }
  if (selected.size() > max_items) {
    std::partial_sort(selected.begin(), selected.begin() + max_items,
                      selected.end(), [](const Candidate& a, const Candidate& b) {
                        return a.probability > b.probability;
                      });
    selected.resize(max_items);
  }
  return evaluate(std::move(selected));
}

PrefetchPlan PrefetchPlanner::evaluate(std::vector<Candidate> selected) const {
  PrefetchPlan plan;
  plan.threshold = threshold();
  plan.selected = std::move(selected);
  for (const Candidate& c : plan.selected) plan.probability_mass += c.probability;

  const double nf = static_cast<double>(plan.selected.size());
  const double sum_p = plan.probability_mass;
  const double q = victim_value(params_, model_);
  const double b = params_.bandwidth;
  const double lambda = params_.request_rate;
  const double s = params_.mean_item_size;

  const NoPrefetchResult base = analyze_no_prefetch(params_);

  // Heterogeneous-p generalisation: h = h' + Σp − n̄(F)·q. A predictor may
  // assign more probability mass than the estimated fault ratio admits
  // (eq. 6 consistency); clamp so the prediction stays a probability.
  plan.predicted_hit_ratio =
      std::min(1.0, params_.hit_ratio + sum_p - nf * q);
  plan.predicted_utilization =
      (1.0 - plan.predicted_hit_ratio + nf) * lambda * s / b;
  const double denom = b - (1.0 - plan.predicted_hit_ratio + nf) * lambda * s;
  plan.feasible = denom > 0.0;
  if (plan.feasible) {
    plan.predicted_access_time =
        (1.0 - plan.predicted_hit_ratio) * s / denom;
    plan.predicted_gain = base.access_time - plan.predicted_access_time;
    plan.predicted_excess_cost =
        lambda > 0.0 ? excess_cost(plan.predicted_utilization,
                                   base.utilization, lambda)
                     : 0.0;
  } else {
    plan.predicted_access_time = 0.0;
    plan.predicted_gain = -base.access_time;  // saturated system: no bound
    plan.predicted_excess_cost = 0.0;
  }
  return plan;
}

}  // namespace specpf::core
