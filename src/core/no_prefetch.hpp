// Baseline: average access time with caching only (paper §2.3).
#pragma once

#include "core/params.hpp"

namespace specpf::core {

/// Closed-form performance of the cache-only system.
struct NoPrefetchResult {
  double utilization = 0.0;     ///< ρ' = f'λs̄/b
  double retrieval_time = 0.0;  ///< r̄' = s̄ / (b(1-ρ')), paper eq. (4)
  double access_time = 0.0;     ///< t̄' = f's̄ / (b - f'λs̄), paper eq. (5)
};

/// Evaluates eqs. (4)–(5). Requires ρ' < 1 (the paper's standing stability
/// assumption; condition 2 of (12)).
NoPrefetchResult analyze_no_prefetch(const SystemParams& params);

}  // namespace specpf::core
