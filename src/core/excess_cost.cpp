#include "core/excess_cost.hpp"

#include "util/contract.hpp"

namespace specpf::core {

double retrieval_time_per_request(double utilization, double request_rate) {
  SPECPF_EXPECTS(utilization >= 0.0 && utilization < 1.0);
  SPECPF_EXPECTS(request_rate > 0.0);
  return utilization / (request_rate * (1.0 - utilization));
}

double excess_cost(double rho, double rho_prime, double request_rate) {
  SPECPF_EXPECTS(rho >= 0.0 && rho < 1.0);
  SPECPF_EXPECTS(rho_prime >= 0.0 && rho_prime < 1.0);
  SPECPF_EXPECTS(request_rate > 0.0);
  return (rho - rho_prime) /
         (request_rate * (1.0 - rho) * (1.0 - rho_prime));
}

double excess_cost(const SystemParams& params, const OperatingPoint& op,
                   InteractionModel model) {
  const PrefetchAnalysis a = analyze(params, op, model);
  SPECPF_EXPECTS(a.conditions.total_within_capacity);
  return excess_cost(a.utilization, a.baseline.utilization,
                     params.request_rate);
}

}  // namespace specpf::core
