// Inverse problems on the paper's closed forms — the QoS-provisioning
// questions the paper's conclusion points at ("addressing QoS issues of
// multimedia access in wired as well as wireless networks"):
//
//   * How much bandwidth does a target access time require?
//   * How hard can we prefetch before a latency budget is violated?
//   * How good must the predictor be for prefetching to pay at all?
//
// All are exact algebraic inversions of eqs. (5), (10) and (13); no
// numerical root finding is needed.
#pragma once

#include "core/interaction.hpp"
#include "core/params.hpp"

namespace specpf::core {

/// Minimum bandwidth for the *no-prefetch* system to meet
/// t̄' ≤ target. Inverts eq. (5): b = f's̄/target + f'λs̄.
/// Requires target > 0.
double min_bandwidth_for_access_time(const SystemParams& params,
                                     double target_access_time);

/// Minimum bandwidth for the *prefetching* system at operating point `op`
/// to meet t̄ ≤ target under the given interaction model. Inverts
/// eqs. (10)/(18): with ĥ = h' + n̄(F)(p−q) fixed (independent of b),
/// b = (1−ĥ)s̄/target + (1−ĥ+n̄(F))λs̄.
double min_bandwidth_for_access_time(const SystemParams& params,
                                     const OperatingPoint& op,
                                     InteractionModel model,
                                     double target_access_time);

/// Largest prefetch rate n̄(F) that keeps the prefetching system's access
/// time within `target`. Inverts t̄(n̄(F)) = target; the result is clamped
/// to [0, max(np)] for consistency with eq. (6) and to the stability limit.
/// When even n̄(F)=0 misses the target, returns 0; when the target is met
/// at max(np), returns max(np).
double max_prefetch_rate_for_access_time(const SystemParams& params,
                                         double access_probability,
                                         InteractionModel model,
                                         double target_access_time);

/// Largest prefetch rate n̄(F) keeping the post-prefetch utilisation within
/// `max_utilization` (< 1): ρ(n̄F) = ρ' + n̄F(1−p+q)λs̄/b. Used to reserve
/// capacity headroom for the variance/tail effects the mean-value closed
/// forms ignore. Clamped to [0, max(np)]; p = 1 under Model A adds no load,
/// giving the full max(np).
double max_prefetch_rate_for_utilization(const SystemParams& params,
                                         double access_probability,
                                         InteractionModel model,
                                         double max_utilization);

/// Smallest access probability at which prefetching n̄(F) items per request
/// achieves at least `target_gain` (> 0). Inverts eq. (11)/(19) in p. At
/// target_gain → 0 this reduces to the threshold p_th. Returns a value > 1
/// when no probability suffices (the caller should then not prefetch).
double min_probability_for_gain(const SystemParams& params,
                                double prefetch_rate, InteractionModel model,
                                double target_gain);

/// Bandwidth headroom multiplier: by how much demand traffic could grow
/// (λ scaling) before the no-prefetch system violates `target`. Values
/// below 1 mean the target is already violated.
double demand_growth_headroom(const SystemParams& params,
                              double target_access_time);

}  // namespace specpf::core
