// Random variate generators used by workload models and the DES testbed.
//
// All distributions draw from an externally owned Rng so that components can
// interleave draws deterministically. Each class documents its mean so that
// tests can verify moments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace specpf {

/// Abstract positive-valued distribution (sizes, interarrival times).
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate using the supplied generator.
  virtual double sample(Rng& rng) const = 0;

  /// Analytical mean of the distribution (used to parameterise closed forms).
  virtual double mean() const = 0;
};

/// Point mass at `value`.
class DeterministicDist final : public Distribution {
 public:
  explicit DeterministicDist(double value);
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

/// Exponential with the given mean (rate = 1/mean).
class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double mean);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }

 private:
  double mean_;
};

/// Continuous uniform on [lo, hi).
class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi);
  double sample(Rng& rng) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_, hi_;
};

/// Bounded Pareto on [lo, hi] with shape alpha — the classic heavy-tailed
/// model for web object sizes (Crovella & Bestavros).
class BoundedParetoDist final : public Distribution {
 public:
  BoundedParetoDist(double shape, double lo, double hi);
  double sample(Rng& rng) const override;
  double mean() const override;
  double shape() const { return shape_; }

 private:
  double shape_, lo_, hi_;
};

/// Log-normal parameterised by the mean and sigma of the underlying normal.
class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma);
  double sample(Rng& rng) const override;
  double mean() const override;

 private:
  double mu_, sigma_;
};

/// Zipf(α) over ranks {0, ..., n-1}: P(rank k) ∝ (k+1)^-α.
///
/// Sampling is O(1) amortised via Hörmann–Derflinger rejection-inversion, so
/// catalogs of 10^7+ items need no lookup tables.
class ZipfDist {
 public:
  ZipfDist(std::size_t n, double alpha);

  /// Draws a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// P(rank k), exactly normalised.
  double pmf(std::size_t rank) const;

  std::size_t size() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double h(double x) const;      // integral of x^-alpha
  double h_inv(double u) const;  // inverse of h

  std::size_t n_;
  double alpha_;
  double h_x1_, h_n_half_, s_;
  double harmonic_;  // H_{n,alpha} for exact pmf
};

/// Alias-method sampler over an arbitrary finite discrete distribution.
/// Construction O(n), sampling O(1) — used for empirical popularity vectors.
class DiscreteDist {
 public:
  /// `weights` need not be normalised; they must be non-negative with a
  /// positive sum.
  explicit DiscreteDist(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;
  double pmf(std::size_t index) const;
  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;        // normalised pmf (for pmf())
  std::vector<double> accept_;      // alias acceptance thresholds
  std::vector<std::uint32_t> alias_;
};

}  // namespace specpf
