#include "util/distributions.hpp"

#include <cmath>
#include <deque>

#include "util/contract.hpp"
#include "util/math.hpp"

namespace specpf {

DeterministicDist::DeterministicDist(double value) : value_(value) {
  SPECPF_EXPECTS(value >= 0.0);
}

ExponentialDist::ExponentialDist(double mean) : mean_(mean) {
  SPECPF_EXPECTS(mean > 0.0);
}

double ExponentialDist::sample(Rng& rng) const {
  // Inversion; 1 - u avoids log(0) because next_double() < 1.
  return -mean_ * std::log1p(-rng.next_double());
}

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
  SPECPF_EXPECTS(lo >= 0.0 && hi > lo);
}

double UniformDist::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

BoundedParetoDist::BoundedParetoDist(double shape, double lo, double hi)
    : shape_(shape), lo_(lo), hi_(hi) {
  SPECPF_EXPECTS(shape > 0.0);
  SPECPF_EXPECTS(lo > 0.0 && hi > lo);
}

double BoundedParetoDist::sample(Rng& rng) const {
  // Inverse CDF of the truncated Pareto.
  const double u = rng.next_double();
  const double la = std::pow(lo_, shape_);
  const double ha = std::pow(hi_, shape_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape_);
}

double BoundedParetoDist::mean() const {
  if (std::abs(shape_ - 1.0) < 1e-12) {
    return (std::log(hi_) - std::log(lo_)) /
           (1.0 / lo_ - 1.0 / hi_);
  }
  const double la = std::pow(lo_, shape_);
  const double ha = std::pow(hi_, shape_);
  return la / (1.0 - la / ha) * shape_ / (shape_ - 1.0) *
         (1.0 / std::pow(lo_, shape_ - 1.0) - 1.0 / std::pow(hi_, shape_ - 1.0));
}

LogNormalDist::LogNormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SPECPF_EXPECTS(sigma > 0.0);
}

double LogNormalDist::sample(Rng& rng) const {
  // Box–Muller; one variate per call keeps the draw count deterministic.
  const double u1 = 1.0 - rng.next_double();
  const double u2 = rng.next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(mu_ + sigma_ * z);
}

double LogNormalDist::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

// ---------------------------------------------------------------------------
// ZipfDist — Hörmann & Derflinger (1996) rejection-inversion. We sample ranks
// k in [1, n] with P(k) ∝ k^-alpha, then shift to [0, n).
// ---------------------------------------------------------------------------

namespace {
// Helper: (exp(x*t) - 1) / x, stable as x -> 0.
double expm1_over(double x, double t) {
  return x == 0.0 ? t : std::expm1(x * t) / x;
}
}  // namespace

ZipfDist::ZipfDist(std::size_t n, double alpha) : n_(n), alpha_(alpha) {
  SPECPF_EXPECTS(n >= 1);
  SPECPF_EXPECTS(alpha > 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_half_ = h(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha_));
  harmonic_ = generalized_harmonic(n_, alpha_);
}

double ZipfDist::h(double x) const {
  // integral of u^-alpha du evaluated so that h is increasing.
  const double one_minus = 1.0 - alpha_;
  return expm1_over(one_minus, std::log(x));
}

double ZipfDist::h_inv(double u) const {
  const double one_minus = 1.0 - alpha_;
  return std::exp(one_minus == 0.0 ? u : std::log1p(u * one_minus) / one_minus);
}

std::size_t ZipfDist::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_half_ + rng.next_double() * (h_x1_ - h_n_half_);
    const double x = h_inv(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= s_ || u >= h(k + 0.5) - std::pow(k, -alpha_)) {
      return static_cast<std::size_t>(k) - 1;
    }
  }
}

double ZipfDist::pmf(std::size_t rank) const {
  SPECPF_EXPECTS(rank < n_);
  return std::pow(static_cast<double>(rank + 1), -alpha_) / harmonic_;
}

// ---------------------------------------------------------------------------
// DiscreteDist — Vose alias method.
// ---------------------------------------------------------------------------

DiscreteDist::DiscreteDist(const std::vector<double>& weights) {
  SPECPF_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SPECPF_EXPECTS(w >= 0.0);
    total += w;
  }
  SPECPF_EXPECTS(total > 0.0);

  const std::size_t n = weights.size();
  prob_.resize(n);
  accept_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::deque<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    prob_[i] = weights[i] / total;
    scaled[i] = prob_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.front();
    small.pop_front();
    const std::size_t l = large.front();
    large.pop_front();
    accept_[s] = scaled[s];
    alias_[s] = static_cast<std::uint32_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::size_t i : large) accept_[i] = 1.0;
  for (std::size_t i : small) accept_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteDist::sample(Rng& rng) const {
  const std::size_t column = rng.next_below(prob_.size());
  return rng.next_double() < accept_[column] ? column : alias_[column];
}

double DiscreteDist::pmf(std::size_t index) const {
  SPECPF_EXPECTS(index < prob_.size());
  return prob_[index];
}

}  // namespace specpf
