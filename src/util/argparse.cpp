#include "util/argparse.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/contract.hpp"

namespace specpf {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  SPECPF_EXPECTS(!name.empty());
  SPECPF_EXPECTS(flags_.find(name) == flags_.end());
  flags_[name] = Flag{default_value, help, default_value, false};
  order_.push_back(name);
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (!have_value) {
      // Boolean-style defaults can be toggled without a value; otherwise the
      // next argv entry is consumed as the value.
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

std::string ArgParser::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  SPECPF_EXPECTS(it != flags_.end());
  return it->second.value;
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get_string(name));
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get_string(name));
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace specpf
