#include "util/math.hpp"

namespace specpf {

double generalized_harmonic(std::size_t n, double s) noexcept {
  // Sum smallest terms first to limit cancellation for large n.
  KahanSum acc;
  for (std::size_t k = n; k >= 1; --k) {
    acc.add(std::pow(static_cast<double>(k), -s));
  }
  return acc.value();
}

}  // namespace specpf
