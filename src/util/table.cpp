#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contract.hpp"

namespace specpf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPECPF_EXPECTS(!headers_.empty());
}

Table& Table::set_precision(int digits) {
  SPECPF_EXPECTS(digits >= 0 && digits <= 17);
  precision_ = digits;
  return *this;
}

Table& Table::set_title(std::string title) {
  title_ = std::move(title);
  return *this;
}

Table& Table::add_row(std::vector<Cell> row) {
  SPECPF_EXPECTS(row.size() == headers_.size());
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rendered) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(render_cell(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << "### " << title_ << "\n\n";
  os << to_markdown() << '\n';
}

}  // namespace specpf
