// Formatted table output for benchmark harnesses: the same Table renders as
// GitHub-flavoured markdown (for terminal reading / EXPERIMENTS.md) or CSV
// (for downstream plotting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace specpf {

/// A table cell: text, integer, or floating point (rendered with the
/// column's precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Fixed decimal digits used for double cells (default 4).
  Table& set_precision(int digits);

  /// Optional caption printed above the table.
  Table& set_title(std::string title);

  /// Appends a row; must match the header arity.
  Table& add_row(std::vector<Cell> row);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }
  const std::vector<Cell>& row(std::size_t i) const { return rows_.at(i); }

  /// Renders GitHub-flavoured markdown with aligned columns.
  std::string to_markdown() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing separators).
  std::string to_csv() const;

  /// Convenience: prints markdown (plus title) to the stream.
  void print(std::ostream& os) const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace specpf
