// Minimal command-line flag parser for examples and bench binaries.
// Supports --name=value, --name value, and boolean --flag forms, typed
// accessors with defaults, and auto-generated --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specpf {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a flag with a default value (all values stored as strings).
  ArgParser& add_flag(const std::string& name, const std::string& default_value,
                      const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or on an
  /// unknown/malformed flag.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional arguments left over after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
    bool set = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

/// Splits a comma-separated flag value into its non-empty tokens — the
/// shared helper behind every list-valued example flag (policies,
/// governors, scenarios, thread counts, bandwidth sweeps).
std::vector<std::string> split_csv(const std::string& csv);

}  // namespace specpf
