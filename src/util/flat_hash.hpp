// Open-addressing flat hash map for 64-bit keys — the request-plane
// container of the proxy stack (in-flight transfer bookkeeping, predictor
// tables, trace indexes).
//
// Design: robin-hood probing over a power-of-two table with backward-shift
// deletion, so the table is tombstone-free and lookups never scan dead
// slots. One byte of metadata per slot (0 = empty, d = probe distance + 1)
// keeps the probe loop inside a single contiguous array; entries live in a
// parallel flat array, so a hit costs a couple of cache lines instead of a
// node-pointer chase per level of a tree or per bucket chain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "util/audit.hpp"
#include "util/contract.hpp"

namespace specpf {

/// 64→64-bit mixer (the splitmix64 finalizer). Packed keys such as
/// (user << 32) | item concentrate their entropy in a few bit positions;
/// the mix spreads it across the whole index range.
inline std::uint64_t mix_u64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

namespace detail {

/// Shared audit walker for the two robin-hood tables below (same probing
/// core, different storage layout). Re-derives every slot's probe distance
/// from its key and checks it against the stored metadata byte:
///   * a wrong distance means the slot was moved without fixing metadata
///     (or the metadata byte itself was corrupted) — lookups would
///     terminate early and miss live entries;
///   * probe-distance monotonicity (a slot's distance exceeds its
///     predecessor's by at most 1) is exactly the invariant backward-shift
///     deletion maintains — a violation means an erase left a hole mid-run
///     and every entry behind it is unreachable.
template <typename KeyAt>
void audit_robin_hood(const std::uint8_t* meta, std::size_t capacity,
                      std::size_t mask, std::size_t size,
                      std::uint32_t max_probe, KeyAt&& key_at,
                      AuditReport& report) {
  if (capacity == 0) {
    report.check(size == 0, "empty table reports nonzero size");
    return;
  }
  std::size_t live = 0;
  for (std::size_t i = 0; i < capacity; ++i) {
    const std::uint32_t dist = meta[i];
    if (dist == 0) continue;
    ++live;
    if (!report.check(dist <= max_probe,
                      "slot " + std::to_string(i) +
                          " probe distance exceeds kMaxProbe")) {
      continue;
    }
    const std::size_t home = mix_u64(key_at(i)) & mask;
    const std::uint32_t derived =
        static_cast<std::uint32_t>(((i - home) & mask) + 1);
    report.check(derived == dist,
                 "slot " + std::to_string(i) +
                     " stored probe distance disagrees with its key's home "
                     "(stored " +
                     std::to_string(dist) + ", derived " +
                     std::to_string(derived) + ")");
    if (dist > 1) {
      const std::size_t prev = (i - 1) & mask;
      report.check(static_cast<std::uint32_t>(meta[prev]) + 1 >= dist,
                   "slot " + std::to_string(i) +
                       " breaks backward-shift monotonicity (distance " +
                       std::to_string(dist) + " after predecessor distance " +
                       std::to_string(meta[prev]) + ")");
    }
  }
  report.check(live == size, "occupied-slot count " + std::to_string(live) +
                                 " disagrees with size() " +
                                 std::to_string(size));
}

}  // namespace detail

/// Flat hash map from std::uint64_t to V. V must be default-constructible,
/// movable, and move-assignable. Iteration order is an implementation
/// detail (it depends on the insertion history), but is deterministic for a
/// given operation sequence — callers that need a canonical order sort.
template <typename V>
class FlatHashMap {
 public:
  /// An occupied slot; supports structured bindings:
  ///   for (const auto& [key, value] : map) ...
  struct Entry {
    std::uint64_t key;
    V value;
  };

  FlatHashMap() = default;

  ~FlatHashMap() {
    clear();
    deallocate();
  }

  FlatHashMap(FlatHashMap&& other) noexcept { steal(other); }

  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      clear();
      deallocate();
      steal(other);
    }
    return *this;
  }

  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* find(std::uint64_t key) noexcept {
    const std::size_t idx = find_index(key);
    return idx == kNotFound ? nullptr : &slots_[idx].value;
  }
  const V* find(std::uint64_t key) const noexcept {
    const std::size_t idx = find_index(key);
    return idx == kNotFound ? nullptr : &slots_[idx].value;
  }

  bool contains(std::uint64_t key) const noexcept {
    return find_index(key) != kNotFound;
  }

  /// Returns the value for `key`, inserting a value-initialized V first if
  /// absent. `inserted` (when non-null) reports whether an insert happened.
  V& get_or_insert(std::uint64_t key, bool* inserted = nullptr) {
    if (V* v = find(key)) {
      if (inserted) *inserted = false;
      return *v;
    }
    if (inserted) *inserted = true;
    return *insert_new(key, V{});
  }

  V& operator[](std::uint64_t key) { return get_or_insert(key); }

  /// Removes `key`. Returns false when absent.
  bool erase(std::uint64_t key) {
    const std::size_t idx = find_index(key);
    if (idx == kNotFound) return false;
    erase_at(idx);
    return true;
  }

  /// Moves the value for `key` out of the table and erases the entry.
  /// Precondition: the key is present.
  V take(std::uint64_t key) {
    const std::size_t idx = find_index(key);
    SPECPF_DCHECK(idx != kNotFound);
    V out = std::move(slots_[idx].value);
    erase_at(idx);
    return out;
  }

  void clear() {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) {
        slots_[i].~Entry();
        meta_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Ensures `n` entries fit without further rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > capacity_) rehash_to(cap);
  }

  /// Visits every (key, const value&) pair in unspecified order. Cold-path
  /// helper for audit sweeps and diagnostics; the data plane never scans.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Deep-invariant walk (util/audit.hpp): probe-distance agreement,
  /// backward-shift monotonicity, occupancy vs size().
  void audit(AuditReport& report) const {
    AuditScope scope(report, "FlatHashMap");
    detail::audit_robin_hood(
        meta_, capacity_, mask_, size_, kMaxProbe,
        [this](std::size_t i) { return slots_[i].key; }, report);
  }

  template <bool Const>
  class Iter {
    using Map = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using Ref = std::conditional_t<Const, const Entry&, Entry&>;

   public:
    Iter(Map* map, std::size_t idx) : map_(map), idx_(idx) { skip_empty(); }
    Ref operator*() const { return map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      skip_empty();
      return *this;
    }
    bool operator==(const Iter& other) const { return idx_ == other.idx_; }
    bool operator!=(const Iter& other) const { return idx_ != other.idx_; }

   private:
    void skip_empty() {
      while (idx_ < map_->capacity_ && map_->meta_[idx_] == 0) ++idx_;
    }
    Map* map_;
    std::size_t idx_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, capacity_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, capacity_); }

 private:
  friend struct AuditPeer;  // corruption-injection tests only
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinCapacity = 16;
  // Grow past 7/8 occupancy: robin-hood keeps probe sequences short up to
  // high load, and 7/8 keeps the memory overhead at ~1.14x entries.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;
  // Longest representable probe distance (metadata is one byte, 0 = empty).
  // Unreachable with a mixing hash at our load factor; hitting it forces a
  // grow rather than corrupting metadata.
  static constexpr std::uint32_t kMaxProbe = 254;

  std::size_t find_index(std::uint64_t key) const noexcept {
    if (size_ == 0) return kNotFound;
    std::size_t idx = mix_u64(key) & mask_;
    std::uint32_t dist = 1;
    // Robin-hood invariant: a stored key's probe distance never exceeds the
    // distance a probe for it has travelled, so the scan can stop at the
    // first slot that is empty or closer to its own home than we are.
    while (meta_[idx] >= dist) {
      if (slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask_;
      ++dist;
    }
    return kNotFound;
  }

  /// Places the carried entry, displacing richer entries robin-hood style.
  /// Returns the slot where the *initially* carried entry landed (the walk
  /// only moves forward, so later displacements never touch it again), or
  /// nullptr when a probe distance would overflow the metadata byte — the
  /// caller grows the table (rehashing everything already placed) and
  /// retries with whatever entry is left in the carry.
  V* robin_place(std::uint64_t& carry_key, V& carry_value) {
    std::size_t idx = mix_u64(carry_key) & mask_;
    std::uint32_t dist = 1;
    V* placed = nullptr;
    for (;;) {
      if (dist > kMaxProbe) return nullptr;
      if (meta_[idx] == 0) {
        ::new (static_cast<void*>(&slots_[idx]))
            Entry{carry_key, std::move(carry_value)};
        meta_[idx] = static_cast<std::uint8_t>(dist);
        return placed ? placed : &slots_[idx].value;
      }
      if (meta_[idx] < dist) {
        std::swap(carry_key, slots_[idx].key);
        std::swap(carry_value, slots_[idx].value);
        const std::uint8_t displaced = meta_[idx];
        meta_[idx] = static_cast<std::uint8_t>(dist);
        dist = displaced;
        if (!placed) placed = &slots_[idx].value;
      }
      idx = (idx + 1) & mask_;
      ++dist;
    }
  }

  /// Inserts a key known to be absent; returns the value slot.
  V* insert_new(std::uint64_t key, V value) {
    if (capacity_ == 0 ||
        (size_ + 1) * kMaxLoadDen > capacity_ * kMaxLoadNum) {
      rehash_to(capacity_ ? capacity_ * 2 : kMinCapacity);
    }
    std::uint64_t carry_key = key;
    V carry_value = std::move(value);
    V* placed = robin_place(carry_key, carry_value);
    while (placed == nullptr) {
      // Overflow is possible both before and after the original entry was
      // placed (the leftover carry may be a displaced victim), so re-locate
      // the original by key once the table is big enough.
      rehash_to(capacity_ * 2);
      if (robin_place(carry_key, carry_value)) placed = find(key);
    }
    ++size_;
    SPECPF_DCHECK(placed != nullptr);
    return placed;
  }

  /// Backward-shift deletion: pull the probe chain one slot left until a
  /// slot that is empty or at its home position. No tombstones.
  void erase_at(std::size_t idx) {
    std::size_t cur = idx;
    for (;;) {
      const std::size_t next = (cur + 1) & mask_;
      if (meta_[next] <= 1) break;
      slots_[cur].key = slots_[next].key;
      slots_[cur].value = std::move(slots_[next].value);
      meta_[cur] = static_cast<std::uint8_t>(meta_[next] - 1);
      cur = next;
    }
    slots_[cur].~Entry();
    meta_[cur] = 0;
    --size_;
  }

  void rehash_to(std::size_t new_capacity) {
    Entry* old_slots = slots_;
    std::uint8_t* old_meta = meta_;
    const std::size_t old_capacity = capacity_;

    slots_ = std::allocator<Entry>{}.allocate(new_capacity);
    meta_ = new std::uint8_t[new_capacity]{};
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;

    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_meta[i] == 0) continue;
      std::uint64_t key = old_slots[i].key;
      V value = std::move(old_slots[i].value);
      old_slots[i].~Entry();
      // At ≤ 7/16 load after doubling a mixed-hash probe cannot plausibly
      // reach kMaxProbe; fail loudly rather than recurse mid-rehash. The
      // call stays outside the assert macro: it performs the insertion.
      [[maybe_unused]] V* replaced = robin_place(key, value);
      SPECPF_DCHECK(replaced != nullptr);
    }
    if (old_slots) std::allocator<Entry>{}.deallocate(old_slots, old_capacity);
    delete[] old_meta;
  }

  void deallocate() {
    if (slots_) std::allocator<Entry>{}.deallocate(slots_, capacity_);
    delete[] meta_;
    slots_ = nullptr;
    meta_ = nullptr;
    capacity_ = 0;
    mask_ = 0;
  }

  void steal(FlatHashMap& other) noexcept {
    slots_ = std::exchange(other.slots_, nullptr);
    meta_ = std::exchange(other.meta_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    mask_ = std::exchange(other.mask_, 0);
    size_ = std::exchange(other.size_, 0);
  }

  Entry* slots_ = nullptr;
  std::uint8_t* meta_ = nullptr;  // 0 = empty, d = probe distance + 1
  std::size_t capacity_ = 0;      // power of two, or 0 before first insert
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Structure-of-arrays flat hash map from 64-bit keys to 32-bit values —
/// the residency index of the cache arena, where tens of millions of
/// entries make per-slot bytes the figure of merit. Same robin-hood
/// probing, power-of-two capacity, and backward-shift deletion as
/// FlatHashMap, but keys, values, and metadata live in three parallel
/// arrays: 13 bytes per slot instead of sizeof(Entry) + 1 = 17 (the
/// {u64, u32} Entry pads to 16).
///
/// MAINTENANCE: the probing core (find_index / robin_place / erase_at /
/// grow-retry carry contract, load-factor and kMaxProbe constants) is a
/// deliberate storage-layout fork of FlatHashMap's above — a fix to those
/// invariants in either class must be mirrored in the other.
class FlatIndexMap {
 public:
  FlatIndexMap() = default;

  ~FlatIndexMap() { deallocate(); }

  FlatIndexMap(FlatIndexMap&& other) noexcept { steal(other); }

  FlatIndexMap& operator=(FlatIndexMap&& other) noexcept {
    if (this != &other) {
      deallocate();
      steal(other);
    }
    return *this;
  }

  FlatIndexMap(const FlatIndexMap&) = delete;
  FlatIndexMap& operator=(const FlatIndexMap&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::uint32_t* find(std::uint64_t key) noexcept {
    const std::size_t idx = find_index(key);
    return idx == kNotFound ? nullptr : &values_[idx];
  }
  const std::uint32_t* find(std::uint64_t key) const noexcept {
    const std::size_t idx = find_index(key);
    return idx == kNotFound ? nullptr : &values_[idx];
  }

  bool contains(std::uint64_t key) const noexcept {
    return find_index(key) != kNotFound;
  }

  /// Returns the value slot for `key`, inserting 0 first if absent.
  std::uint32_t& operator[](std::uint64_t key) {
    if (std::uint32_t* v = find(key)) return *v;
    return *insert_new(key, 0);
  }

  /// Removes `key`. Returns false when absent.
  bool erase(std::uint64_t key) {
    const std::size_t idx = find_index(key);
    if (idx == kNotFound) return false;
    erase_at(idx);
    return true;
  }

  /// Ensures `n` entries fit without further rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > capacity_) rehash_to(cap);
  }

  /// Visits every (key, value) entry. Iteration order is an implementation
  /// detail (deterministic for a given operation sequence); callers that
  /// need a canonical order sort. Used by the audit walkers to cross-check
  /// index entries against the slabs they point into.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) fn(keys_[i], values_[i]);
    }
  }

  /// Deep-invariant walk (util/audit.hpp): probe-distance agreement,
  /// backward-shift monotonicity, occupancy vs size().
  void audit(AuditReport& report) const {
    AuditScope scope(report, "FlatIndexMap");
    detail::audit_robin_hood(
        meta_, capacity_, mask_, size_, kMaxProbe,
        [this](std::size_t i) { return keys_[i]; }, report);
  }

 private:
  friend struct AuditPeer;  // corruption-injection tests only
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;
  static constexpr std::uint32_t kMaxProbe = 254;

  std::size_t find_index(std::uint64_t key) const noexcept {
    if (size_ == 0) return kNotFound;
    std::size_t idx = mix_u64(key) & mask_;
    std::uint32_t dist = 1;
    while (meta_[idx] >= dist) {
      if (keys_[idx] == key) return idx;
      idx = (idx + 1) & mask_;
      ++dist;
    }
    return kNotFound;
  }

  /// Robin-hood placement over the parallel arrays; same contract as
  /// FlatHashMap::robin_place (nullptr = probe-distance overflow, caller
  /// grows and retries with the leftover carry).
  std::uint32_t* robin_place(std::uint64_t& carry_key,
                             std::uint32_t& carry_value) {
    std::size_t idx = mix_u64(carry_key) & mask_;
    std::uint32_t dist = 1;
    std::uint32_t* placed = nullptr;
    for (;;) {
      if (dist > kMaxProbe) return nullptr;
      if (meta_[idx] == 0) {
        keys_[idx] = carry_key;
        values_[idx] = carry_value;
        meta_[idx] = static_cast<std::uint8_t>(dist);
        return placed ? placed : &values_[idx];
      }
      if (meta_[idx] < dist) {
        std::swap(carry_key, keys_[idx]);
        std::swap(carry_value, values_[idx]);
        const std::uint8_t displaced = meta_[idx];
        meta_[idx] = static_cast<std::uint8_t>(dist);
        dist = displaced;
        if (!placed) placed = &values_[idx];
      }
      idx = (idx + 1) & mask_;
      ++dist;
    }
  }

  std::uint32_t* insert_new(std::uint64_t key, std::uint32_t value) {
    if (capacity_ == 0 ||
        (size_ + 1) * kMaxLoadDen > capacity_ * kMaxLoadNum) {
      rehash_to(capacity_ ? capacity_ * 2 : kMinCapacity);
    }
    std::uint64_t carry_key = key;
    std::uint32_t carry_value = value;
    std::uint32_t* placed = robin_place(carry_key, carry_value);
    while (placed == nullptr) {
      rehash_to(capacity_ * 2);
      if (robin_place(carry_key, carry_value)) placed = find(key);
    }
    ++size_;
    SPECPF_DCHECK(placed != nullptr);
    return placed;
  }

  void erase_at(std::size_t idx) {
    std::size_t cur = idx;
    for (;;) {
      const std::size_t next = (cur + 1) & mask_;
      if (meta_[next] <= 1) break;
      keys_[cur] = keys_[next];
      values_[cur] = values_[next];
      meta_[cur] = static_cast<std::uint8_t>(meta_[next] - 1);
      cur = next;
    }
    meta_[cur] = 0;
    --size_;
  }

  void rehash_to(std::size_t new_capacity) {
    std::uint64_t* old_keys = keys_;
    std::uint32_t* old_values = values_;
    std::uint8_t* old_meta = meta_;
    const std::size_t old_capacity = capacity_;

    keys_ = new std::uint64_t[new_capacity];
    values_ = new std::uint32_t[new_capacity];
    meta_ = new std::uint8_t[new_capacity]{};
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;

    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_meta[i] == 0) continue;
      std::uint64_t key = old_keys[i];
      std::uint32_t value = old_values[i];
      [[maybe_unused]] std::uint32_t* replaced = robin_place(key, value);
      SPECPF_DCHECK(replaced != nullptr);
    }
    delete[] old_keys;
    delete[] old_values;
    delete[] old_meta;
  }

  void deallocate() {
    delete[] keys_;
    delete[] values_;
    delete[] meta_;
    keys_ = nullptr;
    values_ = nullptr;
    meta_ = nullptr;
    capacity_ = 0;
    mask_ = 0;
    size_ = 0;
  }

  void steal(FlatIndexMap& other) noexcept {
    keys_ = std::exchange(other.keys_, nullptr);
    values_ = std::exchange(other.values_, nullptr);
    meta_ = std::exchange(other.meta_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    mask_ = std::exchange(other.mask_, 0);
    size_ = std::exchange(other.size_, 0);
  }

  std::uint64_t* keys_ = nullptr;
  std::uint32_t* values_ = nullptr;
  std::uint8_t* meta_ = nullptr;  // 0 = empty, d = probe distance + 1
  std::size_t capacity_ = 0;      // power of two, or 0 before first insert
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Flat hash set of 64-bit keys, built on FlatHashMap.
class FlatHashSet {
 public:
  /// Returns true when the key was newly added.
  bool insert(std::uint64_t key) {
    bool added = false;
    map_.get_or_insert(key, &added);
    return added;
  }
  bool contains(std::uint64_t key) const { return map_.contains(key); }
  bool erase(std::uint64_t key) { return map_.erase(key); }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  struct Unit {};
  FlatHashMap<Unit> map_;
};

}  // namespace specpf
