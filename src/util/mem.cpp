#include "util/mem.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace specpf {

namespace {

/// Parses a "/proc/self/status" line of the form "VmRSS:   123456 kB".
bool parse_kb_line(const char* line, const char* key, std::size_t* out) {
  const std::size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return false;
  unsigned long long kb = 0;
  if (std::sscanf(line + key_len, " %llu", &kb) != 1) return false;
  *out = static_cast<std::size_t>(kb) * 1024;
  return true;
}

}  // namespace

MemoryUsage read_memory_usage() {
  MemoryUsage usage;
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      parse_kb_line(line, "VmRSS:", &usage.resident_bytes);
      parse_kb_line(line, "VmHWM:", &usage.peak_resident_bytes);
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  if (usage.peak_resident_bytes == 0) {
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
      usage.peak_resident_bytes = static_cast<std::size_t>(ru.ru_maxrss);
#else
      usage.peak_resident_bytes =
          static_cast<std::size_t>(ru.ru_maxrss) * 1024;
#endif
    }
  }
#endif
  return usage;
}

}  // namespace specpf
