#include "util/thread_pool.hpp"

#include <algorithm>

namespace specpf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([i, &fn] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace specpf
