#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

namespace specpf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    MoveOnlyTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;

  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  // One chunk task per worker; the calling thread drains too, so a
  // top-level call makes progress even when every worker is busy. Nested
  // parallel_for on the same pool is NOT supported: inner calls block in
  // f.get() on helpers that may never be scheduled.
  const std::size_t helpers = std::min(pool.thread_count(), count) - 1;
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t w = 0; w < helpers; ++w) {
    futures.push_back(pool.submit(drain));
  }
  drain();
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace specpf
