#include "util/rng.hpp"

namespace specpf {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state is a fixed point of xoshiro; SplitMix64 cannot emit
  // four consecutive zeros, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire (2019): unbiased bounded integers without division in the common
  // case. n == 0 would be a caller bug; return 0 rather than UB.
  if (n == 0) return 0;
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::substream(std::uint64_t stream_index) const noexcept {
  // Mix (seed, stream) through SplitMix64 twice to decorrelate adjacent
  // streams; golden-ratio offset separates stream space from seed space.
  SplitMix64 sm(seed_ ^ (0xA3EC4E9F0D1B2C55ULL + stream_index));
  std::uint64_t derived = sm.next();
  derived ^= SplitMix64(stream_index * 0x9E3779B97F4A7C15ULL + 1).next();
  return Rng(derived);
}

}  // namespace specpf
