// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in specpf takes an explicit 64-bit seed and owns
// its own generator; there is no global RNG state. Substreams for parallel
// replications are derived with SplitMix64 so that replication k of a sweep
// is reproducible regardless of scheduling order.
#pragma once

#include <array>
#include <cstdint>

namespace specpf {

/// SplitMix64: tiny, fast 64-bit generator. Used both directly and to seed
/// Xoshiro256** state (as recommended by Blackman & Vigna).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project-wide workhorse generator. Passes BigCrush, has
/// 2^256-1 period, and is trivially copyable so simulation state can be
/// snapshotted.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() noexcept;

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() noexcept { return next_u64(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo < hi (unchecked, hot path).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection to
  /// avoid modulo bias. Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Derives an independent substream generator. Stream i of a given parent
  /// seed is stable across runs and platforms.
  Rng substream(std::uint64_t stream_index) const noexcept;

  /// The seed this generator was constructed from (for provenance logging).
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
};

}  // namespace specpf
