// Fixed-size thread pool used to parallelise benchmark sweeps and
// multi-replication experiments. Simulations themselves are single-threaded
// and deterministic; parallelism lives strictly at the sweep level, which is
// embarrassingly parallel (one independent simulation per grid point).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace specpf {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future propagates exceptions.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) on a shared pool and waits for completion.
/// Work is chunked: one task per worker pulling indices from a shared atomic
/// counter (the caller participates too), so submitting N iterations costs
/// O(workers) queue operations instead of O(N). Every iteration runs even if
/// some throw; the exception from the lowest-index failure is rethrown.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide default pool for sweep helpers (lazily constructed).
ThreadPool& default_pool();

}  // namespace specpf
