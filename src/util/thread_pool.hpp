// Fixed-size thread pool used to parallelise benchmark sweeps,
// multi-replication experiments, and the sharded simulation driver
// (one shard per task between epoch barriers). Individual simulations are
// single-threaded and deterministic; parallelism lives strictly at the
// sweep/shard level, where units of work are independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace specpf {

/// Type-erased move-only nullary callable. std::function requires copyable
/// targets, which forced submit() to wrap every packaged_task in a
/// shared_ptr; this wrapper holds move-only callables directly, so a task
/// costs exactly one allocation (the callable itself).
class MoveOnlyTask {
 public:
  MoveOnlyTask() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, MoveOnlyTask> &&
                                        std::is_invocable_v<D&>>>
  MoveOnlyTask(F&& fn)  // NOLINT(runtime/explicit)
      : impl_(std::make_unique<Model<D>>(std::forward<F>(fn))) {}

  MoveOnlyTask(MoveOnlyTask&&) noexcept = default;
  MoveOnlyTask& operator=(MoveOnlyTask&&) noexcept = default;
  MoveOnlyTask(const MoveOnlyTask&) = delete;
  MoveOnlyTask& operator=(const MoveOnlyTask&) = delete;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  /// Invokes the stored callable. Precondition: non-empty.
  void operator()() { impl_->call(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename D>
  struct Model final : Concept {
    explicit Model(D fn) : fn(std::move(fn)) {}
    void call() override { fn(); }
    D fn;
  };
  std::unique_ptr<Concept> impl_;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future propagates exceptions.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> result = task.get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace(std::move(task));
    }
    cv_.notify_one();
    return result;
  }

  /// Enqueues a whole batch under one lock acquisition and wakes every
  /// worker at once — the shard driver submits S epoch tasks per barrier,
  /// so per-task lock/notify traffic would otherwise dominate short epochs.
  /// Returns one future per task, in order.
  template <typename F>
  auto submit_batch(std::vector<F> fns)
      -> std::vector<std::future<std::invoke_result_t<F&>>> {
    using R = std::invoke_result_t<F&>;
    std::vector<std::future<R>> results;
    results.reserve(fns.size());
    {
      std::lock_guard lock(mutex_);
      for (auto& fn : fns) {
        std::packaged_task<R()> task(std::move(fn));
        results.push_back(task.get_future());
        tasks_.emplace(std::move(task));
      }
    }
    if (!results.empty()) cv_.notify_all();
    return results;
  }

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<MoveOnlyTask> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) on a shared pool and waits for completion.
/// Work is chunked: one task per worker pulling indices from a shared atomic
/// counter (the caller participates too), so submitting N iterations costs
/// O(workers) queue operations instead of O(N). Every iteration runs even if
/// some throw; the exception from the lowest-index failure is rethrown.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide default pool for sweep helpers (lazily constructed).
ThreadPool& default_pool();

}  // namespace specpf
