// Allocator that hands out cache-line-aligned storage. Used by containers
// whose access pattern is engineered around 64-byte groups (e.g. the DES
// engine's 4-ary heap, which lays one child group per cache line).
#pragma once

#include <cstddef>
#include <new>

namespace specpf {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace specpf
