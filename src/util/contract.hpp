// Contract checking in the spirit of the C++ Core Guidelines GSL
// (Expects/Ensures). Violations throw rather than abort so that tests can
// assert on misuse and long-running sweeps fail loudly but catchably.
#pragma once

#include <stdexcept>
#include <string>

namespace specpf {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace specpf

#define SPECPF_EXPECTS(cond)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specpf::detail::contract_fail("precondition", #cond, __FILE__,      \
                                      __LINE__);                            \
  } while (false)

#define SPECPF_ENSURES(cond)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specpf::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                      __LINE__);                            \
  } while (false)

#define SPECPF_ASSERT(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specpf::detail::contract_fail("invariant", #cond, __FILE__,         \
                                      __LINE__);                            \
  } while (false)

// Debug-only invariant check for per-access hot paths (flat-hash probes,
// arena residency scans): full SPECPF_ASSERT semantics in Debug builds,
// compiled out entirely in Release (NDEBUG) so the data-plane inner loops
// carry no branch. The structural audit layer (util/audit.hpp) is the
// Release-capable safety net for the same invariants.
#ifdef NDEBUG
#define SPECPF_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define SPECPF_DCHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specpf::detail::contract_fail("debug invariant", #cond, __FILE__,   \
                                      __LINE__);                            \
  } while (false)
#endif
