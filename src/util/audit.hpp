// Structural audit layer — deep-invariant walkers for the slab planes.
//
// PRs 1-6 moved every hot structure onto hand-rolled arenas (DES handle
// slabs, CacheArena, ContextArena, FlatHashMap/FlatIndexMap). Slabs never
// return memory to the allocator, so AddressSanitizer is blind to the bug
// classes that matter most here: a stale {slot, generation} handle, a
// recycled successor slot, or a desynced residency entry all read *valid*
// memory and silently corrupt a sweep. The audit layer makes those bugs
// fail loudly instead: every arena-backed structure exposes an
// `audit(AuditReport&)` walker that re-derives its invariants from scratch
// (probe-distance monotonicity, free-list acyclicity, chain <-> index
// agreement, successor-total conservation, cross-structure accounting).
//
// Two ways to run the walkers:
//   * directly, from tests — always compiled, any build type;
//   * automatically, in SPECPF_AUDIT builds (cmake -DSPECPF_AUDIT=ON):
//     StackRuntime sweeps at begin_measurement/finalize and ShardedSim
//     sweeps at epoch barriers (power-of-two sampled), throwing
//     ContractViolation on the first failed sweep.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/contract.hpp"

namespace specpf {

/// True in SPECPF_AUDIT builds: the runtimes run audit sweeps automatically
/// and the DES engine defaults to slab poisoning + generation shadowing.
#if defined(SPECPF_AUDIT_BUILD)
inline constexpr bool kAuditBuild = true;
#else
inline constexpr bool kAuditBuild = false;
#endif

/// Test-only mutator: corruption-injection tests define this struct (it is
/// a friend of every auditable structure) to break invariants on purpose
/// and assert the walkers report them. Never defined in the library.
struct AuditPeer;

/// Collects the outcome of one audit sweep: a count of checks performed and
/// a bounded list of human-readable failures, each prefixed with the scope
/// path of the walker that found it.
class AuditReport {
 public:
  /// Records one invariant check. Returns `ok` so walkers can guard
  /// follow-on checks that would be meaningless (or unsafe) after a
  /// failure, e.g. skip walking a chain whose head is out of range.
  bool check(bool ok, const std::string& what) {
    ++checks_;
    if (!ok) fail(what);
    return ok;
  }

  /// Records a failure unconditionally.
  void fail(const std::string& what) {
    if (failures_.size() < kMaxFailures) {
      failures_.push_back(scope_path() + what);
    } else {
      ++suppressed_;
    }
  }

  bool ok() const { return failures_.empty(); }
  std::uint64_t checks() const { return checks_; }
  const std::vector<std::string>& failures() const { return failures_; }

  /// One line per failure (plus a suppression note when the cap was hit).
  std::string summary() const {
    if (ok()) return "audit clean (" + std::to_string(checks_) + " checks)";
    std::string out = "audit FAILED (" + std::to_string(failures_.size()) +
                      " of " + std::to_string(checks_) + " checks):";
    for (const std::string& f : failures_) out += "\n  " + f;
    if (suppressed_ > 0) {
      out += "\n  ... " + std::to_string(suppressed_) + " more suppressed";
    }
    return out;
  }

  /// Throws ContractViolation when any check failed; the runtimes call this
  /// after automatic sweeps so corruption stops the run at the barrier
  /// where it was first observable.
  void require() const {
    if (!ok()) throw ContractViolation(summary());
  }

 private:
  friend class AuditScope;
  static constexpr std::size_t kMaxFailures = 64;

  std::string scope_path() const {
    std::string out;
    for (const std::string& s : scopes_) {
      out += s;
      out += ": ";
    }
    return out;
  }

  std::vector<std::string> scopes_;
  std::vector<std::string> failures_;
  std::uint64_t checks_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// RAII scope label: failures recorded while alive are prefixed with
/// "label: ", nesting with outer scopes.
class AuditScope {
 public:
  AuditScope(AuditReport& report, std::string label) : report_(report) {
    report_.scopes_.push_back(std::move(label));
  }
  ~AuditScope() { report_.scopes_.pop_back(); }
  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

 private:
  AuditReport& report_;
};

}  // namespace specpf
