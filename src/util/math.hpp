// Small numeric helpers shared across modules: compensated summation,
// approximate comparison, generalized harmonic numbers (Zipf normalisation).
#pragma once

#include <cmath>
#include <cstddef>

namespace specpf {

/// Kahan–Babuška compensated accumulator. Used wherever long simulations sum
/// millions of small terms (time-weighted integrals, mean access times).
class KahanSum {
 public:
  void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  KahanSum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  double value() const noexcept { return sum_ + comp_; }
  void reset() noexcept { sum_ = comp_ = 0.0; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// True when |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
inline bool almost_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) noexcept {
  const double diff = std::abs(a - b);
  const double scale = std::fmax(std::abs(a), std::abs(b));
  return diff <= abs_tol + rel_tol * scale;
}

/// x/y, or `fallback` when y == 0. Avoids NaN propagation in metric ratios
/// over empty measurement windows.
inline double safe_div(double x, double y, double fallback = 0.0) noexcept {
  return y == 0.0 ? fallback : x / y;
}

/// Generalized harmonic number H_{n,s} = sum_{k=1..n} k^{-s}.
/// O(n); intended for Zipf normalisation at catalog-construction time.
double generalized_harmonic(std::size_t n, double s) noexcept;

/// Relative error |measured-expected| / max(|expected|, floor).
inline double relative_error(double measured, double expected,
                             double floor = 1e-12) noexcept {
  return std::abs(measured - expected) / std::fmax(std::abs(expected), floor);
}

}  // namespace specpf
