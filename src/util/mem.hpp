// Process-memory probe for the memory-diet benchmarks and sweeps: current
// and peak resident set size, read from the OS. Used to report bytes/user
// in the million-user sweeps and in BENCH_cache.json.
#pragma once

#include <cstddef>

namespace specpf {

struct MemoryUsage {
  std::size_t resident_bytes = 0;       ///< current RSS (Linux: VmRSS)
  std::size_t peak_resident_bytes = 0;  ///< high-water RSS (Linux: VmHWM)
};

/// Reads the calling process's resident-set usage. On Linux this parses
/// /proc/self/status (VmRSS / VmHWM); elsewhere it falls back to getrusage
/// (peak only). Fields read zero when the platform offers nothing — callers
/// should treat zero as "unavailable", not "no memory".
MemoryUsage read_memory_usage();

}  // namespace specpf
