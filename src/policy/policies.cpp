#include "policy/policies.hpp"

#include <algorithm>
#include <sstream>

#include "core/inverse.hpp"
#include "util/contract.hpp"

namespace specpf {

std::vector<core::Candidate> ThresholdPolicy::select(
    const std::vector<core::Candidate>& predictions,
    const PolicyContext& ctx) {
  core::PrefetchPlanner planner(ctx.params, model_);
  return planner.plan(predictions).selected;
}

double ThresholdPolicy::threshold(const PolicyContext& ctx) const {
  return core::threshold(ctx.params, model_);
}

FixedThresholdPolicy::FixedThresholdPolicy(double theta) : theta_(theta) {
  SPECPF_EXPECTS(theta >= 0.0 && theta <= 1.0);
}

std::vector<core::Candidate> FixedThresholdPolicy::select(
    const std::vector<core::Candidate>& predictions, const PolicyContext&) {
  std::vector<core::Candidate> out;
  for (const auto& c : predictions) {
    if (c.probability > theta_) out.push_back(c);
  }
  return out;
}

std::string FixedThresholdPolicy::name() const {
  std::ostringstream os;
  os << "fixed-" << theta_;
  return os.str();
}

TopKPolicy::TopKPolicy(std::size_t k) : k_(k) { SPECPF_EXPECTS(k >= 1); }

std::vector<core::Candidate> TopKPolicy::select(
    const std::vector<core::Candidate>& predictions, const PolicyContext&) {
  std::vector<core::Candidate> out = predictions;
  std::sort(out.begin(), out.end(),
            [](const core::Candidate& a, const core::Candidate& b) {
              if (a.probability != b.probability)
                return a.probability > b.probability;
              return a.item < b.item;
            });
  if (out.size() > k_) out.resize(k_);
  return out;
}

std::string TopKPolicy::name() const {
  return "top-" + std::to_string(k_);
}

QosThresholdPolicy::QosThresholdPolicy(core::InteractionModel model,
                                       double max_utilization)
    : model_(model), max_utilization_(max_utilization) {
  SPECPF_EXPECTS(max_utilization > 0.0 && max_utilization < 1.0);
}

std::vector<core::Candidate> QosThresholdPolicy::select(
    const std::vector<core::Candidate>& predictions, const PolicyContext& ctx) {
  core::PrefetchPlanner planner(ctx.params, model_);
  const auto unconstrained = planner.plan(predictions);
  if (unconstrained.selected.empty()) return {};

  // Budget: largest n̄(F) keeping the predicted utilisation under the cap,
  // evaluated at the selected batch's mean probability (the closed forms'
  // uniform-p abstraction of the batch).
  const double mean_p = unconstrained.probability_mass /
                        static_cast<double>(unconstrained.selected.size());
  double budget_items = 0.0;
  if (mean_p > core::victim_value(ctx.params, model_) &&
      ctx.params.stable_without_prefetch()) {
    budget_items = core::max_prefetch_rate_for_utilization(
        ctx.params, mean_p, model_, max_utilization_);
  }
  const auto budget = static_cast<std::size_t>(budget_items);
  if (budget >= unconstrained.selected.size()) return unconstrained.selected;
  return planner.plan_with_budget(predictions, budget).selected;
}

std::string QosThresholdPolicy::name() const {
  std::ostringstream os;
  os << "qos-" << (model_ == core::InteractionModel::kModelA ? "A" : "B")
     << "@rho" << max_utilization_;
  return os.str();
}

AdaptiveCostPolicy::AdaptiveCostPolicy(double network_weight)
    : network_weight_(network_weight) {
  SPECPF_EXPECTS(network_weight > 0.0);
}

std::vector<core::Candidate> AdaptiveCostPolicy::select(
    const std::vector<core::Candidate>& predictions, const PolicyContext& ctx) {
  const double rho_prime = ctx.params.utilization_no_prefetch();
  const double threshold = std::min(1.0, network_weight_ * rho_prime);
  std::vector<core::Candidate> out;
  for (const auto& c : predictions) {
    if (c.probability > threshold) out.push_back(c);
  }
  return out;
}

std::string AdaptiveCostPolicy::name() const {
  std::ostringstream os;
  os << "adaptive-w" << network_weight_;
  return os.str();
}

std::unique_ptr<PrefetchPolicy> make_policy_by_name(const std::string& name) {
  auto suffix_value = [&name](const char* prefix, double* out) {
    const std::size_t len = std::string(prefix).size();
    if (name.rfind(prefix, 0) != 0 || name.size() <= len) return false;
    try {
      *out = std::stod(name.substr(len));
    } catch (...) {
      return false;
    }
    return true;
  };
  if (name == "none") return std::make_unique<NoPrefetchPolicy>();
  if (name == "threshold-a") {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelA);
  }
  if (name == "threshold-b") {
    return std::make_unique<ThresholdPolicy>(core::InteractionModel::kModelB);
  }
  double v = 0.0;
  if (suffix_value("fixed-", &v)) {
    return std::make_unique<FixedThresholdPolicy>(v);
  }
  if (suffix_value("topk-", &v)) {
    return std::make_unique<TopKPolicy>(static_cast<std::size_t>(v));
  }
  if (suffix_value("adaptive-", &v)) {
    return std::make_unique<AdaptiveCostPolicy>(v);
  }
  if (suffix_value("qos-", &v)) {
    return std::make_unique<QosThresholdPolicy>(
        core::InteractionModel::kModelA, v);
  }
  return nullptr;
}

}  // namespace specpf
