// Prefetch policies: given a predictor's candidate list and the current
// system estimate, decide what to actually prefetch. The paper's
// contribution is ThresholdPolicy; the others are the heuristics that §1
// says practitioners resort to, kept as baselines.
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/planner.hpp"

namespace specpf {

/// Current system state as known to the policy (parameters may come from
/// configuration or from online estimation — see sim/proxy_sim).
struct PolicyContext {
  core::SystemParams params;  ///< b, λ, s̄, ĥ', n̄(C)
};

class PrefetchPolicy {
 public:
  virtual ~PrefetchPolicy() = default;

  /// Chooses the subset of `predictions` to prefetch.
  virtual std::vector<core::Candidate> select(
      const std::vector<core::Candidate>& predictions,
      const PolicyContext& ctx) = 0;

  /// Short identifier for report tables.
  virtual std::string name() const = 0;
};

}  // namespace specpf
