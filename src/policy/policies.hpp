// Concrete prefetch policies.
#pragma once

#include <memory>

#include "core/interaction.hpp"
#include "policy/policy.hpp"

namespace specpf {

/// Never prefetches — the caching-only baseline (paper §2.3).
class NoPrefetchPolicy final : public PrefetchPolicy {
 public:
  std::vector<core::Candidate> select(const std::vector<core::Candidate>&,
                                      const PolicyContext&) override {
    return {};
  }
  std::string name() const override { return "none"; }
};

/// The paper's rule: prefetch exclusively all items with p > p_th, where
/// p_th = ρ' (Model A) or ρ' + h'/n̄(C) (Model B), computed from the
/// context's current parameter estimate on every decision.
class ThresholdPolicy final : public PrefetchPolicy {
 public:
  explicit ThresholdPolicy(core::InteractionModel model)
      : model_(model) {}

  std::vector<core::Candidate> select(
      const std::vector<core::Candidate>& predictions,
      const PolicyContext& ctx) override;

  std::string name() const override {
    return model_ == core::InteractionModel::kModelA ? "threshold-A"
                                                     : "threshold-B";
  }

  /// Threshold the policy would use under `ctx`.
  double threshold(const PolicyContext& ctx) const;

 private:
  core::InteractionModel model_;
};

/// Static heuristic: prefetch everything with p > θ for a fixed θ,
/// regardless of load — what §1 calls the usual "simple heuristic".
class FixedThresholdPolicy final : public PrefetchPolicy {
 public:
  explicit FixedThresholdPolicy(double theta);

  std::vector<core::Candidate> select(
      const std::vector<core::Candidate>& predictions,
      const PolicyContext& ctx) override;

  std::string name() const override;

 private:
  double theta_;
};

/// Budget heuristic: always prefetch the k most probable candidates.
class TopKPolicy final : public PrefetchPolicy {
 public:
  explicit TopKPolicy(std::size_t k);

  std::vector<core::Candidate> select(
      const std::vector<core::Candidate>& predictions,
      const PolicyContext& ctx) override;

  std::string name() const override;

 private:
  std::size_t k_;
};

/// Threshold rule with a utilisation cap — the QoS-flavoured variant the
/// paper's conclusion gestures at for multimedia access. Selects candidates
/// with p > p_th (like ThresholdPolicy) but caps the batch so the predicted
/// post-prefetch utilisation stays within `max_utilization`, reserving
/// capacity headroom for the delay variance and in-flight effects that the
/// mean-value closed forms ignore (and which bite precisely as ρ → 1; see
/// EXPERIMENTS.md "Full-stack deviations").
class QosThresholdPolicy final : public PrefetchPolicy {
 public:
  QosThresholdPolicy(core::InteractionModel model, double max_utilization);

  std::vector<core::Candidate> select(
      const std::vector<core::Candidate>& predictions,
      const PolicyContext& ctx) override;

  std::string name() const override;

 private:
  core::InteractionModel model_;
  double max_utilization_;
};

/// Adaptive cost-ratio policy in the spirit of Jiang & Kleinrock [3]:
/// prefetch when the expected saving in user wait outweighs the weighted
/// network time spent, i.e. p·r̄' > ω·x/(1−ρ') ⟺ p > ω·ρ'/f'... reduced
/// here to the decision p > ω·ρ' with a tunable network-cost weight ω.
/// ω = 1 coincides with the paper's Model A threshold; ω > 1 is more
/// conservative, ω < 1 more aggressive.
class AdaptiveCostPolicy final : public PrefetchPolicy {
 public:
  explicit AdaptiveCostPolicy(double network_weight);

  std::vector<core::Candidate> select(
      const std::vector<core::Candidate>& predictions,
      const PolicyContext& ctx) override;

  std::string name() const override;

 private:
  double network_weight_;
};

/// Fresh policy instance by CLI-friendly name: none, threshold-a,
/// threshold-b, fixed-<theta>, topk-<k>, adaptive-<w>, qos-<rho>. Returns
/// nullptr for unknown names. Shared by the examples and the sharded
/// driver's per-shard factories so name→policy mappings cannot drift.
std::unique_ptr<PrefetchPolicy> make_policy_by_name(const std::string& name);

}  // namespace specpf
