#include "queueing/mm1.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace specpf {

MM1::MM1(double arrival_rate, double service_rate)
    : arrival_rate_(arrival_rate), service_rate_(service_rate) {
  SPECPF_EXPECTS(arrival_rate >= 0.0);
  SPECPF_EXPECTS(service_rate > 0.0);
}

double MM1::mean_sojourn() const {
  SPECPF_EXPECTS(stable());
  return 1.0 / (service_rate_ - arrival_rate_);
}

double MM1::mean_wait() const {
  SPECPF_EXPECTS(stable());
  return utilization() / (service_rate_ - arrival_rate_);
}

double MM1::mean_jobs_in_system() const {
  SPECPF_EXPECTS(stable());
  const double rho = utilization();
  return rho / (1.0 - rho);
}

double MM1::prob_n_jobs(std::size_t n) const {
  SPECPF_EXPECTS(stable());
  const double rho = utilization();
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

double mg1_fcfs_mean_wait(double arrival_rate, double mean_service,
                          double service_second_moment) {
  SPECPF_EXPECTS(arrival_rate >= 0.0);
  SPECPF_EXPECTS(mean_service > 0.0);
  SPECPF_EXPECTS(service_second_moment >= mean_service * mean_service);
  const double rho = arrival_rate * mean_service;
  SPECPF_EXPECTS(rho < 1.0);
  return arrival_rate * service_second_moment / (2.0 * (1.0 - rho));
}

}  // namespace specpf
