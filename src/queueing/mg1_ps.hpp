// M/G/1 processor-sharing (round-robin) queue — the paper's network model.
//
// Kleinrock (Queueing Systems Vol. 2): in an M/G/1-PS system the conditional
// mean sojourn time of a job needing service time x is x/(1-ρ), independent
// of the service-time distribution beyond its mean. Equation (2) of the
// paper. The DES server in src/net realises this queue; tests check the
// simulation against these forms.
#pragma once

namespace specpf {

class MG1PS {
 public:
  /// `arrival_rate` jobs/s, `mean_service` seconds of work per job.
  MG1PS(double arrival_rate, double mean_service);

  /// Offered load ρ = λ·x̄.
  double utilization() const noexcept { return arrival_rate_ * mean_service_; }

  /// True when ρ < 1 (finite stationary sojourn times).
  bool stable() const noexcept { return utilization() < 1.0; }

  /// E[T | service = x] = x / (1-ρ). Paper eq. (2). Requires stability.
  double mean_sojourn_for(double service_time) const;

  /// Unconditional mean sojourn E[T] = x̄/(1-ρ).
  double mean_sojourn() const { return mean_sojourn_for(mean_service_); }

  /// Mean number in system via Little's law: N = λ·E[T] = ρ/(1-ρ).
  double mean_jobs_in_system() const;

  /// The PS "slowdown" factor 1/(1-ρ): ratio of sojourn to service time.
  double slowdown() const;

  double arrival_rate() const noexcept { return arrival_rate_; }
  double mean_service() const noexcept { return mean_service_; }

 private:
  double arrival_rate_;
  double mean_service_;
};

}  // namespace specpf
