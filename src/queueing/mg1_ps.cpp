#include "queueing/mg1_ps.hpp"

#include "util/contract.hpp"

namespace specpf {

MG1PS::MG1PS(double arrival_rate, double mean_service)
    : arrival_rate_(arrival_rate), mean_service_(mean_service) {
  SPECPF_EXPECTS(arrival_rate >= 0.0);
  SPECPF_EXPECTS(mean_service > 0.0);
}

double MG1PS::mean_sojourn_for(double service_time) const {
  SPECPF_EXPECTS(service_time >= 0.0);
  SPECPF_EXPECTS(stable());
  return service_time / (1.0 - utilization());
}

double MG1PS::mean_jobs_in_system() const {
  SPECPF_EXPECTS(stable());
  const double rho = utilization();
  return rho / (1.0 - rho);
}

double MG1PS::slowdown() const {
  SPECPF_EXPECTS(stable());
  return 1.0 / (1.0 - utilization());
}

}  // namespace specpf
