// M/M/1 FCFS closed forms. Not used by the paper's model directly; serves as
// the contrast case in the PS-vs-FIFO ablation (a FIFO server's sojourn is
// sensitive to service-time variance, PS is not).
#pragma once

#include <cstddef>

namespace specpf {

class MM1 {
 public:
  MM1(double arrival_rate, double service_rate);

  double utilization() const noexcept { return arrival_rate_ / service_rate_; }
  bool stable() const noexcept { return utilization() < 1.0; }

  /// E[T] = 1/(μ-λ).
  double mean_sojourn() const;

  /// E[W] = ρ/(μ-λ), waiting time excluding service.
  double mean_wait() const;

  /// E[N] = ρ/(1-ρ).
  double mean_jobs_in_system() const;

  /// Stationary P(N = n) = (1-ρ)ρ^n.
  double prob_n_jobs(std::size_t n) const;

 private:
  double arrival_rate_;
  double service_rate_;
};

/// Mean waiting time in an M/G/1 FCFS queue (Pollaczek–Khinchine):
/// W = λ E[S²] / (2(1-ρ)). Used to predict FIFO behaviour for general sizes.
double mg1_fcfs_mean_wait(double arrival_rate, double mean_service,
                          double service_second_moment);

}  // namespace specpf
