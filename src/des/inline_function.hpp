// Small-buffer-optimized, move-only callable — the zero-allocation
// replacement for std::function in the event engine's hot path.
//
// The callable is stored inline, never on the heap: a capture that does not
// fit in Capacity is a compile error (static_assert), not a silent
// allocation. This keeps scheduling an event allocation-free and makes the
// engine's slab nodes fixed-size. Unlike std::function it is move-only, so
// move-only captures (unique_ptr, etc.) work too.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace specpf {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(D) <= Capacity,
                  "capture too large for InlineFunction — shrink the capture "
                  "or raise Capacity");
    static_assert(alignof(D) <= alignof(void*),
                  "captures needing more than pointer alignment are not "
                  "supported (the buffer is kept pointer-aligned so the "
                  "whole object stays at Capacity + one pointer)");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "captures must be nothrow-movable: relocation happens "
                  "inside noexcept moves");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    ops_ = &OpsFor<D>::table;
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the stored callable (no-op if empty).
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Fills the inline buffer with `byte`. Precondition: empty. Used by the
  /// audit layer to poison freed engine slots (0xDD) so a write through a
  /// stale handle is detectable; only the storage is touched, never ops_.
  void poison_storage(unsigned char byte) noexcept {
    for (std::size_t i = 0; i < Capacity; ++i) buf_[i] = byte;
  }

  /// True when every byte of the inline buffer equals `byte`. Precondition:
  /// empty. The audit walker checks freed slots still carry their poison.
  bool storage_is(unsigned char byte) const noexcept {
    for (std::size_t i = 0; i < Capacity; ++i) {
      if (buf_[i] != byte) return false;
    }
    return true;
  }

  /// Invokes the stored callable. Precondition: non-empty.
  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* obj, Args&&... args);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* obj) noexcept;
  };

  template <typename D>
  struct OpsFor {
    static R invoke(void* obj, Args&&... args) {
      return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      D* from = static_cast<D*>(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* obj) noexcept { static_cast<D*>(obj)->~D(); }
    static constexpr Ops table{&invoke, &relocate, &destroy};
  };

  void steal(InlineFunction& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(alignof(void*)) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace specpf
