// Deterministic discrete-event simulation core.
//
// Events are closures ordered by (time, insertion sequence); the sequence
// tie-break makes runs bit-reproducible regardless of how many events share a
// timestamp. Cancellation is O(1) via tombstones — cancelled events stay in
// the heap and are skipped on pop (lazy deletion), which keeps the hot path
// a plain binary-heap push/pop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace specpf {

/// Opaque handle for cancelling a scheduled event.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return token_ != nullptr; }

 private:
  friend class Simulator;
  explicit EventId(std::shared_ptr<bool> token) : token_(std::move(token)) {}
  std::shared_ptr<bool> token_;  // *token_ == true => cancelled
};

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time (seconds).
  double now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when` (>= now). Returns a handle
  /// usable with cancel().
  EventId schedule_at(double when, Action action);

  /// Schedules `action` after a non-negative delay.
  EventId schedule_in(double delay, Action action);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(const EventId& id);

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or the clock passes `end_time`. Events at
  /// exactly `end_time` are executed.
  void run_until(double end_time);

  /// Runs until the queue drains.
  void run();

  /// Number of events executed so far (excludes cancelled).
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Events currently pending (including not-yet-collected tombstones).
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace specpf
