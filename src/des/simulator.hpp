// Deterministic discrete-event simulation core — zero-allocation engine.
//
// Events are closures ordered by (time, insertion sequence); the sequence
// tie-break makes runs bit-reproducible regardless of how many events share a
// timestamp.
//
// Engine layout:
//   * Actions are InlineFunction — small-buffer-optimized closures stored
//     inline in the event node; scheduling never heap-allocates.
//   * Event nodes live in a slab (std::vector) and are addressed by
//     {slot, generation} EventId handles. Slots are recycled through a free
//     list; the generation counter makes stale handles (ABA) harmless.
//   * The ready queue is an indexed 4-ary min-heap of {time, seq, slot}
//     entries — shallower than a binary heap and comparisons never touch the
//     slab, so sifts stay in a few cache lines.
//   * Cancellation is O(1): the node is disarmed (tombstoned) and its action
//     destroyed in place; the heap entry is lazily skipped on pop. When dead
//     entries exceed half the heap, the heap is compacted and re-heapified
//     in one O(n) pass so cancel-heavy workloads don't drag a tail of
//     tombstones through every sift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "des/inline_function.hpp"
#include "util/audit.hpp"
#include "util/cache_aligned.hpp"

namespace specpf {

/// Opaque handle for cancelling a scheduled event. Trivially copyable;
/// outliving the event is safe (generation-checked).
class EventId {
 public:
  EventId() = default;
  bool valid() const { return slot_ != kInvalid; }

 private:
  friend class Simulator;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  EventId(std::uint32_t slot, std::uint32_t generation, const void* owner)
      : slot_(slot), generation_(generation), owner_(owner) {}
  std::uint32_t slot_ = kInvalid;
  std::uint32_t generation_ = 0;
  // Slot/generation handles are only meaningful within their own engine;
  // cancel() rejects cross-instance handles instead of silently tombstoning
  // an unrelated event with a coincident {slot, generation}.
  const void* owner_ = nullptr;
};

class Simulator {
 public:
  using Action = InlineFunction<void(), 48>;

  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  double now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when` (>= now). Returns a handle
  /// usable with cancel().
  EventId schedule_at(double when, Action action);

  /// Schedules `action` after a non-negative delay.
  EventId schedule_in(double delay, Action action);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(const EventId& id);

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or the clock passes `end_time`. Events at
  /// exactly `end_time` are executed.
  void run_until(double end_time);

  /// Runs until the queue drains.
  void run();

  /// Timestamp of the earliest live pending event, or +infinity when the
  /// queue is empty. Collects any tombstones sitting on top of either tier,
  /// so the answer is exact. This is the epoch hook the sharded driver uses
  /// to size conservative synchronization windows (epoch = earliest event +
  /// lookahead) and to fast-forward through idle gaps.
  double next_event_time();

  /// Number of events executed so far (excludes cancelled).
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Events currently pending (including not-yet-collected tombstones).
  std::size_t pending() const noexcept {
    return heap_.size() - kHeapBase + sorted_run_.size();
  }

  /// Turns on freed-slot poisoning (0xDD fill of the action storage) and
  /// generation shadowing for subsequent slot traffic. On by default in
  /// SPECPF_AUDIT builds; tests call this to exercise the stale-handle and
  /// poison checks in any build. Slots freed before the call are left
  /// unpoisoned — audit() only checks slots freed while the mode was on.
  void enable_audit_mode();

  /// Deep-invariant walker (util/audit.hpp): free-list acyclicity and
  /// bounds, freed slots disarmed + poison intact + generation matching the
  /// shadow (catches rollback through a recycled slot), heap entries naming
  /// valid unique slots with armed-iff-live actions, tombstone bitset
  /// agreeing with dead_in_heap_, the 4-ary heap property over the ordered
  /// prefix, the sorted run descending, pending times >= now(), and slab
  /// conservation (free + pending == slab size).
  void audit(AuditReport& report) const;

 private:
  friend struct AuditPeer;  // corruption-injection tests only

  // One cache line per node: the inline action plus slot bookkeeping. A node
  // is "armed" exactly when its action is non-empty (schedule_at rejects
  // empty actions), so no separate flag is needed.
  struct alignas(kCacheLineBytes) Node {
    Action action;
    std::uint32_t generation = 0;
    std::uint32_t next_free = EventId::kInvalid;
  };
  static_assert(sizeof(Node) == kCacheLineBytes,
                "a slab node must stay exactly one cache line: the pop path "
                "prefetches a single line and release_slot touches the tail "
                "fields");
  // Heap entries carry the full ordering key so comparisons never touch the
  // slab: `tie` packs (seq << kSlotBits) | slot. Seq dominates the compare;
  // the slot bits only ever break a tie between entries with equal seq,
  // which cannot happen.
  struct HeapEntry {
    double time;
    std::uint64_t tie;
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(tie & (kMaxSlots - 1));
    }
    bool before(const HeapEntry& other) const {
      if (time != other.time) return time < other.time;
      return tie < other.tie;
    }
  };

  static constexpr std::size_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSlots = 1ull << kSlotBits;  // concurrent
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);
  static constexpr std::size_t kChunkShift = 12;  // 4096 nodes per slab chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  // The heap root lives at physical index 3 so that every 4-entry child
  // group (children of i are at 4i-8 .. 4i-5; parent of j is (j+8)/4) starts
  // on a 64-byte boundary: one cache line per sift level instead of two.
  static constexpr std::size_t kHeapBase = 3;

  /// Freed-slot fill byte in audit mode: all-0xDD action storage marks a
  /// slot nobody should be writing through.
  static constexpr unsigned char kPoisonByte = 0xDD;

  Node& node_at(std::uint32_t slot) {
    return *(reinterpret_cast<Node*>(chunks_[slot >> kChunkShift].get()) +
             (slot & (kChunkSize - 1)));
  }
  const Node& node_at(std::uint32_t slot) const {
    return *(reinterpret_cast<const Node*>(
                 chunks_[slot >> kChunkShift].get()) +
             (slot & (kChunkSize - 1)));
  }
  // Tombstone bits live in a tiny slot-indexed bitset (2 KiB per 131k slots,
  // L1-resident) so the pop loop can classify the top entry without touching
  // the slab; the node's cache line is then fetched in parallel with the
  // heap sift. Invariant: bit set <=> cancelled event awaiting collection.
  bool is_dead(std::uint32_t slot) const {
    return (dead_bits_[slot >> 6] >> (slot & 63)) & 1u;
  }
  void mark_dead(std::uint32_t slot) {
    dead_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void clear_dead(std::uint32_t slot) {
    dead_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t pos);
  void heap_remove_top();
  void sift_down(std::size_t hole, HeapEntry value);
  void floyd_heapify();
  /// Restores the heap invariant over entries appended since the last pop.
  /// schedule_at only appends; ordering is established here, in bulk when
  /// the batch is large (Floyd heapify is O(n) and streams sequentially,
  /// far cheaper than n individual sift-ups on a cold heap).
  void flush_batch();
  void compact();
  void renumber_seqs();
  /// Finds the earliest *live* pending entry across both tiers, collecting
  /// any tombstones sitting on top along the way. Returns false when
  /// nothing is pending; otherwise fills `top` and whether it came from the
  /// sorted run. Shared by run_next and next_event_time so the epoch
  /// driver's view of "next event" can never diverge from what pops.
  bool peek_live_top(HeapEntry* top, bool* from_run);
  /// Executes the earliest runnable event with time <= limit. Returns false
  /// if the heap drains or only later events remain.
  bool run_next(double limit);

  struct ChunkDeleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kCacheLineBytes});
    }
  };
  using ChunkPtr = std::unique_ptr<std::byte[], ChunkDeleter>;

  // Slab chunks have stable addresses: growing the slab never moves nodes,
  // so no per-node relocation cost and references stay valid across
  // schedule calls. Chunks are raw storage; a Node is placement-constructed
  // the first time its slot is handed out (so allocating a chunk costs no
  // construction sweep) and destroyed in ~Simulator.
  std::vector<ChunkPtr> chunks_;
  std::size_t slab_size_ = 0;
  std::vector<std::uint64_t> dead_bits_;
  // Physical layout: [0, kHeapBase) are never-read dummies; the root is at
  // kHeapBase. 64-byte-aligned storage keeps child groups line-aligned.
  std::vector<HeapEntry, CacheAlignedAllocator<HeapEntry>> heap_ =
      std::vector<HeapEntry, CacheAlignedAllocator<HeapEntry>>(kHeapBase);
  // Entries [kHeapBase, heapified_) satisfy the heap invariant; entries
  // beyond are an unordered appended batch awaiting flush_batch().
  std::size_t heapified_ = kHeapBase;
  // Second tier: when a large batch is scheduled while nothing else is
  // pending (bulk loads: trace replay, pre-seeded scenarios), the batch is
  // sorted descending once and popped O(1) from the back instead of paying
  // a full-depth sift per pop. The earliest event is always the smaller of
  // sorted_run_.back() and the heap top, so ordering semantics are
  // identical; events scheduled afterwards go through the heap.
  std::vector<HeapEntry, CacheAlignedAllocator<HeapEntry>> sorted_run_;
  std::uint32_t free_head_ = EventId::kInvalid;
  std::size_t dead_in_heap_ = 0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // Audit-mode state (see enable_audit_mode): poison freed action storage
  // and shadow each slot's expected generation so audit() can catch a
  // generation rolled back (or forged) through a recycled slot. The shadow
  // vectors grow lazily on the first release with the mode on.
  bool audit_mode_ = kAuditBuild;
  std::vector<std::uint32_t> shadow_gen_;  // kInvalid = untracked slot
  std::vector<std::uint8_t> poisoned_;     // freed with poison applied
};

}  // namespace specpf
