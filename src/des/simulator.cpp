#include "des/simulator.hpp"

#include <algorithm>
#include <limits>

#include "util/contract.hpp"

namespace specpf {

namespace {
constexpr std::size_t kHeapArity = 4;
// Compaction is pointless (and would thrash) on tiny heaps.
constexpr std::size_t kCompactionMinHeap = 64;
// Minimum bulk-load batch worth sorting into the O(1)-pop second tier.
constexpr std::size_t kSortedRunMin = 1024;
}  // namespace

Simulator::~Simulator() {
  for (std::size_t slot = 0; slot < slab_size_; ++slot) {
    node_at(static_cast<std::uint32_t>(slot)).~Node();
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != EventId::kInvalid) {
    const std::uint32_t slot = free_head_;
    free_head_ = node_at(slot).next_free;
    if (slot < poisoned_.size()) poisoned_[slot] = 0;  // live again
    return slot;
  }
  SPECPF_ASSERT(slab_size_ < kMaxSlots);
  if (slab_size_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(ChunkPtr(static_cast<std::byte*>(::operator new[](
        kChunkSize * sizeof(Node), std::align_val_t{kCacheLineBytes}))));
    dead_bits_.resize(chunks_.size() * kChunkSize / 64, 0);
  }
  const auto slot = static_cast<std::uint32_t>(slab_size_++);
  ::new (&node_at(slot)) Node();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Node& node = node_at(slot);
  ++node.generation;  // stale handles (ABA) now mismatch
  node.next_free = free_head_;
  free_head_ = slot;
  if (audit_mode_) {
    if (shadow_gen_.size() < slab_size_) {
      shadow_gen_.resize(slab_size_, EventId::kInvalid);
      poisoned_.resize(slab_size_, 0);
    }
    node.action.poison_storage(kPoisonByte);  // empty: only buf_ touched
    poisoned_[slot] = 1;
    shadow_gen_[slot] = node.generation;
  }
}

void Simulator::enable_audit_mode() { audit_mode_ = true; }

void Simulator::audit(AuditReport& report) const {
  const AuditScope scope(report, "Simulator");
  // 0 = unseen, 1 = on the free list, 2 = named by a pending entry.
  std::vector<std::uint8_t> state(slab_size_, 0);
  std::size_t free_count = 0;
  for (std::uint32_t slot = free_head_; slot != EventId::kInvalid;
       slot = node_at(slot).next_free) {
    if (!report.check(slot < slab_size_,
                      "free list points past the slab (slot " +
                          std::to_string(slot) + ")")) {
      break;
    }
    if (!report.check(state[slot] == 0, "free list revisits slot " +
                                            std::to_string(slot) +
                                            " (cycle)")) {
      break;
    }
    state[slot] = 1;
    ++free_count;
    const Node& node = node_at(slot);
    report.check(!node.action,
                 "freed slot " + std::to_string(slot) + " still armed");
    if (slot < poisoned_.size() && poisoned_[slot]) {
      report.check(node.action.storage_is(kPoisonByte),
                   "freed slot " + std::to_string(slot) +
                       " poison overwritten (write through a stale "
                       "handle?)");
    }
  }
  // Pending entries across both tiers: valid unique slots, armed exactly
  // when live, times no earlier than the clock.
  std::size_t dead_seen = 0;
  auto check_entry = [&](const HeapEntry& entry, const char* tier) {
    const std::uint32_t slot = entry.slot();
    if (!report.check(slot < slab_size_, std::string(tier) +
                                             " entry names slot " +
                                             std::to_string(slot) +
                                             " past the slab")) {
      return;
    }
    if (!report.check(state[slot] == 0,
                      std::string(tier) + " entry slot " +
                          std::to_string(slot) +
                          " is on the free list or pending twice")) {
      return;
    }
    state[slot] = 2;
    const Node& node = node_at(slot);
    if (is_dead(slot)) {
      ++dead_seen;
      report.check(!node.action, "tombstoned slot " + std::to_string(slot) +
                                     " still armed");
    } else {
      report.check(static_cast<bool>(node.action),
                   std::string(tier) + " live slot " + std::to_string(slot) +
                       " is disarmed (lost action)");
      report.check(entry.time >= now_,
                   std::string(tier) + " live entry at slot " +
                       std::to_string(slot) + " is scheduled in the past");
    }
  };
  for (std::size_t i = kHeapBase; i < heap_.size(); ++i) {
    check_entry(heap_[i], "heap");
  }
  for (const HeapEntry& entry : sorted_run_) check_entry(entry, "run");
  report.check(dead_seen == dead_in_heap_,
               "tombstone bitset marks " + std::to_string(dead_seen) +
                   " pending slots but dead_in_heap_ says " +
                   std::to_string(dead_in_heap_));
  // Generation shadowing (audit mode): every tracked slot's generation must
  // match what release_slot last recorded — a mismatch means a rollback or
  // forgery through a recycled slot.
  for (std::uint32_t slot = 0;
       slot < shadow_gen_.size() && slot < slab_size_; ++slot) {
    if (shadow_gen_[slot] == EventId::kInvalid) continue;
    report.check(node_at(slot).generation == shadow_gen_[slot],
                 "slot " + std::to_string(slot) +
                     " generation diverged from its shadow (rolled back or "
                     "forged)");
  }
  // Structural health of the ordering tiers.
  report.check(heapified_ >= kHeapBase && heapified_ <= heap_.size(),
               "heapified_ watermark out of range");
  const std::size_t ordered = std::min(heapified_, heap_.size());
  for (std::size_t j = kHeapBase + 1; j < ordered; ++j) {
    const std::size_t parent = (j + 8) / kHeapArity;
    report.check(!heap_[j].before(heap_[parent]),
                 "4-ary heap property violated at index " +
                     std::to_string(j));
  }
  for (std::size_t i = 0; i + 1 < sorted_run_.size(); ++i) {
    report.check(sorted_run_[i + 1].before(sorted_run_[i]),
                 "sorted run not descending at index " + std::to_string(i));
  }
  // Slab conservation: every slot is free or pending, never both/neither.
  report.check(free_count + (pending()) == slab_size_,
               "slab conservation: " + std::to_string(free_count) +
                   " free + " + std::to_string(pending()) +
                   " pending != " + std::to_string(slab_size_) + " slots");
}

// Physical indexing (see kHeapBase): children of i are 4i-8 .. 4i-5, parent
// of j is (j+8)/4, so every child group starts on a 64-byte boundary.
void Simulator::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  std::size_t hole = pos;
  while (hole > kHeapBase) {
    const std::size_t parent = (hole + 8) / kHeapArity;
    if (!entry.before(heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

void Simulator::sift_down(std::size_t hole, HeapEntry value) {
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = kHeapArity * hole - 8;
    if (first_child >= size) break;
    // Pull the next level's candidate range (the grandchildren, 16 entries =
    // 4 aligned cache lines) into cache while this level's comparisons run;
    // deep sifts are memory-latency-bound, not comparison-bound.
    const std::size_t grandchild = kHeapArity * first_child - 8;
    if (grandchild < size) {
      const char* base = reinterpret_cast<const char*>(&heap_[grandchild]);
      __builtin_prefetch(base);
      __builtin_prefetch(base + 64);
      __builtin_prefetch(base + 128);
      __builtin_prefetch(base + 192);
    }
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + kHeapArity, size);
    for (std::size_t child = first_child + 1; child < end; ++child) {
      if (heap_[child].before(heap_[best])) best = child;
    }
    if (!heap_[best].before(value)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = value;
}

void Simulator::heap_remove_top() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  heapified_ = heap_.size();  // only called with no batch pending
  if (heap_.size() > kHeapBase) sift_down(kHeapBase, last);
}

void Simulator::floyd_heapify() {
  const std::size_t size = heap_.size();
  for (std::size_t i = (size + 7) / kHeapArity + 1; i-- > kHeapBase;) {
    sift_down(i, heap_[i]);
  }
  heapified_ = size;
}

void Simulator::flush_batch() {
  const std::size_t size = heap_.size();
  if (heapified_ == size) return;
  const std::size_t batch = size - heapified_;
  // Bulk load with nothing else pending: sort once, pop O(1) thereafter.
  if (batch >= kSortedRunMin && heapified_ == kHeapBase &&
      sorted_run_.empty()) {
    sorted_run_.assign(heap_.begin() + kHeapBase, heap_.end());
    std::sort(sorted_run_.begin(), sorted_run_.end(),
              [](const HeapEntry& a, const HeapEntry& b) {
                return b.before(a);  // descending; min at the back
              });
    heap_.resize(kHeapBase);
    return;
  }
  // Bulk-rebuild when the batch rivals the ordered part; otherwise insert
  // the stragglers individually.
  if (batch > (heapified_ - kHeapBase) / 2) {
    floyd_heapify();
  } else {
    while (heapified_ < size) sift_up(heapified_++);
  }
}

void Simulator::compact() {
  std::size_t out = kHeapBase;
  for (std::size_t i = kHeapBase; i < heap_.size(); ++i) {
    const HeapEntry entry = heap_[i];
    if (!is_dead(entry.slot())) {
      heap_[out++] = entry;
    } else {
      clear_dead(entry.slot());
      release_slot(entry.slot());
    }
  }
  heap_.resize(out);
  // Filtering the sorted run preserves its descending order.
  std::size_t run_out = 0;
  for (std::size_t i = 0; i < sorted_run_.size(); ++i) {
    const HeapEntry entry = sorted_run_[i];
    if (!is_dead(entry.slot())) {
      sorted_run_[run_out++] = entry;
    } else {
      clear_dead(entry.slot());
      release_slot(entry.slot());
    }
  }
  sorted_run_.resize(run_out);
  dead_in_heap_ = 0;
  floyd_heapify();  // also absorbs any pending appended batch
}

// Reassigns pending seqs 0..n-1 preserving relative order. A monotone remap
// leaves every heap comparison's outcome unchanged, so the heap structure
// itself needs no rebuild. Runs once per ~1.1e12 scheduled events.
void Simulator::renumber_seqs() {
  std::vector<HeapEntry*> order;
  order.reserve(pending());
  for (std::size_t i = kHeapBase; i < heap_.size(); ++i) {
    order.push_back(&heap_[i]);
  }
  for (HeapEntry& entry : sorted_run_) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const HeapEntry* a, const HeapEntry* b) {
              return a->tie < b->tie;
            });
  std::uint64_t seq = 0;
  for (HeapEntry* entry : order) {
    entry->tie = (seq++ << kSlotBits) | entry->slot();
  }
  next_seq_ = seq;
}

EventId Simulator::schedule_at(double when, Action action) {
  SPECPF_EXPECTS(when >= now_);
  SPECPF_EXPECTS(static_cast<bool>(action));
  if (next_seq_ == kMaxSeq) renumber_seqs();
  const std::uint32_t slot = acquire_slot();
  Node& node = node_at(slot);
  node.action = std::move(action);
  heap_.push_back(HeapEntry{when, (next_seq_++ << kSlotBits) | slot});
  return EventId(slot, node.generation, this);
}

EventId Simulator::schedule_in(double delay, Action action) {
  SPECPF_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::cancel(const EventId& id) {
  if (id.slot_ >= slab_size_) return;
  SPECPF_ASSERT(id.owner_ == this && "EventId belongs to another Simulator");
  Node& node = node_at(id.slot_);
  if (!node.action || node.generation != id.generation_) return;
  node.action.reset();  // frees captured resources eagerly
  mark_dead(id.slot_);
  ++dead_in_heap_;
  if (2 * dead_in_heap_ >= pending() && pending() >= kCompactionMinHeap) {
    compact();
  }
}

bool Simulator::run_next(double limit) {
  flush_batch();
  HeapEntry top;
  bool from_run;
  if (!peek_live_top(&top, &from_run)) return false;
  if (top.time > limit) return false;
  const std::uint32_t slot = top.slot();
  Node& node = node_at(slot);
  // Start fetching the node's cache line now; the pop below overlaps the
  // miss so the action is already local when it is moved out.
  __builtin_prefetch(&node, /*rw=*/1);
  if (from_run) {
    sorted_run_.pop_back();
  } else {
    heap_remove_top();
  }
  Action action = std::move(node.action);
  release_slot(slot);  // slot reusable by whatever `action` schedules
  now_ = top.time;
  ++executed_;
  action();
  return true;
}

bool Simulator::peek_live_top(HeapEntry* top, bool* from_run) {
  for (;;) {
    const bool have_heap = heap_.size() > kHeapBase;
    const bool have_run = !sorted_run_.empty();
    if (!have_heap && !have_run) return false;
    *from_run = have_run && (!have_heap ||
                             sorted_run_.back().before(heap_[kHeapBase]));
    *top = *from_run ? sorted_run_.back() : heap_[kHeapBase];
    const std::uint32_t slot = top->slot();
    if (!is_dead(slot)) return true;
    // Tombstone — collect and keep looking.
    if (*from_run) {
      sorted_run_.pop_back();
    } else {
      heap_remove_top();
    }
    --dead_in_heap_;
    clear_dead(slot);
    release_slot(slot);
  }
}

double Simulator::next_event_time() {
  flush_batch();
  HeapEntry top;
  bool from_run;
  if (!peek_live_top(&top, &from_run)) {
    return std::numeric_limits<double>::infinity();
  }
  return top.time;
}

bool Simulator::step() {
  return run_next(std::numeric_limits<double>::infinity());
}

void Simulator::run_until(double end_time) {
  SPECPF_EXPECTS(end_time >= now_);
  while (run_next(end_time)) {
  }
  now_ = end_time;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace specpf
