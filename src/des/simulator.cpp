#include "des/simulator.hpp"

#include "util/contract.hpp"

namespace specpf {

EventId Simulator::schedule_at(double when, Action action) {
  SPECPF_EXPECTS(when >= now_);
  auto token = std::make_shared<bool>(false);
  queue_.push(Entry{when, next_seq_++, std::move(action), token});
  return EventId(std::move(token));
}

EventId Simulator::schedule_in(double delay, Action action) {
  SPECPF_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::cancel(const EventId& id) {
  if (id.token_) *id.token_ = true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // top() returns a const ref, but the underlying element is non-const;
    // moving out of it is well-defined. pop() then sifts the moved-from
    // Entry, which only reads time/seq — both untouched by the move.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (*entry.cancelled) continue;  // tombstone
    now_ = entry.time;
    ++executed_;
    entry.action();
    return true;
  }
  return false;
}

void Simulator::run_until(double end_time) {
  SPECPF_EXPECTS(end_time >= now_);
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.time > end_time) break;
    step();
  }
  now_ = end_time;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace specpf
