// CachePlane — the fleet-wide client-cache layer behind StackRuntime.
//
// One plane owns every user's cache plus the §4 tagged/untagged estimation
// state, replacing the legacy vector of unique_ptr<TaggedCache> (each
// wrapping a virtual Cache full of list/map nodes). Two backends:
//
//   * ArenaCachePlane<Policy> — the default: all entries live in the shared
//     CacheArena slabs (cache/cache_arena.hpp), residency is one flat hash
//     for the whole fleet, and the eviction policy is a compile-time
//     template parameter dispatched ONCE per run in make_cache_plane. After
//     that single dispatch, a request's cache work (lookup, tag protocol,
//     eviction) runs with no virtual calls and no per-hook std::function —
//     one monomorphic virtual hop into the plane per operation, total.
//
//   * LegacyCachePlane — the original per-user TaggedCache objects, kept
//     behind StackRuntimeConfig::use_legacy_caches (same pattern as
//     use_tree_inflight) as the byte-identical reference backend for
//     differential tests and the memory/throughput baseline.
//
// Both backends implement the §4 protocol with identical arithmetic;
// tests/cache_plane_test.cpp and the stack differential matrix pin
// bit-identical results across all five eviction policies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_arena.hpp"
#include "cache/factory.hpp"
#include "cache/tagged_cache.hpp"
#include "core/interaction.hpp"
#include "des/inline_function.hpp"

namespace specpf {

struct CachePlaneConfig {
  std::size_t num_users = 1;
  std::size_t capacity = 64;
  /// Root seed; the random policy derives per-user streams from it
  /// (substream 100 + user, matching the legacy construction).
  std::uint64_t seed = 1;
};

/// Fleet sums the stack's result assembly needs; summable across shards.
struct CachePlaneTotals {
  double hprime_sum = 0.0;  ///< Σ per-user ĥ' estimates (per chosen model)
  std::uint64_t prefetch_inserts = 0;
  std::uint64_t prefetch_first_uses = 0;
};

class CachePlane {
 public:
  /// Fired with (user, item, tag) whenever an entry is evicted to make
  /// room. Inline storage: installing the observer never allocates.
  using EvictionObserver =
      InlineFunction<void(std::uint32_t, ItemId, core::EntryTag), 24>;

  virtual ~CachePlane() = default;

  /// A user request for `item`: updates estimator counters and tag state.
  virtual AccessOutcome access(std::uint32_t user, ItemId item) = 0;

  /// Records a completed demand fetch being admitted (tagged).
  virtual void admit_demand(std::uint32_t user, ItemId item) = 0;

  /// Records a completed prefetch being admitted (untagged). Re-prefetching
  /// a resident item is a no-op: it must not downgrade the tag.
  virtual void admit_prefetch(std::uint32_t user, ItemId item) = 0;

  /// A prefetch claimed by a request while still in flight: enters tagged
  /// and counts as a used prefetch.
  virtual void admit_prefetch_accessed(std::uint32_t user, ItemId item) = 0;

  /// Residency probe; does not touch policy metadata.
  virtual bool contains(std::uint32_t user, ItemId item) const = 0;

  /// Resident items of one user.
  virtual std::size_t size(std::uint32_t user) const = 0;

  /// Per-user ĥ' under the chosen interaction model.
  virtual double estimate(std::uint32_t user,
                          core::InteractionModel model) const = 0;

  /// Fleet sums for result assembly / cross-shard merging.
  virtual CachePlaneTotals totals(core::InteractionModel model) const = 0;

  virtual std::uint64_t prefetch_inserts(std::uint32_t user) const = 0;
  virtual std::uint64_t prefetch_first_uses(std::uint32_t user) const = 0;

  virtual void set_eviction_observer(EvictionObserver observer) = 0;

  /// Deep-invariant sweep (util/audit.hpp): the arena backend walks its
  /// policy arena (chains, free lists, residency index) plus the §4 counter
  /// sanity (nhit <= naccess, first uses <= inserts). The legacy backend
  /// checks the counters only — its std::list/map entries are already under
  /// ASan's eye. Cold path; called from tests and SPECPF_AUDIT sweeps.
  virtual void audit(AuditReport& report) const = 0;
};

/// Builds the cache plane for `kind`: the arena backend by default, the
/// legacy per-user TaggedCache fleet when `use_legacy` is set. This switch
/// is the once-per-run policy dispatch — everything after it is
/// monomorphic.
std::unique_ptr<CachePlane> make_cache_plane(CacheKind kind,
                                             const CachePlaneConfig& config,
                                             bool use_legacy);

}  // namespace specpf
