#include "cache/lfu.hpp"

#include "util/contract.hpp"

namespace specpf {

LfuCache::LfuCache(std::size_t capacity) : capacity_(capacity) {
  SPECPF_EXPECTS(capacity >= 1);
}

std::optional<EntryTag> LfuCache::lookup(ItemId item) {
  ++stats_.lookups;
  auto it = map_.find(item);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  const EntryTag tag = it->second.node->tag;
  bump(item, it->second);
  return tag;
}

bool LfuCache::contains(ItemId item) const { return map_.count(item) != 0; }

void LfuCache::insert(ItemId item, EntryTag tag) {
  ++stats_.insertions;
  auto it = map_.find(item);
  if (it != map_.end()) {
    it->second.node->tag = tag;
    bump(item, it->second);
    return;
  }
  if (map_.size() >= capacity_) evict_one();
  // New items start in the frequency-1 bucket.
  if (buckets_.empty() || buckets_.front().freq != 1) {
    buckets_.push_front(Bucket{1, {}});
  }
  BucketIt bucket = buckets_.begin();
  bucket->nodes.push_front(Node{item, tag});
  map_[item] = Locator{bucket, bucket->nodes.begin()};
}

bool LfuCache::set_tag(ItemId item, EntryTag tag) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  it->second.node->tag = tag;
  return true;
}

bool LfuCache::erase(ItemId item) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  BucketIt bucket = it->second.bucket;
  bucket->nodes.erase(it->second.node);
  if (bucket->nodes.empty()) buckets_.erase(bucket);
  map_.erase(it);
  return true;
}

std::uint64_t LfuCache::frequency(ItemId item) const {
  auto it = map_.find(item);
  return it == map_.end() ? 0 : it->second.bucket->freq;
}

void LfuCache::bump(ItemId item, Locator& loc) {
  BucketIt bucket = loc.bucket;
  const std::uint64_t next_freq = bucket->freq + 1;
  BucketIt next = std::next(bucket);
  if (next == buckets_.end() || next->freq != next_freq) {
    next = buckets_.insert(next, Bucket{next_freq, {}});
  }
  const Node node = *loc.node;
  bucket->nodes.erase(loc.node);
  if (bucket->nodes.empty()) buckets_.erase(bucket);
  next->nodes.push_front(node);
  map_[item] = Locator{next, next->nodes.begin()};
}

void LfuCache::evict_one() {
  SPECPF_ASSERT(!buckets_.empty());
  Bucket& lowest = buckets_.front();
  SPECPF_ASSERT(!lowest.nodes.empty());
  const Node victim = lowest.nodes.back();  // LRU within the bucket
  lowest.nodes.pop_back();
  if (lowest.nodes.empty()) buckets_.pop_front();
  map_.erase(victim.item);
  ++stats_.evictions;
  if (hook_) hook_(victim.item, victim.tag);
}

}  // namespace specpf
