// Random-replacement cache: evicts a uniformly random resident item.
// The memoryless baseline for eviction-policy ablations.
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "util/rng.hpp"

namespace specpf {

class RandomCache final : public Cache {
 public:
  RandomCache(std::size_t capacity, std::uint64_t seed);

  std::optional<EntryTag> lookup(ItemId item) override;
  bool contains(ItemId item) const override;
  void insert(ItemId item, EntryTag tag) override;
  bool set_tag(ItemId item, EntryTag tag) override;
  bool erase(ItemId item) override;
  std::size_t size() const override { return slots_.size(); }
  std::size_t capacity() const override { return capacity_; }
  void set_eviction_hook(EvictionHook hook) override { hook_ = std::move(hook); }

 private:
  struct Slot {
    ItemId item;
    EntryTag tag;
  };

  void evict_one();

  std::size_t capacity_;
  std::vector<Slot> slots_;  // dense; swap-with-last removal
  std::unordered_map<ItemId, std::size_t> index_;
  Rng rng_;
  EvictionHook hook_;
};

}  // namespace specpf
