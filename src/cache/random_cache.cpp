#include "cache/random_cache.hpp"

#include "util/contract.hpp"

namespace specpf {

RandomCache::RandomCache(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  SPECPF_EXPECTS(capacity >= 1);
}

std::optional<EntryTag> RandomCache::lookup(ItemId item) {
  ++stats_.lookups;
  auto it = index_.find(item);
  if (it == index_.end()) return std::nullopt;
  ++stats_.hits;
  return slots_[it->second].tag;
}

bool RandomCache::contains(ItemId item) const {
  return index_.count(item) != 0;
}

void RandomCache::insert(ItemId item, EntryTag tag) {
  ++stats_.insertions;
  auto it = index_.find(item);
  if (it != index_.end()) {
    slots_[it->second].tag = tag;
    return;
  }
  if (slots_.size() >= capacity_) evict_one();
  slots_.push_back(Slot{item, tag});
  index_[item] = slots_.size() - 1;
}

bool RandomCache::set_tag(ItemId item, EntryTag tag) {
  auto it = index_.find(item);
  if (it == index_.end()) return false;
  slots_[it->second].tag = tag;
  return true;
}

bool RandomCache::erase(ItemId item) {
  auto it = index_.find(item);
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  index_.erase(it);
  if (pos != slots_.size() - 1) {
    slots_[pos] = slots_.back();
    index_[slots_[pos].item] = pos;
  }
  slots_.pop_back();
  return true;
}

void RandomCache::evict_one() {
  SPECPF_ASSERT(!slots_.empty());
  const std::size_t pos = rng_.next_below(slots_.size());
  const Slot victim = slots_[pos];
  erase(victim.item);
  ++stats_.evictions;
  if (hook_) hook_(victim.item, victim.tag);
}

}  // namespace specpf
