#include "cache/value_cache.hpp"

#include "util/contract.hpp"

namespace specpf {

ValueCache::ValueCache(std::size_t capacity) : capacity_(capacity) {
  SPECPF_EXPECTS(capacity >= 1);
}

std::optional<EntryTag> ValueCache::lookup(ItemId item) {
  ++stats_.lookups;
  auto it = entries_.find(item);
  if (it == entries_.end()) return std::nullopt;
  ++stats_.hits;
  return it->second.tag;
}

bool ValueCache::contains(ItemId item) const {
  return entries_.count(item) != 0;
}

void ValueCache::insert(ItemId item, EntryTag tag) {
  insert_valued(item, tag, 0.0);
}

bool ValueCache::insert_valued(ItemId item, EntryTag tag, double value) {
  ++stats_.insertions;
  auto it = entries_.find(item);
  if (it != entries_.end()) {
    it->second.tag = tag;
    set_value(item, value);
    return true;
  }
  if (entries_.size() >= capacity_) {
    // Admission control: refuse items worth less than the victim.
    SPECPF_ASSERT(!by_value_.empty());
    if (value < by_value_.begin()->first) return false;
    evict_min();
  }
  entries_[item] = Entry{tag, value};
  by_value_.emplace(value, item);
  return true;
}

bool ValueCache::set_value(ItemId item, double value) {
  auto it = entries_.find(item);
  if (it == entries_.end()) return false;
  by_value_.erase({it->second.value, item});
  it->second.value = value;
  by_value_.emplace(value, item);
  return true;
}

std::optional<double> ValueCache::value_of(ItemId item) const {
  auto it = entries_.find(item);
  if (it == entries_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<double> ValueCache::min_value() const {
  if (by_value_.empty()) return std::nullopt;
  return by_value_.begin()->first;
}

bool ValueCache::set_tag(ItemId item, EntryTag tag) {
  auto it = entries_.find(item);
  if (it == entries_.end()) return false;
  it->second.tag = tag;
  return true;
}

bool ValueCache::erase(ItemId item) {
  auto it = entries_.find(item);
  if (it == entries_.end()) return false;
  by_value_.erase({it->second.value, item});
  entries_.erase(it);
  return true;
}

void ValueCache::evict_min() {
  SPECPF_ASSERT(!by_value_.empty());
  const auto [value, item] = *by_value_.begin();
  by_value_.erase(by_value_.begin());
  const EntryTag tag = entries_.at(item).tag;
  entries_.erase(item);
  ++stats_.evictions;
  if (hook_) hook_(item, tag);
}

}  // namespace specpf
