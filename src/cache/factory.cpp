#include "cache/factory.hpp"

#include "cache/clock_cache.hpp"
#include "cache/fifo.hpp"
#include "cache/lfu.hpp"
#include "cache/lru.hpp"
#include "cache/random_cache.hpp"
#include "util/contract.hpp"

namespace specpf {

const char* cache_kind_name(CacheKind kind) {
  switch (kind) {
    case CacheKind::kLru:
      return "lru";
    case CacheKind::kLfu:
      return "lfu";
    case CacheKind::kFifo:
      return "fifo";
    case CacheKind::kClock:
      return "clock";
    case CacheKind::kRandom:
      return "random";
  }
  SPECPF_ASSERT(false && "unknown cache kind");
  return "?";
}

std::unique_ptr<Cache> make_cache(CacheKind kind, std::size_t capacity,
                                  std::uint64_t seed) {
  switch (kind) {
    case CacheKind::kLru:
      return std::make_unique<LruCache>(capacity);
    case CacheKind::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case CacheKind::kFifo:
      return std::make_unique<FifoCache>(capacity);
    case CacheKind::kClock:
      return std::make_unique<ClockCache>(capacity);
    case CacheKind::kRandom:
      return std::make_unique<RandomCache>(capacity, seed);
  }
  SPECPF_ASSERT(false && "unknown cache kind");
  return nullptr;
}

}  // namespace specpf
