// The one cache-kind dispatch point. Every frontend (proxy sim, trace
// replay, sharded driver, benches) names eviction policies through this
// enum, and both cache backends — the legacy virtual `Cache` objects and
// the slab-backed arena plane (cache/cache_plane.hpp) — select their policy
// here, so adding a policy is a one-file change.
#pragma once

#include <cstdint>
#include <memory>

#include "cache/cache.hpp"

namespace specpf {

/// Eviction policies available to every frontend. Numeric values are part
/// of the CLI/bench surface (0=LRU 1=LFU 2=FIFO 3=CLOCK 4=random).
enum class CacheKind : int {
  kLru = 0,
  kLfu = 1,
  kFifo = 2,
  kClock = 3,
  kRandom = 4,
};

inline constexpr int kNumCacheKinds = 5;

/// Short stable name for reports and bench JSON keys.
const char* cache_kind_name(CacheKind kind);

/// Builds a standalone (legacy, node-based) cache of the given kind.
/// `seed` is only consumed by the random policy.
std::unique_ptr<Cache> make_cache(CacheKind kind, std::size_t capacity,
                                  std::uint64_t seed);

}  // namespace specpf
