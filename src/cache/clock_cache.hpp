// CLOCK (second-chance) cache: circular scan over reference bits —
// the classic low-overhead LRU approximation.
// lint:legacy-baseline — pre-arena reference implementation kept
// byte-identical for the differential tests; not a data-plane path.
#pragma once

#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"

namespace specpf {

class ClockCache final : public Cache {
 public:
  explicit ClockCache(std::size_t capacity);

  std::optional<EntryTag> lookup(ItemId item) override;
  bool contains(ItemId item) const override;
  void insert(ItemId item, EntryTag tag) override;
  bool set_tag(ItemId item, EntryTag tag) override;
  bool erase(ItemId item) override;
  std::size_t size() const override { return live_; }
  std::size_t capacity() const override { return frames_.size(); }
  void set_eviction_hook(EvictionHook hook) override { hook_ = std::move(hook); }

 private:
  struct Frame {
    ItemId item = 0;
    EntryTag tag = EntryTag::kUntagged;
    bool referenced = false;
    bool occupied = false;
  };

  std::size_t find_victim_frame();

  std::vector<Frame> frames_;
  std::unordered_map<ItemId, std::size_t> map_;
  std::size_t hand_ = 0;
  std::size_t live_ = 0;
  EvictionHook hook_;
};

}  // namespace specpf
