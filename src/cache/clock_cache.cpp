#include "cache/clock_cache.hpp"

#include "util/contract.hpp"

namespace specpf {

ClockCache::ClockCache(std::size_t capacity) : frames_(capacity) {
  SPECPF_EXPECTS(capacity >= 1);
}

std::optional<EntryTag> ClockCache::lookup(ItemId item) {
  ++stats_.lookups;
  auto it = map_.find(item);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  frames_[it->second].referenced = true;
  return frames_[it->second].tag;
}

bool ClockCache::contains(ItemId item) const { return map_.count(item) != 0; }

void ClockCache::insert(ItemId item, EntryTag tag) {
  ++stats_.insertions;
  auto it = map_.find(item);
  if (it != map_.end()) {
    frames_[it->second].tag = tag;
    frames_[it->second].referenced = true;
    return;
  }
  const std::size_t frame = find_victim_frame();
  Frame& f = frames_[frame];
  if (f.occupied) {
    map_.erase(f.item);
    ++stats_.evictions;
    --live_;
    if (hook_) hook_(f.item, f.tag);
  }
  f = Frame{item, tag, /*referenced=*/true, /*occupied=*/true};
  map_[item] = frame;
  ++live_;
}

bool ClockCache::set_tag(ItemId item, EntryTag tag) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  frames_[it->second].tag = tag;
  return true;
}

bool ClockCache::erase(ItemId item) {
  auto it = map_.find(item);
  if (it == map_.end()) return false;
  frames_[it->second].occupied = false;
  frames_[it->second].referenced = false;
  map_.erase(it);
  --live_;
  return true;
}

std::size_t ClockCache::find_victim_frame() {
  // Prefer an empty frame; otherwise sweep, clearing reference bits, until a
  // frame with referenced == false is found (terminates within two sweeps).
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].occupied) return i;
  }
  while (true) {
    Frame& f = frames_[hand_];
    const std::size_t frame = hand_;
    hand_ = (hand_ + 1) % frames_.size();
    if (!f.referenced) return frame;
    f.referenced = false;
  }
}

}  // namespace specpf
